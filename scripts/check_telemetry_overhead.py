#!/usr/bin/env python
"""CI gate for the telemetry overhead contract (docs/observability.md).

Two claims, both halves of "off by default, cheap when on":

1. **Disabled is byte-identical.** Two runs of the same fixed-seed CLI
   command without telemetry flags must produce identical stdout, and an
   *enabled* run's stdout must start with that exact disabled output —
   telemetry may only append (the trace/metrics footer), never perturb
   the experiment's own numbers.
2. **Enabled costs < 10%.** Best-of-N wall time with ``--trace-out`` +
   ``--metrics-out`` must stay within ``LIMIT`` (1.10) of the best
   disabled wall time.

The emitted trace must also parse as a JSON array of Chrome trace
events whose spans carry ``span_id``/``parent_id`` links.

Run from the repo root: ``python scripts/check_telemetry_overhead.py``.
Exits non-zero (with a diagnostic) on any violation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from _ci_util import fail, gate_main, ok, repo_root

REPO = repo_root()

#: The fixed-seed command under test: heavy enough that per-batch costs
#: would show, light enough for CI.
COMMAND = [
    sys.executable, "-m", "repro.cli", "mix", "mcf", "povray",
    "--instructions", "400000", "--seed", "3",
]

#: Enabled wall time may be at most this multiple of disabled wall time.
LIMIT = 1.10

#: Timing samples per variant; best-of keeps CI noise out of the ratio.
ROUNDS = 3


def run(extra, cwd) -> tuple[str, float]:
    """Run the CLI command with *extra* args; return (stdout, seconds)."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("REPRO_TRACE", None)
    started = time.perf_counter()
    proc = subprocess.run(
        COMMAND + extra, cwd=cwd, env=env, check=True,
        capture_output=True, text=True,
    )
    return proc.stdout, time.perf_counter() - started


def check_trace(path: Path) -> None:
    """Assert *path* is a Chrome trace-event JSON array with linked spans."""
    events = json.loads(path.read_text())
    assert isinstance(events, list) and events, "trace is not a JSON array"
    for event in events:
        assert event["ph"] == "X" and "ts" in event and "dur" in event, event
    linked = [e for e in events if "parent_id" in e["args"]]
    assert linked, "no span carries a parent_id link"


def main() -> int:
    """Run both checks; return a process exit code."""
    with tempfile.TemporaryDirectory() as tmp:
        baseline, _ = run([], tmp)
        repeat, _ = run([], tmp)
        if repeat != baseline:
            return fail("two disabled runs differ — disabled mode is not "
                        "deterministic/byte-identical")

        trace = Path(tmp) / "trace.json"
        metrics = Path(tmp) / "metrics.prom"
        enabled_out, _ = run(
            ["--trace-out", str(trace), "--metrics-out", str(metrics)], tmp
        )
        if not enabled_out.startswith(baseline):
            return fail("enabled stdout does not start with the disabled "
                        "output — telemetry perturbed the experiment")
        check_trace(trace)
        if not metrics.read_text().startswith("# TYPE"):
            return fail("metrics file is not Prometheus exposition text")

        disabled_best = min(run([], tmp)[1] for _ in range(ROUNDS))
        enabled_best = min(
            run(["--trace-out", str(trace), "--metrics-out", str(metrics)],
                tmp)[1]
            for _ in range(ROUNDS)
        )
    ratio = enabled_best / disabled_best
    print(f"disabled best {disabled_best:.3f}s, enabled best "
          f"{enabled_best:.3f}s, ratio {ratio:.3f} (limit {LIMIT})")
    if ratio > LIMIT:
        return fail(f"telemetry overhead {100 * (ratio - 1):.1f}% exceeds "
                    f"{100 * (LIMIT - 1):.0f}%")
    return ok("disabled byte-identical; enabled overhead within budget")


if __name__ == "__main__":
    gate_main(main)
