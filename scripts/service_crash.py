"""CI chaos gate: kill the durable daemon mid-trace, recover, compare.

Runs the scheduling daemon as a real subprocess with a durability
directory attached, replays a seeded arrival trace over the TCP
protocol with an idempotency-tagged client, and SIGKILLs the daemon at
seeded random event indices. After every kill the daemon is restarted
with ``--recover``, the client reconnects (seeded capped-jitter
backoff) and resends its last mutating request — which the recovered
dedup table must answer as a duplicate, never re-apply.

Verdicts on the tentpole's contracts:

* **mapping equivalence** — the final daemon mapping is byte-identical
  to an uninterrupted in-process oracle run over the same events;
* **zero duplicate applies** — the daemon's processed-event counter
  equals the trace length exactly, every crash resend was answered
  from the dedup table, and the oracle's remap counters match;
* **bounded recovery** — every restart replays at most one snapshot
  interval of WAL tail.

Writes a recovery-metrics JSON artifact to ``--out`` (default
``service-crash-report.json``) for the workflow to upload. Exit 0 on
pass, 1 on any contract violation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import re
import socket
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from _ci_util import ensure_repo_on_path, fail, gate_main, ok, repo_root

ensure_repo_on_path()

#: Matches the serve command's recovery banner.
RECOVERED_RE = re.compile(
    r"recovered (\d+) event\(s\) of state \((\d+) replayed from the WAL "
    r"tail, snapshot: (True|False)\)"
)


def parse_args() -> argparse.Namespace:
    """The gate's command line."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--events", type=int, default=400,
        help="trace length in events (default: 400)",
    )
    parser.add_argument(
        "--seed", type=int, default=29,
        help="trace and crash-schedule seed (default: 29)",
    )
    parser.add_argument(
        "--crashes", type=int, default=3,
        help="number of SIGKILLs injected at random indices (default: 3)",
    )
    parser.add_argument(
        "--snapshot-interval", type=int, default=64,
        help="events between durable snapshots (default: 64)",
    )
    parser.add_argument(
        "--out", default="service-crash-report.json",
        help="where to write the recovery-metrics JSON artifact",
    )
    return parser.parse_args()


def free_port() -> int:
    """A currently-free localhost TCP port for the daemon to reuse."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_daemon(
    port: int, state_dir: Path, snapshot_interval: int, recover: bool
) -> subprocess.Popen:
    """Launch the serve subprocess and block until it is listening.

    Returns the process with its recovery banner (if any) parsed into
    ``proc.recovered`` as ``(events_total, tail_replayed, from_snapshot)``.
    """
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--policy", "weight-sort", "--cores", "4",
        "--port", str(port),
        "--state-dir", str(state_dir),
        "--snapshot-interval", str(snapshot_interval),
    ]
    if recover:
        argv.append("--recover")
    env = dict(os.environ)
    src = str(repo_root() / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=repo_root(),
        env=env,
    )
    proc.recovered = None  # type: ignore[attr-defined]
    assert proc.stdout is not None
    for line in proc.stdout:
        print(f"  [daemon] {line.rstrip()}")
        match = RECOVERED_RE.search(line)
        if match:
            proc.recovered = (  # type: ignore[attr-defined]
                int(match.group(1)),
                int(match.group(2)),
                match.group(3) == "True",
            )
        if "listening on" in line:
            return proc
    raise RuntimeError(
        f"daemon exited (code {proc.wait()}) before listening"
    )


async def run_chaos(args: argparse.Namespace, state_dir: Path) -> Dict[str, Any]:
    """Drive the trace with kills; returns the report payload."""
    from repro.service.client import ServiceClient
    from repro.workloads.arrivals import poisson_trace

    trace = poisson_trace(args.events, seed=args.seed)
    schedule = random.Random(args.seed)
    crash_at = sorted(
        schedule.sample(range(1, len(trace)), min(args.crashes, len(trace) - 1))
    )
    print(
        f"replaying {len(trace)} events, SIGKILL after indices {crash_at}"
    )

    port = free_port()
    proc = start_daemon(port, state_dir, args.snapshot_interval, recover=False)
    client = await ServiceClient.connect(
        "127.0.0.1", port, timeout=10.0, client_id="chaos"
    )
    recoveries: List[Dict[str, Any]] = []
    duplicate_resends = 0
    try:
        for index, arrival in enumerate(trace, start=1):
            if arrival.kind == "admit":
                response = await client.submit(arrival.pid, arrival.name)
            elif arrival.kind == "retire":
                response = await client.retire(arrival.pid)
            else:
                response = await client.phase_change(
                    arrival.pid, arrival.name
                )
            if not response.get("ok"):
                raise RuntimeError(
                    f"transport error at event {index}: {response}"
                )
            if index in crash_at:
                proc.kill()
                proc.wait()
                print(f"  killed daemon after event {index}; recovering")
                proc = start_daemon(
                    port, state_dir, args.snapshot_interval, recover=True
                )
                total, tail, from_snapshot = proc.recovered  # type: ignore[attr-defined]
                recoveries.append(
                    {
                        "after_event": index,
                        "recovered_total": total,
                        "wal_tail_replayed": tail,
                        "from_snapshot": from_snapshot,
                    }
                )
                await client.reconnect(attempts=10)
                resent = await client.resend_last()
                if resent.get("result", {}).get("duplicate") is True:
                    duplicate_resends += 1
                else:
                    raise RuntimeError(
                        f"resend after crash {index} was re-applied "
                        f"instead of deduplicated: {resent}"
                    )
        status = (await client.status())["status"]
        mapping = (await client.mapping())["mapping"]
        await client.shutdown()
    finally:
        await client.close()
        proc.kill()
        proc.wait()
    return {
        "events": len(trace),
        "seed": args.seed,
        "snapshot_interval": args.snapshot_interval,
        "crash_indices": crash_at,
        "recoveries": recoveries,
        "duplicate_resends": duplicate_resends,
        "daemon_status": status,
        "daemon_mapping": mapping,
    }


def run_oracle(events: int, seed: int) -> Dict[str, Any]:
    """Uninterrupted in-process run over the same trace (no settle —
    the wire protocol has no settle op, so the daemon never ran one)."""
    from repro.alloc.weight_sort import WeightSortPolicy
    from repro.service.daemon import SchedulerService, ServiceConfig
    from repro.service.events import event_from_arrival
    from repro.workloads.arrivals import poisson_trace

    async def _run() -> Dict[str, Any]:
        service = SchedulerService(
            WeightSortPolicy(), ServiceConfig(num_cores=4)
        )
        await service.start()
        try:
            for arrival in poisson_trace(events, seed=seed):
                await service.submit_event(event_from_arrival(arrival))
        finally:
            await service.stop(drain=True)
        return {
            "processed": service.events_processed,
            "mapping": str(service.mapper.mapping),
            "full_remaps": service.mapper.full_remaps,
            "incremental_updates": service.mapper.incremental_updates,
            "population": len(service.registry),
        }

    return asyncio.run(_run())


def main() -> int:
    """Run the chaos replay and verdict on the recovery contracts."""
    import tempfile

    args = parse_args()
    with tempfile.TemporaryDirectory(prefix="repro-crash-") as tmp:
        report = asyncio.run(run_chaos(args, Path(tmp) / "state"))
    oracle = run_oracle(args.events, args.seed)
    report["oracle"] = oracle

    status = report["daemon_status"]
    checks = {
        "mapping_match": report["daemon_mapping"] == oracle["mapping"],
        "processed_match": (
            status["events"]["processed"] == oracle["processed"] == args.events
        ),
        "remaps_match": (
            status["mapper"]["full_remaps"] == oracle["full_remaps"]
            and status["mapper"]["incremental_updates"]
            == oracle["incremental_updates"]
        ),
        "population_match": (
            status["registry"]["population"] == oracle["population"]
        ),
        "all_resends_deduplicated": (
            report["duplicate_resends"] == len(report["crash_indices"])
        ),
        "recovery_bounded": all(
            r["wal_tail_replayed"] <= args.snapshot_interval
            for r in report["recoveries"]
        ),
    }
    report["checks"] = checks
    target = Path(args.out)
    target.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"recovery-metrics artifact written to {target}")

    failed = sorted(name for name, passed in checks.items() if not passed)
    if failed:
        return fail(
            f"crash-recovery contract violated: {', '.join(failed)} "
            f"(daemon mapping {report['daemon_mapping']!r}, oracle "
            f"{oracle['mapping']!r})"
        )
    return ok(
        f"{len(report['crash_indices'])} kill(s) over {args.events} events: "
        "recovered mapping byte-identical to the oracle, "
        f"{report['duplicate_resends']} resend(s) deduplicated, "
        "zero duplicate applies"
    )


if __name__ == "__main__":
    gate_main(main)
