"""CI gate: replay a short arrival trace through the scheduling daemon.

Drives a seeded trace in-process against :mod:`repro.service` and
verdicts on the subsystem's two hard contracts:

* **zero dropped events** — the bounded admission queue backpressures,
  it never silently discards work on the awaited submission path;
* **incremental == full** — after the trace-end settle, the mapping
  produced by incremental operation is byte-identical to the full-remap
  oracle computed from the same final snapshot.

Writes the replay report to ``--out`` (default
``service-smoke-report.json``) so the workflow can upload it as an
artifact. Exit 0 on pass, 1 on any contract violation.
"""

from __future__ import annotations

import argparse

from _ci_util import ensure_repo_on_path, fail, gate_main, ok

ensure_repo_on_path()


def parse_args() -> argparse.Namespace:
    """The gate's command line."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--events", type=int, default=600,
        help="trace length in events (default: 600)",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="trace seed (default: 11)"
    )
    parser.add_argument(
        "--trace-kind", choices=["poisson", "bursty"], default="bursty",
        help="arrival process to replay (default: bursty — the "
        "adversarial shape for incremental remapping)",
    )
    parser.add_argument(
        "--out", default="service-smoke-report.json",
        help="where to write the replay report JSON artifact",
    )
    return parser.parse_args()


def main() -> int:
    """Run the smoke replay and verdict on the service contracts."""
    args = parse_args()

    from repro.service.daemon import ServiceConfig
    from repro.service.replay import run_replay, write_bench_json
    from repro.workloads.arrivals import bursty_trace, poisson_trace

    factory = bursty_trace if args.trace_kind == "bursty" else poisson_trace
    trace = factory(args.events, seed=args.seed)
    print(
        f"replaying {len(trace)} {trace.kind} events (seed {trace.seed}, "
        f"peak population {trace.peak_population()})"
    )
    report = run_replay(trace, config=ServiceConfig(num_cores=4))
    target = write_bench_json(report, args.out)
    print(
        f"processed {report.processed} events at "
        f"{report.events_per_second:.0f}/s "
        f"(p50 {report.latency_p50_seconds * 1e6:.0f}us, "
        f"p99 {report.latency_p99_seconds * 1e6:.0f}us); "
        f"{report.full_remaps} full remaps, "
        f"{report.incremental_updates} incremental updates"
    )
    print(f"report written to {target}")

    if report.dropped != 0:
        return fail(
            f"{report.dropped} event(s) dropped — the awaited submission "
            "path must never discard work"
        )
    if report.processed != len(trace) + 1:
        return fail(
            f"processed {report.processed} events, expected "
            f"{len(trace) + 1} (trace + settle)"
        )
    if not report.oracle_match:
        return fail(
            "settled mapping diverged from the full-remap oracle: "
            f"{report.final_mapping} != {report.oracle_mapping}"
        )
    return ok(
        f"service replay clean: {report.processed} events, 0 dropped, "
        "incremental mapping settled byte-identical to the oracle"
    )


if __name__ == "__main__":
    gate_main(main)
