"""Shared helpers for the CI gate scripts.

Every gate under ``scripts/`` (``check_telemetry_overhead.py``,
``run_lint.py``) follows the same protocol: print human-readable
progress, end with one unambiguous ``OK:``/``FAIL:`` verdict line, and
exit ``0``/``1`` so CI can gate on it (``2`` for usage errors). This
module is that protocol in one place — the scripts share it instead of
each growing its own slightly different copy.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable

__all__ = ["EXIT_OK", "EXIT_FAIL", "EXIT_USAGE", "repo_root",
           "ensure_repo_on_path", "ok", "fail", "gate_main"]

EXIT_OK = 0
EXIT_FAIL = 1
EXIT_USAGE = 2

#: Repository root (the parent of ``scripts/``).
REPO_ROOT = Path(__file__).resolve().parents[1]


def repo_root() -> Path:
    """The repository root directory."""
    return REPO_ROOT


def ensure_repo_on_path() -> None:
    """Make ``src/`` importable when the script runs outside CI's env."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def ok(message: str) -> int:
    """Print the passing verdict line; returns :data:`EXIT_OK`."""
    print(f"OK: {message}")
    return EXIT_OK


def fail(message: str) -> int:
    """Print the failing verdict line; returns :data:`EXIT_FAIL`."""
    print(f"FAIL: {message}")
    return EXIT_FAIL


def gate_main(main: Callable[[], int]) -> None:
    """Run a gate's ``main`` and exit with its code.

    A stray exception becomes a ``FAIL`` verdict plus exit 1 rather
    than an unexplained traceback-only failure — CI logs always end
    with the verdict line the humans grep for.
    """
    try:
        code = main()
    except KeyboardInterrupt:
        raise
    except Exception as exc:  # noqa: BLE001 — the gate must verdict
        import traceback

        traceback.print_exc()
        sys.exit(fail(f"gate crashed: {type(exc).__name__}: {exc}"))
    sys.exit(code)
