#!/usr/bin/env python
"""CI gate for the invariant linter (docs/static-analysis.md).

Runs ``repro.lint`` over the whole tree — ``src``, ``tests``,
``scripts``, ``benchmarks``, ``examples`` — with the committed baseline
applied, and verdicts via the shared :mod:`_ci_util` protocol. Also the
pre-commit entry: when file arguments are passed (pre-commit passes the
changed files), only those are linted, so hooks stay fast.

Run from the repo root: ``python scripts/run_lint.py [files...]``.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from _ci_util import (
    EXIT_USAGE,
    ensure_repo_on_path,
    fail,
    gate_main,
    ok,
    repo_root,
)

ensure_repo_on_path()

from repro.errors import ConfigurationError  # noqa: E402
from repro.lint import Baseline, lint_paths  # noqa: E402
from repro.lint.baseline import DEFAULT_BASELINE_NAME  # noqa: E402

#: Directories linted when no explicit files are passed.
DEFAULT_TREES = ("src", "tests", "scripts", "benchmarks", "examples")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint the tree (or the given files); verdict per _ci_util."""
    args = list(sys.argv[1:] if argv is None else argv)
    root = repo_root()
    if args:
        paths: List[str] = args
    else:
        paths = [str(root / tree) for tree in DEFAULT_TREES
                 if (root / tree).exists()]
    try:
        result = lint_paths(paths, root=root)
        baseline = Baseline.load(root / DEFAULT_BASELINE_NAME)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return EXIT_USAGE
    fresh, baselined = baseline.split(result.violations)
    for violation in fresh:
        print(violation.format())
    if fresh:
        tally: dict = {}
        for violation in fresh:
            tally[violation.code] = tally.get(violation.code, 0) + 1
        summary = ", ".join(f"{c}={n}" for c, n in sorted(tally.items()))
        return fail(
            f"{len(fresh)} lint violation(s) in {result.files_scanned} "
            f"file(s) [{summary}]; fix them, add a justified "
            "'# repro: noqa[CODE]', or (non-RPR1xx only) re-baseline with "
            "'repro-cli lint --update-baseline'"
        )
    return ok(
        f"lint clean over {result.files_scanned} file(s)"
        + (f", {len(baselined)} baselined violation(s)" if baselined else "")
    )


if __name__ == "__main__":
    gate_main(main)
