#!/usr/bin/env python
"""CI gate for the invariant linter (docs/static-analysis.md).

Runs ``repro.lint`` over the whole tree — ``src``, ``tests``,
``scripts``, ``benchmarks``, ``examples`` — with the committed baseline
applied, and verdicts via the shared :mod:`_ci_util` protocol. Also the
pre-commit entry: when file arguments are passed (pre-commit passes the
changed files), only those are linted, so hooks stay fast.

``--flow`` adds the whole-program RPR6xx passes over the same parse;
``--callgraph-out FILE`` and ``--flow-report FILE`` write the CI
artefacts (versioned call-graph JSON, flow stats + findings JSON). Flow
analysis is whole-program by construction, so explicit file arguments
and ``--flow`` are mutually exclusive — pre-commit stays per-file fast.

Run from the repo root: ``python scripts/run_lint.py [files...]``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from _ci_util import (
    EXIT_USAGE,
    ensure_repo_on_path,
    fail,
    gate_main,
    ok,
    repo_root,
)

ensure_repo_on_path()

from repro.errors import ConfigurationError  # noqa: E402
from repro.lint import Baseline, lint_paths  # noqa: E402
from repro.lint.baseline import DEFAULT_BASELINE_NAME  # noqa: E402
from repro.lint.engine import load_modules  # noqa: E402

#: Directories linted when no explicit files are passed.
DEFAULT_TREES = ("src", "tests", "scripts", "benchmarks", "examples")


def _pop_flag(args: List[str], name: str) -> bool:
    if name in args:
        args.remove(name)
        return True
    return False


def _pop_option(args: List[str], name: str) -> Optional[str]:
    if name not in args:
        return None
    index = args.index(name)
    if index + 1 >= len(args):
        raise ConfigurationError(f"{name} requires a file argument")
    value = args[index + 1]
    del args[index:index + 2]
    return value


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint the tree (or the given files); verdict per _ci_util."""
    args = list(sys.argv[1:] if argv is None else argv)
    root = repo_root()
    try:
        flow = _pop_flag(args, "--flow")
        callgraph_out = _pop_option(args, "--callgraph-out")
        flow_report = _pop_option(args, "--flow-report")
        flow = flow or bool(callgraph_out or flow_report)
        if flow and args:
            raise ConfigurationError(
                "--flow analyses the whole program; it cannot be combined "
                "with explicit file arguments"
            )
        if args:
            paths: List[str] = args
        else:
            paths = [str(root / tree) for tree in DEFAULT_TREES
                     if (root / tree).exists()]
        modules = load_modules(paths, root=root)
        result = lint_paths(paths, root=root, modules=modules)
        baseline = Baseline.load(root / DEFAULT_BASELINE_NAME)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return EXIT_USAGE
    fresh, baselined = baseline.split(result.violations)
    flow_line = ""
    if flow:
        from repro.flow import Program, analyze, run_flow
        from repro.flow.export import callgraph_json

        program = Program(modules)
        analysis = analyze(program)
        flow_result = run_flow(program, analysis=analysis)
        # Flow findings never baseline: they are fresh by definition.
        fresh = sorted(fresh + flow_result.violations)
        stats = flow_result.stats
        flow_line = (
            f"flow: {stats['modules']} modules, "
            f"{stats['functions']} functions, "
            f"{stats['call_edges']} call edges, "
            f"{stats['unresolved_calls']} unresolved calls, "
            f"{stats['findings']} finding(s)"
        )
        print(flow_line)
        if callgraph_out:
            Path(callgraph_out).write_text(
                callgraph_json(analysis), encoding="utf-8"
            )
        if flow_report:
            report = {
                "stats": stats,
                "findings": [
                    {
                        "path": v.path,
                        "line": v.line,
                        "code": v.code,
                        "message": v.message,
                    }
                    for v in flow_result.violations
                ],
            }
            Path(flow_report).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
    for violation in fresh:
        print(violation.format())
    if fresh:
        tally: dict = {}
        for violation in fresh:
            tally[violation.code] = tally.get(violation.code, 0) + 1
        summary = ", ".join(f"{c}={n}" for c, n in sorted(tally.items()))
        return fail(
            f"{len(fresh)} lint violation(s) in {result.files_scanned} "
            f"file(s) [{summary}]; fix them, add a justified "
            "'# repro: noqa[CODE]', or (non-RPR1xx only) re-baseline with "
            "'repro-cli lint --update-baseline'"
        )
    return ok(
        f"lint clean over {result.files_scanned} file(s)"
        + (f", {len(baselined)} baselined violation(s)" if baselined else "")
        + (f"; {flow_line}" if flow_line else "")
    )


if __name__ == "__main__":
    gate_main(main)
