#!/usr/bin/env python
"""Export a supervision metrics snapshot as the CI chaos artifact.

Each chaos scenario in ``.github/workflows/ci.yml`` ends by running this
script: it drives a small supervised batch through the named failure
mode (a crashing worker, a heartbeat-silent hang, a memory hog, or a
poison spec tripping the circuit breaker), then dumps the telemetry
metrics registry — ``pool_watchdog_kills_total``,
``pool_backoff_seconds``, ``breaker_to_*_total``, and friends — as
pretty JSON for ``actions/upload-artifact``. The gate fails unless every
metric the scenario is supposed to light up actually appears in the
snapshot, so the artifact doubles as an end-to-end check that the
supervision layer is observable, not just correct.

Run from the repo root::

    python scripts/export_supervision_metrics.py --scenario hang \
        --out supervision-metrics.json
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Callable, Dict, Tuple

from _ci_util import ensure_repo_on_path, fail, gate_main, ok, repo_root

ensure_repo_on_path()
# Spawn-started workers import their job functions by qualified module
# name, so the repo root (for ``tests.jobs._workers``) must be on the
# path of the parent that pickles them.
if str(repo_root()) not in sys.path:
    sys.path.insert(0, str(repo_root()))

from repro.jobs import (  # noqa: E402
    JobFailure,
    Orchestrator,
    WorkerPool,
    make_run_spec,
)
from repro.jobs.spec import WorkloadSpec  # noqa: E402
from repro.perf.machine import core2duo  # noqa: E402
from repro.supervise.config import SupervisionConfig  # noqa: E402
from repro.telemetry.context import configure, deactivate  # noqa: E402
from repro.telemetry.exporters import metrics_json  # noqa: E402
from repro.telemetry.metrics import MetricsRegistry  # noqa: E402
from tests.jobs import _workers  # noqa: E402


def run_crash(tmp: str) -> None:
    """A worker that dies every attempt: retries, backoff, failure."""
    pool = WorkerPool(jobs=1, retries=2, backoff=0.01)
    [failure] = pool.run(_workers.always_crash, [0], keep_going=True)
    assert isinstance(failure, JobFailure) and failure.kind == "crash", failure


def run_hang(tmp: str) -> None:
    """A heartbeat-silent worker: watchdog kill, clean retry."""
    marker = Path(tmp) / "hang.marker"
    pool = WorkerPool(
        jobs=2, timeout=60.0, retries=1, backoff=0.01,
        hang_timeout=1.0, heartbeat_interval=0.1,
    )
    results = pool.run(
        _workers.hang_until_marker, [(str(marker), 11)], keep_going=True
    )
    assert results == [11], results


def run_memhog(tmp: str) -> None:
    """A worker ballooning past its RSS budget: killed, classified."""
    pool = WorkerPool(
        jobs=1, timeout=60.0, retries=0, backoff=0.01,
        hang_timeout=30.0, heartbeat_interval=0.1, max_rss_mb=150.0,
    )
    [failure] = pool.run(
        _workers.balloon_rss, [(300, 60.0, 0)], keep_going=True
    )
    assert isinstance(failure, JobFailure), failure
    assert failure.kind == "over_budget", failure


def _poison_executor(payload):
    """A deterministic poison spec: every execution raises."""
    raise RuntimeError("chaos: deterministic poison")


def run_breaker(tmp: str) -> None:
    """A poison spec tripping the breaker into the quarantine file."""
    supervision = SupervisionConfig(
        breaker_threshold=2,
        breaker_cooldown_waves=2,
        quarantine=str(Path(tmp) / "poison.jsonl"),
    )
    orchestrator = Orchestrator(
        jobs=1, keep_going=True, executor=_poison_executor,
        supervision=supervision,
    )
    spec = make_run_spec(
        core2duo(),
        WorkloadSpec(kind="spec", names=("mcf", "povray"),
                     instructions=100_000),
        mapping=[[0], [1]],
        seed=0,
    )
    # Two failing waves trip the circuit (and write the quarantine
    # entry); the third wave is blocked without occupying a worker.
    for _ in range(3):
        [result] = orchestrator.run_specs([spec])
    assert isinstance(result, JobFailure), result
    assert result.kind == "quarantined", result
    assert orchestrator.counters.poisoned >= 1, orchestrator.counters


#: scenario name -> (driver, metric names the snapshot must contain).
SCENARIOS: Dict[str, Tuple[Callable[[str], None], Tuple[str, ...]]] = {
    "crash": (run_crash, ("pool_backoff_seconds", "pool_waves_total")),
    "hang": (
        run_hang,
        ("pool_watchdog_kills_total", "pool_heartbeat_age_seconds"),
    ),
    "memhog": (run_memhog, ("pool_watchdog_kills_total",)),
    "breaker": (run_breaker, ("breaker_to_open_total",)),
}


def main() -> int:
    """Run the requested scenarios; write and gate on the snapshot."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario", choices=[*SCENARIOS, "all"], default="all",
        help="which failure mode to drive (default: all of them)",
    )
    parser.add_argument(
        "--out", default="supervision-metrics.json",
        help="where to write the metrics snapshot JSON",
    )
    args = parser.parse_args()
    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]

    registry = MetricsRegistry()
    configure(metrics=registry)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            for name in names:
                print(f"scenario {name}: driving the fault ...")
                SCENARIOS[name][0](tmp)
    finally:
        deactivate()

    snapshot = registry.snapshot()
    out = Path(args.out)
    out.write_text(metrics_json(snapshot) + "\n", encoding="ascii")
    print(f"wrote {len(snapshot)} metrics to {out}")

    missing = [
        metric
        for name in names
        for metric in SCENARIOS[name][1]
        if metric not in snapshot
    ]
    if missing:
        return fail(
            "supervision metrics absent from the snapshot: "
            + ", ".join(sorted(set(missing)))
        )
    return ok(
        f"scenarios {', '.join(names)} ran; every expected supervision "
        "metric is present in the snapshot"
    )


if __name__ == "__main__":
    gate_main(main)
