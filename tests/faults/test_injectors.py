"""Fault-injector unit behaviour on a live signature unit.

Each injector must (a) produce the hardware failure mode it names, (b)
be a pure function of its seed — same seed, same faults — and (c)
round-trip through its dict form so a fault plan can travel inside a
run spec.
"""

import numpy as np
import pytest

from repro.core.signature import (
    SignatureConfig,
    SignatureHealth,
    SignatureUnit,
    assess_signature,
)
from repro.errors import ConfigurationError
from repro.faults.injectors import (
    INJECTOR_KINDS,
    CorruptSampleInjector,
    DropSampleInjector,
    SaturateCountersInjector,
    StaleSignatureInjector,
    ZeroWordsInjector,
    build_injector,
)

CONFIG = SignatureConfig(num_cores=2, num_sets=16, ways=2)


def loaded_unit(injector=None):
    """A small unit with a few fills recorded on core 0."""
    unit = SignatureUnit(CONFIG)
    if injector is not None:
        unit.attach_injector(injector)
    blocks = np.arange(8, dtype=np.int64) * 67
    unit.record_events(0, blocks, None, np.empty(0, dtype=np.int64), None)
    return unit


def test_registry_rejects_unknown_kind():
    with pytest.raises(ConfigurationError, match="unknown injector kind"):
        build_injector({"kind": "meteor-strike"})


def test_every_kind_round_trips_through_dict_form():
    for kind in INJECTOR_KINDS:
        injector = build_injector({"kind": kind, "seed": 9})
        rebuilt = build_injector(injector.to_dict())
        assert rebuilt.to_dict() == injector.to_dict()
        assert rebuilt.kind == kind


def test_saturate_floods_every_sample_to_full_capacity():
    """Occupancy reads the full filter size on *every* switch, not just
    the first — the LF snapshot must not mask the flooded CF bits."""
    unit = loaded_unit(SaturateCountersInjector(seed=1))
    assert np.all(unit.counters == unit.counter_max)
    for _ in range(3):
        for core in range(CONFIG.num_cores):
            sample = unit.on_context_switch(core)
            assert sample.occupancy == unit.num_entries
            verdict = assess_signature(
                sample.occupancy, sample.symbiosis, capacity=unit.num_entries
            )
            assert verdict.status == SignatureHealth.SATURATED


def test_corrupt_sample_is_physically_impossible():
    unit = loaded_unit(CorruptSampleInjector(seed=2))
    sample = unit.on_context_switch(0)
    assert sample.occupancy < 0
    verdict = assess_signature(sample.occupancy, sample.symbiosis)
    assert verdict.status == SignatureHealth.CORRUPT  # even with no capacity


def test_corrupt_rate_is_seeded_and_reproducible():
    def corruption_pattern(seed):
        injector = CorruptSampleInjector(seed=seed, rate=0.5)
        unit = loaded_unit(injector)
        return [unit.on_context_switch(0).occupancy < 0 for _ in range(32)]

    first, second = corruption_pattern(7), corruption_pattern(7)
    assert first == second
    assert any(first) and not all(first)  # the coin actually flips
    assert corruption_pattern(8) != first


def test_drop_loses_every_sampling_window():
    unit = loaded_unit(DropSampleInjector(seed=3))
    assert unit.on_context_switch(0) is None


def test_stale_freezes_after_the_configured_switch():
    unit = loaded_unit(StaleSignatureInjector(seed=4, after_switches=2))
    assert unit.on_context_switch(0) is not None
    assert unit.on_context_switch(0) is not None
    for _ in range(3):
        assert unit.on_context_switch(0) is None


def test_zero_words_shrinks_the_footprint_deterministically():
    def zeroed_counters(seed):
        unit = loaded_unit(ZeroWordsInjector(seed=seed, fraction=0.5))
        return unit.counters.copy()

    baseline = loaded_unit().counters
    assert np.count_nonzero(zeroed_counters(5)) < np.count_nonzero(baseline)
    assert np.array_equal(zeroed_counters(5), zeroed_counters(5))


def test_injector_parameters_validated():
    with pytest.raises(ConfigurationError):
        CorruptSampleInjector(rate=1.5)
    with pytest.raises(ConfigurationError):
        DropSampleInjector(rate=-0.1)
    with pytest.raises(ConfigurationError):
        ZeroWordsInjector(fraction=0.0)
    with pytest.raises(ConfigurationError):
        StaleSignatureInjector(after_switches=-1)
