"""Tests for :mod:`repro.faults` — injectors, degradation, and chaos."""
