"""Chaos harness acceptance: faults change nothing but the wall clock.

The pinned claim: under a fixed chaos seed — worker kills, delays past
the pool timeout, corrupted cache files — a batch produces summaries
byte-identical to a fault-free run, and a journaled resume executes only
what had not finished.
"""

import pytest

from repro.faults.chaos import ChaosConfig, corrupt_cache_entries
from repro.jobs import Orchestrator, make_run_spec
from repro.jobs.keys import canonical_json
from repro.jobs.spec import WorkloadSpec
from repro.perf.machine import core2duo


def tiny_specs(count=2):
    """Cheap pinned-mapping specs (distinct by seed)."""
    return [
        make_run_spec(
            core2duo(),
            WorkloadSpec(
                kind="spec", names=("mcf", "povray"), instructions=100_000
            ),
            mapping=[[0], [1]],
            seed=seed,
        )
        for seed in range(count)
    ]


def summaries(outcomes):
    """Byte-comparable form of a batch's results."""
    return [canonical_json(outcome.to_dict()) for outcome in outcomes]


@pytest.fixture(scope="module")
def baseline():
    """The fault-free truth every chaos run must reproduce."""
    return summaries(Orchestrator(jobs=1).run_specs(tiny_specs()))


def test_chaos_config_validates_fractions(tmp_path):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ChaosConfig(seed=0, marker_dir=str(tmp_path), kill_fraction=1.5)
    with pytest.raises(ConfigurationError):
        ChaosConfig(seed=0, marker_dir=str(tmp_path), delay_seconds=-1.0)


def test_worker_kills_do_not_change_results(tmp_path, baseline):
    """Every job's first execution dies mid-run; retries must reproduce
    the fault-free summaries byte for byte."""
    chaos = ChaosConfig(seed=7, marker_dir=str(tmp_path), kill_fraction=1.0)
    orchestrator = Orchestrator(
        jobs=2, retries=2, backoff=0.01, executor=chaos.executor()
    )
    outcomes = orchestrator.run_specs(tiny_specs())
    assert summaries(outcomes) == baseline
    assert orchestrator.counters.retried > 0  # the kills actually struck
    assert list(tmp_path.glob("*.kill"))  # strike-once markers recorded


def test_delays_past_timeout_do_not_change_results(tmp_path, baseline):
    """A job delayed past its wall budget is retried and, on its clean
    second attempt, produces the fault-free result."""
    chaos = ChaosConfig(
        seed=11, marker_dir=str(tmp_path),
        delay_fraction=1.0, delay_seconds=30.0,
    )
    orchestrator = Orchestrator(
        jobs=2, timeout=3.0, retries=2, backoff=0.01,
        executor=chaos.executor(),
    )
    outcomes = orchestrator.run_specs(tiny_specs())
    assert summaries(outcomes) == baseline
    assert orchestrator.counters.timeouts > 0


def test_corrupted_cache_entries_are_quarantined_and_recomputed(
    tmp_path, baseline
):
    """Corrupting every cache file between runs must cost only recompute:
    same summaries, every bad entry quarantined, never a crash."""
    cache_dir = tmp_path / "cache"
    warm = Orchestrator(jobs=1, cache_dir=cache_dir)
    warm.run_specs(tiny_specs())

    corrupted = corrupt_cache_entries(cache_dir, seed=3, fraction=1.0)
    assert len(corrupted) == len(tiny_specs())

    rerun = Orchestrator(jobs=1, cache_dir=cache_dir)
    outcomes = rerun.run_specs(tiny_specs())
    assert summaries(outcomes) == baseline
    assert rerun.counters.executed == len(tiny_specs())  # all recomputed
    assert rerun.counters.quarantined == len(corrupted)
    assert rerun.cache.stats.quarantined == len(corrupted)
    # Evidence preserved, clean entries reinstalled.
    assert len(list(cache_dir.glob("*/*.corrupt"))) == len(corrupted)
    warm_again = Orchestrator(jobs=1, cache_dir=cache_dir)
    warm_again.run_specs(tiny_specs())
    assert warm_again.counters.executed == 0


def test_chaos_is_deterministic_per_seed(tmp_path):
    """Same seed, same strikes: the marker sets of two runs coincide."""
    def strike_names(run):
        marker_dir = tmp_path / f"run{run}"
        chaos = ChaosConfig(
            seed=5, marker_dir=str(marker_dir), kill_fraction=0.5
        )
        # Up to 3 of the 4 specs can be kill-typed, so a job can be
        # charged as an innocent bystander on up to 3 crash waves; the
        # retry budget must cover that worst case or the run aborts on
        # scheduling luck.  This test pins marker determinism, not the
        # retry budget.
        orchestrator = Orchestrator(
            jobs=2, retries=4, backoff=0.01, executor=chaos.executor()
        )
        orchestrator.run_specs(tiny_specs(4))
        return sorted(p.name for p in marker_dir.glob("*.kill"))

    first, second = strike_names(1), strike_names(2)
    assert first == second
    assert 0 < len(first) < 4  # the 50% coin split the batch


def test_journal_survives_chaos_and_resume_runs_nothing(tmp_path, baseline):
    """Kills + journal: the second invocation replays, executes zero."""
    journal = tmp_path / "sweep.journal"
    chaos = ChaosConfig(
        seed=7, marker_dir=str(tmp_path / "markers"), kill_fraction=1.0
    )
    stormy = Orchestrator(
        jobs=2, retries=2, backoff=0.01, executor=chaos.executor(),
        journal=journal,
    )
    outcomes = stormy.run_specs(tiny_specs())
    assert summaries(outcomes) == baseline

    resumed = Orchestrator(jobs=1, journal=journal)
    replayed = resumed.run_specs(tiny_specs())
    assert resumed.counters.executed == 0
    assert resumed.counters.journal_hits == len(tiny_specs())
    assert summaries(replayed) == baseline
