"""Graceful degradation: validation layer, monitor fallback, sweep reports.

The acceptance pin for the robustness work: a sweep in which one mix's
signature is saturated or corrupt must *complete*, in degraded mode —
the affected mix falls back to the default schedule, the failure report
and degradation events name it, and the unaffected mixes are unchanged.
"""

import math

import numpy as np
import pytest

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.alloc.monitor import UserLevelMonitor, fallback_mapping
from repro.core.signature import HealthReport, SignatureHealth, assess_signature
from repro.jobs import Orchestrator
from repro.perf.experiment import mix_sweep, two_phase
from repro.perf.machine import core2duo
from repro.sched.syscall import TaskView

FAST = dict(instructions=150_000, phase1_min_wall=10_000_000.0)
SATURATE = {"kind": "saturate", "seed": 1}


# ---------------------------------------------------------------------------
# assess_signature (the validation layer)
# ---------------------------------------------------------------------------
def test_healthy_reading_passes():
    report = assess_signature(12.0, [0.0, 3.0], capacity=64)
    assert report == HealthReport(SignatureHealth.OK)
    assert report.ok


@pytest.mark.parametrize(
    "occupancy, symbiosis",
    [
        (-1.0, None),
        (math.nan, None),
        (math.inf, None),
        (5.0, [-2.0, 1.0]),
        (5.0, [math.nan, 1.0]),
    ],
)
def test_impossible_readings_are_corrupt(occupancy, symbiosis):
    assert (
        assess_signature(occupancy, symbiosis).status == SignatureHealth.CORRUPT
    )


def test_beyond_capacity_is_corrupt_and_full_is_saturated():
    assert assess_signature(65.0, capacity=64).status == SignatureHealth.CORRUPT
    assert assess_signature(64.0, capacity=64).status == SignatureHealth.SATURATED
    assert assess_signature(63.0, capacity=64).ok
    # Lower thresholds catch "effectively full" filters.
    nearly = assess_signature(58.0, capacity=64, saturation_fraction=0.9)
    assert nearly.status == SignatureHealth.SATURATED


def test_unrefreshed_sample_counter_is_stale():
    stale = assess_signature(5.0, samples_seen=3, last_samples_seen=3)
    assert stale.status == SignatureHealth.STALE
    fresh = assess_signature(5.0, samples_seen=4, last_samples_seen=3)
    assert fresh.ok


# ---------------------------------------------------------------------------
# UserLevelMonitor fallback
# ---------------------------------------------------------------------------
class FakeSyscall:
    """Canned task views plus a record of applied mappings."""

    def __init__(self, tasks, num_cores=2):
        self._tasks = tasks
        self.num_cores = num_cores
        self.applied = []

    def query_tasks(self):
        """Return the canned views (the monitor's read path)."""
        return list(self._tasks)

    def apply_mapping(self, mapping):
        """Record the pushed mapping (the monitor's write path)."""
        self.applied.append(mapping)


def view(tid, occupancy, samples_seen=1):
    """One healthy-shaped task view with the given reading."""
    return TaskView(
        tid=tid, name=f"t{tid}", process_id=tid, last_core=0,
        occupancy=occupancy, symbiosis=np.zeros(2), valid=True,
        samples_seen=samples_seen,
    )


def test_monitor_degrades_to_fallback_on_saturated_reading():
    monitor = UserLevelMonitor(
        WeightedInterferenceGraphPolicy(seed=0), signature_capacity=64
    )
    syscall = FakeSyscall([view(0, 64.0), view(1, 10.0)])
    assert monitor.invoke(syscall) is None
    assert monitor.decisions == []
    assert len(monitor.degradations) == 1
    event = monitor.degradations[0]
    assert event["action"] == "fallback-default-mapping"
    assert event["tasks"]["t0"]["status"] == SignatureHealth.SATURATED
    assert "t1" not in event["tasks"]  # only the unhealthy reading is named
    assert syscall.applied == [fallback_mapping(syscall.query_tasks(), 2)]


def test_monitor_detects_staleness_across_invocations():
    monitor = UserLevelMonitor(
        WeightedInterferenceGraphPolicy(seed=0), stale_after=2
    )
    frozen = [view(0, 5.0, samples_seen=3), view(1, 6.0, samples_seen=3)]
    syscall = FakeSyscall(frozen)
    monitor.invoke(syscall)  # establishes the baseline counters
    monitor.invoke(syscall)  # 1st unrefreshed invocation
    assert not monitor.degradations
    monitor.invoke(syscall)  # 2nd: crosses stale_after
    assert monitor.degradations
    statuses = {
        v["status"] for v in monitor.degradations[0]["tasks"].values()
    }
    assert statuses == {SignatureHealth.STALE}


def test_monitor_healthy_path_still_decides():
    monitor = UserLevelMonitor(
        WeightedInterferenceGraphPolicy(seed=0), signature_capacity=64
    )
    syscall = FakeSyscall([view(0, 30.0), view(1, 10.0)])
    assert monitor.invoke(syscall) is not None
    assert len(monitor.decisions) == 1
    assert monitor.degradations == []


# ---------------------------------------------------------------------------
# Confidence verdicts (assess_signature) and the monitor's suspect path
# ---------------------------------------------------------------------------
def test_confident_reading_is_ok_and_carries_the_grading():
    report = assess_signature(
        8.0, capacity=64, confident_threshold=0.5, unusable_threshold=0.1
    )
    assert report.ok and report.usable
    assert report.confidence is not None
    assert report.confidence.score == pytest.approx(1.0 - 8.0 / 64.0)


def test_low_confidence_reading_is_suspect_but_usable():
    report = assess_signature(
        48.0, capacity=64, confident_threshold=0.5, unusable_threshold=0.1
    )
    assert report.status == SignatureHealth.SUSPECT
    assert not report.ok and report.usable
    assert "confident threshold" in report.reason


def test_collapsed_confidence_is_unusable():
    report = assess_signature(
        60.0, capacity=64, confident_threshold=0.5, unusable_threshold=0.1
    )
    assert report.status == SignatureHealth.UNUSABLE
    assert not report.usable
    assert report.confidence.alias_pressure > 0.9


def test_inverted_confidence_thresholds_are_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        assess_signature(
            5.0, capacity=64, confident_threshold=0.1, unusable_threshold=0.5
        )


def test_threshold_free_reports_keep_their_pre_confidence_shape():
    assert assess_signature(8.0, capacity=64).confidence is None


def test_monitor_proceeds_on_suspect_reading_with_event():
    monitor = UserLevelMonitor(
        WeightedInterferenceGraphPolicy(seed=0),
        signature_capacity=64,
        confident_threshold=0.5,
        unusable_threshold=0.1,
    )
    syscall = FakeSyscall([view(0, 48.0), view(1, 10.0)])
    assert monitor.invoke(syscall) is not None  # usable: still decides
    assert len(monitor.decisions) == 1
    assert len(monitor.degradations) == 1
    event = monitor.degradations[0]
    assert event["action"] == "proceed-suspect-signature"
    assert event["tasks"]["t0"]["status"] == SignatureHealth.SUSPECT


def test_monitor_falls_back_on_unusable_reading():
    monitor = UserLevelMonitor(
        WeightedInterferenceGraphPolicy(seed=0),
        signature_capacity=64,
        confident_threshold=0.5,
        unusable_threshold=0.1,
    )
    syscall = FakeSyscall([view(0, 60.0), view(1, 10.0)])
    assert monitor.invoke(syscall) is None
    assert monitor.decisions == []
    event = monitor.degradations[0]
    assert event["action"] == "fallback-default-mapping"
    assert event["tasks"]["t0"]["status"] == SignatureHealth.UNUSABLE


def test_monitor_recovers_once_readings_turn_healthy():
    """Degradation is per-invocation state: when the fault stops, the
    very next healthy reading decides normally again."""
    monitor = UserLevelMonitor(
        WeightedInterferenceGraphPolicy(seed=0),
        signature_capacity=64,
        confident_threshold=0.5,
        unusable_threshold=0.1,
    )
    sick = FakeSyscall([view(0, 60.0, samples_seen=1), view(1, 10.0, samples_seen=1)])
    assert monitor.invoke(sick) is None
    healthy = FakeSyscall(
        [view(0, 12.0, samples_seen=2), view(1, 10.0, samples_seen=2)]
    )
    assert monitor.invoke(healthy) is not None
    assert len(monitor.decisions) == 1
    # The earlier fallback stays on the books; no new event was added.
    assert len(monitor.degradations) == 1
    assert monitor.majority_mapping() is not None


# ---------------------------------------------------------------------------
# End-to-end degradation (serial and orchestrated sweeps)
# ---------------------------------------------------------------------------
def test_two_phase_with_saturated_signature_degrades_to_default():
    """A saturated signature yields the safe default schedule, never a
    garbage one: zero decisions, degradation events on the result."""
    result = two_phase(
        core2duo(), ["mcf", "povray"], WeightedInterferenceGraphPolicy(seed=3),
        seed=3, faults=SATURATE, **FAST,
    )
    assert len(result.decisions) == 0
    assert len(result.degradations) > 0
    assert all(
        e["action"] == "fallback-default-mapping" for e in result.degradations
    )
    # The chosen schedule is the round-robin default (one task per core).
    assert sorted(len(g) for g in result.chosen_mapping.groups) == [1, 1]


def test_degraded_sweep_completes_and_names_the_affected_mix():
    """One faulted mix degrades; the clean mix's numbers are unchanged."""
    mixes = [["mcf", "povray"], ["bzip2", "milc"]]
    faults = {("mcf", "povray"): SATURATE}

    def sweep(**kwargs):
        return mix_sweep(
            core2duo(), mixes, WeightedInterferenceGraphPolicy(seed=3),
            seed=3, orchestrator=Orchestrator(jobs=1), **FAST, **kwargs,
        )

    faulted = sweep(keep_going=True, faults=faults)
    clean = sweep()

    assert len(faulted.mix_results) == len(mixes)  # the sweep completed
    assert [d.mix for d in faulted.failures.degradations] == [("mcf", "povray")]
    assert faulted.failures.failures == []  # degraded, not failed
    assert "degraded" in faulted.failures.summary()

    degraded = faulted.mix_results[0]
    assert degraded.names == ("mcf", "povray")
    assert degraded.decisions == () and degraded.degradations

    untouched = faulted.mix_results[1]
    pristine = clean.mix_results[1]
    assert untouched.degradations == ()
    assert untouched.chosen_mapping == pristine.chosen_mapping
    assert untouched.mapping_times == pristine.mapping_times


def test_fault_free_runs_are_byte_identical_with_faults_wired():
    """The faults=None default must not perturb healthy results at all."""
    kwargs = dict(seed=3, **FAST)
    plain = two_phase(
        core2duo(), ["mcf", "povray"],
        WeightedInterferenceGraphPolicy(seed=3),
        orchestrator=Orchestrator(jobs=1), **kwargs,
    )
    explicit = two_phase(
        core2duo(), ["mcf", "povray"],
        WeightedInterferenceGraphPolicy(seed=3),
        orchestrator=Orchestrator(jobs=1), faults=None, **kwargs,
    )
    assert plain.degradations == () and explicit.degradations == ()
    assert plain.mapping_times == explicit.mapping_times
    assert plain.decisions == explicit.decisions
