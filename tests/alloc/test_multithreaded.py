"""Tests for the two-phase multithreaded allocation (Section 3.3.4)."""

import numpy as np
import pytest

from repro.alloc.multithreaded import PIN_WEIGHT, TwoPhasePolicy
from repro.errors import AllocationError
from repro.sched.syscall import TaskView


def view(tid, name, occupancy, symbiosis, last_core=0, process_id=0):
    return TaskView(
        tid=tid,
        name=name,
        process_id=process_id,
        last_core=last_core,
        occupancy=float(occupancy),
        symbiosis=np.asarray(symbiosis, dtype=np.float64),
        valid=True,
    )


def one_process_four_threads(occ=(100, 90, 10, 5)):
    """One 4-thread process, alternating cores so edges exist."""
    return [
        view(i, f"app.t{i}", occ[i], [1000, 1000], last_core=i % 2, process_id=7)
        for i in range(4)
    ]


class TestPhase1ThreadGroups:
    def test_threads_grouped_by_weight(self):
        policy = TwoPhasePolicy()
        groups = policy.thread_groups(one_process_four_threads(), 2)
        # Heaviest two threads (0, 1) together; light two (2, 3) together.
        assert sorted(map(sorted, groups)) == [[0, 1], [2, 3]]

    def test_single_threaded_processes_are_singletons(self):
        views = [
            view(0, "a", 100, [1, 1], process_id=1),
            view(1, "b", 50, [1, 1], process_id=2),
        ]
        groups = TwoPhasePolicy().thread_groups(views, 2)
        assert sorted(map(sorted, groups)) == [[0], [1]]

    def test_mixed_processes(self):
        views = one_process_four_threads() + [
            view(10, "solo", 40, [1, 1], process_id=9)
        ]
        groups = TwoPhasePolicy().thread_groups(views, 2)
        assert [10] in groups

    def test_invalid_views_rejected(self):
        views = one_process_four_threads()
        object.__setattr__(views[0], "valid", False)
        with pytest.raises(AllocationError):
            TwoPhasePolicy().thread_groups(views, 2)


class TestPhase2Allocation:
    def test_same_group_threads_stay_together(self):
        views = one_process_four_threads()
        mapping = TwoPhasePolicy().allocate(views, 2)
        # Phase 1 pairs (0,1) and (2,3); phase 2 must keep each pair intact.
        assert mapping.core_of(0) == mapping.core_of(1)
        assert mapping.core_of(2) == mapping.core_of(3)
        assert mapping.core_of(0) != mapping.core_of(2)

    def test_two_processes_interleave(self):
        # Two 2-thread processes; threads of each process in different
        # phase-1 groups get zero edges, so MIN-CUT is free to split them.
        views = [
            view(0, "a.t0", 100, [500, 40000], last_core=0, process_id=1),
            view(1, "a.t1", 90, [500, 40000], last_core=1, process_id=1),
            view(2, "b.t0", 100, [40000, 500], last_core=0, process_id=2),
            view(3, "b.t1", 90, [40000, 500], last_core=1, process_id=2),
        ]
        mapping = TwoPhasePolicy().allocate(views, 2)
        assert mapping.task_ids == {0, 1, 2, 3}
        sizes = sorted(len(g) for g in mapping.groups)
        assert sizes == [2, 2]

    def test_pin_weight_dominates(self):
        # Even with huge cross-process interference, phase-1 groups hold.
        views = one_process_four_threads(occ=(1000, 900, 800, 700))
        mapping = TwoPhasePolicy().allocate(views, 2)
        assert mapping.core_of(0) == mapping.core_of(1)

    def test_pin_weight_constant(self):
        assert PIN_WEIGHT >= 1e6

    def test_name(self):
        assert TwoPhasePolicy().name == "two_phase_multithreaded"
