"""Tests for the user-level monitor (Section 3.2 / 4.1 majority vote)."""

import numpy as np
import pytest

from repro.alloc.monitor import UserLevelMonitor
from repro.alloc.weight_sort import WeightSortPolicy
from repro.core.signature import SignatureConfig, SignatureUnit
from repro.errors import AllocationError
from repro.sched.os_model import OSScheduler, SchedulerConfig
from repro.sched.process import SimTask
from repro.sched.syscall import SyscallInterface
from repro.workloads.patterns import StridedGenerator


def make_env(cores=2, tasks=4):
    sig = SignatureUnit(SignatureConfig(num_cores=cores, num_sets=16, ways=2))
    sched = OSScheduler(SchedulerConfig(num_cores=cores), signature_unit=sig)
    task_objs = []
    for i in range(tasks):
        t = SimTask(
            name=f"t{i}",
            generator=StridedGenerator(40, 1, seed=i),
            total_accesses=1000,
            accesses_per_kinstr=10.0,
        )
        sched.add_task(t, i % cores)
        task_objs.append(t)
    return sched, sig, SyscallInterface(sched), task_objs


def warm_contexts(sched, sig, task_objs, cores=2):
    """Give every task one signature sample."""
    rng = np.random.default_rng(0)
    for _ in range(len(task_objs)):
        for core in range(cores):
            sig.record_fill_batch(core, rng.integers(0, 1 << 20, 10))
            sched.context_switch(core)


class TestMonitor:
    def test_skips_until_contexts_valid(self):
        sched, sig, syscall, tasks = make_env()
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0)
        assert mon.invoke(syscall) is None
        assert mon.skipped_invocations == 1
        assert mon.decisions == []

    def test_decides_once_valid(self):
        sched, sig, syscall, tasks = make_env()
        warm_contexts(sched, sig, tasks)
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0)
        mapping = mon.invoke(syscall)
        assert mapping is not None
        assert mon.decisions == [mapping]

    def test_apply_pins_tasks(self):
        sched, sig, syscall, tasks = make_env()
        warm_contexts(sched, sig, tasks)
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0, apply=True)
        mapping = mon.invoke(syscall)
        # After the next switches, placement matches the decision.
        for core in range(2):
            sched.context_switch(core)
        placement = syscall.current_placement()
        for tid in mapping.task_ids:
            assert placement[tid] == mapping.core_of(tid)

    def test_no_apply_leaves_placement(self):
        sched, sig, syscall, tasks = make_env()
        warm_contexts(sched, sig, tasks)
        before = syscall.current_placement()
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0, apply=False)
        mon.invoke(syscall)
        assert syscall.current_placement() == before
        assert sched.total_migrations == 0

    def test_majority_mapping(self):
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0)
        from repro.sched.affinity import canonical_mapping

        a = canonical_mapping([[1, 2], [3, 4]])
        b = canonical_mapping([[1, 3], [2, 4]])
        mon.decisions.extend([a, b, a])
        assert mon.majority_mapping() == a

    def test_majority_empty(self):
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0)
        assert mon.majority_mapping() is None

    def test_reset(self):
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0)
        mon.skipped_invocations = 3
        from repro.sched.affinity import canonical_mapping

        mon.decisions.append(canonical_mapping([[1], [2]]))
        mon.reset()
        assert mon.decisions == []
        assert mon.skipped_invocations == 0

    def test_invalid_interval(self):
        with pytest.raises(AllocationError):
            UserLevelMonitor(WeightSortPolicy(), interval_cycles=0.0)


class TestMonitorMemo:
    """Signature-digest memoization (skip allocate on unchanged input)."""

    def test_memo_hit_on_unchanged_snapshot(self):
        sched, sig, syscall, tasks = make_env()
        warm_contexts(sched, sig, tasks)
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0)
        first = mon.invoke(syscall)
        second = mon.invoke(syscall)
        assert second == first
        assert mon.memo_hits == 1
        # Hits still land in the decision log for the majority vote.
        assert mon.decisions == [first, second]

    def test_memo_miss_after_snapshot_changes(self):
        sched, sig, syscall, tasks = make_env()
        warm_contexts(sched, sig, tasks)
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0)
        mon.invoke(syscall)
        # Advance the simulator: new fills + a switch change the digest.
        rng = np.random.default_rng(7)
        sig.record_fill_batch(0, rng.integers(0, 1 << 20, 10))
        sched.context_switch(0)
        mon.invoke(syscall)
        assert mon.memo_hits == 0

    def test_memoize_off_switch(self):
        sched, sig, syscall, tasks = make_env()
        warm_contexts(sched, sig, tasks)
        mon = UserLevelMonitor(
            WeightSortPolicy(), interval_cycles=100.0, memoize=False
        )
        first = mon.invoke(syscall)
        second = mon.invoke(syscall)
        assert second == first
        assert mon.memo_hits == 0

    def test_reset_clears_memo(self):
        sched, sig, syscall, tasks = make_env()
        warm_contexts(sched, sig, tasks)
        mon = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100.0)
        mon.invoke(syscall)
        mon.reset()
        assert mon.memo_hits == 0
        mon.invoke(syscall)
        # First invocation after reset recomputes from scratch.
        assert mon.memo_hits == 0
