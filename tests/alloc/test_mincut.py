"""Tests for the balanced MIN-CUT solver suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.mincut import (
    MINCUT_METHODS,
    bisect_min_cut,
    cut_weight,
    exhaustive_bisection,
    intra_weight,
    kernighan_lin,
    partition_min_cut,
    spectral_rounding,
)
from repro.errors import AllocationError


def two_cliques(n_half=4, intra=10.0, inter=0.1):
    """Two dense cliques weakly connected: the obvious optimal bisection."""
    n = 2 * n_half
    w = np.full((n, n), inter)
    w[:n_half, :n_half] = intra
    w[n_half:, n_half:] = intra
    np.fill_diagonal(w, 0.0)
    return w


class TestCutWeight:
    def test_basic(self):
        w = np.array([[0, 1, 2], [1, 0, 4], [2, 4, 0]], dtype=float)
        assert cut_weight(w, [[0], [1, 2]]) == pytest.approx(3.0)
        assert intra_weight(w, [[0], [1, 2]]) == pytest.approx(4.0)

    def test_single_group(self):
        w = two_cliques(2)
        assert cut_weight(w, [[0, 1, 2, 3]]) == 0.0

    def test_node_in_two_groups_rejected(self):
        w = two_cliques(2)
        with pytest.raises(AllocationError):
            cut_weight(w, [[0, 1], [1, 2, 3]])

    def test_uncovered_node_rejected(self):
        w = two_cliques(2)
        with pytest.raises(AllocationError):
            cut_weight(w, [[0, 1], [2]])

    def test_asymmetric_rejected(self):
        w = np.array([[0, 1], [2, 0]], dtype=float)
        with pytest.raises(AllocationError):
            cut_weight(w, [[0], [1]])

    def test_negative_weights_rejected(self):
        w = np.array([[0, -1], [-1, 0]], dtype=float)
        with pytest.raises(AllocationError):
            cut_weight(w, [[0], [1]])


class TestExhaustive:
    def test_finds_clique_split(self):
        w = two_cliques(3)
        a, b = exhaustive_bisection(w)
        assert sorted(a) in ([0, 1, 2], [3, 4, 5])

    def test_uneven_sizes(self):
        w = two_cliques(2)
        a, b = exhaustive_bisection(w, size_a=3)
        assert len(a) == 3 and len(b) == 1

    def test_invalid_size(self):
        with pytest.raises(AllocationError):
            exhaustive_bisection(two_cliques(2), size_a=9)

    def test_two_nodes(self):
        w = np.array([[0, 5], [5, 0]], dtype=float)
        a, b = exhaustive_bisection(w)
        assert len(a) == 1 and len(b) == 1


@pytest.mark.parametrize("solver", [kernighan_lin, spectral_rounding])
class TestHeuristics:
    def test_clique_split_found(self, solver):
        w = two_cliques(4)
        groups = solver(w, seed=1)
        assert sorted(groups[0]) in ([0, 1, 2, 3], [4, 5, 6, 7])

    def test_partition_valid(self, solver):
        rng = np.random.default_rng(0)
        w = rng.random((10, 10))
        w = (w + w.T) / 2
        np.fill_diagonal(w, 0)
        a, b = solver(w, seed=2)
        assert sorted(a + b) == list(range(10))
        assert len(a) == 5

    def test_deterministic(self, solver):
        w = two_cliques(4)
        assert solver(w, seed=7) == solver(w, seed=7)

    def test_close_to_optimal_on_random_graphs(self, solver):
        # The paper only needs "a certain percentage of the optimal".
        rng = np.random.default_rng(3)
        for trial in range(5):
            w = rng.random((10, 10))
            w = (w + w.T) / 2
            np.fill_diagonal(w, 0)
            opt = cut_weight(w, exhaustive_bisection(w))
            heur = cut_weight(w, solver(w, seed=trial))
            assert heur <= 1.15 * opt + 1e-9


class TestDispatch:
    def test_auto_small_is_optimal(self):
        w = two_cliques(3)
        groups = bisect_min_cut(w, method="auto")
        assert cut_weight(w, groups) == cut_weight(w, exhaustive_bisection(w))

    @pytest.mark.parametrize("method", ["exhaustive", "kl", "spectral"])
    def test_methods_accepted(self, method):
        w = two_cliques(2)
        a, b = bisect_min_cut(w, method=method, seed=1)
        assert sorted(a + b) == [0, 1, 2, 3]

    def test_unknown_method(self):
        with pytest.raises(AllocationError):
            bisect_min_cut(two_cliques(2), method="ilp")

    def test_methods_tuple(self):
        assert set(MINCUT_METHODS) == {"auto", "exhaustive", "kl", "spectral"}


class TestPartition:
    def test_two_groups_is_bisection(self):
        w = two_cliques(3)
        groups = partition_min_cut(w, 2)
        assert len(groups) == 2
        assert sorted(groups[0]) in ([0, 1, 2], [3, 4, 5])

    def test_four_groups_hierarchical(self):
        # Four cliques of 2, near-zero inter-clique edges.
        w = np.full((8, 8), 0.01)
        for i in range(0, 8, 2):
            w[i, i + 1] = w[i + 1, i] = 10.0
        np.fill_diagonal(w, 0)
        groups = partition_min_cut(w, 4)
        assert sorted(map(sorted, groups)) == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_partition(self):
        w = two_cliques(3)  # 6 nodes
        groups = partition_min_cut(w, 4)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 1, 2, 2]

    def test_single_group(self):
        w = two_cliques(2)
        groups = partition_min_cut(w, 1)
        assert groups == [[0, 1, 2, 3]]

    @given(st.integers(min_value=2, max_value=9), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_partition_always_valid(self, n, k):
        rng = np.random.default_rng(n * 10 + k)
        w = rng.random((n, n))
        w = (w + w.T) / 2
        np.fill_diagonal(w, 0)
        groups = partition_min_cut(w, k)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(n))
        sizes = [len(g) for g in groups if g]
        assert max(sizes) - min(sizes) <= 1


class TestProperties:
    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_cut_plus_intra_is_total(self, n):
        rng = np.random.default_rng(n)
        w = rng.random((n, n))
        w = (w + w.T) / 2
        np.fill_diagonal(w, 0)
        groups = partition_min_cut(w, 2)
        total = float(np.triu(w, 1).sum())
        assert cut_weight(w, groups) + intra_weight(w, groups) == pytest.approx(total)
