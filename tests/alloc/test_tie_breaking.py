"""Tests for randomised tie-breaking in the MIN-CUT solvers.

On evenly-split placement snapshots the paper's edge metric produces
exactly tied cross pairings (see repro.alloc.graph); the exhaustive solver
must then sample uniformly among the tied optima rather than favour an
enumeration-order artifact — otherwise the phase-1 majority vote is biased.
"""

import numpy as np

from repro.alloc.mincut import exhaustive_bisection
from repro.alloc.weighted import WeightedInterferenceGraphPolicy
from repro.sched.syscall import TaskView


def separable_tie_matrix():
    """A 4-node matrix with e(i,j) = f(i) + g(j) across the bipartition."""
    f = {0: 1.0, 1: 2.0}
    g = {2: 3.0, 3: 5.0}
    w = np.zeros((4, 4))
    for i in f:
        for j in g:
            w[i, j] = w[j, i] = f[i] + g[j]
    return w


class TestTieRandomisation:
    def test_ties_exist(self):
        w = separable_tie_matrix()
        cuts = set()
        for group_a in ([0, 1], [0, 2], [0, 3]):
            in_a = np.zeros(4, dtype=bool)
            in_a[group_a] = True
            cuts.add(round(float(w[in_a][:, ~in_a].sum()), 9))
        # The two cross pairings tie; the 'keep current' pairing is worse.
        assert len(cuts) == 2

    def test_deterministic_without_seed(self):
        w = separable_tie_matrix()
        results = {tuple(exhaustive_bisection(w)[0]) for _ in range(10)}
        assert len(results) == 1

    def test_seed_samples_among_ties(self):
        w = separable_tie_matrix()
        seen = {
            tuple(exhaustive_bisection(w, seed=s)[0]) for s in range(40)
        }
        assert len(seen) >= 2  # both tied optima appear

    def test_seeded_choice_is_optimal(self):
        w = separable_tie_matrix()
        # The strictly worse pairing {0,1}|{2,3} must never be chosen.
        for s in range(20):
            a, _ = exhaustive_bisection(w, seed=s)
            assert sorted(a) != [0, 1]

    def test_same_seed_same_choice(self):
        w = separable_tie_matrix()
        assert exhaustive_bisection(w, seed=7) == exhaustive_bisection(w, seed=7)


class TestPolicyInvocationVariation:
    def _views(self):
        return [
            TaskView(0, "a", 0, 0, 10.0, np.array([100.0, 50.0]), True),
            TaskView(1, "b", 1, 0, 10.0, np.array([100.0, 50.0]), True),
            TaskView(2, "c", 2, 1, 10.0, np.array([50.0, 100.0]), True),
            TaskView(3, "d", 3, 1, 10.0, np.array([50.0, 100.0]), True),
        ]

    def test_repeated_invocations_vary_on_ties(self):
        # Fully symmetric snapshot: both cross pairings tie; successive
        # invocations must not always return the same one.
        policy = WeightedInterferenceGraphPolicy(seed=0)
        seen = {policy.allocate(self._views(), 2) for _ in range(30)}
        assert len(seen) >= 2

    def test_distinct_policy_seeds_reproducible(self):
        a = WeightedInterferenceGraphPolicy(seed=1)
        b = WeightedInterferenceGraphPolicy(seed=1)
        seq_a = [a.allocate(self._views(), 2) for _ in range(5)]
        seq_b = [b.allocate(self._views(), 2) for _ in range(5)]
        assert seq_a == seq_b
