"""Tests for the three allocation policies and the interference graph."""

import numpy as np
import pytest

from repro.alloc.base import group_sizes
from repro.alloc.graph import interference_matrix, to_networkx
from repro.alloc.interference import InterferenceGraphPolicy
from repro.alloc.weight_sort import WeightSortPolicy
from repro.alloc.weighted import WeightedInterferenceGraphPolicy
from repro.errors import AllocationError
from repro.sched.syscall import TaskView


def view(tid, name, occupancy, symbiosis, last_core=0, process_id=None, valid=True):
    return TaskView(
        tid=tid,
        name=name,
        process_id=process_id if process_id is not None else tid,
        last_core=last_core,
        occupancy=float(occupancy),
        symbiosis=np.asarray(symbiosis, dtype=np.float64),
        valid=valid,
    )


class TestGroupSizes:
    def test_even(self):
        assert group_sizes(4, 2) == [2, 2]

    def test_uneven(self):
        assert group_sizes(7, 3) == [3, 2, 2]

    def test_fewer_tasks_than_cores(self):
        assert group_sizes(2, 4) == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(AllocationError):
            group_sizes(3, 0)


class TestWeightSort:
    def test_heavy_tasks_grouped(self):
        # Section 3.3.1: heavy processes herded onto the same core.
        views = [
            view(0, "heavy1", 1000, [1, 1]),
            view(1, "light1", 10, [1, 1]),
            view(2, "heavy2", 900, [1, 1]),
            view(3, "light2", 5, [1, 1]),
        ]
        mapping = WeightSortPolicy().allocate(views, 2)
        assert mapping.core_of(0) == mapping.core_of(2)
        assert mapping.core_of(1) == mapping.core_of(3)

    def test_deterministic_tie_break(self):
        views = [view(i, f"t{i}", 100, [1, 1]) for i in range(4)]
        a = WeightSortPolicy().allocate(views, 2)
        b = WeightSortPolicy().allocate(views, 2)
        assert a == b

    def test_fewer_tasks_than_cores_gives_affinity(self):
        # Paper: with fewer processes than cores the algorithms degenerate
        # to cache-affinity scheduling (one task per core).
        views = [view(0, "a", 50, [1, 1]), view(1, "b", 40, [1, 1])]
        mapping = WeightSortPolicy().allocate(views, 4)
        assert mapping.core_of(0) != mapping.core_of(1)

    def test_invalid_views_rejected(self):
        views = [view(0, "a", 50, [1, 1], valid=False)]
        with pytest.raises(AllocationError):
            WeightSortPolicy().allocate(views, 2)

    def test_empty_rejected(self):
        with pytest.raises(AllocationError):
            WeightSortPolicy().allocate([], 2)


class TestInterferenceMatrix:
    def test_cross_core_edges_only(self):
        views = [
            view(0, "a", 10, [100, 200], last_core=0),
            view(1, "b", 10, [100, 200], last_core=0),
            view(2, "c", 10, [300, 400], last_core=1),
        ]
        tids, w = interference_matrix(views, weighted=False)
        assert w[0, 1] == 0.0  # same core
        assert w[0, 2] > 0.0
        assert w[1, 2] > 0.0

    def test_unweighted_edge_value(self):
        # w(P,Q) = 1/sym_P[core(Q)] + 1/sym_Q[core(P)]
        views = [
            view(0, "a", 10, [100, 4], last_core=0),
            view(1, "b", 10, [2, 100], last_core=1),
        ]
        _, w = interference_matrix(views, weighted=False)
        assert w[0, 1] == pytest.approx(1 / 4 + 1 / 2)

    def test_weighted_edge_value(self):
        # w(P,Q) = W_P/sym_P[core(Q)] + W_Q/sym_Q[core(P)] (Sec 3.3.3)
        views = [
            view(0, "a", 8, [100, 4], last_core=0),
            view(1, "b", 6, [2, 100], last_core=1),
        ]
        _, w = interference_matrix(views, weighted=True)
        assert w[0, 1] == pytest.approx(8 / 4 + 6 / 2)

    def test_symmetric(self):
        views = [
            view(0, "a", 8, [10, 4], last_core=0),
            view(1, "b", 6, [2, 30], last_core=1),
            view(2, "c", 5, [7, 9], last_core=0),
        ]
        _, w = interference_matrix(views, weighted=True)
        assert np.allclose(w, w.T)

    def test_duplicate_tids_rejected(self):
        views = [view(0, "a", 1, [1, 1]), view(0, "b", 1, [1, 1])]
        with pytest.raises(AllocationError):
            interference_matrix(views, weighted=False)

    def test_to_networkx(self):
        views = [
            view(0, "a", 8, [10, 4], last_core=0),
            view(1, "b", 6, [2, 30], last_core=1),
        ]
        tids, w = interference_matrix(views, weighted=False)
        g = to_networkx(tids, w)
        assert g.number_of_nodes() == 2
        assert g[0][1]["weight"] == pytest.approx(w[0, 1])

    def test_to_networkx_shape_mismatch(self):
        with pytest.raises(AllocationError):
            to_networkx([0, 1], np.zeros((3, 3)))


class TestGraphPolicies:
    def _views_with_strong_pair(self):
        """An asymmetric (3+1) snapshot where task 0 interferes most with 3.

        Note: on a *balanced* bipartite snapshot the pairing objective is
        additively separable (every cross pairing ties exactly); the
        discriminating signal the paper's algorithm acts on comes from
        asymmetric placements like this one, which occur naturally during
        phase-1 churn (see repro.alloc.graph docstring).
        """
        return [
            view(0, "mcf", 1000, [50000, 100], last_core=0),
            view(1, "povray", 10, [50000, 40000], last_core=0),
            view(2, "gobmk", 20, [40000, 50000], last_core=0),
            view(3, "libq", 900, [100, 50000], last_core=1),
        ]

    @pytest.mark.parametrize(
        "policy_cls", [InterferenceGraphPolicy, WeightedInterferenceGraphPolicy]
    )
    def test_high_interference_pair_grouped(self, policy_cls):
        mapping = policy_cls().allocate(self._views_with_strong_pair(), 2)
        assert mapping.core_of(0) == mapping.core_of(3)

    def test_weighted_damps_low_occupancy_noise(self):
        # Section 3.3.3's motivating case: a near-empty RBV yields a
        # spuriously high raw interference metric (symbiosis clamped low),
        # fooling the unweighted policy; multiplying by occupancy weight
        # lets the truly heavy process win the polluter's core group.
        views = [
            view(0, "noisy", 1, [1, 1], last_core=0),       # tiny footprint
            view(1, "big1", 1000, [30000, 500], last_core=0),
            view(2, "idle", 1, [30000, 30000], last_core=0),
            view(3, "big2", 1000, [500, 30000], last_core=1),
        ]
        weighted = WeightedInterferenceGraphPolicy().allocate(views, 2)
        assert weighted.core_of(1) == weighted.core_of(3)
        unweighted = InterferenceGraphPolicy().allocate(views, 2)
        assert unweighted.core_of(0) == unweighted.core_of(3)  # fooled

    def test_policies_have_names(self):
        assert WeightSortPolicy.name == "weight_sort"
        assert InterferenceGraphPolicy().name == "interference_graph"
        assert WeightedInterferenceGraphPolicy().name == "weighted_interference_graph"

    def test_mapping_covers_all_tasks(self):
        views = self._views_with_strong_pair()
        mapping = WeightedInterferenceGraphPolicy().allocate(views, 2)
        assert mapping.task_ids == {0, 1, 2, 3}

    @pytest.mark.parametrize("method", ["exhaustive", "kl", "spectral"])
    def test_solver_methods_work(self, method):
        mapping = WeightedInterferenceGraphPolicy(method=method).allocate(
            self._views_with_strong_pair(), 2
        )
        assert mapping.core_of(0) == mapping.core_of(3)
