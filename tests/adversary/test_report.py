"""The adversarial scoring harness: mix composition, scores, deltas."""

import json

import pytest

from repro.adversary import (
    ADVERSARY_KINDS,
    AdversaryReport,
    MixScore,
    VICTIM_NAMES,
    adversary_machine,
    adversary_mix,
    score_adversary_mix,
)
from repro.alloc.weight_sort import WeightSortPolicy
from repro.errors import ConfigurationError

MACHINE = adversary_machine()


def score(kind, hardened, instructions=150_000):
    return score_adversary_mix(
        MACHINE,
        kind,
        WeightSortPolicy(),
        "weight-sort",
        hardened=hardened,
        instructions=instructions,
        seed=3,
    )


def fake_score(adversary, hardened, victim_worst, worst=None):
    return MixScore(
        adversary=adversary,
        policy="weight-sort",
        hardened=hardened,
        worst_slowdown=worst if worst is not None else victim_worst,
        victim_worst_slowdown=victim_worst,
        avg_improvement=0.1,
        degraded_invocations=0,
        suspect_invocations=0,
        gate_tripped=False,
        chosen_groups=((0, 1), (2, 3)),
    )


class TestAdversaryMix:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_every_kind_is_two_attackers_plus_the_victims(self, kind):
        tasks = adversary_mix(kind, MACHINE, instructions=30_000, seed=3)
        names = [t.name for t in tasks]
        assert len(tasks) == 4 and len(set(names)) == 4
        # Victims ride last so the round-robin fallback pairs each
        # attacker with one victim (the protective timesharing default).
        assert tuple(names[2:]) == VICTIM_NAMES

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigurationError):
            adversary_mix("ddos", MACHINE)

    def test_mixes_are_seed_deterministic(self):
        a = adversary_mix("aliasing", MACHINE, instructions=30_000, seed=3)
        b = adversary_mix("aliasing", MACHINE, instructions=30_000, seed=3)
        for left, right in zip(a, b):
            assert left.name == right.name
            batch = left.generator.next_batch(256)
            assert (batch == right.generator.next_batch(256)).all()


class TestScoreAdversaryMix:
    def test_benign_mix_is_untouched_by_hardening(self):
        baseline = score("benign", hardened=False)
        hardened = score("benign", hardened=True)
        assert hardened.victim_worst_slowdown == baseline.victim_worst_slowdown
        assert hardened.worst_slowdown == baseline.worst_slowdown
        assert hardened.chosen_groups == baseline.chosen_groups
        assert hardened.suspect_invocations == 0
        assert hardened.degraded_invocations == 0
        assert not hardened.gate_tripped

    def test_hardening_beats_the_aliasing_attack(self):
        baseline = score("aliasing", hardened=False)
        hardened = score("aliasing", hardened=True)
        # The unhardened stack believes the aliased signatures and
        # pairs the victims with the thrasher; the hardened gate trips
        # and falls back to the protective default.
        assert hardened.gate_tripped
        assert (
            hardened.victim_worst_slowdown < baseline.victim_worst_slowdown
        )

    def test_scores_serialise_to_json(self):
        result = score("benign", hardened=True, instructions=40_000)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["adversary"] == "benign"
        assert payload["policy"] == "weight-sort"
        assert payload["hardened"] is True
        assert len(payload["chosen_groups"]) == MACHINE.num_cores


class TestAdversaryReport:
    def test_delta_is_unhardened_minus_hardened(self):
        report = AdversaryReport(machine="m", seed=3)
        report.add(fake_score("aliasing", hardened=False, victim_worst=1.6))
        report.add(fake_score("aliasing", hardened=True, victim_worst=1.1))
        assert report.victim_worst_slowdown("aliasing", False) == 1.6
        assert report.delta("aliasing") == pytest.approx(0.5)

    def test_worst_across_policies_is_selected(self):
        report = AdversaryReport(machine="m", seed=3)
        report.add(fake_score("thrashing", hardened=False, victim_worst=1.2))
        report.add(fake_score("thrashing", hardened=False, victim_worst=1.4))
        assert report.victim_worst_slowdown("thrashing", False) == 1.4

    def test_missing_cells_raise(self):
        report = AdversaryReport(machine="m", seed=3)
        report.add(fake_score("aliasing", hardened=False, victim_worst=1.6))
        with pytest.raises(ConfigurationError):
            report.victim_worst_slowdown("aliasing", True)
        with pytest.raises(ConfigurationError):
            report.delta("aliasing")

    def test_to_dict_only_reports_complete_deltas(self):
        report = AdversaryReport(machine="m", seed=3)
        report.add(fake_score("aliasing", hardened=False, victim_worst=1.6))
        report.add(fake_score("aliasing", hardened=True, victim_worst=1.1))
        report.add(fake_score("benign", hardened=False, victim_worst=1.0))
        payload = json.loads(json.dumps(report.to_dict()))
        assert set(payload["deltas"]) == {"aliasing"}
        assert payload["deltas"]["aliasing"]["delta"] == pytest.approx(0.5)
        assert len(payload["scores"]) == 3
