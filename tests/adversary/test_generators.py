"""Adversarial generators: preimage math, determinism, attack shape."""

import numpy as np
import pytest

from repro.adversary import (
    AliasingGenerator,
    PhaseFlapGenerator,
    SaturatingGenerator,
    ThrashingGenerator,
    alias_preimages,
)
from repro.core.cbf import CountingBloomFilter
from repro.core.hashes import XorFoldHash
from repro.errors import ConfigurationError, WorkloadError

ENTRIES = 1024


class TestAliasPreimages:
    def test_distinct_blocks_fold_to_one_index(self):
        family = alias_preimages(ENTRIES, target_index=37, count=200)
        assert len(np.unique(family)) == 200
        folded = XorFoldHash(ENTRIES).hash_many(family)
        assert set(folded.tolist()) == {37}

    def test_spread_widens_to_a_band(self):
        family = alias_preimages(ENTRIES, 37, 128, spread=4)
        folded = XorFoldHash(ENTRIES).hash_many(family)
        assert set(folded.tolist()) == {37, 38, 39, 40}

    def test_lanes_are_block_disjoint_but_index_identical(self):
        a = alias_preimages(ENTRIES, 37, 100, lane=0)
        b = alias_preimages(ENTRIES, 37, 100, lane=1)
        assert len(np.intersect1d(a, b)) == 0
        hasher = XorFoldHash(ENTRIES)
        assert set(hasher.hash_many(a)) == set(hasher.hash_many(b)) == {37}

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_entries=1000, target_index=0, count=4),  # not pow2
            dict(num_entries=ENTRIES, target_index=ENTRIES, count=4),
            dict(num_entries=ENTRIES, target_index=0, count=ENTRIES + 1),
            dict(num_entries=ENTRIES, target_index=0, count=4, lane=-1),
            dict(num_entries=ENTRIES, target_index=0, count=600, lane=1),
            dict(
                num_entries=ENTRIES, target_index=ENTRIES - 1, count=4,
                spread=2,
            ),
            dict(num_entries=1 << 25, target_index=0, count=4),  # fold bits
        ],
    )
    def test_invalid_constructions_are_rejected(self, kwargs):
        # pow2 checks come from the shared validators (ConfigurationError),
        # the construction-specific checks raise WorkloadError.
        with pytest.raises((WorkloadError, ConfigurationError)):
            alias_preimages(
                kwargs.pop("num_entries"),
                kwargs.pop("target_index"),
                kwargs.pop("count"),
                **kwargs,
            )


class TestAliasingGenerator:
    def test_scan_and_hot_present_the_same_filter_image(self):
        scan = AliasingGenerator(ENTRIES, 37, 256, reuse="scan", seed=1)
        hot = AliasingGenerator(ENTRIES, 37, 256, reuse="hot", seed=2)
        hasher = XorFoldHash(ENTRIES)
        for gen in (scan, hot):
            indices = set(hasher.hash_many(gen.next_batch(2048)).tolist())
            assert indices == {37}

    def test_seeded_determinism(self):
        a = AliasingGenerator(ENTRIES, 37, 256, reuse="hot", seed=9)
        b = AliasingGenerator(ENTRIES, 37, 256, reuse="hot", seed=9)
        assert (a.next_batch(512) == b.next_batch(512)).all()

    def test_reset_restarts_the_stream(self):
        gen = AliasingGenerator(ENTRIES, 37, 256, reuse="scan", seed=1)
        first = gen.next_batch(100)
        gen.reset()
        assert (gen.next_batch(100) == first).all()

    def test_scan_reuse_is_a_cyclic_sweep(self):
        gen = AliasingGenerator(ENTRIES, 0, 64, reuse="scan", seed=0)
        batch = gen.next_batch(128)
        assert len(np.unique(batch[:64])) == 64
        assert (batch[:64] == batch[64:]).all()

    def test_rejects_base_block_and_bad_reuse(self):
        with pytest.raises(WorkloadError):
            AliasingGenerator(ENTRIES, 0, 64, base_block=1)
        with pytest.raises(WorkloadError):
            AliasingGenerator(ENTRIES, 0, 64, reuse="zigzag")


class TestSaturatingGenerator:
    def test_region_scales_with_pressure(self):
        gen = SaturatingGenerator(256, pressure=4.0, seed=0)
        assert gen.region_blocks == 1024

    def test_saturates_a_matching_filter(self):
        gen = SaturatingGenerator(256, pressure=4.0, seed=3)
        cbf = CountingBloomFilter(256, num_hashes=1)
        cbf.insert_many(np.unique(gen.next_batch(4096)))
        assert cbf.occupancy_fraction() > 0.95

    def test_rejects_nonpositive_pressure(self):
        with pytest.raises(WorkloadError):
            SaturatingGenerator(256, pressure=0.0)


class TestThrashingGenerator:
    def test_sweep_is_wider_than_the_cache(self):
        gen = ThrashingGenerator(1024, overshoot=1.25, seed=0)
        batch = gen.next_batch(gen.region_blocks)
        assert gen.region_blocks == 1280
        assert len(np.unique(batch)) == gen.region_blocks

    def test_reuse_distance_equals_the_region(self):
        gen = ThrashingGenerator(64, overshoot=1.5, seed=0)
        batch = gen.next_batch(2 * gen.region_blocks)
        assert (batch[: gen.region_blocks] == batch[gen.region_blocks:]).all()

    def test_overshoot_must_exceed_one(self):
        with pytest.raises(WorkloadError):
            ThrashingGenerator(64, overshoot=1.0)


class TestPhaseFlapGenerator:
    def test_alternates_between_disjoint_regions(self):
        gen = PhaseFlapGenerator(region_blocks=128, period=64, seed=5)
        batch = gen.next_batch(256)
        assert batch[:64].max() < 128
        assert 128 <= batch[64:128].min()
        assert batch[64:128].max() < 256
        assert batch[128:192].max() < 128

    def test_restart_resets_the_phase_clock(self):
        gen = PhaseFlapGenerator(region_blocks=128, period=64, seed=5)
        first = gen.next_batch(200)
        gen.reset()
        assert (gen.next_batch(200) == first).all()
