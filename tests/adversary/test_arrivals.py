"""Adversarial arrival traces: determinism, attack shape, validation."""

import pytest

from repro.adversary import admission_storm_trace, flap_storm_trace
from repro.errors import WorkloadError

POOL = ["mcf", "povray", "astar", "milc"]


class TestFlapStorm:
    def test_same_seed_is_byte_identical(self):
        a = flap_storm_trace(400, seed=11)
        b = flap_storm_trace(400, seed=11)
        assert a == b
        assert a.kind == "flap_storm" and a.seed == 11
        assert len(a) == 400

    def test_victims_absorb_most_phase_changes(self):
        trace = flap_storm_trace(400, seed=11, population=6, flappers=2)
        admits = [e for e in trace if e.kind == "admit"]
        victims = sorted(e.pid for e in admits[:6])[:2]
        flips = [e for e in trace if e.kind == "phase_change"]
        # Phase changes target only the victim pids, and they dominate
        # the post-admission stream (flap_fraction defaults to 0.9).
        assert {e.pid for e in flips} == set(victims)
        assert len(flips) > 0.8 * (len(trace) - 6)

    def test_victims_are_never_retired(self):
        trace = flap_storm_trace(400, seed=3, population=6, flappers=2)
        admits = [e for e in trace if e.kind == "admit"]
        victims = set(sorted(e.pid for e in admits[:6])[:2])
        retired = {e.pid for e in trace if e.kind == "retire"}
        assert victims.isdisjoint(retired)
        assert victims <= set(trace.final_population())

    def test_consecutive_flips_change_the_profile(self):
        trace = flap_storm_trace(200, seed=7, pool=POOL)
        last = {}
        for event in trace:
            if event.kind == "phase_change":
                assert last[event.pid] != event.name
            last[event.pid] = event.name

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(population=1),
            dict(flappers=0),
            dict(flappers=7),
            dict(flap_fraction=0.0),
            dict(flap_fraction=1.5),
            dict(mean_interarrival=0.0),
            dict(pool=["mcf"]),
        ],
    )
    def test_bad_parameters_are_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            flap_storm_trace(100, seed=0, **kwargs)


class TestAdmissionStorm:
    def test_same_seed_is_byte_identical(self):
        a = admission_storm_trace(300, seed=7)
        b = admission_storm_trace(300, seed=7)
        assert a == b
        assert a.kind == "admission_storm" and a.seed == 7

    def test_sawtooth_rides_between_floor_and_ceiling(self):
        trace = admission_storm_trace(300, seed=7, min_live=2, max_live=8)
        assert trace.peak_population() == 8
        live = 0
        floor_hits = ceiling_hits = 0
        for event in trace:
            live += 1 if event.kind == "admit" else -1
            assert live <= 8
            if live == 8:
                ceiling_hits += 1
            if live == 2:
                floor_hits += 1
        # The deterministic sawtooth touches both extremes repeatedly.
        assert ceiling_hits > 10 and floor_hits > 10

    def test_contains_no_phase_changes(self):
        trace = admission_storm_trace(300, seed=7)
        assert {e.kind for e in trace} == {"admit", "retire"}

    def test_gaps_are_paced_by_the_burst_interarrival(self):
        trace = admission_storm_trace(500, seed=1, burst_interarrival=0.001)
        times = [e.time for e in trace]
        gaps = [later - earlier for earlier, later in zip(times, times[1:])]
        assert all(gap > 0 for gap in gaps)
        # Exponential gaps with mean 0.001: the sample mean is close.
        assert sum(gaps) / len(gaps) == pytest.approx(0.001, rel=0.25)

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(WorkloadError):
            admission_storm_trace(100, seed=0, burst_interarrival=0.0)
