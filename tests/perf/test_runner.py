"""Tests for run builders (task assembly, signature defaults)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf.machine import core2duo, p4xeon
from repro.perf.runner import (
    DEFAULT_INSTRUCTIONS,
    build_parsec_processes,
    build_tasks,
    default_signature_config,
    run_solo,
)


class TestBuildTasks:
    def test_names_and_parameters(self):
        tasks = build_tasks(["mcf", "povray"], instructions=1_000_000)
        assert [t.name for t in tasks] == ["mcf", "povray"]
        assert tasks[0].accesses_per_kinstr == 45.0
        assert tasks[0].total_accesses == 45_000
        assert tasks[1].total_accesses == 1_000

    def test_address_slices_disjoint(self):
        tasks = build_tasks(["mcf", "hmmer", "libquantum"], instructions=100_000)
        samples = [set(t.generator.next_batch(2000).tolist()) for t in tasks]
        for i in range(len(samples)):
            for j in range(i + 1, len(samples)):
                assert samples[i].isdisjoint(samples[j])

    def test_deterministic_by_seed(self):
        a = build_tasks(["gobmk"], instructions=100_000, seed=5)[0]
        b = build_tasks(["gobmk"], instructions=100_000, seed=5)[0]
        assert np.array_equal(a.generator.next_batch(100), b.generator.next_batch(100))

    def test_duplicate_names_get_distinct_streams(self):
        a, b = build_tasks(["gobmk", "gobmk"], instructions=100_000, seed=5)
        assert not np.array_equal(
            a.generator.next_batch(100) - a.generator.base_block,
            b.generator.next_batch(100) - b.generator.base_block,
        )

    def test_unknown_name(self):
        with pytest.raises(Exception):
            build_tasks(["quake3"], instructions=1000)

    def test_invalid_instructions(self):
        with pytest.raises(ValueError):
            build_tasks(["mcf"], instructions=0)


class TestBuildParsec:
    def test_processes_and_threads(self):
        procs = build_parsec_processes(["ferret", "dedup"], instructions_per_thread=100_000)
        assert [p.name for p in procs] == ["ferret", "dedup"]
        assert all(len(p.tasks) == 4 for p in procs)

    def test_distinct_process_ids(self):
        procs = build_parsec_processes(["ferret", "dedup"], instructions_per_thread=100_000)
        assert procs[0].process_id != procs[1].process_id


class TestSignatureDefaults:
    def test_matches_machine_geometry(self):
        cfg = default_signature_config(core2duo())
        assert cfg.num_cores == 2
        assert cfg.num_sets == 4096
        assert cfg.ways == 16
        assert cfg.num_entries == 65536  # entries = cache lines (paper)
        assert cfg.counter_bits == 3
        assert cfg.num_hashes == 1
        assert cfg.hash_kind == "xor"

    def test_overrides(self):
        cfg = default_signature_config(core2duo(), sampling_denominator=4)
        assert cfg.sampling_denominator == 4
        assert cfg.num_entries == 65536 // 4

    def test_requires_shared_l2(self):
        with pytest.raises(ConfigurationError):
            default_signature_config(p4xeon())


class TestRunSolo:
    def test_completes(self):
        result = run_solo(core2duo(), "povray", instructions=200_000)
        assert result.task("povray").completions == 1
        assert result.user_time("povray") > 0

    def test_default_budget_constant(self):
        assert DEFAULT_INSTRUCTIONS == 6_000_000
