"""Tests for the cycle-accounting timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.timing import TimingModel


class TestTimingModel:
    def test_batch_cycles_formula(self):
        t = TimingModel(cpi_base=1.0, l2_hit_cycles=10.0, mem_cycles=100.0, queue_coeff=0.0)
        cycles = t.batch_cycles(instructions=1000, l2_hits=50, l2_misses=10)
        assert cycles == pytest.approx(1000 + 500 + 1000)

    def test_mlp_divides_miss_penalty(self):
        t = TimingModel(queue_coeff=0.0)
        full = t.batch_cycles(0, 0, 100, mlp=1.0)
        overlapped = t.batch_cycles(0, 0, 100, mlp=4.0)
        assert overlapped == pytest.approx(full / 4)

    def test_queueing_adds_contention_cost(self):
        t = TimingModel(queue_coeff=2.0, mem_cycles=100.0)
        quiet = t.miss_cycles(mlp=1.0, other_intensity=0.0)
        busy = t.miss_cycles(mlp=1.0, other_intensity=0.01)
        assert busy == pytest.approx(quiet + 2.0 * 0.01 * 100.0)

    def test_queue_coeff_zero_disables(self):
        t = TimingModel(queue_coeff=0.0)
        assert t.miss_cycles(1.0, 5.0) == t.miss_cycles(1.0, 0.0)

    def test_negative_intensity_clamped(self):
        t = TimingModel()
        assert t.miss_cycles(1.0, -3.0) == t.miss_cycles(1.0, 0.0)

    def test_monotone_in_misses(self):
        t = TimingModel()
        a = t.batch_cycles(1000, 100, 0)
        b = t.batch_cycles(1000, 90, 10)
        assert b > a

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cpi_base=0.0),
            dict(l2_hit_cycles=-1.0),
            dict(mem_cycles=-1.0),
            dict(queue_coeff=-0.1),
            dict(intensity_ema=0.0),
            dict(intensity_ema=1.5),
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            TimingModel(**kwargs)

    def test_invalid_mlp(self):
        with pytest.raises(ConfigurationError):
            TimingModel().miss_cycles(mlp=0.5)

    def test_negative_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingModel().batch_cycles(-1, 0, 0)


class TestMachines:
    def test_core2duo_matches_paper(self):
        from repro.perf.machine import core2duo

        m = core2duo()
        assert m.num_cores == 2
        assert m.shared_l2
        assert m.l2.geometry.size_bytes == 4 * 1024 * 1024
        assert m.clock_hz == pytest.approx(2.6e9)

    def test_p4xeon_private(self):
        from repro.perf.machine import p4xeon

        m = p4xeon()
        assert not m.shared_l2
        assert m.l2.geometry.size_bytes == 2 * 1024 * 1024

    def test_quadcore(self):
        from repro.perf.machine import quadcore_shared

        assert quadcore_shared().num_cores == 4

    def test_seconds(self):
        from repro.perf.machine import core2duo

        assert core2duo().seconds(2.6e9) == pytest.approx(1.0)

    def test_invalid(self):
        from repro.cache.config import core2duo_l2
        from repro.perf.machine import MachineConfig

        with pytest.raises(ValueError):
            MachineConfig(name="x", num_cores=0, l2=core2duo_l2())
