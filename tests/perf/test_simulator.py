"""Tests for the closed-loop multicore simulator."""

import pytest

from repro.cache.config import tiny_cache
from repro.core.signature import SignatureConfig
from repro.errors import ConfigurationError, SimulationError
from repro.perf.machine import MachineConfig
from repro.perf.simulator import MulticoreSimulator
from repro.perf.timing import TimingModel
from repro.sched.affinity import canonical_mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.workloads.patterns import RandomRegionGenerator, StreamGenerator


def tiny_machine(shared=True, cores=2):
    return MachineConfig(
        name="tiny",
        num_cores=cores,
        l2=tiny_cache(sets=64, ways=4),
        shared_l2=shared,
        timing=TimingModel(),
    )


def make_task(name="t", total=2000, region=100, base=0, seed=0, apki=20.0, mlp=1.0):
    return SimTask(
        name=name,
        generator=RandomRegionGenerator(region, base_block=base, seed=seed),
        total_accesses=total,
        accesses_per_kinstr=apki,
        mlp=mlp,
    )


def small_sched(cores=2, timeslice=50_000.0):
    return SchedulerConfig(num_cores=cores, timeslice_cycles=timeslice)


class TestBasicRuns:
    def test_single_task_completes(self):
        sim = MulticoreSimulator(tiny_machine(), [make_task()])
        result = sim.run()
        t = result.tasks[0]
        assert t.completions >= 1
        assert t.first_completion_cycles > 0
        assert result.wall_cycles >= t.first_completion_cycles

    def test_all_tasks_complete_once(self):
        tasks = [make_task(f"t{i}", base=1000 * i, seed=i) for i in range(4)]
        result = MulticoreSimulator(
            tiny_machine(), tasks, scheduler_config=small_sched()
        ).run()
        assert all(t.completions >= 1 for t in result.tasks)

    def test_restart_semantics(self):
        # A short task restarts until the long one completes.
        short = make_task("short", total=500)
        long_ = make_task("long", total=20_000, base=5000, seed=9)
        result = MulticoreSimulator(
            tiny_machine(), [short, long_], scheduler_config=small_sched()
        ).run()
        assert result.task("short").completions > 1
        assert result.task("long").completions == 1

    def test_user_time_accessor(self):
        sim = MulticoreSimulator(tiny_machine(), [make_task("a")])
        result = sim.run()
        assert result.user_time("a") == result.task("a").first_completion_cycles
        with pytest.raises(KeyError):
            result.task("nope")

    def test_incomplete_user_time_raises(self):
        sim = MulticoreSimulator(tiny_machine(), [make_task(total=10**7)])
        result = sim.run(max_wall_cycles=1000.0)
        with pytest.raises(SimulationError):
            result.user_time("t")

    def test_deterministic(self):
        def run():
            tasks = [make_task(f"t{i}", base=1000 * i, seed=i) for i in range(3)]
            return MulticoreSimulator(
                tiny_machine(), tasks, scheduler_config=small_sched()
            ).run()

        a, b = run(), run()
        assert [t.first_completion_cycles for t in a.tasks] == [
            t.first_completion_cycles for t in b.tasks
        ]
        assert a.l2_miss_rate == b.l2_miss_rate

    def test_no_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            MulticoreSimulator(tiny_machine(), [])


class TestPlacementAndMapping:
    def test_explicit_mapping_pins_tasks(self):
        a, b = make_task("a"), make_task("b", base=500, seed=1)
        mapping = canonical_mapping([[a.tid, b.tid], []])
        sim = MulticoreSimulator(
            tiny_machine(), [a, b], mapping=mapping, scheduler_config=small_sched()
        )
        assert sim.scheduler.core_of(a.tid) == sim.scheduler.core_of(b.tid)
        sim.run()
        assert sim.scheduler.core_of(a.tid) == sim.scheduler.core_of(b.tid)

    def test_unknown_tid_in_mapping_rejected(self):
        a = make_task("a")
        with pytest.raises(ConfigurationError):
            MulticoreSimulator(
                tiny_machine(), [a], mapping=canonical_mapping([[a.tid, 9999], []])
            )

    def test_default_round_robin(self):
        tasks = [make_task(f"t{i}", seed=i) for i in range(4)]
        sim = MulticoreSimulator(tiny_machine(), tasks)
        assert sim.scheduler.core_of(tasks[0].tid) == 0
        assert sim.scheduler.core_of(tasks[1].tid) == 1
        assert sim.scheduler.core_of(tasks[2].tid) == 0


class TestContention:
    def test_streaming_partner_slows_victim(self):
        """The paper's core phenomenon at miniature scale."""

        def victim():
            return SimTask(
                name="victim",
                generator=RandomRegionGenerator(200, seed=1),  # fits the cache
                total_accesses=20_000,
                accesses_per_kinstr=30.0,
            )

        def run_with(partner_region):
            v = victim()
            p = SimTask(
                name="partner",
                generator=StreamGenerator(partner_region, base_block=10_000, seed=2),
                total_accesses=20_000,
                accesses_per_kinstr=30.0,
                mlp=4.0,
            )
            mapping = canonical_mapping([[v.tid], [p.tid]])
            result = MulticoreSimulator(
                tiny_machine(), [v, p], mapping=mapping,
                scheduler_config=small_sched(),
            ).run()
            return result.user_time("victim")

        gentle = run_with(partner_region=8)        # partner fits in 2 sets
        brutal = run_with(partner_region=4096)     # partner floods the cache
        assert brutal > 1.2 * gentle

    def test_same_core_timeshare_mitigates(self):
        def run(mapping_groups):
            v = SimTask(
                name="victim",
                generator=RandomRegionGenerator(200, seed=1),
                total_accesses=20_000,
                accesses_per_kinstr=30.0,
            )
            p = SimTask(
                name="partner",
                generator=StreamGenerator(4096, base_block=10_000, seed=2),
                total_accesses=20_000,
                accesses_per_kinstr=30.0,
                mlp=4.0,
            )
            tid = {"v": v.tid, "p": p.tid}
            groups = [[tid[x] for x in g] for g in mapping_groups]
            result = MulticoreSimulator(
                tiny_machine(), [v, p],
                mapping=canonical_mapping(groups),
                scheduler_config=SchedulerConfig(
                    num_cores=2, timeslice_cycles=10_000_000.0
                ),
            ).run()
            return result.user_time("victim")

        concurrent = run([["v"], ["p"]])
        timeshared = run([["v", "p"], []])
        assert timeshared < concurrent

    def test_intensity_feedback_exists(self):
        sim = MulticoreSimulator(
            tiny_machine(),
            [make_task("a"), make_task("b", base=500, seed=1)],
            scheduler_config=small_sched(),
        )
        sim.run()
        assert (sim._intensity >= 0).all()


class TestSignaturePhase:
    def test_signature_requires_shared_l2(self):
        cfg = SignatureConfig(num_cores=2, num_sets=64, ways=4)
        with pytest.raises(ConfigurationError):
            MulticoreSimulator(
                tiny_machine(shared=False), [make_task()], signature_config=cfg
            )

    def test_signature_core_mismatch_rejected(self):
        cfg = SignatureConfig(num_cores=4, num_sets=64, ways=4)
        with pytest.raises(ConfigurationError):
            MulticoreSimulator(tiny_machine(), [make_task()], signature_config=cfg)

    def test_signature_stats_collected(self):
        cfg = SignatureConfig(num_cores=2, num_sets=64, ways=4)
        tasks = [make_task(f"t{i}", base=500 * i, seed=i) for i in range(2)]
        result = MulticoreSimulator(
            tiny_machine(), tasks, signature_config=cfg,
            scheduler_config=small_sched(),
        ).run()
        assert result.signature_stats is not None
        assert result.signature_stats.fills_tracked > 0
        assert result.signature_stats.context_switches > 0

    def test_monitor_invoked_and_decisions_recorded(self):
        from repro.alloc.monitor import UserLevelMonitor
        from repro.alloc.weight_sort import WeightSortPolicy

        cfg = SignatureConfig(num_cores=2, num_sets=64, ways=4)
        tasks = [make_task(f"t{i}", total=20_000, base=500 * i, seed=i) for i in range(4)]
        monitor = UserLevelMonitor(WeightSortPolicy(), interval_cycles=100_000.0)
        result = MulticoreSimulator(
            tiny_machine(), tasks, signature_config=cfg, monitor=monitor,
            scheduler_config=small_sched(),
        ).run()
        assert len(result.decisions) > 0
        assert result.majority_mapping is not None
        assert result.majority_mapping in result.decisions


class TestWallLimits:
    def test_max_wall_stops(self):
        result = MulticoreSimulator(
            tiny_machine(), [make_task(total=10**7)]
        ).run(max_wall_cycles=50_000.0)
        assert result.tasks[0].completions == 0

    def test_min_wall_extends(self):
        short = MulticoreSimulator(tiny_machine(), [make_task(total=500)]).run()
        extended = MulticoreSimulator(tiny_machine(), [make_task(total=500)]).run(
            min_wall_cycles=short.wall_cycles * 5
        )
        assert extended.wall_cycles >= short.wall_cycles * 5
        assert extended.tasks[0].completions > short.tasks[0].completions


class TestPrivateL2Machines:
    def test_private_caches_isolate(self):
        # On a private-L2 machine, a streaming partner on the other core
        # cannot evict the victim's lines.
        def run(shared):
            v = SimTask(
                name="victim",
                generator=RandomRegionGenerator(200, seed=1),
                total_accesses=20_000,
                accesses_per_kinstr=30.0,
            )
            p = SimTask(
                name="partner",
                generator=StreamGenerator(4096, base_block=10_000, seed=2),
                total_accesses=20_000,
                accesses_per_kinstr=30.0,
                mlp=4.0,
            )
            mapping = canonical_mapping([[v.tid], [p.tid]])
            return MulticoreSimulator(
                tiny_machine(shared=shared), [v, p], mapping=mapping,
                scheduler_config=small_sched(),
            ).run().user_time("victim")

        assert run(shared=False) < run(shared=True)

    def test_process_user_time(self):
        a = make_task("a")
        b = make_task("b", base=500, seed=1)
        b.process_id = a.process_id
        result = MulticoreSimulator(
            tiny_machine(), [a, b], scheduler_config=small_sched()
        ).run()
        assert result.process_user_time(a.process_id) == max(
            result.user_time("a"), result.user_time("b")
        )
