"""Conservation/invariant properties of the closed-loop simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import tiny_cache
from repro.perf.machine import MachineConfig
from repro.perf.simulator import MulticoreSimulator
from repro.perf.timing import TimingModel
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.workloads.patterns import HotColdGenerator


def machine(cores=2):
    return MachineConfig(
        name="cons",
        num_cores=cores,
        l2=tiny_cache(sets=32, ways=2),
        shared_l2=True,
        timing=TimingModel(),
    )


def make_task(name, total, seed, apki=10.0):
    return SimTask(
        name=name,
        generator=HotColdGenerator(256, 64, base_block=seed * 5000, seed=seed),
        total_accesses=total,
        accesses_per_kinstr=apki,
    )


class TestConservation:
    @given(
        st.lists(
            st.integers(min_value=500, max_value=5000), min_size=1, max_size=4
        ),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_access_conservation(self, totals, seed):
        """Cache accesses == accesses executed by tasks (incl. restarts)."""
        tasks = [
            make_task(f"t{i}", total, seed=seed * 10 + i)
            for i, total in enumerate(totals)
        ]
        sim = MulticoreSimulator(
            machine(),
            tasks,
            scheduler_config=SchedulerConfig(num_cores=2, timeslice_cycles=50_000.0),
        )
        result = sim.run()
        executed = sum(
            t.completions * tasks[i].total_accesses + t_obj.accesses_done
            for i, (t, t_obj) in enumerate(zip(result.tasks, tasks))
        )
        assert sim._shared_cache.stats.total_accesses == executed

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_user_cycles_bounded_by_wall(self, seed):
        tasks = [make_task(f"t{i}", 3000, seed=seed * 10 + i) for i in range(3)]
        result = MulticoreSimulator(
            machine(),
            tasks,
            scheduler_config=SchedulerConfig(num_cores=2, timeslice_cycles=50_000.0),
        ).run()
        for t in result.tasks:
            assert t.user_cycles <= result.wall_cycles + 1e-6
            if t.first_completion_cycles is not None:
                assert t.first_completion_cycles <= t.user_cycles + 1e-6

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_wall_equals_max_core_time(self, seed):
        tasks = [make_task(f"t{i}", 2000, seed=seed * 10 + i) for i in range(2)]
        sim = MulticoreSimulator(machine(), tasks)
        result = sim.run()
        assert result.wall_cycles == pytest.approx(sim.core_time.max())

    def test_hits_plus_misses_equals_accesses(self):
        tasks = [make_task("a", 5000, seed=1), make_task("b", 5000, seed=2)]
        sim = MulticoreSimulator(machine(), tasks)
        sim.run()
        stats = sim._shared_cache.stats
        assert stats.total_hits + stats.total_misses == stats.total_accesses

    def test_signature_fills_equal_l2_misses(self):
        from repro.core.signature import SignatureConfig

        tasks = [make_task("a", 5000, seed=1), make_task("b", 5000, seed=2)]
        sim = MulticoreSimulator(
            machine(),
            tasks,
            signature_config=SignatureConfig(num_cores=2, num_sets=32, ways=2),
        )
        result = sim.run()
        assert (
            result.signature_stats.fills_tracked
            == sim._shared_cache.stats.total_misses
        )

    def test_monotone_budget_monotone_time(self):
        """More work never takes less user time (same seed/workload)."""
        times = []
        for total in (2000, 4000, 8000):
            result = MulticoreSimulator(
                machine(), [make_task("t", total, seed=3)]
            ).run()
            times.append(result.user_time("t"))
        assert times == sorted(times)
