"""Tests for the multithreaded (Figure 12) experiment driver."""

import pytest

from repro.perf.experiment import parsec_two_phase
from repro.perf.machine import core2duo


class TestParsecTwoPhase:
    @pytest.fixture(scope="class")
    def result(self):
        return parsec_two_phase(
            core2duo(),
            ["blackscholes", "swaptions"],
            instructions_per_thread=150_000,
            phase1_min_wall=20_000_000.0,
            monitor_interval=2_000_000.0,
        )

    def test_app_level_times(self, result):
        assert set(result.names) == {"blackscholes", "swaptions"}
        for times in result.mapping_times.values():
            assert set(times) == {"blackscholes", "swaptions"}
            assert all(v > 0 for v in times.values())

    def test_reference_mappings_cover_process_groupings(self, result):
        # 2 apps on 2 cores: 1 whole-process grouping + default + chosen.
        assert len(result.mapping_times) >= 1
        assert result.chosen_mapping in result.mapping_times

    def test_chosen_mapping_is_thread_level(self, result):
        # 2 apps x 4 threads = 8 tasks distributed over 2 cores.
        assert len(result.chosen_mapping.task_ids) == 8
        sizes = sorted(len(g) for g in result.chosen_mapping.groups)
        assert sum(sizes) == 8

    def test_improvements_bounded(self, result):
        for name in result.names:
            assert 0.0 <= result.improvement(name) <= 1.0

    def test_decisions_made(self, result):
        assert len(result.decisions) >= 1
