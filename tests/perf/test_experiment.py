"""Tests for the experiment drivers (scaled-down budgets for speed)."""

import pytest

from repro.alloc import WeightedInterferenceGraphPolicy, WeightSortPolicy
from repro.errors import ConfigurationError
from repro.perf.experiment import (
    MixResult,
    default_mapping_for,
    mix_sweep,
    pairwise_private_timeshare,
    pairwise_shared,
    run_all_mappings,
    stratified_mixes,
    two_phase,
)
from repro.perf.machine import core2duo, p4xeon
from repro.perf.runner import build_tasks
from repro.sched.affinity import canonical_mapping

INSTR = 150_000  # tiny budgets: these tests exercise plumbing, not physics


class TestPairwise:
    def test_shared_pairwise_structure(self):
        result = pairwise_shared(
            core2duo(), ["povray", "gobmk", "sjeng"], instructions=INSTR
        )
        assert set(result.solo_times) == {"povray", "gobmk", "sjeng"}
        assert len(result.pair_times) == 3
        partner, worst = result.worst_degradation("gobmk")
        assert partner in ("povray", "sjeng")
        table = result.worst_case_table()
        assert set(table) == {"povray", "gobmk", "sjeng"}

    def test_degradation_symmetric_lookup(self):
        result = pairwise_shared(core2duo(), ["povray", "sjeng"], instructions=INSTR)
        d1 = result.degradation("povray", "sjeng")
        d2 = result.degradation("sjeng", "povray")
        assert isinstance(d1, float) and isinstance(d2, float)

    def test_private_timeshare_runs(self):
        result = pairwise_private_timeshare(
            p4xeon(), ["povray", "sjeng"], instructions=INSTR
        )
        assert result.degradation("povray", "sjeng") > -0.5

    def test_shared_requires_shared_l2(self):
        with pytest.raises(ConfigurationError):
            pairwise_shared(p4xeon(), ["povray", "sjeng"], instructions=INSTR)


class TestMappingsAndMixes:
    def test_run_all_mappings_three_for_four_tasks(self):
        tasks = build_tasks(["povray", "gobmk", "sjeng", "perlbench"], instructions=INSTR)
        times = run_all_mappings(core2duo(), tasks)
        assert len(times) == 3
        for mapping_times in times.values():
            assert set(mapping_times) == {"povray", "gobmk", "sjeng", "perlbench"}
            assert all(v > 0 for v in mapping_times.values())

    def test_default_mapping_round_robin(self):
        tasks = build_tasks(["povray", "gobmk", "sjeng", "perlbench"], instructions=INSTR)
        mapping = default_mapping_for(tasks, 2)
        assert mapping.core_of(tasks[0].tid) == mapping.core_of(tasks[2].tid)
        assert mapping.core_of(tasks[1].tid) == mapping.core_of(tasks[3].tid)

    def test_mix_result_metrics(self):
        mapping_a = canonical_mapping([[0, 1], [2, 3]])
        mapping_b = canonical_mapping([[0, 2], [1, 3]])
        result = MixResult(
            names=("x", "y"),
            mapping_times={
                mapping_a: {"x": 100.0, "y": 50.0},
                mapping_b: {"x": 80.0, "y": 60.0},
            },
            chosen_mapping=mapping_b,
            default_mapping=mapping_a,
        )
        assert result.worst_time("x") == 100.0
        assert result.best_time("x") == 80.0
        assert result.chosen_time("x") == 80.0
        assert result.improvement("x") == pytest.approx(0.2)
        assert result.oracle_improvement("x") == pytest.approx(0.2)
        assert result.regret("x") == pytest.approx(0.0)
        # y is hurt by the chosen mapping relative to its own worst=60.
        assert result.improvement("y") == pytest.approx(0.0)

    def test_two_phase_end_to_end(self):
        result = two_phase(
            core2duo(),
            ["povray", "gobmk", "sjeng", "perlbench"],
            WeightedInterferenceGraphPolicy(),
            instructions=INSTR,
            phase1_min_wall=30_000_000.0,
            monitor_interval=2_000_000.0,
        )
        assert len(result.mapping_times) >= 3
        assert result.chosen_mapping in result.mapping_times
        assert len(result.decisions) >= 1
        for name in result.names:
            assert 0.0 <= result.improvement(name) <= 1.0


class TestStratifiedMixes:
    def test_coverage(self):
        pool = ["a", "b", "c", "d", "e", "f"]
        mixes = stratified_mixes(pool, mixes_per_benchmark=3, mix_size=4, seed=0)
        counts = {name: 0 for name in pool}
        for mix in mixes:
            assert len(mix) == 4
            assert len(set(mix)) == 4
            for name in mix:
                counts[name] += 1
        assert min(counts.values()) >= 3

    def test_no_duplicate_mixes(self):
        mixes = stratified_mixes(["a", "b", "c", "d", "e"], 4, 4, seed=1)
        assert len(mixes) == len(set(mixes))

    def test_deterministic(self):
        pool = ["a", "b", "c", "d", "e", "f"]
        assert stratified_mixes(pool, 2, 4, seed=5) == stratified_mixes(pool, 2, 4, seed=5)

    def test_mix_size_validation(self):
        with pytest.raises(ConfigurationError):
            stratified_mixes(["a", "b"], 2, 4)


class TestMixSweep:
    def test_sweep_aggregates(self):
        mixes = [
            ("povray", "gobmk", "sjeng", "perlbench"),
            ("povray", "gobmk", "sjeng", "bzip2"),
        ]
        sweep = mix_sweep(
            core2duo(),
            mixes,
            WeightSortPolicy(),
            instructions=INSTR,
            phase1_min_wall=20_000_000.0,
            monitor_interval=2_000_000.0,
        )
        assert len(sweep.mix_results) == 2
        assert len(sweep.improvements["povray"]) == 2
        assert sweep.max_improvement("povray") >= sweep.avg_improvement("povray") - 1e-12
        summary = sweep.summary()
        assert set(summary) == {"povray", "gobmk", "sjeng", "perlbench", "bzip2"}
