"""Tests for the optional private-L1 fidelity mode of the simulator."""

import pytest

from repro.cache.config import CacheConfig, CacheGeometry, tiny_cache
from repro.errors import ConfigurationError
from repro.perf.machine import MachineConfig
from repro.perf.simulator import MulticoreSimulator
from repro.perf.timing import TimingModel
from repro.sched.process import SimTask
from repro.workloads.patterns import HotColdGenerator


def machine(l1=None):
    return MachineConfig(
        name="l1test",
        num_cores=2,
        l2=tiny_cache(sets=64, ways=4),
        shared_l2=True,
        l1=l1,
        timing=TimingModel(),
    )


def tiny_l1():
    return tiny_cache(sets=4, ways=2)  # 8 lines


def reusing_task(name="t", seed=1):
    return SimTask(
        name=name,
        generator=HotColdGenerator(64, 8, hot_fraction=0.95, seed=seed),
        total_accesses=20_000,
        accesses_per_kinstr=20.0,
    )


class TestL1Mode:
    def test_l1_filters_l2_traffic(self):
        with_l1 = MulticoreSimulator(machine(tiny_l1()), [reusing_task()])
        without = MulticoreSimulator(machine(), [reusing_task()])
        r1 = with_l1.run()
        r0 = without.run()
        # The L2 sees far fewer accesses when the hot set fits in L1.
        l2_with = with_l1._shared_cache.stats.total_accesses
        l2_without = without._shared_cache.stats.total_accesses
        assert l2_with < 0.7 * l2_without

    def test_l1_speeds_up_reuse_heavy_task(self):
        t_with = MulticoreSimulator(machine(tiny_l1()), [reusing_task()]).run()
        t_without = MulticoreSimulator(machine(), [reusing_task()]).run()
        assert t_with.user_time("t") < t_without.user_time("t")

    def test_signature_sees_post_l1_stream(self):
        from repro.core.signature import SignatureConfig

        sim = MulticoreSimulator(
            machine(tiny_l1()),
            [reusing_task()],
            signature_config=SignatureConfig(num_cores=2, num_sets=64, ways=4),
        )
        result = sim.run()
        stats = result.signature_stats
        # Tracked fills == L2 misses (the signature sits at the L2).
        assert stats.fills_tracked == sim._shared_cache.stats.total_misses

    def test_line_size_mismatch_rejected(self):
        bad_l1 = CacheConfig(
            name="bad",
            geometry=CacheGeometry(size_bytes=4 * 32 * 2, line_bytes=32, ways=2),
        )
        with pytest.raises(ConfigurationError):
            machine(bad_l1)

    def test_l1s_are_private(self):
        sim = MulticoreSimulator(
            machine(tiny_l1()),
            [reusing_task("a", seed=1), reusing_task("b", seed=2)],
        )
        sim.run()
        assert sim._l1s[0] is not sim._l1s[1]

    def test_deterministic_with_l1(self):
        a = MulticoreSimulator(machine(tiny_l1()), [reusing_task()]).run()
        b = MulticoreSimulator(machine(tiny_l1()), [reusing_task()]).run()
        assert a.user_time("t") == b.user_time("t")
