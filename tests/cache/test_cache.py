"""Tests for the set-associative cache, including a reference-model check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import tiny_cache
from repro.errors import ConfigurationError


def small_cache(sets=4, ways=2, policy="lru", cores=2):
    return SetAssociativeCache(tiny_cache(sets=sets, ways=ways, replacement=policy), num_cores=cores)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        hit, evicted = c.access_one(0, 5)
        assert not hit and evicted is None
        hit, evicted = c.access_one(0, 5)
        assert hit and evicted is None

    def test_conflict_eviction(self):
        c = small_cache(sets=4, ways=1)
        c.access_one(0, 0)
        hit, evicted = c.access_one(0, 4)  # same set (block % 4 == 0)
        assert not hit
        assert evicted == 0
        assert not c.contains(0)
        assert c.contains(4)

    def test_lru_order_within_set(self):
        c = small_cache(sets=1, ways=2)
        c.access_one(0, 0)
        c.access_one(0, 1)
        c.access_one(0, 0)  # 0 is now MRU, 1 is LRU
        _, evicted = c.access_one(0, 2)
        assert evicted == 1

    def test_fill_slots_are_stable_physical_ways(self):
        c = small_cache(sets=1, ways=2)
        r1 = c.access_batch(0, np.array([0]))
        r2 = c.access_batch(0, np.array([1]))
        assert r1.fill_slots[0] != r2.fill_slots[0]
        # Evicting block 0 (LRU) must free slot r1 used.
        r3 = c.access_batch(0, np.array([2]))
        assert r3.evict_slots[0] == r1.fill_slots[0]
        assert r3.fill_slots[0] == r1.fill_slots[0]

    def test_evict_fill_pos_alignment(self):
        c = small_cache(sets=1, ways=1)
        r = c.access_batch(0, np.array([0, 1, 2]))
        # Access 0 fills cold; accesses 1 and 2 each evict before filling.
        assert r.fills.tolist() == [0, 1, 2]
        assert r.evictions.tolist() == [0, 1]
        assert r.evict_fill_pos.tolist() == [1, 2]

    def test_invalid_core_rejected(self):
        c = small_cache(cores=2)
        with pytest.raises(ConfigurationError):
            c.access_batch(7, np.array([0]))

    def test_stats_accumulate(self):
        c = small_cache()
        c.access_batch(0, np.array([0, 0, 1]))
        c.access_batch(1, np.array([2]))
        assert c.stats.hits[0] == 1
        assert c.stats.misses[0] == 2
        assert c.stats.misses[1] == 1
        assert c.stats.miss_rate() == pytest.approx(3 / 4)

    def test_reset(self):
        c = small_cache()
        c.access_batch(0, np.array([0, 1, 2]))
        c.reset()
        assert c.footprint_lines() == 0
        assert c.stats.total_accesses == 0
        assert not c.contains(0)

    def test_footprint_and_residents(self):
        c = small_cache(sets=4, ways=2)
        c.access_batch(0, np.array([0, 1, 2]))
        assert c.footprint_lines() == 3
        assert sorted(c.resident_blocks().tolist()) == [0, 1, 2]

    def test_occupancy_by_core_attribution(self):
        c = small_cache(sets=4, ways=2, cores=2)
        c.access_batch(0, np.array([0, 1]))
        c.access_batch(1, np.array([2, 3]))
        assert c.occupancy_by_core().tolist() == [2, 2]

    def test_empty_batch(self):
        c = small_cache()
        r = c.access_batch(0, np.array([], dtype=np.int64))
        assert r.hits == 0 and r.misses == 0 and r.accesses == 0


class TestSharedBehaviour:
    def test_cross_core_hits(self):
        # A block filled by core 0 hits when core 1 touches it (shared L2).
        c = small_cache()
        c.access_one(0, 9)
        hit, _ = c.access_one(1, 9)
        assert hit

    def test_interference_evicts_other_cores_lines(self):
        c = small_cache(sets=1, ways=2, cores=2)
        c.access_batch(0, np.array([0, 1]))
        c.access_batch(1, np.array([2, 3]))  # evicts both of core 0's lines
        assert c.occupancy_by_core().tolist() == [0, 2]


class TestPaperFigure1:
    def test_same_miss_rate_different_footprint(self):
        """Figure 1: two 100%-miss strided patterns with 8x different footprints.

        App A strides over blocks mapping to a single set of an 8-set
        direct-mapped cache; App B touches 4 different sets. Both always
        miss, yet A's footprint is 1 line and B's is 4 lines.
        """
        ca = SetAssociativeCache(tiny_cache(sets=8, ways=1))
        cb = SetAssociativeCache(tiny_cache(sets=8, ways=1))
        # A: conflicting blocks 0, 8, 16, ... (all set 0).
        a_blocks = np.arange(32, dtype=np.int64) * 8
        ra = ca.access_batch(0, a_blocks)
        # B: blocks cycling over sets 0..3 with distinct tags each round.
        b_blocks = np.asarray(
            [8 * round_ + s for round_ in range(8) for s in range(4)], dtype=np.int64
        )
        rb = cb.access_batch(0, b_blocks)
        assert ra.misses == len(a_blocks)  # 100% miss
        assert rb.misses == len(b_blocks)  # 100% miss
        assert ca.footprint_lines() == 1
        assert cb.footprint_lines() == 4


@pytest.mark.parametrize("policy", ["random", "plru"])
class TestGenericPolicies:
    def test_hit_after_fill(self, policy):
        c = small_cache(policy=policy)
        c.access_one(0, 3)
        hit, _ = c.access_one(0, 3)
        assert hit

    def test_eviction_happens_when_full(self, policy):
        c = small_cache(sets=1, ways=2, policy=policy)
        r = c.access_batch(0, np.arange(10, dtype=np.int64))
        assert len(r.evictions) == 8
        assert c.footprint_lines() == 2

    def test_reset(self, policy):
        c = small_cache(policy=policy)
        c.access_batch(0, np.array([0, 1, 2]))
        c.reset()
        assert c.footprint_lines() == 0
        assert c.resident_blocks().tolist() == []

    def test_occupancy_by_core(self, policy):
        c = small_cache(sets=8, ways=2, policy=policy, cores=2)
        c.access_batch(0, np.array([0, 1]))
        c.access_batch(1, np.array([2]))
        assert c.occupancy_by_core().tolist() == [2, 1]


class ReferenceLRUCache:
    """Dict-of-lists reference model for differential testing."""

    def __init__(self, sets, ways):
        self.sets, self.ways = sets, ways
        self.state = {s: [] for s in range(sets)}

    def access(self, block):
        line = self.state[block % self.sets]
        if block in line:
            line.remove(block)
            line.insert(0, block)
            return True, None
        evicted = line.pop() if len(line) == self.ways else None
        line.insert(0, block)
        return False, evicted


class TestDifferentialAgainstReference:
    @given(
        st.integers(min_value=0, max_value=3),  # log2 sets
        st.integers(min_value=1, max_value=4),  # ways
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
    )
    @settings(max_examples=80, deadline=None)
    def test_hits_and_evictions_match(self, log_sets, ways, blocks):
        sets = 1 << log_sets
        cache = SetAssociativeCache(tiny_cache(sets=sets, ways=ways))
        ref = ReferenceLRUCache(sets, ways)
        for block in blocks:
            hit, evicted = cache.access_one(0, block)
            ref_hit, ref_evicted = ref.access(block)
            assert hit == ref_hit
            assert evicted == ref_evicted

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_singles(self, blocks):
        a = SetAssociativeCache(tiny_cache(sets=8, ways=2))
        b = SetAssociativeCache(tiny_cache(sets=8, ways=2))
        arr = np.asarray(blocks, dtype=np.int64)
        ra = a.access_batch(0, arr)
        hits_b = 0
        evictions_b = []
        for block in blocks:
            hit, evicted = b.access_one(0, block)
            hits_b += hit
            if evicted is not None:
                evictions_b.append(evicted)
        assert ra.hits == hits_b
        assert ra.evictions.tolist() == evictions_b
        assert sorted(a.resident_blocks().tolist()) == sorted(
            b.resident_blocks().tolist()
        )

    @given(st.lists(st.integers(min_value=0, max_value=127), max_size=250))
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, blocks):
        c = SetAssociativeCache(tiny_cache(sets=4, ways=2))
        r = c.access_batch(0, np.asarray(blocks, dtype=np.int64))
        # Conservation: every access is a hit or a miss.
        assert r.hits + r.misses == len(blocks)
        # Evictions never exceed fills; footprint = fills - evictions.
        assert len(r.evictions) <= len(r.fills)
        assert c.footprint_lines() == len(r.fills) - len(r.evictions)
        # No duplicates resident.
        res = c.resident_blocks().tolist()
        assert len(res) == len(set(res))
        # Footprint bounded by capacity and by distinct blocks touched.
        assert c.footprint_lines() <= min(8, len(set(blocks)))
