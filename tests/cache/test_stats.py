"""Tests for cache statistics accounting."""

import pytest

from repro.cache.stats import CacheStats


class TestCacheStats:
    def test_initial_zero(self):
        s = CacheStats(num_cores=2)
        assert s.total_accesses == 0
        assert s.miss_rate() == 0.0

    def test_record_and_rates(self):
        s = CacheStats(num_cores=2)
        s.record(0, hits=3, misses=1, evictions=1)
        s.record(1, hits=0, misses=4, evictions=2)
        assert s.total_hits == 3
        assert s.total_misses == 5
        assert s.evictions == 3
        assert s.miss_rate() == pytest.approx(5 / 8)
        assert s.miss_rate(core=0) == pytest.approx(1 / 4)
        assert s.miss_rate(core=1) == 1.0

    def test_per_core_rate_no_accesses(self):
        s = CacheStats(num_cores=2)
        assert s.miss_rate(core=1) == 0.0

    def test_reset(self):
        s = CacheStats(num_cores=1)
        s.record(0, 1, 1, 1)
        s.reset()
        assert s.total_accesses == 0
        assert s.evictions == 0

    def test_snapshot(self):
        s = CacheStats(num_cores=2)
        s.record(0, 2, 2, 0)
        snap = s.snapshot()
        assert snap["hits"] == [2, 0]
        assert snap["misses"] == [2, 0]
        assert snap["miss_rate"] == pytest.approx(0.5)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            CacheStats(num_cores=0)
