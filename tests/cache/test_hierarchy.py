"""Tests for the private-L1 + shared-L2 hierarchy."""

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import tiny_cache
from repro.cache.hierarchy import CacheHierarchy
from repro.errors import ConfigurationError


def make_hierarchy(l1=True, cores=2):
    l2 = SetAssociativeCache(tiny_cache(sets=16, ways=4), num_cores=cores)
    l1_cfg = tiny_cache(sets=2, ways=2) if l1 else None
    return CacheHierarchy(l2, l1_cfg)


class TestNoL1:
    def test_pass_through(self):
        h = make_hierarchy(l1=False)
        r = h.access_batch(0, np.array([1, 2, 1]))
        assert r.l1_hits == 0
        assert r.l2_hits == 1
        assert r.l2_misses == 2

    def test_flush_l1_noop(self):
        make_hierarchy(l1=False).flush_l1(0)


class TestWithL1:
    def test_l1_filters_repeats(self):
        h = make_hierarchy()
        r = h.access_batch(0, np.array([5, 5, 5, 5]))
        assert r.l1_hits == 3
        assert r.l2_misses == 1

    def test_all_l1_hits_skip_l2(self):
        h = make_hierarchy()
        h.access_batch(0, np.array([5]))
        r = h.access_batch(0, np.array([5, 5]))
        assert r.l2 is None
        assert r.l1_hits == 2
        assert r.l2_hits == 0 and r.l2_misses == 0

    def test_l1s_are_private(self):
        h = make_hierarchy()
        h.access_batch(0, np.array([5]))
        # Core 1 misses its own L1 but hits the shared L2.
        r = h.access_batch(1, np.array([5]))
        assert r.l1_hits == 0
        assert r.l2_hits == 1

    def test_l1_capacity_spills_to_l2(self):
        h = make_hierarchy()  # L1: 2 sets x 2 ways = 4 lines
        blocks = np.arange(8, dtype=np.int64)
        h.access_batch(0, blocks)
        r = h.access_batch(0, blocks)
        # Working set exceeds L1, so repeats still reach L2 and hit there.
        assert r.l2_hits > 0

    def test_flush_l1(self):
        h = make_hierarchy()
        h.access_batch(0, np.array([5]))
        h.flush_l1(0)
        r = h.access_batch(0, np.array([5]))
        assert r.l1_hits == 0
        assert r.l2_hits == 1  # still resident in shared L2

    def test_reset(self):
        h = make_hierarchy()
        h.access_batch(0, np.array([1, 2, 3]))
        h.reset()
        assert h.l2.footprint_lines() == 0
        r = h.access_batch(0, np.array([1]))
        assert r.l1_hits == 0 and r.l2_misses == 1

    def test_line_size_mismatch_rejected(self):
        l2 = SetAssociativeCache(tiny_cache(sets=16, ways=4, line_bytes=64))
        bad_l1 = tiny_cache(sets=2, ways=2, line_bytes=32)
        with pytest.raises(ConfigurationError):
            CacheHierarchy(l2, bad_l1)

    def test_accesses_counted(self):
        h = make_hierarchy()
        r = h.access_batch(0, np.array([1, 2, 3]))
        assert r.accesses == 3
