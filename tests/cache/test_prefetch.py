"""Tests for the next-N-line prefetching cache wrapper."""

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import tiny_cache
from repro.cache.prefetch import PrefetchingCache
from repro.core.signature import SignatureConfig, SignatureUnit


def make(degree=1, sets=16, ways=4):
    inner = SetAssociativeCache(tiny_cache(sets=sets, ways=ways), num_cores=2)
    return PrefetchingCache(inner, degree=degree)


class TestPrefetchingCache:
    def test_next_line_brought_in(self):
        cache = make()
        cache.access_batch(0, np.array([10]))
        assert cache.contains(10)  # demand
        assert cache.contains(11)  # prefetched

    def test_degree_controls_depth(self):
        cache = make(degree=3)
        cache.access_batch(0, np.array([10]))
        for block in (11, 12, 13):
            assert cache.contains(block)
        assert not cache.contains(14)

    def test_demand_stats_exclude_prefetch_lookups(self):
        cache = make()
        result = cache.access_batch(0, np.array([10, 20]))
        assert result.hits == 0 and result.misses == 2
        assert cache.stats.total_accesses == 2

    def test_prefetch_hides_future_miss(self):
        cache = make()
        cache.access_batch(0, np.array([10]))
        result = cache.access_batch(0, np.array([11]))
        assert result.hits == 1  # covered by the prefetch

    def test_no_prefetch_on_all_hits(self):
        cache = make()
        cache.access_batch(0, np.array([10]))
        issued_before = cache.prefetch_stats.issued
        cache.access_batch(0, np.array([10, 11]))
        assert cache.prefetch_stats.issued == issued_before

    def test_useless_prefetch_counted(self):
        cache = make()
        cache.access_batch(0, np.array([11]))   # brings 11 (demand) and 12
        cache.access_batch(0, np.array([10]))   # prefetch of 11: already in
        assert cache.prefetch_stats.useless >= 1
        assert 0.0 <= cache.prefetch_stats.useful_issue_rate <= 1.0

    def test_event_stream_includes_prefetch_fills(self):
        cache = make()
        result = cache.access_batch(0, np.array([10]))
        assert sorted(result.fills.tolist()) == [10, 11]
        assert len(result.fill_slots) == 2

    def test_events_feed_signature_unit(self):
        cache = make()
        unit = SignatureUnit(
            SignatureConfig(num_cores=2, num_sets=16, ways=4, counter_bits=8)
        )
        result = cache.access_batch(0, np.array([10, 50]))
        unit.record_events(
            0, result.fills, result.fill_slots, result.evictions,
            result.evict_slots, result.evict_fill_pos,
        )
        # Demand + prefetch fills are all tracked.
        assert unit.stats.fills_tracked == len(result.fills) == 4

    def test_prefetcher_amplifies_stream_pollution(self):
        plain = SetAssociativeCache(tiny_cache(sets=16, ways=4), num_cores=2)
        pf = make(degree=2)
        victim_blocks = np.arange(16) * 16  # one block per set
        stream = np.arange(1000, 1032)
        for cache in (plain, pf):
            cache.access_batch(0, victim_blocks)
            cache.access_batch(1, stream)
        # The prefetching cache evicted at least as many victim lines.
        plain_left = sum(plain.contains(int(b)) for b in victim_blocks)
        pf_left = sum(pf.contains(int(b)) for b in victim_blocks)
        assert pf_left <= plain_left

    def test_reset(self):
        cache = make()
        cache.access_batch(0, np.array([10]))
        cache.reset()
        assert cache.footprint_lines() == 0
        assert cache.prefetch_stats.issued == 0

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            make(degree=0)
