"""Differential tests between replacement policies at the cache level."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import tiny_cache


def run_trace(policy, blocks, sets=8, ways=4, seed=0):
    cache = SetAssociativeCache(
        tiny_cache(sets=sets, ways=ways, replacement=policy), seed=seed
    )
    result = cache.access_batch(0, np.asarray(blocks, dtype=np.int64))
    return cache, result


class TestPolicyDifferential:
    @given(st.lists(st.integers(min_value=0, max_value=127), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_all_policies_agree_on_miss_count_lower_bound(self, blocks):
        # Compulsory (first-touch) misses are policy-independent.
        distinct = len(set(blocks))
        for policy in ("lru", "random", "plru"):
            _, result = run_trace(policy, blocks)
            assert result.misses >= distinct - 8 * 4  # minus capacity
            assert result.misses >= 0

    @given(st.lists(st.integers(min_value=0, max_value=31), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_within_capacity_all_policies_identical(self, blocks):
        # Working set fits entirely (32 blocks into 32 lines): every policy
        # gives exactly one miss per distinct block and no evictions.
        for policy in ("lru", "random", "plru"):
            cache, result = run_trace(policy, blocks)
            assert result.misses == len(set(blocks))
            assert len(result.evictions) == 0

    def test_lru_beats_random_on_looping_reuse(self):
        # A loop slightly within one set's capacity: LRU retains it fully,
        # random eviction loses lines.
        blocks = [b * 8 for b in range(4)] * 50  # 4 blocks, all set 0
        _, lru = run_trace("lru", blocks)
        _, rnd = run_trace("random", blocks, seed=1)
        assert lru.misses <= rnd.misses

    def test_plru_between_lru_and_pathological(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 64, 2000)
        _, lru = run_trace("lru", blocks)
        _, plru = run_trace("plru", blocks)
        # PLRU approximates LRU: within 20% miss count on random traffic.
        assert abs(plru.misses - lru.misses) <= 0.2 * lru.misses + 5

    @given(
        st.sampled_from(["random", "plru"]),
        st.lists(st.integers(min_value=0, max_value=255), max_size=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_generic_path_conservation(self, policy, blocks):
        cache, result = run_trace(policy, blocks)
        assert result.hits + result.misses == len(blocks)
        assert cache.footprint_lines() == len(result.fills) - len(result.evictions)
        resident = cache.resident_blocks().tolist()
        assert len(resident) == len(set(resident))
