"""Tests for replacement-policy state machines."""

import pytest

from repro.cache.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.errors import ConfigurationError


class TestLRUPolicy:
    def test_victim_is_least_recent(self):
        p = LRUPolicy(num_sets=1, ways=4)
        for way in [0, 1, 2, 3, 0, 1, 2]:
            p.on_access(0, way)
        assert p.victim(0) == 3

    def test_sets_independent(self):
        p = LRUPolicy(num_sets=2, ways=2)
        p.on_access(0, 1)
        p.on_access(1, 0)
        assert p.victim(0) == 0
        assert p.victim(1) == 1

    def test_reset(self):
        p = LRUPolicy(num_sets=1, ways=2)
        p.on_access(0, 0)
        p.reset()
        assert p.victim(0) == 0


class TestRandomPolicy:
    def test_victims_in_range(self):
        p = RandomPolicy(num_sets=1, ways=4, seed=1)
        for _ in range(100):
            assert 0 <= p.victim(0) < 4

    def test_seeded_reproducible(self):
        a = [RandomPolicy(1, 4, seed=3).victim(0) for _ in range(5)]
        b = [RandomPolicy(1, 4, seed=3).victim(0) for _ in range(5)]
        assert a == b

    def test_reset_replays(self):
        p = RandomPolicy(1, 4, seed=9)
        first = [p.victim(0) for _ in range(5)]
        p.reset()
        assert [p.victim(0) for _ in range(5)] == first

    def test_covers_all_ways(self):
        p = RandomPolicy(1, 4, seed=0)
        assert {p.victim(0) for _ in range(200)} == {0, 1, 2, 3}


class TestTreePLRU:
    def test_requires_pow2_ways(self):
        with pytest.raises(ConfigurationError):
            TreePLRUPolicy(num_sets=1, ways=3)

    def test_single_way(self):
        p = TreePLRUPolicy(num_sets=1, ways=1)
        p.on_access(0, 0)
        assert p.victim(0) == 0

    def test_victim_avoids_most_recent(self):
        p = TreePLRUPolicy(num_sets=1, ways=4)
        p.on_access(0, 2)
        assert p.victim(0) != 2

    def test_round_robin_touch_pattern(self):
        # Touch all ways in order: PLRU then victimises way 0 first.
        p = TreePLRUPolicy(num_sets=1, ways=4)
        for way in range(4):
            p.on_access(0, way)
        assert p.victim(0) == 0

    def test_plru_approximates_lru_on_sequential(self):
        plru = TreePLRUPolicy(num_sets=1, ways=8)
        lru = LRUPolicy(num_sets=1, ways=8)
        for way in [0, 1, 2, 3, 4, 5, 6, 7]:
            plru.on_access(0, way)
            lru.on_access(0, way)
        assert plru.victim(0) == lru.victim(0) == 0

    def test_reset(self):
        p = TreePLRUPolicy(num_sets=1, ways=4)
        p.on_access(0, 3)
        p.reset()
        assert p.victim(0) == 0


class TestMakePolicy:
    @pytest.mark.parametrize(
        "kind,cls", [("lru", LRUPolicy), ("random", RandomPolicy), ("plru", TreePLRUPolicy)]
    )
    def test_factory(self, kind, cls):
        assert isinstance(make_policy(kind, 4, 4), cls)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_policy("fifo", 4, 4)
