"""Tests for cache geometry/config and the paper's machine presets."""

import pytest

from repro.cache.config import (
    CacheConfig,
    CacheGeometry,
    core2duo_l2,
    p4xeon_l2,
    tiny_cache,
    typical_l1,
)
from repro.errors import ConfigurationError, GeometryError


class TestCacheGeometry:
    def test_derived_quantities(self):
        g = CacheGeometry(size_bytes=4 * 1024 * 1024, line_bytes=64, ways=16)
        assert g.num_lines == 65536
        assert g.num_sets == 4096
        assert g.line_bits == 6

    def test_block_of(self):
        g = CacheGeometry(size_bytes=64 * 1024, line_bytes=64, ways=8)
        assert g.block_of(0) == 0
        assert g.block_of(63) == 0
        assert g.block_of(64) == 1
        assert g.block_of(1000) == 15

    def test_set_of_block(self):
        g = CacheGeometry(size_bytes=64 * 1024, line_bytes=64, ways=8)  # 128 sets
        assert g.set_of_block(0) == 0
        assert g.set_of_block(127) == 127
        assert g.set_of_block(128) == 0

    def test_rejects_indivisible_size(self):
        with pytest.raises(GeometryError):
            CacheGeometry(size_bytes=1000, line_bytes=64, ways=8)

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=64 * 48 * 8, line_bytes=48, ways=8)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=3 * 64 * 8, line_bytes=64, ways=8)

    def test_str(self):
        assert str(core2duo_l2().geometry) == "4096KB/16-way/64B"


class TestPresets:
    def test_core2duo_matches_paper(self):
        # "4MB 16-way shared L2", 64-byte lines (Section 5.4 overhead calc).
        cfg = core2duo_l2()
        assert cfg.geometry.size_bytes == 4 * 1024 * 1024
        assert cfg.geometry.ways == 16
        assert cfg.geometry.line_bytes == 64
        assert cfg.geometry.num_lines == 65536

    def test_p4xeon_matches_paper(self):
        # "private 2MB 8-way L2".
        cfg = p4xeon_l2()
        assert cfg.geometry.size_bytes == 2 * 1024 * 1024
        assert cfg.geometry.ways == 8

    def test_typical_l1(self):
        cfg = typical_l1()
        assert cfg.geometry.size_bytes == 32 * 1024

    def test_tiny_cache_figure1_shape(self):
        # Figure 1 uses an 8-set direct-mapped cache.
        cfg = tiny_cache(sets=8, ways=1)
        assert cfg.geometry.num_sets == 8
        assert cfg.geometry.ways == 1

    def test_replacement_validated(self):
        with pytest.raises(GeometryError):
            CacheConfig(name="x", geometry=core2duo_l2().geometry, replacement="fifo")

    @pytest.mark.parametrize("policy", ["lru", "random", "plru"])
    def test_presets_accept_policy(self, policy):
        assert core2duo_l2(policy).replacement == policy
