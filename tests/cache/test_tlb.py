"""Tests for TLB and page-fault models (Figure 2 counters)."""

import numpy as np
import pytest

from repro.cache.tlb import TLB, PageFaultTracker


class TestTLB:
    def test_cold_misses_then_hits(self):
        tlb = TLB(entries=4)
        assert tlb.access_pages(np.array([1, 2, 3])) == 3
        assert tlb.access_pages(np.array([1, 2, 3])) == 0
        assert tlb.hits == 3 and tlb.misses == 3

    def test_capacity_eviction_lru(self):
        tlb = TLB(entries=2)
        tlb.access_pages(np.array([1, 2]))
        tlb.access_pages(np.array([1]))      # 2 is now LRU
        tlb.access_pages(np.array([3]))      # evicts 2
        assert tlb.access_pages(np.array([1])) == 0
        assert tlb.access_pages(np.array([2])) == 1

    def test_page_of(self):
        tlb = TLB(page_bytes=4096)
        assert tlb.page_of(0) == 0
        assert tlb.page_of(4095) == 0
        assert tlb.page_of(4096) == 1

    def test_access_addresses(self):
        tlb = TLB(entries=8)
        # Two addresses in the same page -> one miss.
        assert tlb.access_addresses(np.array([100, 200])) == 1

    def test_miss_rate(self):
        tlb = TLB(entries=8)
        assert tlb.miss_rate() == 0.0
        tlb.access_pages(np.array([1, 1, 1, 2]))
        assert tlb.miss_rate() == pytest.approx(0.5)

    def test_reset(self):
        tlb = TLB(entries=4)
        tlb.access_pages(np.array([1]))
        tlb.reset()
        assert tlb.misses == 0
        assert tlb.access_pages(np.array([1])) == 1

    def test_small_working_set_low_misses_large_high(self):
        # The property Figure 2 relies on: TLB misses track page locality,
        # not cache footprint.
        small, large = TLB(entries=16), TLB(entries=16)
        rng = np.random.default_rng(0)
        small.access_pages(rng.integers(0, 8, 2000))
        large.access_pages(rng.integers(0, 1000, 2000))
        assert small.miss_rate() < 0.05
        assert large.miss_rate() > 0.5


class TestPageFaultTracker:
    def test_first_touch_faults_once(self):
        t = PageFaultTracker()
        assert t.touch_pages(np.array([1, 2, 1, 2])) == 2
        assert t.touch_pages(np.array([1, 2])) == 0
        assert t.faults == 2

    def test_resident_limit_evicts_lru(self):
        t = PageFaultTracker(resident_limit=2)
        t.touch_pages(np.array([1, 2]))
        t.touch_pages(np.array([1]))
        t.touch_pages(np.array([3]))  # evicts page 2
        assert t.touch_pages(np.array([2])) == 1

    def test_touch_addresses(self):
        t = PageFaultTracker(page_bytes=4096)
        assert t.touch_addresses(np.array([0, 100, 5000])) == 2

    def test_resident_pages(self):
        t = PageFaultTracker(resident_limit=3)
        t.touch_pages(np.array([1, 2, 3, 4]))
        assert t.resident_pages == 3

    def test_reset(self):
        t = PageFaultTracker()
        t.touch_pages(np.array([7]))
        t.reset()
        assert t.faults == 0
        assert t.resident_pages == 0

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            PageFaultTracker(resident_limit=0)
