"""Symbol table: qnames, re-export chasing, hierarchy, attr types."""

from tests.flow.conftest import make_program

from repro.flow.symbols import SymbolTable


def test_canonicalize_chases_package_reexport():
    program = make_program(
        (
            "pkg",
            '"""Package root."""\n'
            "from pkg.impl import Thing, make\n"
            '__all__ = ["Thing", "make"]\n',
        ),
        (
            "pkg.impl",
            '"""Impl."""\n'
            "class Thing:\n"
            '    """A thing."""\n'
            "    def poke(self):\n"
            '        """Poke."""\n'
            "        return 1\n"
            "def make():\n"
            '    """Factory."""\n'
            "    return Thing()\n",
        ),
    )
    table = SymbolTable(program)
    assert table.canonicalize("pkg.Thing") == "pkg.impl.Thing"
    assert table.canonicalize("pkg.make") == "pkg.impl.make"
    assert table.canonicalize("pkg.Thing.poke") == "pkg.impl.Thing.poke"
    # Unknown names come back as deeply resolved as possible, unchanged
    # here — callers treat them as external.
    assert table.canonicalize("json.dumps") == "json.dumps"


def test_method_resolution_walks_linked_bases():
    program = make_program(
        (
            "pkg.base",
            '"""Base."""\n'
            "class Base:\n"
            '    """Base."""\n'
            "    def shared(self):\n"
            '        """Inherited method."""\n'
            "        return 0\n",
        ),
        (
            "pkg.derived",
            '"""Derived."""\n'
            "from pkg.base import Base\n"
            "class Derived(Base):\n"
            '    """Derived."""\n'
            "    def own(self):\n"
            '        """Own method."""\n'
            "        return 1\n",
        ),
    )
    table = SymbolTable(program)
    assert (
        table.resolve_method("pkg.derived.Derived", "own")
        == "pkg.derived.Derived.own"
    )
    assert (
        table.resolve_method("pkg.derived.Derived", "shared")
        == "pkg.base.Base.shared"
    )
    assert table.resolve_method("pkg.derived.Derived", "missing") is None


def test_nested_function_qnames_use_locals_convention():
    program = make_program(
        (
            "pkg.mod",
            '"""Doc."""\n'
            "def outer():\n"
            '    """Outer."""\n'
            "    def inner():\n"
            '        """Inner."""\n'
            "        return 1\n"
            "    return inner\n",
        )
    )
    table = SymbolTable(program)
    assert "pkg.mod.outer" in table.functions
    assert "pkg.mod.outer.<locals>.inner" in table.functions


def test_attr_type_inferred_from_constructor_assignment():
    program = make_program(
        (
            "pkg.parts",
            '"""Parts."""\n'
            "class Gearbox:\n"
            '    """Gearbox."""\n'
            "    def shift(self):\n"
            '        """Shift."""\n'
            "        return 1\n",
        ),
        (
            "pkg.car",
            '"""Car."""\n'
            "from pkg.parts import Gearbox\n"
            "class Car:\n"
            '    """Car."""\n'
            "    def __init__(self):\n"
            '        """Init."""\n'
            "        self.gearbox = Gearbox()\n",
        ),
    )
    table = SymbolTable(program)
    assert (
        table.attr_type("pkg.car.Car", "gearbox") == "pkg.parts.Gearbox"
    )


def test_attr_type_inferred_from_optional_annotated_param():
    program = make_program(
        (
            "pkg.parts",
            '"""Parts."""\n'
            "class Recorder:\n"
            '    """Recorder."""\n'
            "    def log(self):\n"
            '        """Log."""\n'
            "        return 1\n",
        ),
        (
            "pkg.host",
            '"""Host."""\n'
            "from typing import Optional\n"
            "from pkg.parts import Recorder\n"
            "class Host:\n"
            '    """Host."""\n'
            "    def __init__(self, recorder: Optional[Recorder] = None):\n"
            '        """Init."""\n'
            "        self.recorder = recorder\n",
        ),
    )
    table = SymbolTable(program)
    assert (
        table.attr_type("pkg.host.Host", "recorder") == "pkg.parts.Recorder"
    )


def test_conflicting_attr_types_demote_to_unknown():
    program = make_program(
        (
            "pkg.mod",
            '"""Doc."""\n'
            "class A:\n"
            '    """A."""\n'
            "    def go(self):\n"
            '        """Go."""\n'
            "        return 1\n"
            "class B:\n"
            '    """B."""\n'
            "    def go(self):\n"
            '        """Go."""\n'
            "        return 2\n"
            "class Holder:\n"
            '    """Assigns conflicting types to one attribute."""\n'
            "    def __init__(self):\n"
            '        """Init."""\n'
            "        self.thing = A()\n"
            "    def swap(self):\n"
            '        """Rebinds to a different class."""\n'
            "        self.thing = B()\n",
        )
    )
    table = SymbolTable(program)
    # A wrong edge is worse than no edge: conflicting evidence wins
    # nothing.
    assert table.attr_type("pkg.mod.Holder", "thing") is None
