"""RPR603 — cross-function fsync-before-rename.

The per-file RPR201/RPR502 rules check one function at a time; these
cases split the fsync and the rename across functions and modules, so
only the spliced whole-program event stream can order them.
"""

from tests.flow.conftest import codes_of, flow_violations

from repro.lint import lint_source

#: A publish helper OUTSIDE the durable packages. It uses ``os.rename``
#: deliberately: RPR201 only audits ``os.replace`` (everywhere) and
#: RPR502 only applies inside the durable packages, so this spelling in
#: this module is invisible to every per-file rule.
NAKED_PUBLISHER = (
    "repro.io.atomic",
    '"""Publish helper outside the durable scope."""\n'
    "import os\n"
    "def publish(tmp, final):\n"
    '    """Renames without syncing."""\n'
    "    os.rename(tmp, final)\n",
)


def test_unsynced_helper_rename_flags_at_durable_root():
    caller = (
        "repro.durable.store",
        '"""Durable code delegating its publish."""\n'
        "from repro.io.atomic import publish\n"
        "def save(tmp, final):\n"
        '    """No fsync anywhere on the path."""\n'
        "    publish(tmp, final)\n",
    )
    violations = flow_violations(
        NAKED_PUBLISHER, caller, select=("RPR603",)
    )
    assert codes_of(violations) == ["RPR603"]
    v = violations[0]
    assert v.path == "src/repro/durable/store.py"
    assert "os.rename" in v.message
    assert "repro.io.atomic" in v.message


def test_per_file_rules_provably_cannot_catch_it():
    # The durable module has no rename; the helper module is outside
    # RPR502's scope (and fsyncless os.replace there is legal).
    caller_module = "repro.durable.store"
    caller_source = (
        '"""Durable code delegating its publish."""\n'
        "from repro.io.atomic import publish\n"
        "def save(tmp, final):\n"
        '    """No fsync anywhere on the path."""\n'
        "    publish(tmp, final)\n"
    )
    assert lint_source("store.py", caller_source, module=caller_module) == []
    helper_module, helper_source = NAKED_PUBLISHER
    assert (
        lint_source("atomic.py", helper_source, module=helper_module) == []
    )


def test_fsync_in_root_before_the_call_orders_the_publish():
    caller = (
        "repro.durable.store",
        '"""Durable code that syncs before delegating."""\n'
        "import os\n"
        "from repro.io.atomic import publish\n"
        "def save(fd, tmp, final):\n"
        '    """fsync first, then publish."""\n'
        "    os.fsync(fd)\n"
        "    publish(tmp, final)\n",
    )
    assert (
        flow_violations(NAKED_PUBLISHER, caller, select=("RPR603",)) == []
    )


def test_fsync_inside_helper_before_rename_is_clean():
    helper = (
        "repro.io.atomic",
        '"""Helper that syncs itself."""\n'
        "import os\n"
        "def publish(fd, tmp, final):\n"
        '    """Correct order inside the helper."""\n'
        "    os.fsync(fd)\n"
        "    os.replace(tmp, final)\n",
    )
    caller = (
        "repro.durable.store",
        '"""Durable caller."""\n'
        "from repro.io.atomic import publish\n"
        "def save(fd, tmp, final):\n"
        '    """Helper owns the ordering."""\n'
        "    publish(fd, tmp, final)\n",
    )
    assert flow_violations(helper, caller, select=("RPR603",)) == []


def test_fsync_after_the_call_does_not_excuse_it():
    caller = (
        "repro.durable.store",
        '"""Durable code syncing too late."""\n'
        "import os\n"
        "from repro.io.atomic import publish\n"
        "def save(fd, tmp, final):\n"
        '    """Wrong order."""\n'
        "    publish(tmp, final)\n"
        "    os.fsync(fd)\n",
    )
    violations = flow_violations(
        NAKED_PUBLISHER, caller, select=("RPR603",)
    )
    assert codes_of(violations) == ["RPR603"]


def test_direct_rename_in_durable_root_is_left_to_per_file_rules():
    caller = (
        "repro.durable.store",
        '"""Direct rename — RPR502/RPR201 territory, not RPR603."""\n'
        "import os\n"
        "def save(tmp, final):\n"
        '    """Direct, unsynced — but per-file rules own this."""\n'
        "    os.rename(tmp, final)\n",
    )
    assert flow_violations(caller, select=("RPR603",)) == []
    # ...and the per-file rule does fire on it:
    module, source = caller
    assert "RPR502" in codes_of(lint_source("s.py", source, module=module))


def test_recursive_chain_terminates():
    helper = (
        "repro.io.atomic",
        '"""Mutually recursive helpers ending in a rename."""\n'
        "import os\n"
        "def a(tmp, final):\n"
        '    """Recurses."""\n'
        "    b(tmp, final)\n"
        "def b(tmp, final):\n"
        '    """Recurses back, then renames."""\n'
        "    a(tmp, final)\n"
        "    os.replace(tmp, final)\n",
    )
    caller = (
        "repro.durable.store",
        '"""Durable caller of the cycle."""\n'
        "from repro.io.atomic import a\n"
        "def save(tmp, final):\n"
        '    """Must terminate and still flag."""\n'
        "    a(tmp, final)\n",
    )
    violations = flow_violations(helper, caller, select=("RPR603",))
    assert codes_of(violations) == ["RPR603"]
