"""Fixture entry module: calls through the package re-export."""

from graphpkg import Engine, tick


def boot():
    """Construct an engine through the re-export and tick once."""
    engine = Engine()
    engine.warm_up()
    return tick()
