"""Fixture package root: re-exports for canonicalisation tests."""

from graphpkg.engine import Engine, tick

__all__ = ["Engine", "tick"]
