"""Fixture engine: hierarchy dispatch, cycles, spawns, dynamic calls."""

import asyncio


class Base:
    """Base class carrying the template-method pattern."""

    def hook(self):
        """Overridable hook."""
        return 0

    def template(self):
        """Dispatches the hook through the hierarchy."""
        return self.hook()


class Engine(Base):
    """Derived engine with its own hook and an async side."""

    def __init__(self):
        """Set up the tick counter."""
        self.count = 0

    def hook(self):
        """Override reached via Base.template's self.hook()."""
        return ping(1)

    async def start(self):
        """Spawn the worker as a concurrent task."""
        asyncio.create_task(self.worker())

    async def worker(self):
        """Run one tick on the loop."""
        return tick()


def tick():
    """Mutually recursive with tock — a deliberate cycle."""
    return tock()


def tock():
    """Mutually recursive with tick — a deliberate cycle."""
    return tick()


def ping(n):
    """Leaf helper."""
    return n


def dispatch(callback):
    """Call a dynamic target — must be *reported* unresolved."""
    return callback()
