"""RPR602 — transitive async-blocking in the service package.

Every flagged case is invisible to the lexical RPR501 (the coroutine
contains no blocking call itself), including the alias spellings —
which RPR501 *does* catch when they are lexical, a regression pinned in
``tests/lint/test_service_rules.py``.
"""

from tests.flow.conftest import codes_of, flow_violations

from repro.lint import lint_source

SYNC_SLEEPER = (
    "repro.service.helpers",
    '"""Sync helper that blocks."""\n'
    "import time\n"
    "def settle():\n"
    '    """Blocks by design."""\n'
    "    time.sleep(0.1)\n",
)

ASYNC_CALLER = (
    "repro.service.loop",
    '"""Coroutine with no lexical blocking call."""\n'
    "from repro.service.helpers import settle\n"
    "async def run():\n"
    '    """Blocks through the helper."""\n'
    "    settle()\n",
)


def test_one_hop_blocking_chain_flags():
    violations = flow_violations(
        SYNC_SLEEPER, ASYNC_CALLER, select=("RPR602",)
    )
    assert codes_of(violations) == ["RPR602"]
    v = violations[0]
    assert v.path == "src/repro/service/loop.py"
    assert "time.sleep" in v.message
    assert "settle" in v.message


def test_per_file_rpr501_provably_cannot_catch_it():
    module, source = ASYNC_CALLER
    assert lint_source("loop.py", source, module=module) == []


def test_alias_spelling_subsumed_through_one_hop():
    # Satellite check: the helper uses the aliased import spelling; the
    # chain still resolves and flags.
    helper = (
        "repro.service.helpers",
        '"""Aliased blocking helper."""\n'
        "from time import sleep as pause\n"
        "def settle():\n"
        '    """Blocks via an alias."""\n'
        "    pause(0.1)\n",
    )
    violations = flow_violations(helper, ASYNC_CALLER, select=("RPR602",))
    assert codes_of(violations) == ["RPR602"]


def test_deep_chain_flags_at_the_first_hop():
    middle = (
        "repro.service.mid",
        '"""Relay."""\n'
        "from repro.service.helpers import settle\n"
        "def relay():\n"
        '    """One more sync hop."""\n'
        "    settle()\n",
    )
    caller = (
        "repro.service.loop",
        '"""Coroutine two hops from the sleep."""\n'
        "from repro.service.mid import relay\n"
        "async def run():\n"
        '    """Deep chain."""\n'
        "    relay()\n",
    )
    violations = flow_violations(
        SYNC_SLEEPER, middle, caller, select=("RPR602",)
    )
    assert codes_of(violations) == ["RPR602"]
    assert "relay" in violations[0].message


def test_executor_dispatch_is_the_sanctioned_escape():
    caller = (
        "repro.service.loop",
        '"""Coroutine dispatching to a thread."""\n'
        "import asyncio\n"
        "from repro.service.helpers import settle\n"
        "async def run():\n"
        '    """Off-loop, so legal."""\n'
        "    await asyncio.to_thread(settle)\n",
    )
    assert flow_violations(SYNC_SLEEPER, caller, select=("RPR602",)) == []


def test_run_in_executor_dispatch_is_clean_too():
    caller = (
        "repro.service.loop",
        '"""Coroutine using the loop executor."""\n'
        "import asyncio\n"
        "from repro.service.helpers import settle\n"
        "async def run():\n"
        '    """Off-loop, so legal."""\n'
        "    loop = asyncio.get_running_loop()\n"
        "    await loop.run_in_executor(None, settle)\n",
    )
    assert flow_violations(SYNC_SLEEPER, caller, select=("RPR602",)) == []


def test_noqa_at_blocking_site_waives_the_chain():
    helper = (
        "repro.service.helpers",
        '"""Helper with a justified waiver."""\n'
        "import time\n"
        "def settle():\n"
        '    """Bounded, single-consumer stall by design."""\n'
        "    time.sleep(0.001)  # repro: noqa[RPR501]\n",
    )
    assert flow_violations(helper, ASYNC_CALLER, select=("RPR602",)) == []


def test_coroutines_outside_service_are_not_roots():
    caller = (
        "repro.jobs.runner",
        '"""Jobs-layer coroutine; blocking is its own business."""\n'
        "from repro.service.helpers import settle\n"
        "async def run():\n"
        '    """Not a service coroutine."""\n'
        "    settle()\n",
    )
    assert flow_violations(SYNC_SLEEPER, caller, select=("RPR602",)) == []


def test_nested_sync_def_called_inline_still_flags():
    # RPR501's escape hatch assumes the nested def runs off-loop; when
    # the coroutine calls it INLINE the stall is real, and only the
    # call-graph sees that.
    caller = (
        "repro.service.loop",
        '"""Nested helper abused inline."""\n'
        "import time\n"
        "async def run():\n"
        '    """Calls the nested blocker synchronously."""\n'
        "    def helper():\n"
        '        """Blocking."""\n'
        "        time.sleep(0.1)\n"
        "    helper()\n",
    )
    violations = flow_violations(caller, select=("RPR602",))
    assert codes_of(violations) == ["RPR602"]
    # And the per-file rule is structurally blind to it:
    module, source = caller
    assert lint_source("loop.py", source, module=module) == []
