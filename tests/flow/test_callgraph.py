"""Call-graph construction: the pinned fixture-package snapshot.

The ``graphpkg`` fixture exercises every resolution feature in one
small package — class-method dispatch through the hierarchy, a
deliberate mutual-recursion cycle, an ``asyncio.create_task`` spawn
edge, construction through a package re-export, and two genuinely
dynamic calls that must be *reported* unresolved, never silently
dropped. The snapshot is pinned edge-for-edge: a resolution regression
shows up as a diff here before it shows up as a missed finding.
"""

from tests.flow.conftest import load_graph_fixture, make_program

from repro.flow import analyze

#: The exact expected project edges: (caller, callee, kind).
EXPECTED_EDGES = [
    ("graphpkg.engine.Base.template", "graphpkg.engine.Base.hook", "call"),
    ("graphpkg.engine.Engine.hook", "graphpkg.engine.ping", "call"),
    ("graphpkg.engine.Engine.start", "graphpkg.engine.Engine.worker",
     "task"),
    ("graphpkg.engine.Engine.worker", "graphpkg.engine.tick", "call"),
    ("graphpkg.engine.tick", "graphpkg.engine.tock", "call"),
    ("graphpkg.engine.tock", "graphpkg.engine.tick", "call"),
    ("graphpkg.main.boot", "graphpkg.engine.Engine.__init__", "call"),
    ("graphpkg.main.boot", "graphpkg.engine.tick", "call"),
]


def test_fixture_graph_snapshot_is_pinned():
    analysis = analyze(load_graph_fixture())
    edges = [
        (edge.caller, edge.callee, edge.kind)
        for edge in analysis.graph.edges
    ]
    assert edges == EXPECTED_EDGES


def test_cycle_does_not_diverge_and_both_edges_exist():
    analysis = analyze(load_graph_fixture())
    edges = {(e.caller, e.callee) for e in analysis.graph.edges}
    assert ("graphpkg.engine.tick", "graphpkg.engine.tock") in edges
    assert ("graphpkg.engine.tock", "graphpkg.engine.tick") in edges


def test_unresolved_calls_are_reported_not_dropped():
    analysis = analyze(load_graph_fixture())
    unresolved = {
        (call.caller, call.display) for call in analysis.graph.unresolved
    }
    # The callable-parameter call and the method on a local variable are
    # both genuinely dynamic; the graph must say so explicitly.
    assert ("graphpkg.engine.dispatch", "callback") in unresolved
    assert ("graphpkg.main.boot", "engine.warm_up") in unresolved
    assert len(analysis.graph.unresolved) == 2


def test_create_task_spawn_consumes_inner_call():
    # create_task(self.worker()) is ONE task edge — no phantom extra
    # synchronous "call" edge for the coroutine-building inner call.
    analysis = analyze(load_graph_fixture())
    start_edges = analysis.graph.callees("graphpkg.engine.Engine.start")
    assert [(e.callee, e.kind) for e in start_edges] == [
        ("graphpkg.engine.Engine.worker", "task")
    ]


def test_run_in_executor_edge_kind():
    program = make_program(
        (
            "pkg.svc",
            '"""Doc."""\n'
            "import asyncio\n"
            "def blocking_work():\n"
            '    """Runs off-loop."""\n'
            "    return 1\n"
            "async def dispatcher():\n"
            '    """Dispatches to a thread."""\n'
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, blocking_work)\n"
            "    await asyncio.to_thread(blocking_work)\n",
        )
    )
    analysis = analyze(program)
    kinds = [
        (e.callee, e.kind)
        for e in analysis.graph.callees("pkg.svc.dispatcher")
    ]
    assert kinds == [
        ("pkg.svc.blocking_work", "executor"),
        ("pkg.svc.blocking_work", "executor"),
    ]


def test_primitive_calls_mirror_per_file_semantics():
    program = make_program(
        (
            "pkg.helpers",
            '"""Doc."""\n'
            "import time\n"
            "import numpy as np\n"
            "def stamp():\n"
            '    """Clock + seeded and unseeded RNG."""\n'
            "    t = time.time()\n"
            "    good = np.random.default_rng(42)\n"
            "    bad = np.random.default_rng()\n"
            "    return t, good, bad\n",
        )
    )
    analysis = analyze(program)
    primitives = [
        (p.target, p.category)
        for p in analysis.graph.primitives_by_caller["pkg.helpers.stamp"]
    ]
    # The seeded default_rng(42) is NOT a primitive; the unseeded one is.
    assert sorted(primitives) == [
        ("numpy.random.default_rng", "rng"),
        ("time.time", "clock"),
    ]


def test_nested_function_visible_by_bare_name():
    program = make_program(
        (
            "pkg.nested",
            '"""Doc."""\n'
            "def outer():\n"
            '    """Calls its own nested helper."""\n'
            "    def inner():\n"
            '        """Nested."""\n'
            "        return 1\n"
            "    return inner()\n",
        )
    )
    analysis = analyze(program)
    edges = [
        (e.caller, e.callee)
        for e in analysis.graph.callees("pkg.nested.outer")
    ]
    assert edges == [("pkg.nested.outer", "pkg.nested.outer.<locals>.inner")]
