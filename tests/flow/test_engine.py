"""Engine-level contracts: determinism, parse-once, and the self-check.

The flow engine's promises are run-shaped, not rule-shaped: two runs
over the same tree produce byte-identical artefacts, a combined
``lint --flow`` invocation parses each file exactly once, and the
repository's own source tree is clean under its own analysis.
"""

import json

from tests.flow.conftest import REPO_ROOT, make_program

from repro.flow import analyze, load_program, run_flow
from repro.flow.export import callgraph_json
from repro.lint.cli import main as lint_main


def _load_src():
    return load_program([REPO_ROOT / "src"], root=REPO_ROOT)


def test_two_runs_over_src_are_byte_identical():
    first = analyze(_load_src())
    second = analyze(_load_src())
    assert callgraph_json(first) == callgraph_json(second)
    first_result = run_flow(_load_src())
    second_result = run_flow(_load_src())
    assert [
        (v.path, v.line, v.code, v.message)
        for v in first_result.violations
    ] == [
        (v.path, v.line, v.code, v.message)
        for v in second_result.violations
    ]
    assert first_result.stats == second_result.stats


def test_repo_source_tree_is_clean_under_its_own_analysis():
    result = run_flow(_load_src())
    assert result.ok, [
        f"{v.path}:{v.line} {v.code} {v.message}"
        for v in result.violations
    ]
    # Sanity floor: the analysis actually saw the tree.
    assert result.stats["modules"] > 100
    assert result.stats["functions"] > 500
    assert result.stats["call_edges"] > 500


def test_stats_reflect_the_analyzed_program():
    program = make_program(
        (
            "pkg.a",
            '"""Doc."""\n'
            "def one():\n"
            '    """Calls two."""\n'
            "    return two()\n"
            "def two():\n"
            '    """Leaf."""\n'
            "    return 1\n",
        ),
        (
            "pkg.b",
            '"""Doc."""\n'
            "import json\n"
            "def three(payload):\n"
            '    """External + dynamic."""\n'
            "    json.dumps(payload)\n"
            "    return payload.render()\n",
        ),
    )
    result = run_flow(program)
    assert result.stats["modules"] == 2
    assert result.stats["functions"] == 3
    assert result.stats["call_edges"] == 1
    assert result.stats["external_calls"] == 1
    assert result.stats["unresolved_calls"] == 1
    assert result.stats["findings"] == 0


def test_combined_lint_flow_parses_each_file_exactly_once(
    tmp_path, monkeypatch, capsys
):
    (tmp_path / "src" / "mini").mkdir(parents=True)
    (tmp_path / "src" / "mini" / "__init__.py").write_text(
        '"""Mini package."""\n', encoding="utf-8"
    )
    (tmp_path / "src" / "mini" / "mod.py").write_text(
        '"""Mini module."""\n'
        "def f():\n"
        '    """Leaf."""\n'
        "    return 1\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)

    from repro.lint import engine as lint_engine

    parsed = []
    original = lint_engine.LoadedModule.parse.__func__

    def counting(cls, path, source, module=None):
        parsed.append(str(path))
        return original(cls, path, source, module=module)

    monkeypatch.setattr(
        lint_engine.LoadedModule, "parse", classmethod(counting)
    )
    rc = lint_main(["src", "--flow", "--format", "json"])
    capsys.readouterr()
    assert rc == 0
    assert len(parsed) == 2
    assert len(set(parsed)) == 2


def test_flow_json_report_is_stable_across_runs(tmp_path, capsys):
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    for out in (out_a, out_b):
        rc = lint_main(
            [
                str(REPO_ROOT / "src" / "repro" / "flow"),
                "--flow",
                "--format",
                "json",
                "--callgraph-out",
                str(out),
            ]
        )
        capsys.readouterr()
        assert rc == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    payload = json.loads(out_a.read_text(encoding="utf-8"))
    assert payload["version"] == 1
