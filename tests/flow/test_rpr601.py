"""RPR601 — interprocedural determinism taint.

The defining property of every case here: the per-file RPR1xx rules see
nothing (the sim-core module contains no banned call lexically), yet the
whole-program pass catches the leak through the call chain.
"""

from tests.flow.conftest import codes_of, flow_violations

from repro.lint import lint_source

#: A helper module deliberately OUTSIDE the sim-core packages.
HELPER = (
    "repro.io.timeutil",
    '"""Helper outside the core."""\n'
    "import time\n"
    "def stamp():\n"
    '    """Reads the wall clock."""\n'
    "    return time.time()\n",
)

CORE_CALLER = (
    "repro.perf.model",
    '"""Sim-core module with no lexical violation."""\n'
    "from repro.io.timeutil import stamp\n"
    "def simulate():\n"
    '    """Leaks wall-clock through the helper."""\n'
    "    return stamp()\n",
)


def test_taint_through_one_helper_hop():
    violations = flow_violations(HELPER, CORE_CALLER, select=("RPR601",))
    assert codes_of(violations) == ["RPR601"]
    v = violations[0]
    assert v.path == "src/repro/perf/model.py"
    assert "time.time" in v.message
    assert "stamp" in v.message  # the rendered path names the chain


def test_per_file_rules_provably_cannot_catch_it():
    # The same sim-core source, under the per-file determinism rules:
    # clean. This is the hole RPR601 exists to close.
    module, source = CORE_CALLER
    assert lint_source("model.py", source, module=module) == []


def test_taint_through_two_hops_renders_full_path():
    middle = (
        "repro.io.plumbing",
        '"""Second hop."""\n'
        "from repro.io.timeutil import stamp\n"
        "def relay():\n"
        '    """Innocent-looking relay."""\n'
        "    return stamp()\n",
    )
    caller = (
        "repro.perf.model",
        '"""Core."""\n'
        "from repro.io.plumbing import relay\n"
        "def simulate():\n"
        '    """Two hops from the clock."""\n'
        "    return relay()\n",
    )
    violations = flow_violations(HELPER, middle, caller, select=("RPR601",))
    assert codes_of(violations) == ["RPR601"]
    message = violations[0].message
    assert "relay" in message and "stamp" in message
    assert "time.time" in message


def test_noqa_at_source_site_detaints_the_whole_chain():
    helper = (
        "repro.io.timeutil",
        '"""Helper with a justified waiver at the source."""\n'
        "import time\n"
        "def stamp():\n"
        '    """Telemetry-only read."""\n'
        "    return time.time()  # repro: noqa[RPR101]\n",
    )
    assert flow_violations(helper, CORE_CALLER, select=("RPR601",)) == []


def test_noqa_file_waives_findings_in_the_core_module():
    caller = (
        "repro.perf.model",
        '"""Core module with a module-level waiver."""\n'
        "# repro: noqa-file[RPR601]\n"
        "from repro.io.timeutil import stamp\n"
        "def simulate():\n"
        '    """Waived wholesale."""\n'
        "    return stamp()\n",
    )
    assert flow_violations(HELPER, caller, select=("RPR601",)) == []


def test_rng_and_entropy_sources_taint_too():
    helper = (
        "repro.io.entropy",
        '"""Entropy helper outside the core."""\n'
        "import os\n"
        "import random\n"
        "def token():\n"
        '    """OS entropy."""\n'
        "    return os.urandom(8)\n"
        "def draw():\n"
        '    """Global RNG."""\n'
        "    return random.random()\n",
    )
    caller = (
        "repro.cache.model",
        '"""Core caller."""\n'
        "from repro.io.entropy import draw, token\n"
        "def a():\n"
        '    """Reaches entropy."""\n'
        "    return token()\n"
        "def b():\n"
        '    """Reaches the RNG."""\n'
        "    return draw()\n",
    )
    violations = flow_violations(helper, caller, select=("RPR601",))
    assert codes_of(violations) == ["RPR601", "RPR601"]


def test_seeded_rng_in_helper_is_not_a_source():
    helper = (
        "repro.io.rng",
        '"""Seeded construction is fine."""\n'
        "import numpy as np\n"
        "def make(seed):\n"
        '    """Explicitly seeded."""\n'
        "    return np.random.default_rng(seed)\n",
    )
    caller = (
        "repro.perf.model",
        '"""Core caller."""\n'
        "from repro.io.rng import make\n"
        "def simulate():\n"
        '    """Seeded path — clean."""\n'
        "    return make(42)\n",
    )
    assert flow_violations(helper, caller, select=("RPR601",)) == []


def test_core_to_core_chains_are_left_to_per_file_rules():
    # A sim-core helper that reads the clock is RPR101's finding (and
    # indeed fires there); RPR601 only flags the boundary crossing.
    helper = (
        "repro.utils.clock",
        '"""Core-internal offender."""\n'
        "import time\n"
        "def stamp():\n"
        '    """RPR101 territory."""\n'
        "    return time.time()\n",
    )
    caller = (
        "repro.perf.model",
        '"""Core caller of a core helper."""\n'
        "from repro.utils.clock import stamp\n"
        "def simulate():\n"
        '    """No boundary crossed."""\n'
        "    return stamp()\n",
    )
    assert flow_violations(helper, caller, select=("RPR601",)) == []
    module, source = helper
    assert codes_of(lint_source("clock.py", source, module=module)) == [
        "RPR101"
    ]


def test_set_iteration_escaping_to_output_flags():
    module = (
        "repro.sched.order",
        '"""Core module ordering by set iteration."""\n'
        "def schedule(items):\n"
        '    """Iterates a set literal into its output."""\n'
        "    out = []\n"
        '    for x in {"a", "b", "c"}:\n'
        "        out.append(x)\n"
        "    return out\n",
    )
    violations = flow_violations(module, select=("RPR601",))
    assert codes_of(violations) == ["RPR601"]
    assert "PYTHONHASHSEED" in violations[0].message


def test_set_iteration_without_output_is_clean():
    module = (
        "repro.sched.order",
        '"""Core module; set iteration stays internal."""\n'
        "def warm(items):\n"
        '    """No value escapes."""\n'
        "    for x in set(items):\n"
        "        items.count(x)\n",
    )
    assert flow_violations(module, select=("RPR601",)) == []


def test_rpr601_findings_refuse_to_baseline():
    import pytest

    from repro.errors import ConfigurationError
    from repro.lint.baseline import Baseline

    violations = flow_violations(HELPER, CORE_CALLER, select=("RPR601",))
    with pytest.raises(ConfigurationError):
        Baseline.from_violations(violations)
