"""Shared helpers for the whole-program flow tests.

Tests build pretend package trees inline from ``(module, source)``
pairs — :func:`make_program` derives a plausible ``src/``-layout path
for each so suppressions and display paths behave like the real tree —
and run selected flow passes over them with :func:`flow_violations`.
The on-disk fixture package under ``tests/flow/fixtures/graphpkg`` is
loaded by :func:`load_graph_fixture` for the pinned call-graph snapshot
tests.
"""

from pathlib import Path

from repro.flow import Program, run_flow
from repro.lint.registry import all_flow_rules

FIXTURES = Path(__file__).parent / "fixtures"

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_program(*files):
    """Build a :class:`Program` from ``(module, source)`` pairs."""
    sources = []
    for module, source in files:
        path = "src/" + module.replace(".", "/") + ".py"
        sources.append((path, source, module))
    return Program.from_sources(sources)


def flow_violations(*files, select=None):
    """Run flow passes over inline sources; return the violations.

    *select* restricts to the given codes (e.g. ``("RPR602",)``).
    """
    rules = [
        rule
        for rule in all_flow_rules()
        if select is None or rule.code in select
    ]
    return run_flow(make_program(*files), rules=rules).violations


def codes_of(violations):
    """The sorted multiset of codes in *violations*."""
    return sorted(v.code for v in violations)


def load_graph_fixture():
    """Load the on-disk ``graphpkg`` fixture package as a program."""
    package = FIXTURES / "graphpkg"
    sources = []
    for path in sorted(package.glob("*.py")):
        module = (
            "graphpkg"
            if path.stem == "__init__"
            else f"graphpkg.{path.stem}"
        )
        sources.append(
            (path.as_posix(), path.read_text(encoding="utf-8"), module)
        )
    return Program.from_sources(sources)
