"""RPR604 — await-interleaving races in service classes.

The CFG-lite evaluator must flag mutation→await→mutation sequences
(including across loop iterations and through mutating same-class
method calls) while staying quiet for mutate-then-await-only patterns,
seam-routed writes, and branch-exclusive mutations.
"""

from tests.flow.conftest import codes_of, flow_violations


def _service_class(body):
    return (
        "repro.service.widget",
        '"""Service class fixture."""\n'
        "import asyncio\n"
        "class Widget:\n"
        '    """Holds shared state."""\n' + body,
    )


def test_mutation_on_both_sides_of_await_flags():
    module = _service_class(
        "    async def go(self):\n"
        '        """Classic torn update."""\n'
        "        self.state = 1\n"
        "        await asyncio.sleep(0)\n"
        "        self.state = 2\n"
    )
    violations = flow_violations(module, select=("RPR604",))
    assert codes_of(violations) == ["RPR604"]
    assert "self.state" in violations[0].message


def test_mutations_only_before_first_await_are_clean():
    module = _service_class(
        "    async def go(self):\n"
        '        """All writes complete before suspension."""\n'
        "        self.a = 1\n"
        "        self.b = 2\n"
        "        await asyncio.sleep(0)\n"
        "        return self.a\n"
    )
    assert flow_violations(module, select=("RPR604",)) == []


def test_loop_carried_interleaving_is_caught():
    module = _service_class(
        "    async def go(self, items):\n"
        '        """Mutates at the bottom, awaits at the top."""\n'
        "        for item in items:\n"
        "            await asyncio.sleep(0)\n"
        "            self.latest = item\n"
    )
    violations = flow_violations(module, select=("RPR604",))
    assert codes_of(violations) == ["RPR604"]


def test_branch_exclusive_mutations_are_clean():
    module = _service_class(
        "    async def go(self, flag):\n"
        '        """Each branch mutates on one side only."""\n'
        "        if flag:\n"
        "            self.a = 1\n"
        "            return\n"
        "        await asyncio.sleep(0)\n"
        "        self.b = 2\n"
    )
    assert flow_violations(module, select=("RPR604",)) == []


def test_mutating_method_call_counts_as_mutation():
    module = _service_class(
        "    def bump(self):\n"
        '        """Mutates shared state."""\n'
        "        self.count = self.count + 1\n"
        "    async def go(self):\n"
        '        """Mutates, awaits, mutates via the method."""\n'
        "        self.count = 0\n"
        "        await asyncio.sleep(0)\n"
        "        self.bump()\n"
    )
    violations = flow_violations(module, select=("RPR604",))
    assert codes_of(violations) == ["RPR604"]


def test_handle_seam_calls_are_exempt():
    module = _service_class(
        "    def _handle(self, event):\n"
        '        """The single-writer seam."""\n'
        "        self.state = event\n"
        "    async def go(self, event):\n"
        '        """Routes the post-await write through the seam."""\n'
        "        self.pending = True\n"
        "        await asyncio.sleep(0)\n"
        "        self._handle(event)\n"
    )
    assert flow_violations(module, select=("RPR604",)) == []


def test_subscript_store_counts_as_mutation():
    module = _service_class(
        "    async def go(self, key, value):\n"
        '        """Container-slot writes are shared-state writes."""\n'
        "        self.table[key] = value\n"
        "        await asyncio.sleep(0)\n"
        "        self.table[key] = value + 1\n"
    )
    violations = flow_violations(module, select=("RPR604",))
    assert codes_of(violations) == ["RPR604"]


def test_one_violation_per_function_at_first_offence():
    module = _service_class(
        "    async def go(self):\n"
        '        """Several offences; one report."""\n'
        "        self.a = 1\n"
        "        await asyncio.sleep(0)\n"
        "        self.b = 2\n"
        "        await asyncio.sleep(0)\n"
        "        self.c = 3\n"
    )
    violations = flow_violations(module, select=("RPR604",))
    assert codes_of(violations) == ["RPR604"]
    assert "self.b" in violations[0].message


def test_classes_outside_service_are_not_roots():
    module = (
        "repro.jobs.widget",
        '"""Same shape, different package."""\n'
        "import asyncio\n"
        "class Widget:\n"
        '    """Not a service class."""\n'
        "    async def go(self):\n"
        '        """Out of scope."""\n'
        "        self.state = 1\n"
        "        await asyncio.sleep(0)\n"
        "        self.state = 2\n",
    )
    assert flow_violations(module, select=("RPR604",)) == []


def test_noqa_waives_a_justified_site():
    module = _service_class(
        "    async def go(self):\n"
        '        """Monotonic counter; justified waiver."""\n'
        "        self.count = 0\n"
        "        await asyncio.sleep(0)\n"
        "        self.count += 1  # repro: noqa[RPR604]\n"
    )
    assert flow_violations(module, select=("RPR604",)) == []
