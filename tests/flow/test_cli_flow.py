"""The ``--flow`` CLI surface: exit codes, selection, exports, baseline.

Each test builds a miniature ``src/repro`` tree in a temp directory and
drives :func:`repro.lint.cli.main` exactly as CI does.
"""

import json

from repro.lint.cli import main as lint_main

#: A helper outside the sim-core reading the wall clock, plus a sim-core
#: caller — the canonical planted RPR601 chain.
TAINTED_TREE = {
    "src/repro/io/timeutil.py": (
        '"""Helper outside the core."""\n'
        "import time\n"
        "def stamp():\n"
        '    """Reads the wall clock."""\n'
        "    return time.time()\n"
    ),
    "src/repro/perf/model.py": (
        '"""Sim-core caller."""\n'
        "from repro.io.timeutil import stamp\n"
        "def simulate():\n"
        '    """Leaks wall-clock through the helper."""\n'
        "    return stamp()\n"
    ),
}

CLEAN_TREE = {
    "src/repro/perf/model.py": (
        '"""Sim-core module, self-contained."""\n'
        "def simulate(steps):\n"
        '    """Pure arithmetic."""\n'
        "    return steps * 2\n"
    ),
}


def _write_tree(tmp_path, tree):
    for rel, source in tree.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")


def test_flow_findings_exit_one(tmp_path, monkeypatch, capsys):
    _write_tree(tmp_path, TAINTED_TREE)
    monkeypatch.chdir(tmp_path)
    rc = lint_main(["src", "--flow", "--select", "RPR601"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "RPR601" in out
    assert "flow:" in out  # the text-mode summary line


def test_clean_tree_exits_zero_with_flow_summary(
    tmp_path, monkeypatch, capsys
):
    _write_tree(tmp_path, CLEAN_TREE)
    monkeypatch.chdir(tmp_path)
    rc = lint_main(["src", "--flow"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "flow: 1 modules" in out


def test_without_flow_the_planted_chain_is_invisible(
    tmp_path, monkeypatch, capsys
):
    _write_tree(tmp_path, TAINTED_TREE)
    monkeypatch.chdir(tmp_path)
    rc = lint_main(["src"])
    capsys.readouterr()
    assert rc == 0


def test_select_unknown_code_is_a_usage_error(
    tmp_path, monkeypatch, capsys
):
    _write_tree(tmp_path, CLEAN_TREE)
    monkeypatch.chdir(tmp_path)
    rc = lint_main(["src", "--flow", "--select", "RPR999"])
    out = capsys.readouterr().out
    assert rc == 2
    assert "RPR999" in out


def test_list_rules_includes_the_flow_family(capsys):
    rc = lint_main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for code in ("RPR601", "RPR602", "RPR603", "RPR604"):
        assert code in out
    assert "flow]" in out


def test_callgraph_exports_imply_flow(tmp_path, monkeypatch, capsys):
    _write_tree(tmp_path, TAINTED_TREE)
    monkeypatch.chdir(tmp_path)
    json_out = tmp_path / "callgraph.json"
    dot_out = tmp_path / "callgraph.dot"
    # No --flow flag: the export flags alone must trigger the analysis,
    # which also means the planted finding is reported (exit 1).
    rc = lint_main(
        [
            "src",
            "--select",
            "RPR601",
            "--callgraph-out",
            str(json_out),
            "--callgraph-dot",
            str(dot_out),
        ]
    )
    capsys.readouterr()
    assert rc == 1
    payload = json.loads(json_out.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    edges = {
        (e["caller"], e["callee"]) for e in payload["edges"]
    }
    assert (
        "repro.perf.model.simulate",
        "repro.io.timeutil.stamp",
    ) in edges
    dot = dot_out.read_text(encoding="utf-8")
    assert dot.startswith("digraph callgraph")
    assert "repro.perf.model.simulate" in dot


def test_update_baseline_refuses_flow_determinism_findings(
    tmp_path, monkeypatch, capsys
):
    _write_tree(tmp_path, TAINTED_TREE)
    monkeypatch.chdir(tmp_path)
    rc = lint_main(
        ["src", "--flow", "--select", "RPR601", "--update-baseline"]
    )
    out = capsys.readouterr().out
    assert rc == 2
    assert "RPR601" in out
    assert not (tmp_path / "lint-baseline.json").exists()


def test_baseline_filter_passes_flow_findings_through(
    tmp_path, monkeypatch, capsys
):
    # An empty committed baseline must NOT absorb a fresh flow finding.
    _write_tree(tmp_path, TAINTED_TREE)
    (tmp_path / "lint-baseline.json").write_text(
        json.dumps({"version": 1, "entries": []}) + "\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    rc = lint_main(
        ["src", "--flow", "--select", "RPR601", "--baseline"]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "RPR601" in out
