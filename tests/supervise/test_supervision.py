"""Supervision acceptance: the ISSUE's four pinned end-to-end claims.

1. A hung worker is killed within the heartbeat grace period — well
   before its per-job wall-clock timeout — while a slow-but-ticking job
   is left alone.
2. A worker over its RSS budget is killed and classified.
3. A spec that fails terminally ``threshold`` consecutive times is
   circuit-broken and durably quarantined, and a resumed sweep skips
   quarantined specs without occupying a worker.
4. A supervised fault-free run is byte-identical to the unsupervised
   baseline: supervision may change *when workers are killed*, never
   *what results are*.
"""

import time

import pytest

from repro.errors import JobError
from repro.jobs import JobFailure, Orchestrator, WorkerPool, make_run_spec
from repro.jobs.keys import canonical_json, spec_key
from repro.jobs.spec import WorkloadSpec, execute_spec
from repro.perf.machine import core2duo
from repro.supervise import PoisonQuarantine, SupervisionConfig
from tests.jobs import _workers

#: Generous per-job budget the watchdog must beat by a wide margin.
JOB_TIMEOUT = 120.0


def tiny_spec(seed=0):
    """A cheap pinned-mapping measurement spec (distinct by seed)."""
    return make_run_spec(
        core2duo(),
        WorkloadSpec(
            kind="spec", names=("mcf", "povray"), instructions=100_000
        ),
        mapping=[[0], [1]],
        seed=seed,
    )


def summaries(outcomes):
    """Byte-comparable form of a batch's results."""
    return [canonical_json(outcome.to_dict()) for outcome in outcomes]


# -- heartbeats and the watchdog, against real worker processes --------


def test_hung_worker_killed_within_grace_before_job_timeout():
    events = []
    pool = WorkerPool(
        jobs=1, timeout=JOB_TIMEOUT, retries=0, backoff=0.01,
        hang_timeout=1.0, heartbeat_interval=0.1,
    )
    started = time.monotonic()
    results = pool.run(
        _workers.hang_forever, [0],
        on_event=lambda kind, **f: events.append(kind), keep_going=True,
    )
    elapsed = time.monotonic() - started
    # The whole run (spawn + hang grace + teardown) must finish in a
    # small fraction of the 120 s wall budget the job never exhausted.
    assert elapsed < JOB_TIMEOUT / 4
    failure = results[0]
    assert isinstance(failure, JobFailure)
    assert failure.kind == "hung"
    assert "no heartbeat" in failure.error
    assert "failed" in events


def test_slow_but_ticking_job_is_left_alone():
    """2.5 s of work under a 1 s hang grace: slow is not hung."""
    pool = WorkerPool(
        jobs=1, retries=0, backoff=0.01,
        hang_timeout=1.0, heartbeat_interval=0.1,
    )
    assert pool.run(_workers.slow_but_alive, [(2.5, "ok")]) == ["ok"]


def test_over_budget_worker_is_killed_and_classified():
    pool = WorkerPool(
        jobs=1, retries=0, backoff=0.01,
        max_rss_mb=150.0, heartbeat_interval=0.1,
    )
    results = pool.run(
        _workers.balloon_rss, [(300.0, 60.0, "never")], keep_going=True,
    )
    failure = results[0]
    assert isinstance(failure, JobFailure)
    assert failure.kind == "over_budget"
    assert "exceeded" in failure.error


def test_hung_job_can_retry_clean_on_a_fresh_worker(tmp_path):
    """The condemned job is charged one attempt, not the whole budget."""
    marker = tmp_path / "hung-once.marker"
    pool = WorkerPool(
        jobs=1, retries=1, backoff=0.01,
        hang_timeout=1.0, heartbeat_interval=0.1,
    )
    results = pool.run(_workers.hang_until_marker, [(str(marker), 17)])
    assert results == [17]
    assert marker.exists()


# -- breaker + quarantine through the orchestrator ---------------------


def test_three_consecutive_failures_trip_breaker_and_quarantine(tmp_path):
    calls = {"n": 0}

    def boom(payload):
        calls["n"] += 1
        raise RuntimeError("deterministic boom")

    spec = tiny_spec()
    key = spec_key(spec)
    orch = Orchestrator(
        jobs=1, keep_going=True, executor=boom,
        supervision=SupervisionConfig(
            breaker_threshold=3, quarantine=str(tmp_path / "poison.jsonl"),
        ),
    )
    for _ in range(3):
        [failure] = orch.run_specs([spec])
        assert isinstance(failure, JobFailure)
        assert "deterministic boom" in failure.error
    assert calls["n"] == 3
    assert orch.breaker.state(key) == "open"
    assert key in orch.quarantine
    assert "deterministic boom" in orch.quarantine.reason(key)

    # The fourth submission never reaches the executor.
    [blocked] = orch.run_specs([spec])
    assert calls["n"] == 3
    assert blocked.kind == "quarantined"
    assert blocked.attempts == 0
    assert orch.counters.poisoned == 1


def test_open_circuit_short_circuits_then_grants_wave_counted_probe():
    calls = {"n": 0}

    def boom(payload):
        calls["n"] += 1
        raise RuntimeError("still broken")

    spec = tiny_spec()
    orch = Orchestrator(
        jobs=1, keep_going=True, executor=boom,
        supervision=SupervisionConfig(
            breaker_threshold=1, breaker_cooldown_waves=2,
        ),
    )
    orch.run_specs([spec])  # wave 1: fails, trips
    assert calls["n"] == 1

    [blocked] = orch.run_specs([spec])  # wave 2: cooling down
    assert calls["n"] == 1
    assert blocked.kind == "short_circuited"
    assert blocked.attempts == 0
    assert "circuit open after 1 failure(s)" in blocked.error

    [probe] = orch.run_specs([spec])  # wave 3: half-open probe runs
    assert calls["n"] == 2
    assert probe.kind == "error"

    orch.run_specs([spec])  # wave 4: the failed probe re-opened
    assert calls["n"] == 2
    assert orch.counters.short_circuited == 2


def test_resumed_sweep_skips_quarantined_specs(tmp_path):
    """Quarantine + journal: resume executes nothing, names the poison."""

    def fail_odd_seeds(payload):
        if payload["seed"] % 2:
            raise RuntimeError("poison parameters")
        return execute_spec(payload)

    specs = [tiny_spec(seed=0), tiny_spec(seed=1)]
    journal = tmp_path / "sweep.journal"
    quarantine = tmp_path / "poison.jsonl"

    def supervision():
        return SupervisionConfig(
            breaker_threshold=1, quarantine=str(quarantine),
        )

    first = Orchestrator(
        jobs=1, keep_going=True, executor=fail_odd_seeds,
        journal=journal, supervision=supervision(),
    )
    results = first.run_specs(specs)
    assert not isinstance(results[0], JobFailure)
    assert isinstance(results[1], JobFailure)
    assert spec_key(specs[1]) in first.quarantine

    # A new process: fresh orchestrator, same journal + quarantine files.
    resumed = Orchestrator(
        jobs=1, keep_going=True, executor=fail_odd_seeds,
        journal=journal, supervision=supervision(),
    )
    replay = resumed.run_specs(specs)
    assert resumed.counters.executed == 0
    assert resumed.counters.journal_hits == 1
    assert resumed.counters.poisoned == 1
    assert replay[0].cached
    assert replay[1].kind == "quarantined"
    assert "poison parameters" in replay[1].error


def test_fail_fast_mode_raises_on_quarantined_spec(tmp_path):
    spec = tiny_spec()
    path = tmp_path / "poison.jsonl"
    PoisonQuarantine(path).add(spec_key(spec), reason="known poison")

    def never_called(payload):  # pragma: no cover - the point of the test
        raise AssertionError("a quarantined spec reached the executor")

    orch = Orchestrator(
        jobs=1, executor=never_called,
        supervision=SupervisionConfig(quarantine=str(path)),
    )
    with pytest.raises(JobError, match="quarantined poison spec"):
        orch.run_specs([spec])


# -- the byte-identical guarantee --------------------------------------


def test_supervised_no_fault_run_is_byte_identical():
    specs = [tiny_spec(seed=s) for s in (0, 1)]
    baseline = summaries(Orchestrator(jobs=2).run_specs(specs))
    supervised = Orchestrator(
        jobs=2,
        supervision=SupervisionConfig(
            hang_timeout=30.0, max_rss_mb=4096.0,
        ),
    )
    assert summaries(supervised.run_specs(specs)) == baseline
