"""Circuit-breaker state machine: trip, cool down in waves, probe.

Everything here is deterministic by construction — the breaker makes no
clock and no RNG calls, so the whole state machine is driven by
``advance_wave`` and the recorded outcomes.
"""

import pytest

from repro.errors import ConfigurationError
from repro.supervise.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)


def test_validation():
    with pytest.raises(ConfigurationError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(cooldown_waves=0)


def test_trips_exactly_at_threshold():
    breaker = CircuitBreaker(threshold=3)
    assert breaker.record_failure("k", error="boom 1") is False
    assert breaker.record_failure("k", error="boom 2") is False
    assert breaker.state("k") == STATE_CLOSED
    assert breaker.allow("k")
    assert breaker.record_failure("k", error="boom 3") is True
    assert breaker.state("k") == STATE_OPEN
    assert not breaker.allow("k")
    assert breaker.failures("k") == 3
    assert breaker.last_error("k") == "boom 3"
    assert breaker.open_keys() == ["k"]


def test_keys_are_independent():
    breaker = CircuitBreaker(threshold=1)
    breaker.record_failure("bad")
    assert not breaker.allow("bad")
    assert breaker.allow("good")
    assert breaker.state("good") == STATE_CLOSED


def test_cooldown_is_measured_in_waves():
    breaker = CircuitBreaker(threshold=1, cooldown_waves=2)
    breaker.advance_wave()  # wave 1
    breaker.record_failure("k")
    breaker.advance_wave()  # wave 2: 1 wave elapsed, still cooling
    assert not breaker.allow("k")
    assert breaker.state("k") == STATE_OPEN
    breaker.advance_wave()  # wave 3: cool-down elapsed
    assert breaker.allow("k")  # the half-open probe
    assert breaker.state("k") == STATE_HALF_OPEN


def test_half_open_grants_one_probe_per_wave():
    breaker = CircuitBreaker(threshold=1, cooldown_waves=1)
    breaker.advance_wave()
    breaker.record_failure("k")
    breaker.advance_wave()
    assert breaker.allow("k")       # the probe
    assert not breaker.allow("k")   # same wave: short-circuit
    breaker.advance_wave()
    assert breaker.allow("k")       # probe unresolved, new wave: one more


def test_successful_probe_closes_and_resets():
    breaker = CircuitBreaker(threshold=2, cooldown_waves=1)
    breaker.advance_wave()
    breaker.record_failure("k", error="a")
    breaker.record_failure("k", error="b")
    breaker.advance_wave()
    breaker.advance_wave()
    assert breaker.allow("k")
    breaker.record_success("k")
    assert breaker.state("k") == STATE_CLOSED
    assert breaker.failures("k") == 0
    assert breaker.last_error("k") == ""
    # The slate really is clean: tripping again needs the full threshold.
    assert breaker.record_failure("k") is False


def test_failed_probe_reopens_immediately():
    breaker = CircuitBreaker(threshold=3, cooldown_waves=1)
    breaker.advance_wave()
    for _ in range(3):
        breaker.record_failure("k")
    breaker.advance_wave()
    breaker.advance_wave()
    assert breaker.allow("k")  # half-open probe
    # One failure re-opens — no climbing back to the threshold.
    assert breaker.record_failure("k") is True
    assert breaker.state("k") == STATE_OPEN
    assert not breaker.allow("k")


def test_transitions_are_recorded_and_observed():
    seen = []
    breaker = CircuitBreaker(
        threshold=1, cooldown_waves=1,
        on_transition=lambda key, old, new: seen.append((key, old, new)),
    )
    breaker.advance_wave()
    breaker.record_failure("k")
    breaker.advance_wave()
    breaker.advance_wave()
    breaker.allow("k")
    breaker.record_success("k")
    assert seen == [
        ("k", STATE_CLOSED, STATE_OPEN),
        ("k", STATE_OPEN, STATE_HALF_OPEN),
        ("k", STATE_HALF_OPEN, STATE_CLOSED),
    ]
    assert [(old, new) for _, _, old, new in breaker.transitions] == [
        (STATE_CLOSED, STATE_OPEN),
        (STATE_OPEN, STATE_HALF_OPEN),
        (STATE_HALF_OPEN, STATE_CLOSED),
    ]


def test_no_clock_or_rng_dependence():
    """Two identically driven breakers agree transition-for-transition."""

    def drive():
        breaker = CircuitBreaker(threshold=2, cooldown_waves=2)
        for _ in range(3):
            breaker.advance_wave()
            breaker.allow("k")
            breaker.record_failure("k", error="x")
        breaker.advance_wave()
        breaker.advance_wave()
        breaker.allow("k")
        return breaker.transitions

    assert drive() == drive()
