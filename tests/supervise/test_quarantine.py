"""Poison-quarantine durability: roundtrip, torn tails, last-write-wins."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.supervise.quarantine import (
    QUARANTINE_SCHEMA_VERSION,
    PoisonQuarantine,
)


def test_add_then_reload_roundtrip(tmp_path):
    path = tmp_path / "poison.jsonl"
    quarantine = PoisonQuarantine(path)
    quarantine.add("k1", reason="hung: no heartbeat", failures=3)
    quarantine.add("k2", reason="error: boom", failures=4)

    fresh = PoisonQuarantine(path)  # a later process
    assert "k1" in fresh and "k2" in fresh
    assert len(fresh) == 2
    assert fresh.keys() == ["k1", "k2"]
    assert fresh.reason("k1") == "hung: no heartbeat"
    assert fresh.reason("missing") is None


def test_missing_file_is_empty(tmp_path):
    quarantine = PoisonQuarantine(tmp_path / "never-written")
    assert len(quarantine) == 0
    assert "k" not in quarantine


def test_directory_path_rejected(tmp_path):
    with pytest.raises(ConfigurationError, match="directory"):
        PoisonQuarantine(tmp_path)


def test_duplicate_keys_last_record_wins(tmp_path):
    path = tmp_path / "poison.jsonl"
    quarantine = PoisonQuarantine(path)
    quarantine.add("k", reason="first", failures=3)
    quarantine.add("k", reason="second", failures=5)
    assert len(quarantine) == 1
    assert PoisonQuarantine(path).reason("k") == "second"


def test_torn_tail_is_skipped_and_isolated(tmp_path):
    path = tmp_path / "poison.jsonl"
    PoisonQuarantine(path).add("k1", reason="ok")
    with open(path, "a", encoding="ascii") as handle:
        handle.write('{"version": 1, "key": "k2", "reas')  # crash mid-append

    reloaded = PoisonQuarantine(path)
    assert reloaded.keys() == ["k1"]
    assert reloaded.corrupt_lines == 1
    # The next append starts on a fresh line, so k3 is readable.
    reloaded.add("k3", reason="after the crash")
    assert PoisonQuarantine(path).keys() == ["k1", "k3"]


def test_garbled_and_wrong_version_lines_are_counted(tmp_path):
    path = tmp_path / "poison.jsonl"
    lines = [
        "not json",
        json.dumps({"version": QUARANTINE_SCHEMA_VERSION + 1, "key": "x"}),
        json.dumps({"version": QUARANTINE_SCHEMA_VERSION, "key": ""}),
        json.dumps(
            {"version": QUARANTINE_SCHEMA_VERSION, "key": "ok", "reason": "r"}
        ),
    ]
    path.write_text("\n".join(lines) + "\n", encoding="ascii")
    quarantine = PoisonQuarantine(path)
    assert quarantine.keys() == ["ok"]
    assert quarantine.corrupt_lines == 3


def test_reload_picks_up_another_writer(tmp_path):
    path = tmp_path / "poison.jsonl"
    mine = PoisonQuarantine(path)
    PoisonQuarantine(path).add("theirs", reason="other process")
    assert "theirs" not in mine
    mine.reload()
    assert "theirs" in mine
