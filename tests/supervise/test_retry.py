"""Retry-policy semantics: determinism, caps, and the jitter modes.

The load-bearing pin: the delay sequence of a retry chain is a pure
function of ``(seed, jitter mode)`` — two sessions of the same policy
replay it float-for-float, on any machine, under any
``PYTHONHASHSEED``.
"""

import pytest

from repro.errors import ConfigurationError
from repro.supervise.retry import JITTER_MODES, RetryPolicy


def test_sessions_of_one_policy_replay_identically():
    policy = RetryPolicy(base=0.1, seed=42)
    first = policy.session()
    second = policy.session()
    sequence = [first.next_delay() for _ in range(6)]
    assert [second.next_delay() for _ in range(6)] == sequence
    assert policy.preview(6) == sequence


def test_distinct_seeds_produce_distinct_sequences():
    a = RetryPolicy(base=0.1, seed=0).preview(4)
    b = RetryPolicy(base=0.1, seed=1).preview(4)
    assert a != b


def test_none_mode_is_exact_capped_exponential():
    policy = RetryPolicy(base=0.5, cap=4.0, jitter="none")
    assert policy.preview(6) == [0.5, 1.0, 2.0, 4.0, 4.0, 4.0]


def test_equal_mode_bounds_each_delay():
    policy = RetryPolicy(base=0.5, cap=8.0, jitter="equal", seed=3)
    delays = policy.preview(8)
    for attempt, delay in enumerate(delays, start=1):
        raw = min(policy.cap, policy.base * (2 ** (attempt - 1)))
        assert raw / 2.0 <= delay <= raw
        assert delay <= policy.cap


def test_decorrelated_mode_respects_base_and_cap():
    policy = RetryPolicy(base=0.25, cap=2.0, seed=9)
    delays = policy.preview(32)
    assert all(policy.base <= d <= policy.cap for d in delays)
    assert max(delays) == policy.cap  # a long chain does hit the ceiling


def test_all_jitter_modes_are_constructible():
    for mode in JITTER_MODES:
        assert RetryPolicy(jitter=mode).preview(3)


def test_validation_rejects_bad_configuration():
    with pytest.raises(ConfigurationError):
        RetryPolicy(base=0.0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(base=1.0, cap=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter="full")


def test_reset_restarts_the_chain():
    session = RetryPolicy(base=0.1, seed=5).session()
    first = [session.next_delay() for _ in range(4)]
    session.reset()
    assert [session.next_delay() for _ in range(4)] == first
    assert session.attempt == 4


def test_sleep_draws_then_sleeps_the_same_delay(monkeypatch):
    import time as time_module

    slept = []
    monkeypatch.setattr(time_module, "sleep", slept.append)
    policy = RetryPolicy(base=0.1, seed=7)
    session = policy.session()
    returned = [session.sleep() for _ in range(3)]
    assert slept == returned == policy.preview(3)
