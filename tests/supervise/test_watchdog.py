"""Watchdog judgement on fabricated heartbeat evidence.

The watchdog is pure policy — no processes, no clocks — so every
verdict is unit-testable with hand-built boards.
"""

import pytest

from repro.errors import ConfigurationError
from repro.supervise.watchdog import Watchdog

WAVE = 1


def beat(phase="run", rss_kb=10_000, stamp=100.0):
    return (phase, rss_kb, stamp)


def test_validation_and_enabled():
    with pytest.raises(ConfigurationError):
        Watchdog(hang_timeout=0.0)
    with pytest.raises(ConfigurationError):
        Watchdog(max_rss_mb=-1.0)
    assert not Watchdog().enabled
    assert Watchdog(hang_timeout=1.0).enabled
    assert Watchdog(max_rss_mb=100.0).enabled


def test_silent_job_is_hung_but_ticking_job_is_only_slow():
    dog = Watchdog(hang_timeout=2.0)
    starts = {0: 100.0, 1: 100.0}
    beats = {(WAVE, 1): beat(stamp=104.5)}  # job 1 ticked recently
    verdicts = dog.inspect(WAVE, [0, 1], starts, beats, now=105.0)
    assert [(v.index, v.kind) for v in verdicts] == [(0, "hung")]
    assert "no heartbeat for" in verdicts[0].detail


def test_start_record_counts_as_liveness():
    """A job that started moments ago has proven liveness once already."""
    dog = Watchdog(hang_timeout=2.0)
    assert dog.inspect(WAVE, [0], {0: 104.0}, {}, now=105.0) == []


def test_queued_jobs_are_never_judged():
    dog = Watchdog(hang_timeout=0.5)
    assert dog.inspect(WAVE, [0], {}, {}, now=1000.0) == []


def test_stale_wave_beats_are_ignored():
    """A beat from the previous wave must not vouch for this one."""
    dog = Watchdog(hang_timeout=2.0)
    beats = {(WAVE - 1, 0): beat(stamp=104.9)}
    verdicts = dog.inspect(WAVE, [0], {0: 100.0}, beats, now=105.0)
    assert [v.kind for v in verdicts] == ["hung"]


def test_rss_budget_condemns_ballooned_worker():
    dog = Watchdog(max_rss_mb=100.0)
    beats = {(WAVE, 0): beat(rss_kb=300 * 1024, stamp=104.9)}
    verdicts = dog.inspect(WAVE, [0], {0: 100.0}, beats, now=105.0)
    assert [(v.index, v.kind) for v in verdicts] == [(0, "over_budget")]
    assert "300 MB" in verdicts[0].detail and "100 MB" in verdicts[0].detail


def test_over_budget_wins_over_hung():
    """One verdict per job: the memory evidence outranks the silence."""
    dog = Watchdog(hang_timeout=1.0, max_rss_mb=100.0)
    beats = {(WAVE, 0): beat(rss_kb=300 * 1024, stamp=50.0)}
    verdicts = dog.inspect(WAVE, [0], {0: 50.0}, beats, now=105.0)
    assert [v.kind for v in verdicts] == ["over_budget"]


def test_within_budget_and_ticking_is_untouched():
    dog = Watchdog(hang_timeout=5.0, max_rss_mb=100.0)
    beats = {(WAVE, 0): beat(rss_kb=50 * 1024, stamp=104.0)}
    assert dog.inspect(WAVE, [0], {0: 100.0}, beats, now=105.0) == []


def test_max_heartbeat_age_feeds_the_gauge():
    dog = Watchdog(hang_timeout=10.0)
    starts = {0: 100.0, 1: 103.0}
    beats = {(WAVE, 0): beat(stamp=102.0)}
    age = dog.max_heartbeat_age(WAVE, [0, 1], starts, beats, now=105.0)
    assert age == pytest.approx(3.0)  # job 0: 105 - 102; job 1: 105 - 103
    assert dog.max_heartbeat_age(WAVE, [7], {}, {}, now=105.0) == 0.0
