"""Heartbeat protocol unit tests: bind/tick/read on a plain-dict board.

The board abstraction is any mutable mapping, so everything here runs
in-process with a plain ``dict`` — no manager, no subprocesses.
"""

import time

from repro.supervise.heartbeat import (
    HeartbeatTicker,
    bind,
    clear_hang,
    current_rss_kb,
    read_beats,
    simulate_hang,
    tick,
    unbind,
)


def teardown_function(_fn):
    """Every test leaves the process-global state clean."""
    unbind()
    clear_hang()


def test_tick_is_noop_when_unbound():
    assert tick() is False


def test_bound_tick_posts_phase_rss_and_timestamp():
    board = {}
    bind(board, (1, 0))
    before = time.time()
    assert tick("build") is True
    phase, rss_kb, stamp = board[(1, 0)]
    assert phase == "build"
    assert rss_kb > 0
    assert before <= stamp <= time.time()


def test_unbind_restores_noop():
    board = {}
    bind(board, (1, 0))
    unbind()
    assert tick() is False
    assert board == {}


def test_simulate_hang_suspends_and_clear_resumes():
    board = {}
    bind(board, (1, 0))
    simulate_hang()
    assert tick() is False
    assert board == {}
    clear_hang()
    assert tick() is True
    assert (1, 0) in board


def test_broken_board_never_raises():
    class Broken(dict):
        def __setitem__(self, key, value):
            raise BrokenPipeError("manager is gone")

    bind(Broken(), (1, 0))
    assert tick() is False


def test_read_beats_snapshots_and_tolerates_dead_proxies():
    board = {(1, 0): ("run", 100, 1.0)}
    assert read_beats(board) == board
    assert read_beats(board) is not board  # a snapshot, not the live proxy

    class Dead:
        def keys(self):
            raise EOFError("manager is gone")

    assert read_beats(Dead()) == {}


def test_ticker_keeps_beating_until_stopped():
    board = {}
    bind(board, (1, 3))
    ticker = HeartbeatTicker(0.01)
    ticker.start()
    deadline = time.time() + 2.0
    while (1, 3) not in board and time.time() < deadline:
        time.sleep(0.005)
    ticker.stop()
    assert (1, 3) in board
    assert board[(1, 3)][0] == "run"


def test_current_rss_is_positive_kb():
    assert current_rss_kb() > 1024  # any real interpreter exceeds 1 MB
