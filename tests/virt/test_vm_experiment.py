"""Tests for the VM two-phase experiment drivers (tiny budgets)."""

import pytest

from repro.alloc import WeightSortPolicy
from repro.perf.machine import core2duo
from repro.virt.dom0 import vm_mix_sweep, vm_two_phase
from repro.virt.overhead import VirtualizationOverhead

INSTR = 150_000


class TestVmTwoPhase:
    @pytest.fixture(scope="class")
    def result(self):
        return vm_two_phase(
            core2duo(),
            ["povray", "gobmk", "sjeng", "perlbench"],
            WeightSortPolicy(),
            instructions=INSTR,
            phase1_min_wall=30_000_000.0,
            monitor_interval=2_000_000.0,
        )

    def test_all_mappings_measured(self, result):
        assert len(result.mapping_times) >= 3
        for times in result.mapping_times.values():
            assert set(times) == {"povray", "gobmk", "sjeng", "perlbench"}

    def test_chosen_mapping_present(self, result):
        assert result.chosen_mapping in result.mapping_times

    def test_improvements_bounded(self, result):
        for name in result.names:
            assert 0.0 <= result.improvement(name) <= 1.0

    def test_decisions_exclude_nothing_relevant(self, result):
        # Every decision maps exactly the four guest vcpus.
        for decision in result.decisions:
            assert len(decision.task_ids) == 4

    def test_dom0_never_in_decisions(self, result):
        guest_tids = result.chosen_mapping.task_ids
        for decision in result.decisions:
            assert decision.task_ids == guest_tids


class TestVmSweep:
    def test_sweep_shape(self):
        sweep = vm_mix_sweep(
            core2duo(),
            [("povray", "gobmk", "sjeng", "perlbench")],
            WeightSortPolicy(),
            instructions=INSTR,
            phase1_min_wall=20_000_000.0,
            monitor_interval=2_000_000.0,
        )
        assert len(sweep.mix_results) == 1
        assert set(sweep.benchmarks()) == {"povray", "gobmk", "sjeng", "perlbench"}


class TestOverheadDampening:
    def test_virtualization_increases_times(self):
        native_like = vm_two_phase(
            core2duo(),
            ["povray", "sjeng"],
            WeightSortPolicy(),
            instructions=INSTR,
            overhead=VirtualizationOverhead(
                cpi_multiplier=1.0,
                per_access_cycles=0.0,
                vm_switch_cycles=0.0,
                dom0_footprint_kb=0,
            ),
            phase1_min_wall=10_000_000.0,
            monitor_interval=2_000_000.0,
        )
        taxed = vm_two_phase(
            core2duo(),
            ["povray", "sjeng"],
            WeightSortPolicy(),
            instructions=INSTR,
            overhead=VirtualizationOverhead(),
            phase1_min_wall=10_000_000.0,
            monitor_interval=2_000_000.0,
        )
        for name in ("povray", "sjeng"):
            assert taxed.best_time(name) > native_like.best_time(name)
