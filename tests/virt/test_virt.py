"""Tests for the virtualization layer (VMs, hypervisor, Dom0 agent)."""

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.cache.config import tiny_cache
from repro.errors import ConfigurationError
from repro.perf.machine import MachineConfig
from repro.perf.timing import TimingModel
from repro.sched.affinity import canonical_mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.virt.dom0 import Dom0AllocationAgent
from repro.virt.hypervisor import DOM0_NAME, Hypervisor
from repro.virt.overhead import VirtualizationOverhead
from repro.virt.vm import VirtualMachine
from repro.workloads.base import WorkloadProfile
from repro.workloads.patterns import RandomRegionGenerator


def tiny_machine():
    return MachineConfig(
        name="tiny",
        num_cores=2,
        l2=tiny_cache(sets=64, ways=4),
        shared_l2=True,
        timing=TimingModel(),
    )


def small_profile(name="toy"):
    return WorkloadProfile(
        name=name,
        category="moderate",
        working_set_kb=8,
        hot_set_kb=4,
        accesses_per_kinstr=20.0,
        pattern="zipf",
        locality=0.9,
    )


def make_vm(name="toy", instructions=100_000, base=0, seed=0):
    return VirtualMachine.from_profile(
        small_profile(name), instructions=instructions, base_block=base, seed=seed
    )


class TestVirtualMachine:
    def test_single_vcpu_from_profile(self):
        vm = make_vm()
        assert len(vm.vcpus) == 1
        assert vm.vcpus[0].name == "vm:toy"
        assert vm.vcpus[0].total_accesses == 2000

    def test_vcpus_share_process_id(self):
        tasks = [
            SimTask(
                name=f"v{i}",
                generator=RandomRegionGenerator(64, seed=i),
                total_accesses=100,
                accesses_per_kinstr=10.0,
            )
            for i in range(2)
        ]
        vm = VirtualMachine(name="multi", vcpus=tasks)
        assert tasks[0].process_id == tasks[1].process_id == vm.process_id

    def test_tids(self):
        vm = make_vm()
        assert vm.tids == [vm.vcpus[0].tid]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualMachine(name="x", vcpus=[])


class TestOverhead:
    def test_virtualize_timing(self):
        base = TimingModel(cpi_base=1.0, per_access_cycles=0.0)
        ov = VirtualizationOverhead(cpi_multiplier=1.5, per_access_cycles=40.0)
        virt = ov.virtualize_timing(base)
        assert virt.cpi_base == pytest.approx(1.5)
        assert virt.per_access_cycles == pytest.approx(40.0)
        assert virt.mem_cycles == base.mem_cycles

    def test_virtualized_batch_costs_more(self):
        base = TimingModel()
        virt = VirtualizationOverhead().virtualize_timing(base)
        assert virt.batch_cycles(1000, 50, 10) > base.batch_cycles(1000, 50, 10)

    def test_dom0_toggle(self):
        assert VirtualizationOverhead(dom0_footprint_kb=0).includes_dom0 is False
        assert VirtualizationOverhead().includes_dom0 is True

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            VirtualizationOverhead(cpi_multiplier=0.9)
        with pytest.raises(ConfigurationError):
            VirtualizationOverhead(per_access_cycles=-1.0)


class TestHypervisor:
    def test_machine_is_taxed(self):
        hv = Hypervisor(tiny_machine(), [make_vm()])
        assert hv.machine.timing.per_access_cycles > 0
        assert "xen" in hv.machine.name

    def test_dom0_task_injected(self):
        hv = Hypervisor(tiny_machine(), [make_vm()])
        names = [t.name for t in hv.all_tasks]
        assert DOM0_NAME in names
        assert len(hv.guest_tasks) == 1

    def test_dom0_disabled(self):
        ov = VirtualizationOverhead(dom0_footprint_kb=0)
        hv = Hypervisor(tiny_machine(), [make_vm()], overhead=ov)
        assert hv.dom0_task is None
        assert len(hv.all_tasks) == 1

    def test_world_switch_cost_added(self):
        hv = Hypervisor(tiny_machine(), [make_vm()])
        cfg = hv.scheduler_config()
        assert cfg.context_switch_cycles > SchedulerConfig(2).context_switch_cycles

    def test_run_completes_vms(self):
        vms = [make_vm("a", base=0, seed=1), make_vm("b", base=5000, seed=2)]
        hv = Hypervisor(tiny_machine(), vms)
        result = hv.run(
            scheduler_config=SchedulerConfig(2, timeslice_cycles=100_000.0)
        )
        assert hv.vm_user_time(result, "a") > 0
        assert hv.vm_user_time(result, "b") > 0

    def test_vm_user_time_unknown(self):
        hv = Hypervisor(tiny_machine(), [make_vm()])
        result = hv.run()
        with pytest.raises(KeyError):
            hv.vm_user_time(result, "nope")

    def test_mapping_pins_guests_dom0_floats(self):
        vms = [make_vm("a", base=0, seed=1), make_vm("b", base=5000, seed=2)]
        hv = Hypervisor(tiny_machine(), vms)
        mapping = canonical_mapping([[vms[0].vcpus[0].tid], [vms[1].vcpus[0].tid]])
        sim = hv.simulator(mapping=mapping)
        # Dom0 was placed on some core without displacing the mapping.
        placement = {
            t.tid: sim.scheduler.core_of(t.tid) for t in hv.all_tasks
        }
        assert placement[vms[0].vcpus[0].tid] != placement[vms[1].vcpus[0].tid]

    def test_duplicate_vm_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Hypervisor(tiny_machine(), [make_vm("a"), make_vm("a")])

    def test_no_vms_rejected(self):
        with pytest.raises(ConfigurationError):
            Hypervisor(tiny_machine(), [])

    def test_virtualized_run_slower_than_native(self):
        from repro.perf.simulator import MulticoreSimulator

        vm = make_vm("a", instructions=200_000)
        native_task = SimTask(
            name="native",
            generator=small_profile().make_generator(seed=vm.vcpus[0].generator.seed),
            total_accesses=vm.vcpus[0].total_accesses,
            accesses_per_kinstr=20.0,
        )
        native = MulticoreSimulator(tiny_machine(), [native_task]).run()
        hv = Hypervisor(
            tiny_machine(), [vm],
            overhead=VirtualizationOverhead(dom0_footprint_kb=0),
        )
        virt = hv.run()
        assert hv.vm_user_time(virt, "a") > native.user_time("native")


class TestDom0Agent:
    def test_agent_excludes_dom0(self):
        machine = tiny_machine()
        vms = [make_vm(f"vm{i}", base=4000 * i, seed=i) for i in range(4)]
        hv = Hypervisor(machine, vms)
        from repro.core.signature import SignatureConfig

        sig = SignatureConfig(num_cores=2, num_sets=64, ways=4)
        agent = Dom0AllocationAgent(WeightSortPolicy(), interval_cycles=200_000.0)
        result = hv.run(
            signature_config=sig,
            monitor=agent,
            scheduler_config=SchedulerConfig(2, timeslice_cycles=50_000.0),
            min_wall_cycles=3_000_000.0,
        )
        assert len(result.decisions) > 0
        dom0_tid = hv.dom0_task.tid
        for decision in result.decisions:
            assert dom0_tid not in decision.task_ids

    def test_agent_skips_invalid(self):
        machine = tiny_machine()
        hv = Hypervisor(machine, [make_vm()])
        sim = hv.simulator(
            signature_config=__import__("repro.core.signature", fromlist=["SignatureConfig"]).SignatureConfig(
                num_cores=2, num_sets=64, ways=4
            )
        )
        agent = Dom0AllocationAgent(WeightSortPolicy(), interval_cycles=100.0)
        assert agent.invoke(sim.syscall) is None
        assert agent.skipped_invocations == 1
