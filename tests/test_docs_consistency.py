"""Docs-vs-code consistency checks.

Keeps README/DESIGN claims honest: the quickstart snippet must run, every
bench listed in the README table must exist, and the public API promised
by the README import line must resolve.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text()

    def test_quickstart_imports_resolve(self, readme):
        import repro

        match = re.search(r"from repro import ([^\n]+)", readme)
        assert match, "README quickstart import line missing"
        for name in [n.strip() for n in match.group(1).split(",")]:
            assert hasattr(repro, name), f"repro.{name} promised by README"

    def test_quickstart_snippet_runs_scaled_down(self):
        from repro import core2duo, two_phase, WeightedInterferenceGraphPolicy

        machine = core2duo()
        result = two_phase(
            machine,
            ["povray", "sjeng"],
            WeightedInterferenceGraphPolicy(),
            instructions=150_000,
            phase1_min_wall=10_000_000.0,
        )
        assert result.chosen_mapping is not None
        for name in result.names:
            assert 0.0 <= result.improvement(name) <= 1.0

    def test_all_listed_benches_exist(self, readme):
        for match in re.finditer(r"`(bench_[a-z0-9_]+\.py)`", readme):
            assert (REPO / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_all_listed_examples_exist(self, readme):
        for match in re.finditer(r"`examples/([a-z0-9_]+\.py)`", readme):
            assert (REPO / "examples" / match.group(1)).exists(), match.group(1)


class TestBenchCoverage:
    def test_every_paper_artifact_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        required = {
            "bench_fig01_footprint_concept.py",
            "bench_fig02_counters_vs_footprint.py",
            "bench_fig03a_pairwise_private.py",
            "bench_fig03b_pairwise_shared.py",
            "bench_fig05_occupancy_tracking.py",
            "bench_table1_mapping_runtimes.py",
            "bench_fig10_native_improvement.py",
            "bench_fig11_vm_improvement.py",
            "bench_fig12_parsec.py",
            "bench_fig13_algorithms.py",
            "bench_fig14_hash_functions.py",
            "bench_sec54_overhead.py",
        }
        missing = required - benches
        assert not missing, f"paper artifacts without a bench: {missing}"

    def test_design_md_mentions_every_bench(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in (REPO / "benchmarks").glob("bench_fig*.py"):
            stem = bench.name
            assert stem in design or stem.replace(".py", "") in design, stem


class TestExamples:
    def test_at_least_three_scenarios_plus_quickstart(self):
        examples = list((REPO / "examples").glob("*.py"))
        names = {p.name for p in examples}
        assert "quickstart.py" in names
        assert len(examples) >= 4

    def test_examples_have_docstrings(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert text.lstrip().startswith(('"""', "#!")), path.name
