"""Tests for trace containers and interleaving."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.trace.interleave import proportional, round_robin
from repro.trace.record import LabelledTrace, windows


def trace(source, blocks):
    return LabelledTrace(source=source, blocks=np.asarray(blocks, dtype=np.int64))


class TestLabelledTrace:
    def test_len_and_dtype(self):
        t = trace(0, [1, 2, 3])
        assert len(t) == 3
        assert t.blocks.dtype == np.int64

    def test_byte_addresses(self):
        t = trace(0, [0, 1, 2])
        assert t.byte_addresses().tolist() == [0, 64, 128]

    def test_slice(self):
        t = trace(1, range(10))
        s = t.slice(2, 5)
        assert s.source == 1
        assert s.blocks.tolist() == [2, 3, 4]

    def test_slice_past_end(self):
        t = trace(0, [1, 2])
        assert t.slice(1, 99).blocks.tolist() == [2]

    def test_negative_source_rejected(self):
        with pytest.raises(WorkloadError):
            trace(-1, [1])

    def test_windows(self):
        t = trace(0, range(10))
        ws = list(windows(t, 4))
        assert [len(w) for w in ws] == [4, 4, 2]
        assert ws[2].blocks.tolist() == [8, 9]

    def test_windows_bad_size(self):
        with pytest.raises(ValueError):
            list(windows(trace(0, [1]), 0))


class TestRoundRobin:
    def test_alternates_sources(self):
        a = trace(0, range(6))
        b = trace(1, range(100, 106))
        merged = round_robin([a, b], chunk=2)
        assert [p.source for p in merged] == [0, 1, 0, 1, 0, 1]

    def test_uneven_lengths_drain(self):
        a = trace(0, range(2))
        b = trace(1, range(100, 110))
        merged = round_robin([a, b], chunk=2)
        total_b = sum(len(p) for p in merged if p.source == 1)
        assert total_b == 10
        total_a = sum(len(p) for p in merged if p.source == 0)
        assert total_a == 2

    def test_preserves_order_within_source(self):
        a = trace(0, range(10))
        merged = round_robin([a], chunk=3)
        rebuilt = np.concatenate([p.blocks for p in merged])
        assert rebuilt.tolist() == list(range(10))

    def test_empty_input_rejected(self):
        with pytest.raises(WorkloadError):
            round_robin([])


class TestProportional:
    def test_rate_ratio_respected(self):
        a = trace(0, range(1000))
        b = trace(1, range(1000))
        merged = proportional([a, b], rates=[3.0, 1.0], chunk=1)
        first_200 = merged[:200]
        share_a = sum(1 for p in first_200 if p.source == 0) / 200
        assert 0.65 < share_a < 0.85

    def test_all_data_emitted(self):
        a = trace(0, range(50))
        b = trace(1, range(30))
        merged = proportional([a, b], rates=[1.0, 2.0], chunk=7)
        assert sum(len(p) for p in merged if p.source == 0) == 50
        assert sum(len(p) for p in merged if p.source == 1) == 30

    def test_order_preserved_within_source(self):
        a = trace(0, range(40))
        b = trace(1, range(100, 140))
        merged = proportional([a, b], rates=[1.0, 1.0], chunk=8)
        rebuilt = np.concatenate([p.blocks for p in merged if p.source == 0])
        assert rebuilt.tolist() == list(range(40))

    def test_bad_rates_rejected(self):
        with pytest.raises(WorkloadError):
            proportional([trace(0, [1])], rates=[0.0])
        with pytest.raises(WorkloadError):
            proportional([trace(0, [1])], rates=[1.0, 2.0])
