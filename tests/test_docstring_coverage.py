"""Enforce documentation on every public item of the library.

Walks all repro submodules and asserts each public module, class, function
and method carries a docstring — the deliverable "doc comments on every
public item", kept honest by CI.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MEMBER_NAMES = {
    # dataclass-generated or inherited plumbing that needs no prose
    "__init__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in ("repro.__main__",):
            continue
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") and mname not in ("__init__",):
                    continue
                if mname in SKIP_MEMBER_NAMES:
                    continue
                if not inspect.isfunction(member):
                    continue
                if member.__doc__ and member.__doc__.strip():
                    continue
                # An override inherits its contract's docstring.
                inherited = any(
                    (getattr(base, mname, None) is not None)
                    and getattr(getattr(base, mname), "__doc__", None)
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: public items without docstrings: {undocumented}"
    )
