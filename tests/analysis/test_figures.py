"""Tests for figure series builders and report rendering (small scales)."""

import pytest

from repro.analysis.figures import (
    POLICIES,
    CounterSeries,
    figure1_concept,
    figure2_counters_vs_footprint,
    table1_mapping_runtimes,
)
from repro.analysis.report import (
    render_counter_series,
    render_mix_comparison,
    render_pairwise,
    render_sweep,
    render_table1,
)
from repro.cache.config import CacheConfig, CacheGeometry
from repro.perf.experiment import (
    MixResult,
    PairwiseResult,
    SweepResult,
)
from repro.sched.affinity import canonical_mapping


def small_l2():
    return CacheConfig(
        name="small",
        geometry=CacheGeometry(size_bytes=256 * 1024, line_bytes=64, ways=8),
    )


class TestFigure1:
    def test_concept_shape(self):
        out = figure1_concept()
        # Both apps miss 100%; footprints differ 4x (paper: 8x with finer
        # strides — the point is identical miss rate, different footprint).
        assert out["A"]["miss_rate"] == 1.0
        assert out["B"]["miss_rate"] == 1.0
        assert out["A"]["footprint_lines"] == 1.0
        assert out["B"]["footprint_lines"] == 4.0


class TestFigure2Series:
    @pytest.fixture(scope="class")
    def series(self):
        # The default 1 MB measurement cache: phase working sets must stay
        # below cache size for the Figure 2/5 regime (see figures.py).
        return figure2_counters_vs_footprint(laps=1)

    def test_series_lengths_align(self, series):
        n = len(series.true_footprint)
        assert n > 10
        for name in (
            "resident_lines",
            "l2_misses",
            "tlb_misses",
            "page_faults",
            "occupancy_weight",
            "rbv_occupancy",
        ):
            assert len(getattr(series, name)) == n

    def test_occupancy_tracks_resident_better_than_counters_track_ws(self, series):
        # The joint Figure 2 + Figure 5 claim.
        fig5 = series.correlation("occupancy_weight", "resident_lines")
        fig2_miss = abs(series.correlation("l2_misses"))
        assert fig5 > fig2_miss

    def test_tracking_error_bounded(self, series):
        assert 0.0 <= series.tracking_error() < 1.0

    def test_correlation_degenerate_series(self):
        s = CounterSeries(window_accesses=10)
        s.true_footprint = [5, 5]
        s.l2_misses = [1, 2]
        assert s.correlation("l2_misses") == 0.0


class TestTable1:
    def test_structure(self):
        names, times = table1_mapping_runtimes(instructions=100_000)
        assert names == ["povray", "gobmk", "libquantum", "hmmer"]
        assert len(times) == 3
        text = render_table1(names, times, clock_hz=2.6e9)
        assert "povray" in text and "Table 1" in text


class TestRenderers:
    def test_render_pairwise(self):
        result = PairwiseResult(
            names=("a", "b"),
            solo_times={"a": 100.0, "b": 100.0},
            pair_times={("a", "b"): {"a": 150.0, "b": 110.0}},
        )
        text = render_pairwise(result, "Figure 3")
        assert "Figure 3" in text
        assert "50.0%" in text

    def test_render_sweep(self):
        sweep = SweepResult()
        a = canonical_mapping([[0, 1], [2, 3]])
        b = canonical_mapping([[0, 2], [1, 3]])
        sweep.add(
            MixResult(
                names=("x", "y"),
                mapping_times={a: {"x": 100.0, "y": 50.0}, b: {"x": 80.0, "y": 55.0}},
                chosen_mapping=b,
                default_mapping=a,
            )
        )
        text = render_sweep(sweep, "Figure 10")
        assert "Figure 10" in text
        assert "20.0%" in text  # x improved 20%
        assert "#" in text  # bar chart

    def test_render_mix_comparison(self):
        a = canonical_mapping([[0, 1], [2, 3]])
        b = canonical_mapping([[0, 2], [1, 3]])
        mix = MixResult(
            names=("x", "y"),
            mapping_times={a: {"x": 100.0, "y": 50.0}, b: {"x": 80.0, "y": 55.0}},
            chosen_mapping=b,
            default_mapping=a,
        )
        text = render_mix_comparison({"p1": [mix], "p2": [mix]}, "Figure 13")
        assert "p1" in text and "x+y" in text

    def test_render_counter_series(self):
        series = figure2_counters_vs_footprint(
            window_accesses=5000,
            laps=1,
            machine_l2=small_l2(),
            scrubber_accesses_per_window=2000,
        )
        text = render_counter_series(series)
        assert "Figure 2" in text and "Figure 5" in text


class TestPolicies:
    def test_policy_registry(self):
        assert set(POLICIES) == {
            "weight_sort",
            "interference_graph",
            "weighted_interference_graph",
        }
        for cls in POLICIES.values():
            assert hasattr(cls, "allocate")
