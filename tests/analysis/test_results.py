"""Tests for result persistence."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis.results import (
    load_json,
    mix_result_to_dict,
    save_json,
    to_jsonable,
)
from repro.perf.experiment import MixResult
from repro.sched.affinity import canonical_mapping


class TestToJsonable:
    def test_primitives(self):
        assert to_jsonable("x") == "x"
        assert to_jsonable(True) is True
        assert to_jsonable(None) is None
        assert to_jsonable(3) == 3
        assert to_jsonable(2.5) == 2.5

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(5)) == 5
        assert isinstance(to_jsonable(np.float32(1.5)), float)

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested(self):
        obj = {"a": [np.int64(1), {"b": (2, 3)}]}
        assert to_jsonable(obj) == {"a": [1, {"b": [2, 3]}]}

    def test_dataclass(self):
        @dataclass
        class Point:
            x: int
            y: float

        assert to_jsonable(Point(1, 2.0)) == {"x": 1, "y": 2.0}

    def test_sets_become_lists(self):
        assert sorted(to_jsonable(frozenset({1, 2}))) == [1, 2]

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "result.json"
        save_json(path, {"x": np.float64(1.5), "y": [1, 2]})
        assert load_json(path) == {"x": 1.5, "y": [1, 2]}


class TestMixResultToDict:
    def test_flattening(self):
        a = canonical_mapping([[0, 1], [2, 3]])
        b = canonical_mapping([[0, 2], [1, 3]])
        result = MixResult(
            names=("x", "y"),
            mapping_times={
                a: {"x": 100.0, "y": 50.0},
                b: {"x": 80.0, "y": 60.0},
            },
            chosen_mapping=b,
            default_mapping=a,
            decisions=(b, b, a),
        )
        d = mix_result_to_dict(result)
        assert d["names"] == ["x", "y"]
        assert d["num_decisions"] == 3
        assert d["improvements"]["x"] == pytest.approx(0.2)
        assert str(b) in d["mapping_times"]
        # And the whole thing is JSON-serialisable.
        to_jsonable(d)
