"""Tests for CSV export of figure series."""

import csv

import pytest

from repro.analysis.export import counter_series_to_csv, sweep_to_csv, write_csv
from repro.analysis.figures import CounterSeries
from repro.errors import ConfigurationError
from repro.perf.experiment import MixResult, SweepResult
from repro.sched.affinity import canonical_mapping


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "a" / "out.csv", ["x", "y"], [[1, 2], [3, 4]])
        rows = list(csv.reader(path.open()))
        assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]

    def test_ragged_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv(tmp_path / "out.csv", ["x"], [[1, 2]])


class TestSeriesExport:
    def test_counter_series(self, tmp_path):
        series = CounterSeries(window_accesses=10)
        for i in range(3):
            series.true_footprint.append(i)
            series.resident_lines.append(i * 2)
            series.l2_misses.append(1)
            series.tlb_misses.append(0)
            series.page_faults.append(0)
            series.occupancy_weight.append(i * 2)
            series.rbv_occupancy.append(i)
        path = counter_series_to_csv(series, tmp_path / "fig2.csv")
        rows = list(csv.reader(path.open()))
        assert len(rows) == 4
        assert rows[0][0] == "window"
        assert rows[2][1] == "1"

    def test_sweep_export(self, tmp_path):
        sweep = SweepResult()
        a = canonical_mapping([[0, 1], [2, 3]])
        b = canonical_mapping([[0, 2], [1, 3]])
        sweep.add(
            MixResult(
                names=("x", "y"),
                mapping_times={a: {"x": 100.0, "y": 50.0}, b: {"x": 80.0, "y": 55.0}},
                chosen_mapping=b,
                default_mapping=a,
            )
        )
        path = sweep_to_csv(sweep, tmp_path / "fig10.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["benchmark", "max_improvement", "avg_improvement", "mixes"]
        assert rows[1][0] == "x"
        assert float(rows[1][1]) == pytest.approx(0.2)
