"""Tests for fairness metrics."""

import pytest

from repro.analysis.fairness import (
    fairness_report,
    jain_index,
    slowdowns,
    unfairness,
)
from repro.errors import ConfigurationError


class TestJainIndex:
    def test_equal_values_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_value(self):
        assert jain_index([7.0]) == pytest.approx(1.0)

    def test_worst_case_approaches_1_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        v = jain_index([1.0, 2.0, 3.0])
        assert 1 / 3 <= v <= 1.0

    def test_all_zero(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([1.0, -1.0])


class TestSlowdowns:
    def test_basic(self):
        sd = slowdowns({"a": 150.0, "b": 100.0}, {"a": 100.0, "b": 100.0})
        assert sd == {"a": 1.5, "b": 1.0}

    def test_missing_baseline(self):
        with pytest.raises(ConfigurationError):
            slowdowns({"a": 1.0}, {})

    def test_zero_baseline(self):
        with pytest.raises(ConfigurationError):
            slowdowns({"a": 1.0}, {"a": 0.0})


class TestUnfairness:
    def test_equal_is_one(self):
        assert unfairness({"a": 1.3, "b": 1.3}) == pytest.approx(1.0)

    def test_spread(self):
        assert unfairness({"a": 2.0, "b": 1.0}) == pytest.approx(2.0)

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            unfairness({})


class TestFairnessReport:
    def test_bundle(self):
        report = fairness_report(
            {"a": 200.0, "b": 120.0}, {"a": 100.0, "b": 100.0}
        )
        assert report["max_slowdown"] == pytest.approx(2.0)
        assert report["min_slowdown"] == pytest.approx(1.2)
        assert report["unfairness"] == pytest.approx(2.0 / 1.2)
        assert 0 < report["jain_index"] <= 1.0
