"""Tests for the Figure 10/11 mix-composition logic."""

from repro.analysis.figures import SHOWCASE_MIXES
from repro.perf.experiment import stratified_mixes
from repro.workloads.spec import spec_profile_names


class TestShowcaseMixes:
    def test_showcases_are_valid_pool_members(self):
        pool = set(spec_profile_names())
        for mix in SHOWCASE_MIXES:
            assert len(mix) == 4
            assert len(set(mix)) == 4
            assert set(mix) <= pool

    def test_every_cache_sensitive_benchmark_has_a_showcase(self):
        from repro.workloads.spec import spec_pool

        sensitive = {p.name for p in spec_pool() if p.category == "cache_sensitive"}
        anchored = {mix[0] for mix in SHOWCASE_MIXES}
        assert sensitive <= anchored

    def test_showcases_pair_anchor_with_one_polluter(self):
        from repro.workloads.spec import spec_profile

        heavy = {"streaming", "bandwidth_bound"}
        for mix in SHOWCASE_MIXES:
            polluters = [
                n for n in mix[1:] if spec_profile(n).category in heavy
            ]
            assert len(polluters) == 1, mix

    def test_showcases_exist_in_full_sweep(self):
        # They are ordinary members of the C(12,4) space, not fabrications.
        pool = spec_profile_names()
        import itertools

        all_mixes = {tuple(sorted(m)) for m in itertools.combinations(pool, 4)}
        for mix in SHOWCASE_MIXES:
            assert tuple(sorted(mix)) in all_mixes

    def test_stratified_avoids_duplicating_showcases_when_filtered(self):
        sampled = stratified_mixes(spec_profile_names(), 3, seed=3)
        showcase_keys = {tuple(sorted(m)) for m in SHOWCASE_MIXES}
        merged = list(SHOWCASE_MIXES) + [
            m for m in sampled if tuple(sorted(m)) not in showcase_keys
        ]
        keys = [tuple(sorted(m)) for m in merged]
        assert len(keys) == len(set(keys))
