"""Tests for the timing-model sensitivity sweep (tiny scale)."""

import pytest

from repro.analysis.sensitivity import (
    TIMING_PARAMETERS,
    SensitivityPoint,
    sweep_timing_parameter,
)


class TestSweep:
    def test_unknown_parameter(self):
        with pytest.raises(KeyError):
            sweep_timing_parameter("branch_penalty")

    def test_registry_parameters_are_timing_fields(self):
        from repro.perf.timing import TimingModel

        t = TimingModel()
        for name in TIMING_PARAMETERS:
            assert hasattr(t, name)

    @pytest.fixture(scope="class")
    def points(self):
        return sweep_timing_parameter(
            "mem_cycles",
            multipliers=(1.0, 2.0),
            mix=("povray", "sjeng"),
            benchmark="sjeng",
            instructions=150_000,
            phase1_min_wall=10_000_000.0,
        )

    def test_point_per_multiplier(self, points):
        assert [p.multiplier for p in points] == [1.0, 2.0]
        assert points[0].value == pytest.approx(200.0)
        assert points[1].value == pytest.approx(400.0)

    def test_improvements_bounded(self, points):
        for p in points:
            assert 0.0 <= p.chosen_improvement <= 1.0
            assert p.chosen_improvement <= p.oracle_improvement + 1e-9

    def test_policy_found_it_trivial_case(self):
        point = SensitivityPoint(
            parameter="mem_cycles",
            multiplier=1.0,
            value=200.0,
            chosen_improvement=0.0,
            oracle_improvement=0.01,
            result=None,
        )
        assert point.policy_found_it  # nothing to find

    def test_policy_found_it_miss(self):
        point = SensitivityPoint(
            parameter="mem_cycles",
            multiplier=1.0,
            value=200.0,
            chosen_improvement=0.05,
            oracle_improvement=0.40,
            result=None,
        )
        assert not point.policy_found_it
