"""Renderer coverage for :mod:`repro.analysis.report`.

The renderers are the repo's human-facing output (bench reports, the
CLI); these tests pin their structure on hand-built results so a
formatting regression is caught without running a sweep.
"""


from repro.analysis.report import (
    render_counter_series,
    render_metrics,
    render_mix_comparison,
    render_sweep,
)
from repro.perf.experiment import MixResult, SweepResult
from repro.sched.affinity import Mapping


def make_mix(names=("alpha", "beta"), chosen_first=True):
    """A MixResult with known times: improvements computable by hand."""
    together = Mapping.from_groups([[0, 1], []]).canonical()
    apart = Mapping.from_groups([[0], [1]]).canonical()
    times = {
        together: {"alpha": 10.0, "beta": 24.0},
        apart: {"alpha": 8.0, "beta": 30.0},
    }
    return MixResult(
        names=tuple(names),
        mapping_times=times,
        chosen_mapping=apart if chosen_first else together,
        default_mapping=together,
    )


class FakeSeries:
    """Stub of the Figure 2/5 counter series protocol."""

    def __init__(self, n=6):
        self.true_footprint = [float(i) for i in range(n)]
        self.resident_lines = [float(i) for i in range(n)]
        self.occupancy_weight = [float(i) / 2 for i in range(n)]
        self.l2_misses = [1.0] * n
        self.tlb_misses = [2.0] * n
        self.page_faults = [0.0] * n

    def correlation(self, name, other="true_footprint"):
        """Pretend correlation: pinned value keyed by series name."""
        return {"l2_misses": 0.1, "tlb_misses": 0.2, "page_faults": 0.3}.get(
            name, 0.99
        )

    def tracking_error(self):
        """Pretend mean relative tracking error."""
        return 0.05


class TestRenderSweep:
    def test_rows_and_oracle_column(self):
        """Every benchmark appears with max/avg/oracle percentages."""
        sweep = SweepResult()
        sweep.add(make_mix())
        sweep.add(make_mix(chosen_first=False))
        text = render_sweep(sweep, "unit sweep")
        assert "unit sweep" in text
        for name in ("alpha", "beta"):
            assert name in text
        # alpha's oracle: worst 10 → best 8 = 20%; chosen-best mix hits it.
        assert "20.0%" in text
        assert "max improvement (%)" in text  # the bar chart rides along

    def test_mix_count_column(self):
        """The mixes column counts how often each benchmark appeared."""
        sweep = SweepResult()
        sweep.add(make_mix())
        line = next(
            l for l in render_sweep(sweep, "t").splitlines()
            if l.startswith("alpha")
        )
        assert line.rstrip().endswith("1")


class TestRenderMixComparison:
    def test_variants_become_columns(self):
        """One row per mix, one column per variant, mean improvements."""
        results = {
            "weighted": [make_mix()],
            "greedy": [make_mix(chosen_first=False)],
        }
        text = render_mix_comparison(results, "algorithm comparison")
        assert "algorithm comparison" in text
        assert "weighted" in text and "greedy" in text
        assert "alpha+beta" in text
        # The chosen-worst variant's mean improvement is exactly 0%.
        assert "0.0%" in text


class TestRenderCounterSeries:
    def test_sections_and_pinned_correlations(self):
        """Time series, Figure 2 and Figure 5 blocks all render."""
        text = render_counter_series(FakeSeries())
        assert "counters vs footprint over time" in text
        assert "Figure 2: counters vs true working set" in text
        assert "Figure 5: CBF occupancy vs true cache footprint" in text
        assert "0.100" in text and "0.300" in text  # stub correlations
        assert "0.050" in text  # stub tracking error

    def test_row_downsampling(self):
        """max_rows caps the number of table rows."""
        text = render_counter_series(FakeSeries(n=100), max_rows=5)
        rows = [
            l for l in text.splitlines()
            if l and l[0].isdigit()
        ]
        assert len(rows) <= 6


class TestRenderMetrics:
    def test_counter_gauge_histogram_rows(self):
        """Each instrument type renders a scannable one-line summary."""
        snapshot = {
            "runs_total": {"type": "counter", "value": 3},
            "depth": {"type": "gauge", "value": 1.5},
            "lat": {
                "type": "histogram",
                "count": 4,
                "sum": 10.0,
                "buckets": [["1", 1], ["2", 3], ["+Inf", 4]],
            },
        }
        text = render_metrics(snapshot, title="unit metrics")
        assert "unit metrics" in text
        lines = {l.split()[0]: l for l in text.splitlines() if l and " " in l}
        assert "counter" in lines["runs_total"] and "3" in lines["runs_total"]
        assert "gauge" in lines["depth"] and "1.5" in lines["depth"]
        # Busiest bucket: le=2 holds 2 of the 4 observations.
        assert "n=4" in lines["lat"] and "mode<=2" in lines["lat"]

    def test_empty_snapshot_renders(self):
        """An empty registry still produces a (header-only) table."""
        text = render_metrics({})
        assert "metric" in text
