"""Tests for deterministic RNG stream management."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, make_rng, spawn_rngs, stable_seed


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1 << 30, 10)
        b = make_rng(42).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = make_rng(1).integers(0, 1 << 30, 10)
        b = make_rng(2).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = make_rng(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_entropy(self):
        # Two entropy-seeded generators should (overwhelmingly) differ.
        a = make_rng(None).integers(0, 1 << 62, 4)
        b = make_rng(None).integers(0, 1 << 62, 4)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_streams_are_independent_and_reproducible(self):
        first = [g.integers(0, 1 << 30, 5) for g in spawn_rngs(9, 3)]
        second = [g.integers(0, 1 << 30, 5) for g in spawn_rngs(9, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_count_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(5)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2

    def test_spawn_from_seed_sequence(self):
        children = spawn_rngs(np.random.SeedSequence(5), 2)
        assert len(children) == 2


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("mcf", 3) == stable_seed("mcf", 3)

    def test_part_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_no_concat_ambiguity(self):
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_positive_63_bit(self):
        for parts in [("x",), ("y", 1), (123,)]:
            s = stable_seed(*parts)
            assert 0 <= s < (1 << 63)


class TestDeriveRng:
    def test_keyed_streams_reproducible(self):
        a = derive_rng(3, "workload", "mcf").integers(0, 100, 5)
        b = derive_rng(3, "workload", "mcf").integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_keyed_streams_distinct(self):
        a = derive_rng(3, "mcf").integers(0, 1 << 30, 8)
        b = derive_rng(3, "omnetpp").integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_rejects_generator_root(self):
        with pytest.raises(TypeError):
            derive_rng(np.random.default_rng(0), "x")
