"""Tests for ASCII table/bar-chart rendering."""

import pytest

from repro.utils.tables import format_bar_chart, format_percent, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(
            ["name", "time"],
            [["povray", 125.0], ["gobmk", 99.0]],
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "125.00" in out and "99.00" in out

    def test_title(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"
        assert out.splitlines()[1].startswith("=")

    def test_none_renders_dash(self):
        out = format_table(["a"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_float_digits(self):
        out = format_table(["a"], [[1.23456]], float_digits=4)
        assert "1.2346" in out

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_numeric_columns_right_aligned(self):
        out = format_table(["v"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_text_columns_left_aligned(self):
        out = format_table(["name"], [["ab"], ["abcd"]])
        rows = out.splitlines()[2:]
        assert rows[0].startswith("ab")


class TestFormatBarChart:
    def test_bars_scale_with_value(self):
        out = format_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        la, lb = out.splitlines()
        assert lb.count("#") == 10
        assert la.count("#") == 5

    def test_empty_values(self):
        assert format_bar_chart({}, title="t") == "t"
        assert format_bar_chart({}) == ""

    def test_zero_max_draws_no_bars(self):
        out = format_bar_chart({"a": 0.0})
        assert "#" not in out

    def test_title_and_unit(self):
        out = format_bar_chart({"a": 1.5}, title="Improvements", unit="%")
        assert out.splitlines()[0] == "Improvements"
        assert "1.50%" in out


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.54) == "54.0%"

    def test_digits(self):
        assert format_percent(0.12345, digits=2) == "12.35%"
