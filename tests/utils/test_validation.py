"""Tests for argument-validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    is_power_of_two,
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_power_of_two,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_accepts_and_coerces(self):
        assert require_positive(3, "x") == 3
        assert require_positive(3.0, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigurationError):
            require_positive(bad, "x")

    def test_rejects_fractional_float(self):
        with pytest.raises(ConfigurationError):
            require_positive(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(ConfigurationError):
            require_positive("three", "x")

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="num_sets"):
            require_positive(-1, "num_sets")


class TestRequireNonNegative:
    def test_zero_ok(self):
        assert require_non_negative(0, "x") == 0

    def test_negative_raises(self):
        with pytest.raises(ConfigurationError):
            require_non_negative(-1, "x")


class TestPowersOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 1 << 20])
    def test_is_power_of_two_true(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1000])
    def test_is_power_of_two_false(self, value):
        assert not is_power_of_two(value)

    def test_require_accepts(self):
        assert require_power_of_two(64, "x") == 64

    @pytest.mark.parametrize("bad", [0, 3, 12])
    def test_require_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_power_of_two(bad, "x")


class TestRequireInRange:
    def test_bounds_inclusive(self):
        assert require_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert require_in_range(1.0, 0.0, 1.0, "x") == 1.0

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_out_of_range(self, bad):
        with pytest.raises(ConfigurationError):
            require_in_range(bad, 0.0, 1.0, "x")
