"""Unit and property tests for repro.utils.bitvec.BitVector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitvec import BitVector


class TestConstruction:
    def test_new_vector_is_empty(self):
        vec = BitVector(100)
        assert vec.popcount() == 0
        assert len(vec) == 100

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            BitVector(0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            BitVector(-5)

    def test_from_indices(self):
        vec = BitVector.from_indices(64, [0, 5, 63])
        assert vec.popcount() == 3
        assert vec.test(0) and vec.test(5) and vec.test(63)
        assert not vec.test(1)

    def test_copy_is_independent(self):
        a = BitVector.from_indices(32, [1, 2])
        b = a.copy()
        b.set(7)
        assert not a.test(7)
        assert b.test(7)


class TestSingleBitOps:
    def test_set_then_test(self):
        vec = BitVector(70)
        vec.set(69)
        assert vec.test(69)

    def test_clear(self):
        vec = BitVector.from_indices(70, [69])
        vec.clear(69)
        assert not vec.test(69)
        assert vec.popcount() == 0

    def test_set_is_idempotent(self):
        vec = BitVector(16)
        vec.set(3)
        vec.set(3)
        assert vec.popcount() == 1

    @pytest.mark.parametrize("index", [-1, 70, 1000])
    def test_out_of_range_raises(self, index):
        vec = BitVector(70)
        with pytest.raises(IndexError):
            vec.set(index)
        with pytest.raises(IndexError):
            vec.clear(index)
        with pytest.raises(IndexError):
            vec.test(index)


class TestBulkOps:
    def test_set_many_with_duplicates(self):
        vec = BitVector(128)
        vec.set_many(np.array([1, 1, 1, 64, 127]))
        assert vec.popcount() == 3

    def test_clear_many(self):
        vec = BitVector.from_indices(128, range(10))
        vec.clear_many(np.array([0, 2, 4, 6, 8]))
        assert vec.to_indices().tolist() == [1, 3, 5, 7, 9]

    def test_test_many(self):
        vec = BitVector.from_indices(64, [2, 40])
        result = vec.test_many(np.array([2, 3, 40]))
        assert result.tolist() == [True, False, True]

    def test_empty_arrays_are_noops(self):
        vec = BitVector(64)
        vec.set_many(np.array([], dtype=np.int64))
        vec.clear_many(np.array([], dtype=np.int64))
        assert vec.test_many(np.array([], dtype=np.int64)).shape == (0,)
        assert vec.popcount() == 0

    def test_bulk_out_of_range_raises(self):
        vec = BitVector(64)
        with pytest.raises(IndexError):
            vec.set_many(np.array([0, 64]))

    def test_zero_and_fill(self):
        vec = BitVector(100)
        vec.fill()
        assert vec.popcount() == 100
        vec.zero()
        assert vec.popcount() == 0

    def test_fill_respects_tail_mask(self):
        # 70 bits -> second word only has 6 valid bits.
        vec = BitVector(70)
        vec.fill()
        assert vec.popcount() == 70
        assert vec.to_indices().tolist() == list(range(70))

    def test_load_from_snapshots(self):
        a = BitVector.from_indices(64, [1, 2, 3])
        b = BitVector(64)
        b.load_from(a)
        assert b == a
        a.set(10)
        assert not b.test(10)


class TestBooleanAlgebra:
    def test_and(self):
        a = BitVector.from_indices(64, [1, 2, 3])
        b = BitVector.from_indices(64, [2, 3, 4])
        assert (a & b).to_indices().tolist() == [2, 3]

    def test_or(self):
        a = BitVector.from_indices(64, [1])
        b = BitVector.from_indices(64, [2])
        assert (a | b).to_indices().tolist() == [1, 2]

    def test_xor(self):
        a = BitVector.from_indices(64, [1, 2])
        b = BitVector.from_indices(64, [2, 3])
        assert (a ^ b).to_indices().tolist() == [1, 3]

    def test_invert_respects_size(self):
        a = BitVector.from_indices(70, [0])
        inv = ~a
        assert inv.popcount() == 69
        assert not inv.test(0)

    def test_andnot_is_rbv_semantics(self):
        cf = BitVector.from_indices(64, [1, 2, 3, 4])
        lf = BitVector.from_indices(64, [1, 2])
        rbv = cf.andnot(lf)
        assert rbv.to_indices().tolist() == [3, 4]

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector(64) & BitVector(65)

    def test_xor_popcount_matches_materialised(self):
        a = BitVector.from_indices(200, [0, 50, 150])
        b = BitVector.from_indices(200, [50, 100])
        assert a.xor_popcount(b) == (a ^ b).popcount() == 3

    def test_and_popcount(self):
        a = BitVector.from_indices(200, [0, 50, 150])
        b = BitVector.from_indices(200, [50, 150])
        assert a.and_popcount(b) == 2


class TestDunder:
    def test_equality(self):
        assert BitVector.from_indices(64, [5]) == BitVector.from_indices(64, [5])
        assert BitVector.from_indices(64, [5]) != BitVector.from_indices(64, [6])
        assert BitVector(64) != BitVector(65)

    def test_eq_other_type(self):
        assert BitVector(8) != "not a vector"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BitVector(8))

    def test_iter_and_bool_array(self):
        vec = BitVector.from_indices(5, [0, 4])
        assert list(vec) == [True, False, False, False, True]
        assert vec.to_bool_array().tolist() == [True, False, False, False, True]

    def test_repr(self):
        assert "popcount=2" in repr(BitVector.from_indices(8, [0, 1]))


@st.composite
def vec_and_indices(draw):
    size = draw(st.integers(min_value=1, max_value=300))
    indices = draw(st.lists(st.integers(min_value=0, max_value=size - 1), max_size=50))
    return size, indices


class TestProperties:
    @given(vec_and_indices())
    @settings(max_examples=100, deadline=None)
    def test_popcount_matches_set_of_indices(self, case):
        size, indices = case
        vec = BitVector(size)
        vec.set_many(np.asarray(indices, dtype=np.int64))
        assert vec.popcount() == len(set(indices))
        assert sorted(set(indices)) == vec.to_indices().tolist()

    @given(vec_and_indices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_boolean_ops_match_python_sets(self, case, data):
        size, idx_a = case
        idx_b = data.draw(
            st.lists(st.integers(min_value=0, max_value=size - 1), max_size=50)
        )
        a = BitVector.from_indices(size, idx_a)
        b = BitVector.from_indices(size, idx_b)
        sa, sb = set(idx_a), set(idx_b)
        assert set((a & b).to_indices().tolist()) == sa & sb
        assert set((a | b).to_indices().tolist()) == sa | sb
        assert set((a ^ b).to_indices().tolist()) == sa ^ sb
        assert set(a.andnot(b).to_indices().tolist()) == sa - sb
        assert a.xor_popcount(b) == len(sa ^ sb)

    @given(vec_and_indices())
    @settings(max_examples=60, deadline=None)
    def test_set_then_clear_roundtrip(self, case):
        size, indices = case
        vec = BitVector(size)
        arr = np.asarray(indices, dtype=np.int64)
        vec.set_many(arr)
        vec.clear_many(arr)
        assert vec.popcount() == 0

    @given(vec_and_indices())
    @settings(max_examples=60, deadline=None)
    def test_invert_involution(self, case):
        size, indices = case
        vec = BitVector.from_indices(size, indices)
        assert ~~vec == vec
        assert (~vec).popcount() == size - vec.popcount()
