"""Tests for the representative-interval sampled backend."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.estimate.options import EstimatorOptions
from repro.estimate.sampled import ReplayGenerator, sampled_simulation
from repro.perf.machine import core2duo
from repro.perf.runner import build_tasks, run_mix
from repro.sched.process import SimTask
from repro.workloads.patterns import RandomRegionGenerator


def homogeneous_tasks():
    """Two steady single-phase tasks, so sampling genuinely shortens.

    SPEC-profile traces at small scales are phase-rich (every window
    keeps at least one representative, flooring coverage at 1.0); a
    stable random region gives the detector one long phase to thin.
    """
    tasks = []
    for i, (name, region) in enumerate((("steady-a", 64), ("steady-b", 96))):
        task = SimTask(
            name=name,
            generator=RandomRegionGenerator(region, seed=i + 1),
            total_accesses=20_000,
            accesses_per_kinstr=30.0,
            mlp=1.0,
        )
        task.tid = i
        task.process_id = i
        tasks.append(task)
    return tasks


class TestReplayGenerator:
    def test_replays_and_wraps(self):
        gen = ReplayGenerator(np.array([3, 1, 4]))
        assert gen.next_batch(7).tolist()[:7] == [3, 1, 4, 3, 1, 4, 3]

    def test_reset_rewinds(self):
        gen = ReplayGenerator(np.array([3, 1, 4]))
        gen.next_batch(2)
        gen.reset()
        assert gen.next_batch(3).tolist() == [3, 1, 4]

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            ReplayGenerator(np.array([], dtype=np.int64))


class TestSampledSimulation:
    def test_denominator_one_reproduces_exact(self):
        """Keeping every window degenerates to the exact simulation."""
        opts = EstimatorOptions(denominator=1, window_refs=1024)
        machine = core2duo()
        tasks = build_tasks(["mcf", "povray"], instructions=60_000, seed=0)
        exact = run_mix(machine, tasks)
        tasks = build_tasks(["mcf", "povray"], instructions=60_000, seed=0)
        sampled, report = sampled_simulation(machine, tasks, options=opts)
        assert report.coverage == pytest.approx(1.0)
        assert report.error_bound is None
        assert sampled.l2_miss_rate == pytest.approx(exact.l2_miss_rate)
        for name in ("mcf", "povray"):
            assert sampled.user_time(name) == pytest.approx(
                exact.user_time(name)
            )

    def test_sampling_shortens_and_extrapolates(self):
        opts = EstimatorOptions(denominator=8, window_refs=512)
        machine = core2duo()
        tasks = homogeneous_tasks()
        full_refs = sum(t.total_accesses for t in tasks)
        result, report = sampled_simulation(machine, tasks, options=opts)
        assert 0.0 < report.coverage < 1.0
        assert report.error_bound is not None and report.error_bound > 0
        for sample in report.samples:
            assert 0 < sample.kept_refs < sample.total_refs
            assert sample.scale > 1.0
            assert sample.phases >= 1
        # Extrapolated magnitudes are full-trace scale, not sample scale.
        assert sum(s.total_refs for s in report.samples) == full_refs
        assert 0.0 < result.l2_miss_rate < 1.0
        for t in result.tasks:
            assert t.user_cycles > 0

    def test_deterministic(self):
        opts = EstimatorOptions(denominator=8, window_refs=512)
        machine = core2duo()

        def run():
            tasks = build_tasks(
                ["mcf", "milc"], instructions=100_000, seed=0
            )
            return sampled_simulation(machine, tasks, options=opts)

        a, ra = run()
        b, rb = run()
        assert a.l2_miss_rate == b.l2_miss_rate
        assert a.wall_cycles == b.wall_cycles
        assert ra == rb

    def test_rejects_empty_mix(self):
        with pytest.raises(ConfigurationError):
            sampled_simulation(core2duo(), [])
