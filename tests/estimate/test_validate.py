"""Tests for the cross-validation harness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimate.validate import (
    MAPPING_ALGORITHMS,
    ValidationSummary,
    candidate_mappings,
    degradation_matrix,
    validate_mixes,
)
from repro.perf.experiment import PairwiseResult
from repro.perf.machine import core2duo


def toy_pairwise():
    """Two heavy interferers (a, b) and two light ones (c, d)."""
    names = ("a", "b", "c", "d")
    solo = {n: 100.0 for n in names}
    pair = {}
    for i, x in enumerate(names):
        for y in names[i + 1 :]:
            heavy = {"a", "b"} <= {x, y}
            slowdown = 160.0 if heavy else 105.0
            pair[(x, y)] = {x: slowdown, y: slowdown}
    return PairwiseResult(names=names, solo_times=solo, pair_times=pair)


class TestDegradationMatrix:
    def test_symmetric_nonnegative(self):
        names, w = degradation_matrix(toy_pairwise())
        assert names == ("a", "b", "c", "d")
        assert (w >= 0).all()
        assert np.allclose(w, w.T)
        assert (np.diag(w) == 0).all()
        # a-b is the dominant edge.
        assert w[0, 1] == w.max()


class TestCandidateMappings:
    def test_splits_the_heavy_pair(self):
        _, w = degradation_matrix(toy_pairwise())
        maps = candidate_mappings(w)
        assert set(maps) == set(MAPPING_ALGORITHMS)
        for algo, groups in maps.items():
            flat = sorted(i for g in groups for i in g)
            assert flat == [0, 1, 2, 3], algo
            assert all(len(g) == 2 for g in groups), algo
            # No algorithm co-locates the two heavy interferers.
            assert (0, 1) not in groups, algo

    def test_rejects_odd_mixes(self):
        with pytest.raises(ConfigurationError):
            candidate_mappings(np.zeros((3, 3)))


class TestValidateMixes:
    def test_end_to_end_summary(self):
        mixes = [("mcf", "milc", "astar", "povray")]
        summary = validate_mixes(
            core2duo(), mixes, instructions=60_000, seed=0
        )
        assert summary.backends() == ["analytical", "sampled"]
        for backend in summary.backends():
            agreed, total = summary.agreement(backend)
            assert total == 1
            assert 0 <= agreed <= 1
            assert summary.miss_rate_mae(backend) >= 0.0
            assert summary.miss_rate_mape(backend) >= 0.0
        d = summary.to_dict()
        for backend, row in d.items():
            assert row["mixes"] == 1
            assert len(row["disagreeing_mixes"]) == 1 - row["mapping_agreement"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_mixes(
                core2duo(),
                [("mcf", "milc", "astar", "povray")],
                backends=("psychic",),
                instructions=60_000,
            )

    def test_empty_summary_rejects_lookup(self):
        summary = ValidationSummary(records=())
        with pytest.raises(ConfigurationError):
            summary.agreement("analytical")
