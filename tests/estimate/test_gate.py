"""Tests for the estimate confidence gate (``EstimateGate``).

The gate is the degradation valve between the fast estimate backends
and adversarial mixes: it must catch constructed signature-aliasing
streams, footprint bombs (when a pressure envelope is configured) and
collapsed confidence — and must be a byte-identical no-op on benign
mixes and on the exact backend.
"""

import pytest

from repro.adversary import adversary_machine, adversary_mix
from repro.errors import ConfigurationError
from repro.estimate.dispatch import estimate_mix
from repro.estimate.gate import EstimateGate
from repro.perf.runner import default_signature_config
from repro.telemetry import MetricsRegistry, TelemetryContext, use

MACHINE = adversary_machine()
SIG = default_signature_config(MACHINE)


def alias_gate(**overrides):
    """The suite's alias-only gate configuration (see HARDENED_DEFAULTS)."""
    kwargs = dict(
        min_confidence=0.0,
        max_pressure=float("inf"),
        min_alias_ratio=0.05,
        capacity=SIG.num_entries,
        num_hashes=SIG.num_hashes,
    )
    kwargs.update(overrides)
    return EstimateGate(**kwargs)


def mix(kind, instructions=30_000):
    return adversary_mix(kind, MACHINE, instructions=instructions, seed=3)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_confidence=1.5),
            dict(max_pressure=0.0),
            dict(min_alias_ratio=-0.1),
            dict(capacity=1),
            dict(num_hashes=0),
            dict(probe_accesses=0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            EstimateGate(**kwargs)


class TestEvaluate:
    def test_benign_mix_is_inside_the_envelope(self):
        assert alias_gate().evaluate(MACHINE, mix("benign")) is None

    def test_aliasing_mix_trips_the_alias_check(self):
        event = alias_gate().evaluate(MACHINE, mix("aliasing"))
        assert event is not None
        assert event["action"] == "fallback-exact-backend"
        assert "signature-aliasing stream detected" in event["reasons"]
        flagged = event["tasks"]
        assert "alias-scan" in flagged
        assert flagged["alias-scan"]["check"] == "alias_ratio"
        assert flagged["alias-scan"]["alias_ratio"] < 0.05
        # The benign victims in the same mix are never named.
        assert "victim-hot" not in flagged and "victim-chase" not in flagged

    def test_pressure_envelope_catches_the_bomb_when_armed(self):
        event = alias_gate(max_pressure=2.0).evaluate(
            MACHINE, mix("saturating")
        )
        assert event is not None
        assert any("pressure" in r for r in event["reasons"])

    def test_confidence_floor_catches_the_bomb_when_armed(self):
        event = alias_gate(min_confidence=0.5).evaluate(
            MACHINE, mix("saturating")
        )
        assert event is not None
        assert any("confidence" in r for r in event["reasons"])

    def test_probe_restores_generator_state(self):
        tasks = mix("aliasing")
        fresh = mix("aliasing")
        alias_gate().evaluate(MACHINE, tasks)
        for probed, pristine in zip(tasks, fresh):
            batch = probed.generator.next_batch(64)
            assert (batch == pristine.generator.next_batch(64)).all()


class TestDispatchWiring:
    def test_untripped_gate_is_byte_identical(self):
        tasks = mix("benign", instructions=15_000)
        gated, _ = estimate_mix(
            MACHINE, tasks, backend="analytical", gate=alias_gate()
        )
        plain, _ = estimate_mix(MACHINE, tasks, backend="analytical")
        assert gated.wall_cycles == plain.wall_cycles
        assert gated.l2_miss_rate == plain.l2_miss_rate

    def test_tripped_gate_reroutes_to_exact_and_books_the_event(self):
        tasks = mix("aliasing", instructions=15_000)
        gate = alias_gate()
        registry = MetricsRegistry()
        with use(TelemetryContext(metrics=registry)):
            rerouted, report = estimate_mix(
                MACHINE, tasks, backend="analytical", gate=gate
            )
        exact, _ = estimate_mix(MACHINE, tasks, backend="exact")
        assert report is None
        assert rerouted.wall_cycles == exact.wall_cycles
        assert gate.fallbacks == 1
        assert gate.events[0]["requested_backend"] == "analytical"
        snapshot = registry.snapshot()
        assert snapshot["estimate_fallback_total"]["value"] == 1
        assert snapshot["estimate_exact_runs_total"]["value"] == 1

    def test_exact_backend_never_consults_the_gate(self):
        gate = alias_gate()
        estimate_mix(
            MACHINE, mix("aliasing", instructions=15_000),
            backend="exact", gate=gate,
        )
        assert gate.fallbacks == 0 and gate.events == []
