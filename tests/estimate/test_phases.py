"""Tests for windowed-signature phase detection and window selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimate.options import EstimatorOptions
from repro.estimate.phases import (
    Phase,
    coverage,
    detect_phases,
    representative_windows,
    window_signatures,
)

OPTS = EstimatorOptions(window_refs=64, signature_bits=128, denominator=4)


def two_phase_trace():
    """512 refs over blocks 0-7, then 512 refs over blocks 1000-1007."""
    rng = np.random.default_rng(0)
    return np.concatenate(
        [rng.integers(0, 8, size=512), rng.integers(1000, 1008, size=512)]
    )


class TestWindowSignatures:
    def test_shape_includes_partial_tail(self):
        sigs = window_signatures(np.zeros(100, dtype=np.int64), OPTS)
        assert sigs.shape == (2, 128)  # 64 + 36

    def test_presence_bits(self):
        blocks = np.array([0, 5, 130])  # 130 % 128 == 2
        sigs = window_signatures(blocks, OPTS)
        assert sigs.shape == (1, 128)
        assert set(np.flatnonzero(sigs[0])) == {0, 2, 5}

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            window_signatures(np.array([], dtype=np.int64), OPTS)


class TestDetectPhases:
    def test_single_window_is_one_phase(self):
        sigs = window_signatures(np.arange(10), OPTS)
        assert detect_phases(sigs, OPTS) == [Phase(0, 1)]

    def test_homogeneous_trace_is_one_phase(self):
        rng = np.random.default_rng(1)
        sigs = window_signatures(rng.integers(0, 8, size=1024), OPTS)
        phases = detect_phases(sigs, OPTS)
        assert len(phases) == 1
        assert phases[0] == Phase(0, len(sigs))

    def test_behaviour_shift_splits(self):
        sigs = window_signatures(two_phase_trace(), OPTS)
        phases = detect_phases(sigs, OPTS)
        assert len(phases) == 2
        assert phases[0].start == 0
        assert phases[-1].stop == len(sigs)
        # The boundary sits at the trace midpoint (window 8 of 16).
        assert phases[0].stop == 8

    def test_phases_partition_the_windows(self):
        sigs = window_signatures(two_phase_trace(), OPTS)
        phases = detect_phases(sigs, OPTS)
        covered = [w for p in phases for w in range(p.start, p.stop)]
        assert covered == list(range(len(sigs)))


class TestRepresentativeWindows:
    def test_every_phase_keeps_at_least_one_window(self):
        sigs = window_signatures(two_phase_trace(), OPTS)
        phases = detect_phases(sigs, OPTS)
        huge = EstimatorOptions(
            window_refs=64, signature_bits=128, denominator=1024
        )
        kept = representative_windows(sigs, phases, huge)
        assert len(kept) == len(phases)
        for phase in phases:
            assert ((kept >= phase.start) & (kept < phase.stop)).any()

    def test_denominator_one_keeps_everything_in_order(self):
        sigs = window_signatures(two_phase_trace(), OPTS)
        phases = detect_phases(sigs, OPTS)
        all_opts = EstimatorOptions(
            window_refs=64, signature_bits=128, denominator=1
        )
        kept = representative_windows(sigs, phases, all_opts)
        assert kept.tolist() == list(range(len(sigs)))

    def test_deterministic(self):
        sigs = window_signatures(two_phase_trace(), OPTS)
        phases = detect_phases(sigs, OPTS)
        a = representative_windows(sigs, phases, OPTS)
        b = representative_windows(sigs, phases, OPTS)
        assert a.tolist() == b.tolist()


class TestCoverage:
    def test_full_coverage_has_no_bound(self):
        assert coverage(np.arange(16), 16) == (1.0, None)

    def test_partial_coverage_bound(self):
        frac, bound = coverage(np.arange(4), 16)
        assert frac == pytest.approx(0.25)
        assert bound == pytest.approx(0.5)  # 1/sqrt(4)
