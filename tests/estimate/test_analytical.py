"""Tests for the analytical footprint-composition backend."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimate.analytical import AnalyticalModel, analytical_simulation
from repro.estimate.options import EstimatorOptions
from repro.estimate.reuse import profile_task
from repro.perf.machine import core2duo
from repro.perf.runner import build_tasks, run_mix


def profiles_for(names, instructions=120_000, seed=0):
    tasks = build_tasks(names, instructions=instructions, seed=seed)
    return [profile_task(t) for t in tasks]


class TestAnalyticalModel:
    def test_solo_prediction_is_sane(self):
        model = AnalyticalModel(core2duo(), profiles_for(["mcf"]))
        solo = model.predict_solo(0)
        assert 0.0 <= solo.miss_rate <= 1.0
        assert solo.user_cycles > 0
        assert solo.cycles_per_access > 0

    def test_co_running_does_not_reduce_misses(self):
        machine = core2duo()
        profiles = profiles_for(["mcf", "milc"])
        model = AnalyticalModel(machine, profiles)
        solo = model.predict_solo(0)
        shared = model.predict([[0], [1]]).tasks[0]
        assert shared.miss_rate >= solo.miss_rate - 1e-9
        assert shared.user_cycles >= solo.user_cycles - 1e-9

    def test_prediction_is_deterministic(self):
        machine = core2duo()
        profiles = profiles_for(["mcf", "povray"])
        a = AnalyticalModel(machine, profiles).predict([[0], [1]])
        b = AnalyticalModel(machine, profiles).predict([[0], [1]])
        assert a == b

    def test_binning_changes_little(self):
        """Coarse reuse bins track the unbinned fixed point closely."""
        machine = core2duo()
        names = ["mcf", "milc"]
        fine = AnalyticalModel(
            machine,
            profiles_for(names),
            EstimatorOptions(reuse_bins=1_000_000),
        ).predict([[0], [1]])
        coarse = AnalyticalModel(
            machine, profiles_for(names), EstimatorOptions(reuse_bins=128)
        ).predict([[0], [1]])
        for f, c in zip(fine.tasks, coarse.tasks):
            assert c.miss_rate == pytest.approx(f.miss_rate, abs=0.01)

    def test_rejects_empty_profiles(self):
        with pytest.raises(ConfigurationError):
            AnalyticalModel(core2duo(), [])


class TestAnalyticalSimulation:
    def test_result_shape_matches_exact(self):
        machine = core2duo()
        tasks = build_tasks(["mcf", "povray"], instructions=100_000, seed=0)
        exact = run_mix(machine, tasks)
        tasks = build_tasks(["mcf", "povray"], instructions=100_000, seed=0)
        predicted = analytical_simulation(machine, tasks)
        assert {t.name for t in predicted.tasks} == {
            t.name for t in exact.tasks
        }
        assert predicted.wall_cycles > 0
        assert 0.0 <= predicted.l2_miss_rate <= 1.0

    def test_tracks_exact_miss_rate(self):
        """Whole-mix miss rate lands near the simulated ground truth."""
        machine = core2duo()
        tasks = build_tasks(["mcf", "milc"], instructions=200_000, seed=0)
        exact = run_mix(machine, tasks)
        tasks = build_tasks(["mcf", "milc"], instructions=200_000, seed=0)
        predicted = analytical_simulation(machine, tasks)
        assert predicted.l2_miss_rate == pytest.approx(
            exact.l2_miss_rate, abs=0.05
        )

    def test_distinguishes_mappings(self):
        """Private-L2 co-location on one core must beat nothing; the
        model has to produce *different* numbers for different groups."""
        machine = core2duo()
        tasks = build_tasks(
            ["mcf", "milc", "povray", "astar"],
            instructions=100_000,
            seed=0,
        )
        preds = {}
        for groups in ([[0, 1], [2, 3]], [[0, 2], [1, 3]]):
            rebuilt = build_tasks(
                ["mcf", "milc", "povray", "astar"],
                instructions=100_000,
                seed=0,
            )
            from repro.sched.affinity import Mapping

            preds[str(groups)] = analytical_simulation(
                machine,
                rebuilt,
                mapping=Mapping.from_groups(
                    [[rebuilt[i].tid for i in g] for g in groups]
                ),
            )
        values = [p.wall_cycles for p in preds.values()]
        assert values[0] != values[1]
        del tasks
