"""Tests for the backend dispatch seam (``estimate_mix``)."""

import pytest

from repro.errors import ConfigurationError
from repro.estimate.dispatch import (
    BACKENDS,
    as_mapping,
    estimate_mix,
    make_exact_simulator,
)
from repro.estimate.options import EstimatorOptions
from repro.perf.machine import core2duo
from repro.perf.runner import build_tasks
from repro.sched.affinity import Mapping
from repro.telemetry import MetricsRegistry, TelemetryContext, Tracer, use


def mix(instructions=60_000):
    return build_tasks(["mcf", "povray"], instructions=instructions, seed=0)


class TestAsMapping:
    def test_passthrough_and_none(self):
        m = Mapping.from_groups([[0], [1]])
        assert as_mapping(m) is m
        assert as_mapping(None) is None

    def test_normalises_groups(self):
        assert as_mapping([[1], [0]]) == Mapping.from_groups([[1], [0]])


class TestEstimateMix:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            estimate_mix(core2duo(), mix(), backend="magic")

    def test_exact_backend_has_no_report(self):
        result, report = estimate_mix(core2duo(), mix(), backend="exact")
        assert report is None
        assert result.wall_cycles > 0

    def test_exact_matches_direct_simulator(self):
        machine = core2duo()
        direct = make_exact_simulator(machine, mix()).run()
        via_seam, _ = estimate_mix(machine, mix(), backend="exact")
        assert via_seam.l2_miss_rate == direct.l2_miss_rate
        assert via_seam.wall_cycles == direct.wall_cycles

    def test_analytical_backend_has_no_report(self):
        result, report = estimate_mix(
            core2duo(), mix(), backend="analytical"
        )
        assert report is None
        assert 0.0 <= result.l2_miss_rate <= 1.0

    def test_sampled_backend_reports_coverage(self):
        result, report = estimate_mix(
            core2duo(),
            mix(200_000),
            backend="sampled",
            options=EstimatorOptions(denominator=8, window_refs=512),
        )
        assert report is not None
        assert 0.0 < report.coverage <= 1.0
        assert result.wall_cycles > 0

    def test_all_backends_share_the_result_type(self):
        results = {}
        for backend in BACKENDS:
            result, _ = estimate_mix(core2duo(), mix(), backend=backend)
            results[backend] = result
        types = {type(r) for r in results.values()}
        assert len(types) == 1

    def test_emits_estimate_metrics_and_span(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        with use(TelemetryContext(tracer=tracer, metrics=registry)):
            estimate_mix(
                core2duo(),
                mix(200_000),
                backend="sampled",
                options=EstimatorOptions(denominator=8, window_refs=512),
            )
        snapshot = registry.snapshot()
        assert snapshot["estimate_sampled_runs_total"]["value"] == 1
        assert snapshot["estimate_refs_total"]["value"] > 0
        assert 0.0 < snapshot["estimate_sampled_coverage"]["value"] <= 1.0
        assert any(s.name == "estimate.run" for s in tracer.finished)
