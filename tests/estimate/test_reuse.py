"""Tests for reuse-distance profiling and the footprint identity."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.estimate.reuse import profile_task, profile_trace
from repro.perf.runner import build_tasks


def brute_force_footprint(blocks, w):
    """Average distinct-block count over every length-w window."""
    n = len(blocks)
    return float(
        np.mean([len(set(blocks[i : i + w])) for i in range(n - w + 1)])
    )


class TestFootprintIdentity:
    def test_matches_brute_force_on_random_trace(self):
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 12, size=200)
        prof = profile_trace("t", blocks)
        for w in (1, 2, 5, 17, 64, 199, 200):
            got = prof.footprint(np.array([w]))[0]
            assert got == pytest.approx(brute_force_footprint(blocks, w))

    def test_matches_brute_force_on_structured_traces(self):
        cyclic = np.tile(np.arange(7), 30)
        streaming = np.arange(150)
        clustered = np.repeat(np.arange(10), 15)
        for blocks in (cyclic, streaming, clustered):
            prof = profile_trace("t", blocks)
            for w in (1, 3, 10, 50, len(blocks)):
                got = prof.footprint(np.array([w]))[0]
                assert got == pytest.approx(
                    brute_force_footprint(blocks, w)
                ), f"w={w}"

    def test_endpoints(self):
        blocks = np.array([0, 1, 0, 2, 1, 0])
        prof = profile_trace("t", blocks)
        # A window of one reference always holds exactly one block.
        assert prof.footprint(np.array([1]))[0] == pytest.approx(1.0)
        # The full-trace window holds the whole working set.
        assert prof.footprint(np.array([6]))[0] == pytest.approx(3.0)

    def test_clips_out_of_range_windows(self):
        prof = profile_trace("t", np.array([0, 1, 0, 1]))
        full = prof.footprint(np.array([4]))[0]
        assert prof.footprint(np.array([1000]))[0] == pytest.approx(full)

    def test_monotone_in_window_length(self):
        rng = np.random.default_rng(11)
        prof = profile_trace("t", rng.integers(0, 30, size=400))
        curve = prof.footprint(np.arange(1, 401))
        assert (np.diff(curve) >= -1e-9).all()


class TestFootprintExtended:
    def test_whole_multiples_add_working_sets(self):
        blocks = np.tile(np.arange(5), 10)  # n=50, m=5
        prof = profile_trace("t", blocks)
        base = prof.footprint(np.array([20]))[0]
        ext = prof.footprint_extended(np.array([50 + 20]))[0]
        assert ext == pytest.approx(5 + base)
        assert prof.footprint_extended(np.array([120]))[0] == pytest.approx(
            2 * 5 + base
        )


class TestProfileTrace:
    def test_counts(self):
        prof = profile_trace("t", np.array([3, 3, 7, 3, 9]))
        assert prof.refs == 5
        assert prof.distinct_blocks == 3
        assert prof.reuse_times.tolist() == [1, 2]
        assert prof.cold_fraction == pytest.approx(3 / 5)

    def test_hits_within(self):
        prof = profile_trace("t", np.array([0, 0, 1, 0, 1]))
        # Reuse times: 1 (0->0), 2 (0->0 over idx 1..3), 2 (1->1).
        assert prof.hits_within(1) == 1
        assert prof.hits_within(2) == 3
        assert prof.hits_within(0.5) == 0

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            profile_trace("t", np.array([], dtype=np.int64))


class TestBinnedReuses:
    def test_short_profiles_pass_through(self):
        prof = profile_trace("t", np.array([0, 0, 1, 1, 2, 0]))
        values, weights = prof.binned_reuses(1000)
        assert values.tolist() == prof.reuse_times.tolist()
        assert (weights == 1.0).all()

    def test_compression_preserves_mass(self):
        rng = np.random.default_rng(5)
        prof = profile_trace("t", rng.integers(0, 40, size=3000))
        values, weights = prof.binned_reuses(16)
        assert len(values) <= 16
        assert weights.sum() == pytest.approx(len(prof.reuse_times))
        # Bin representatives stay inside the observed reuse-time range.
        assert values.min() >= prof.reuse_times.min()
        assert values.max() <= prof.reuse_times.max()
        assert (np.diff(values) > 0).all()

    def test_memoised_per_bin_count(self):
        rng = np.random.default_rng(6)
        prof = profile_trace("t", rng.integers(0, 40, size=2000))
        a = prof.binned_reuses(32)
        b = prof.binned_reuses(32)
        assert a[0] is b[0] and a[1] is b[1]
        c = prof.binned_reuses(64)
        assert len(c[0]) >= len(a[0])

    def test_degenerate_single_reuse_time(self):
        prof = profile_trace("t", np.tile(np.arange(500), 2))
        # Every reuse time is exactly 500; any bin count collapses to one.
        values, weights = prof.binned_reuses(8)
        assert values.tolist() == [500.0]
        assert weights.tolist() == [500.0]


class TestProfileTask:
    def test_profiles_without_perturbing_generator(self):
        task = build_tasks(["mcf"], instructions=50_000, seed=0)[0]
        before = np.array(task.generator.next_batch(256), copy=True)
        task.generator.reset()
        prof = profile_task(task)
        after = np.array(task.generator.next_batch(256), copy=True)
        task.generator.reset()
        assert (before == after).all()
        assert prof.refs == task.total_accesses
        assert not prof.truncated

    def test_truncation_is_recorded(self):
        task = build_tasks(["mcf"], instructions=50_000, seed=0)[0]
        prof = profile_task(task, profile_refs=100)
        assert prof.refs == 100
        assert prof.total_refs == task.total_accesses
        assert prof.truncated

    def test_rejects_nonpositive_cap(self):
        task = build_tasks(["mcf"], instructions=50_000, seed=0)[0]
        with pytest.raises(WorkloadError):
            profile_task(task, profile_refs=0)
