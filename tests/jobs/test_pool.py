"""Worker-pool semantics: ordering, crash recovery, fail-fast errors.

Worker functions live in :mod:`tests.jobs._workers` because spawn-started
children import jobs by qualified module name.
"""

import pytest

from repro.errors import ConfigurationError, JobError
from repro.jobs import JobFailure, WorkerPool
from tests.jobs import _workers


def test_results_in_submission_order():
    pool = WorkerPool(jobs=2)
    assert pool.run(_workers.square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        WorkerPool(jobs=0)
    with pytest.raises(ConfigurationError):
        WorkerPool(jobs=1, retries=-1)


def test_crash_is_retried_to_completion(tmp_path):
    """A worker killed mid-job (os._exit) completes on the retry wave."""
    marker = tmp_path / "crashed.marker"
    events = []
    pool = WorkerPool(jobs=2, retries=2, backoff=0.01)
    results = pool.run(
        _workers.crash_until_marker,
        [(str(marker), 41), (str(marker), 42)],
        on_event=lambda kind, **f: events.append((kind, f.get("index"))),
    )
    assert results == [41, 42]
    assert marker.exists()
    assert any(kind == "retried" for kind, _ in events)
    assert not any(kind == "failed" for kind, _ in events)


def test_crash_exhausts_retry_budget(tmp_path):
    """With retries=0 a crashing job raises after its single attempt."""
    marker = tmp_path / "never-read.marker"
    pool = WorkerPool(jobs=1, retries=0, backoff=0.01)
    with pytest.raises(JobError, match="worker crash"):
        pool.run(_workers.crash_until_marker, [(str(marker), 1)])


def test_deterministic_exception_fails_fast():
    """An in-job exception is wrapped in JobError and never retried."""
    events = []
    pool = WorkerPool(jobs=1, retries=5, backoff=0.01)
    with pytest.raises(JobError, match="deterministic failure"):
        pool.run(
            _workers.raise_value_error,
            ["boom"],
            on_event=lambda kind, **f: events.append((kind, f.get("attempt"))),
        )
    assert events == [("failed", 1)]  # one attempt, despite retries=5


def test_timeout_retries_then_gives_up():
    """A job exceeding its wall budget is charged attempts until it fails."""
    pool = WorkerPool(jobs=1, timeout=0.5, retries=1, backoff=0.01)
    with pytest.raises(JobError, match="timeout"):
        pool.run(_workers.sleep_forever, [0])


def test_timeout_measured_from_job_start_not_wave_submission():
    """Queue wait must not count against a job's wall budget.

    Two 0.8 s jobs on one worker: the second waits ~0.8 s in the queue
    before it even starts. Under wave-submission accounting its deadline
    would expire mid-queue (0.8 + 0.8 > 1.2); with per-job-start
    accounting each job consumes only its own 0.8 s and both complete.
    """
    events = []
    pool = WorkerPool(jobs=1, timeout=1.2, retries=0, backoff=0.01)
    results = pool.run(
        _workers.sleep_for,
        [0.8, 0.8],
        on_event=lambda kind, **f: events.append(kind),
    )
    assert results == [0.8, 0.8]
    assert "timeout" not in events


def test_keep_going_returns_failure_slots():
    """keep_going=True: a failed job yields a JobFailure, others complete."""
    pool = WorkerPool(jobs=2, retries=0, backoff=0.01)
    results = pool.run(_workers.square_or_raise, [3, -1, 4], keep_going=True)
    assert results[0] == 9
    assert results[2] == 16
    failure = results[1]
    assert isinstance(failure, JobFailure)
    assert failure.index == 1
    assert failure.attempts == 1
    assert "deterministic failure" in failure.error


def test_keep_going_survives_exhausted_crash_budget():
    """A job that crashes past its retry budget fails alone, not the batch."""
    pool = WorkerPool(jobs=1, retries=1, backoff=0.01)
    results = pool.run(_workers.always_crash, [0], keep_going=True)
    assert isinstance(results[0], JobFailure)
    assert results[0].attempts == 2  # initial attempt + one retry
    assert "crash" in results[0].error
