"""Worker-pool semantics: ordering, crash recovery, fail-fast errors.

Worker functions live in :mod:`tests.jobs._workers` because spawn-started
children import jobs by qualified module name.
"""

import pytest

from repro.errors import ConfigurationError, JobError
from repro.jobs import JobFailure, WorkerPool
from repro.supervise.retry import RetryPolicy
from tests.jobs import _workers


def test_results_in_submission_order():
    pool = WorkerPool(jobs=2)
    assert pool.run(_workers.square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        WorkerPool(jobs=0)
    with pytest.raises(ConfigurationError):
        WorkerPool(jobs=1, retries=-1)


def test_crash_is_retried_to_completion(tmp_path):
    """A worker killed mid-job (os._exit) completes on the retry wave."""
    marker = tmp_path / "crashed.marker"
    events = []
    pool = WorkerPool(jobs=2, retries=2, backoff=0.01)
    results = pool.run(
        _workers.crash_until_marker,
        [(str(marker), 41), (str(marker), 42)],
        on_event=lambda kind, **f: events.append((kind, f.get("index"))),
    )
    assert results == [41, 42]
    assert marker.exists()
    assert any(kind == "retried" for kind, _ in events)
    assert not any(kind == "failed" for kind, _ in events)


def test_crash_exhausts_retry_budget(tmp_path):
    """With retries=0 a crashing job raises after its single attempt."""
    marker = tmp_path / "never-read.marker"
    pool = WorkerPool(jobs=1, retries=0, backoff=0.01)
    with pytest.raises(JobError, match="worker crash"):
        pool.run(_workers.crash_until_marker, [(str(marker), 1)])


def test_deterministic_exception_fails_fast():
    """An in-job exception is wrapped in JobError and never retried."""
    events = []
    pool = WorkerPool(jobs=1, retries=5, backoff=0.01)
    with pytest.raises(JobError, match="deterministic failure"):
        pool.run(
            _workers.raise_value_error,
            ["boom"],
            on_event=lambda kind, **f: events.append((kind, f.get("attempt"))),
        )
    assert events == [("failed", 1)]  # one attempt, despite retries=5


def test_timeout_retries_then_gives_up():
    """A job exceeding its wall budget is charged attempts until it fails."""
    pool = WorkerPool(jobs=1, timeout=0.5, retries=1, backoff=0.01)
    with pytest.raises(JobError, match="timeout"):
        pool.run(_workers.sleep_forever, [0])


def test_timeout_measured_from_job_start_not_wave_submission():
    """Queue wait must not count against a job's wall budget.

    Two 0.8 s jobs on one worker: the second waits ~0.8 s in the queue
    before it even starts. Under wave-submission accounting its deadline
    would expire mid-queue (0.8 + 0.8 > 1.2); with per-job-start
    accounting each job consumes only its own 0.8 s and both complete.
    """
    events = []
    pool = WorkerPool(jobs=1, timeout=1.2, retries=0, backoff=0.01)
    results = pool.run(
        _workers.sleep_for,
        [0.8, 0.8],
        on_event=lambda kind, **f: events.append(kind),
    )
    assert results == [0.8, 0.8]
    assert "timeout" not in events


def test_keep_going_returns_failure_slots():
    """keep_going=True: a failed job yields a JobFailure, others complete."""
    pool = WorkerPool(jobs=2, retries=0, backoff=0.01)
    results = pool.run(_workers.square_or_raise, [3, -1, 4], keep_going=True)
    assert results[0] == 9
    assert results[2] == 16
    failure = results[1]
    assert isinstance(failure, JobFailure)
    assert failure.index == 1
    assert failure.attempts == 1
    assert "deterministic failure" in failure.error


def test_keep_going_survives_exhausted_crash_budget():
    """A job that crashes past its retry budget fails alone, not the batch."""
    pool = WorkerPool(jobs=1, retries=1, backoff=0.01)
    results = pool.run(_workers.always_crash, [0], keep_going=True)
    assert isinstance(results[0], JobFailure)
    assert results[0].attempts == 2  # initial attempt + one retry
    assert "crash" in results[0].error
    assert results[0].kind == "crash"


def test_crash_backoff_is_capped_jittered_and_pinned(monkeypatch):
    """Regression for the old ``backoff * 2**(wave-1)`` schedule.

    The crash-recovery sleeps must be exactly what the pool's
    ``RetryPolicy`` session draws — capped, jittered, and a pure
    function of the seed — pinned here float-for-float against
    ``preview``. (The parent's ``time.sleep`` is stubbed; worker
    processes are fresh interpreters and don't see the patch.)
    """
    import time as time_module

    slept = []
    monkeypatch.setattr(time_module, "sleep", slept.append)
    pool = WorkerPool(jobs=1, retries=3, backoff=0.01)
    results = pool.run(_workers.always_crash, [0], keep_going=True)
    assert isinstance(results[0], JobFailure)
    assert results[0].attempts == 4
    # One backoff sleep per crashed-and-retried wave.
    assert slept[:3] == RetryPolicy(base=0.01).preview(3)
    assert all(delay <= RetryPolicy(base=0.01).cap for delay in slept[:3])


def test_explicit_retry_policy_overrides_backoff_base(monkeypatch):
    """A caller-supplied policy (different seed) drives the sleeps."""
    import time as time_module

    slept = []
    monkeypatch.setattr(time_module, "sleep", slept.append)
    policy = RetryPolicy(base=0.02, seed=9)
    pool = WorkerPool(jobs=1, retries=1, backoff=0.5, retry_policy=policy)
    pool.run(_workers.always_crash, [0], keep_going=True)
    assert slept[:1] == policy.preview(1)
