"""Tests for the :mod:`repro.jobs` orchestration subsystem."""
