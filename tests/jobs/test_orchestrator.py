"""Orchestrator acceptance: determinism, dedup, and the warm cache.

The load-bearing claims from the subsystem's contract:

* parallel and serial execution of the same batch produce *identical*
  outcomes (``jobs=4`` vs ``jobs=1`` — byte-identical sweep summaries);
* duplicate specs in a batch execute once;
* a warm-cache re-run performs **zero** new simulations.
"""

import pytest

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.jobs import Orchestrator, RunOutcome, make_run_spec, spec_key
from repro.jobs.spec import WorkloadSpec
from repro.perf.experiment import mix_sweep, two_phase
from repro.perf.machine import core2duo

MIX = ["mcf", "povray", "milc", "astar"]
FAST = dict(instructions=150_000, phase1_min_wall=10_000_000.0)


def tiny_spec(names=("mcf", "povray"), seed=0):
    """A cheap pinned-mapping measurement spec."""
    return make_run_spec(
        core2duo(),
        WorkloadSpec(kind="spec", names=tuple(names), instructions=100_000),
        mapping=[[0], [1]],
        seed=seed,
    )


def test_two_phase_parallel_equals_serial():
    """The 4-task mix acceptance check: jobs=2 == jobs=1, field by field."""
    serial = two_phase(
        core2duo(), MIX, WeightedInterferenceGraphPolicy(seed=3),
        seed=3, orchestrator=Orchestrator(jobs=1), **FAST,
    )
    parallel = two_phase(
        core2duo(), MIX, WeightedInterferenceGraphPolicy(seed=3),
        seed=3, orchestrator=Orchestrator(jobs=2), **FAST,
    )
    assert serial.chosen_mapping == parallel.chosen_mapping
    assert serial.decisions == parallel.decisions
    assert serial.mapping_times == parallel.mapping_times


def test_mix_sweep_summary_is_byte_identical_across_jobs():
    """Acceptance: jobs=4 sweep summary reprs byte-equal to jobs=1."""
    mixes = [MIX, ["libquantum", "hmmer", "gobmk", "sjeng"]]

    def sweep(jobs):
        return mix_sweep(
            core2duo(), mixes, WeightedInterferenceGraphPolicy(seed=3),
            seed=3, orchestrator=Orchestrator(jobs=jobs), **FAST,
        )

    assert repr(sweep(1).summary()) == repr(sweep(4).summary())


def test_batch_dedupes_identical_specs():
    orchestrator = Orchestrator(jobs=1)
    spec = tiny_spec()
    a, b = orchestrator.run_specs([spec, tiny_spec()])
    assert a == b
    counters = orchestrator.counters
    assert counters.submitted == 1
    assert counters.deduped == 1
    assert counters.executed == 1


def test_warm_cache_runs_zero_simulations(tmp_path):
    """Acceptance: a warm-cache re-run shows counters.executed == 0."""
    specs = [tiny_spec(seed=s) for s in (0, 1, 2)]
    cold = Orchestrator(jobs=1, cache_dir=tmp_path)
    first = cold.run_specs(specs)
    assert cold.counters.executed == len(specs)
    assert cold.cache.stats.writes == len(specs)

    warm = Orchestrator(jobs=1, cache_dir=tmp_path)
    second = warm.run_specs(specs)
    assert warm.counters.executed == 0
    assert warm.counters.cache_hits == len(specs)
    assert all(outcome.cached for outcome in second)
    # cached flag is excluded from equality: same physics, same outcome.
    assert second == first


def test_cached_outcome_roundtrips_losslessly(tmp_path):
    spec = tiny_spec()
    orchestrator = Orchestrator(jobs=1, cache_dir=tmp_path)
    outcome = orchestrator.run_spec(spec)
    stored = orchestrator.cache.get(spec_key(spec))
    assert RunOutcome.from_dict(stored) == outcome
    assert outcome.user_time("mcf") > 0
    with pytest.raises(Exception):
        outcome.user_time("not-in-this-mix")
