"""Picklable worker functions for the pool tests.

Spawn-started workers import jobs by qualified name, so anything
submitted to a :class:`~repro.jobs.pool.WorkerPool` must live in a real
importable module — not in a test function and not in ``__main__``.
"""

import os
import time


def square(x):
    """Return ``x * x`` (the trivial happy-path job)."""
    return x * x


def crash_until_marker(payload):
    """Die hard (``os._exit``) until a marker file exists, then succeed.

    *payload* is ``(marker_path, value)``. The first execution creates
    the marker and kills the worker process without Python cleanup —
    indistinguishable from a segfault from the pool's point of view. Any
    later attempt sees the marker and returns *value*, so a pool with a
    retry budget must complete the job on its second wave.
    """
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w", encoding="ascii") as handle:
            handle.write("crashed once\n")
        os._exit(1)
    return value


def raise_value_error(x):
    """Raise a deterministic in-job exception (never retried)."""
    raise ValueError(f"deterministic failure for {x!r}")


def square_or_raise(x):
    """Square non-negative inputs; raise deterministically on negatives."""
    if x < 0:
        raise ValueError(f"deterministic failure for {x!r}")
    return x * x


def always_crash(x):
    """Kill the worker process on every attempt (retry-budget tests)."""
    os._exit(1)


def sleep_for(seconds):
    """Sleep *seconds* then return it (per-job timeout accounting tests)."""
    time.sleep(seconds)
    return seconds


def sleep_forever(x):
    """Block far beyond any test timeout (for timeout handling tests)."""
    time.sleep(3600)
    return x
