"""Picklable worker functions for the pool tests.

Spawn-started workers import jobs by qualified name, so anything
submitted to a :class:`~repro.jobs.pool.WorkerPool` must live in a real
importable module — not in a test function and not in ``__main__``.
"""

import os
import time

from repro.supervise.heartbeat import simulate_hang, tick


def square(x):
    """Return ``x * x`` (the trivial happy-path job)."""
    return x * x


def crash_until_marker(payload):
    """Die hard (``os._exit``) until a marker file exists, then succeed.

    *payload* is ``(marker_path, value)``. The first execution creates
    the marker and kills the worker process without Python cleanup —
    indistinguishable from a segfault from the pool's point of view. Any
    later attempt sees the marker and returns *value*, so a pool with a
    retry budget must complete the job on its second wave.
    """
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w", encoding="ascii") as handle:
            handle.write("crashed once\n")
        os._exit(1)
    return value


def raise_value_error(x):
    """Raise a deterministic in-job exception (never retried)."""
    raise ValueError(f"deterministic failure for {x!r}")


def square_or_raise(x):
    """Square non-negative inputs; raise deterministically on negatives."""
    if x < 0:
        raise ValueError(f"deterministic failure for {x!r}")
    return x * x


def always_crash(x):
    """Kill the worker process on every attempt (retry-budget tests)."""
    os._exit(1)


def sleep_for(seconds):
    """Sleep *seconds* then return it (per-job timeout accounting tests)."""
    time.sleep(seconds)
    return seconds


def sleep_forever(x):
    """Block far beyond any test timeout (for timeout handling tests)."""
    time.sleep(3600)
    return x


def hang_forever(x):
    """Go heartbeat-silent, then block (hung-job watchdog tests).

    ``simulate_hang`` suspends every tick from this process — including
    the pool's background ticker thread — so the supervisor observes
    pure silence, exactly like a wedged runtime.
    """
    simulate_hang()
    time.sleep(3600)
    return x


def hang_until_marker(payload):
    """Hang (heartbeat-silent) once, then succeed on the retry attempt.

    *payload* is ``(marker_path, value)``. Mirrors
    :func:`crash_until_marker`: the marker is written *before* the hang,
    so after the watchdog kills the wedged worker the fresh attempt sees
    the marker and completes cleanly.
    """
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w", encoding="ascii") as handle:
            handle.write("hung once\n")
        simulate_hang()
        time.sleep(3600)
    return value


def slow_but_alive(payload):
    """Sleep past the hang grace while the ticker keeps beating.

    *payload* is ``(seconds, value)``. The job is *slow* — far slower
    than the hang timeout the tests arm — but its heartbeats never stop,
    so the watchdog must leave it alone.
    """
    seconds, value = payload
    time.sleep(seconds)
    return value


def balloon_rss(payload):
    """Allocate-and-touch ballast, post a beat, hold, then return.

    *payload* is ``(ballast_mb, hold_seconds, value)``. ``bytearray``
    zero-fills, so the RSS high-water mark really balloons; the
    immediate tick reports it and the hold gives the parent time to
    react (RSS-budget watchdog tests).
    """
    ballast_mb, hold_seconds, value = payload
    ballast = bytearray(int(ballast_mb * 1024 * 1024))
    tick("ballast")
    time.sleep(hold_seconds)
    del ballast
    return value
