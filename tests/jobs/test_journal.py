"""Write-ahead journal semantics: durability, torn tails, and resume.

The contract under test: a spec recorded in the journal is never
re-executed, an interrupted append never poisons the journal, and a
resumed batch runs exactly the specs that had not finished.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.jobs import (
    JOURNAL_SCHEMA_VERSION,
    Orchestrator,
    RunJournal,
    make_run_spec,
    spec_key,
)
from repro.jobs.spec import WorkloadSpec
from repro.perf.machine import core2duo

OUTCOME = {"wall_cycles": 1.0, "l2_miss_rate": 0.0, "tasks": []}


def tiny_spec(seed=0):
    """A cheap pinned-mapping measurement spec."""
    return make_run_spec(
        core2duo(),
        WorkloadSpec(kind="spec", names=("mcf", "povray"), instructions=100_000),
        mapping=[[0], [1]],
        seed=seed,
    )


def test_record_then_load_roundtrip(tmp_path):
    journal = RunJournal(tmp_path / "sweep.journal")
    journal.record("k1", OUTCOME)
    journal.record("k2", dict(OUTCOME, wall_cycles=2.0))
    replayed = RunJournal(tmp_path / "sweep.journal").load()
    assert replayed == {"k1": OUTCOME, "k2": dict(OUTCOME, wall_cycles=2.0)}
    assert len(journal) == 2


def test_missing_file_loads_empty(tmp_path):
    assert RunJournal(tmp_path / "never-written").load() == {}


def test_directory_path_rejected(tmp_path):
    with pytest.raises(ConfigurationError, match="directory"):
        RunJournal(tmp_path)


def test_torn_tail_is_skipped_not_raised(tmp_path):
    """An interrupted append (half a line, no newline) never poisons it."""
    path = tmp_path / "sweep.journal"
    journal = RunJournal(path)
    journal.record("k1", OUTCOME)
    with open(path, "a", encoding="ascii") as handle:
        handle.write('{"version": 1, "key": "k2", "outco')  # torn mid-write
    loaded = RunJournal(path)
    assert loaded.load() == {"k1": OUTCOME}
    assert loaded.corrupt_lines == 1
    # A post-crash append after the torn tail is still readable.
    loaded.record("k3", OUTCOME)
    assert set(loaded.load()) == {"k1", "k3"}


def test_garbled_and_wrong_version_lines_are_skipped(tmp_path):
    path = tmp_path / "sweep.journal"
    records = [
        "not json at all",
        json.dumps({"version": JOURNAL_SCHEMA_VERSION + 1, "key": "x", "outcome": {}}),
        json.dumps({"version": JOURNAL_SCHEMA_VERSION, "key": 7, "outcome": {}}),
        json.dumps({"version": JOURNAL_SCHEMA_VERSION, "key": "ok", "outcome": OUTCOME}),
    ]
    path.write_text("\n".join(records) + "\n", encoding="ascii")
    journal = RunJournal(path)
    assert journal.load() == {"ok": OUTCOME}
    assert journal.corrupt_lines == 3


def test_duplicate_keys_last_record_wins(tmp_path):
    journal = RunJournal(tmp_path / "sweep.journal")
    journal.record("k", OUTCOME)
    journal.record("k", dict(OUTCOME, wall_cycles=9.0))
    assert journal.load()["k"]["wall_cycles"] == 9.0


def test_duplicate_key_replay_survives_a_torn_tail_between_them(tmp_path):
    """Crash-rewrite-resume: the re-recorded outcome wins on replay.

    The sequence a crashed-and-resumed sweep actually produces — record,
    torn append, record the same key again — must replay to the *last*
    complete record, with the torn line counted and isolated.
    """
    path = tmp_path / "sweep.journal"
    journal = RunJournal(path)
    journal.record("k", OUTCOME)
    with open(path, "a", encoding="ascii") as handle:
        handle.write('{"version": 1, "key": "k", "outco')  # crash mid-write
    resumed = RunJournal(path)
    resumed.record("k", dict(OUTCOME, wall_cycles=7.0))
    replayed = RunJournal(path)
    assert replayed.load()["k"]["wall_cycles"] == 7.0
    assert replayed.corrupt_lines == 1


def test_resume_executes_only_unfinished_specs(tmp_path):
    """The acceptance pin: a resumed batch re-runs exactly the misses."""
    journal_path = tmp_path / "sweep.journal"
    specs = [tiny_spec(seed=s) for s in (0, 1, 2)]

    first = Orchestrator(jobs=1, journal=journal_path)
    outcomes = first.run_specs(specs)
    assert first.counters.executed == len(specs)
    assert len(RunJournal(journal_path)) == len(specs)

    resumed = Orchestrator(jobs=1, journal=journal_path)
    replayed = resumed.run_specs(specs)
    assert resumed.counters.executed == 0
    assert resumed.counters.journal_hits == len(specs)
    assert all(outcome.cached for outcome in replayed)
    assert replayed == outcomes


def test_partial_journal_resumes_the_remainder(tmp_path):
    """Only the spec missing from the journal is executed on resume."""
    journal_path = tmp_path / "sweep.journal"
    specs = [tiny_spec(seed=s) for s in (0, 1)]
    complete = Orchestrator(jobs=1).run_specs(specs)

    # Journal as if the sweep crashed after finishing only the first spec.
    RunJournal(journal_path).record(spec_key(specs[0]), complete[0].to_dict())

    resumed = Orchestrator(jobs=1, journal=journal_path)
    outcomes = resumed.run_specs(specs)
    assert resumed.counters.journal_hits == 1
    assert resumed.counters.executed == 1
    assert outcomes[0].cached and not outcomes[1].cached
    assert outcomes == complete
    # The freshly executed spec was journaled: a second resume runs nothing.
    again = Orchestrator(jobs=1, journal=journal_path)
    again.run_specs(specs)
    assert again.counters.executed == 0
