"""EventLog sink isolation: observers must never abort a batch."""

import logging

import pytest

from repro.jobs.events import EVENT_KINDS, EventLog


class TestSinkIsolation:
    def test_raising_sink_does_not_abort_emission(self):
        """emit() succeeds and counters update even when the sink raises."""
        def bad_sink(event):
            raise RuntimeError("observer exploded")

        log = EventLog(sink=bad_sink)
        log.emit("submitted", key="k")
        log.emit("completed", key="k", wall_time=0.1)
        assert log.counters.submitted == 1
        assert log.counters.executed == 1
        assert len(log.events) == 2

    def test_first_failure_logged_then_silenced(self, caplog):
        """One warning (with traceback) per sink, not one per event."""
        def bad_sink(event):
            raise ValueError("boom")

        log = EventLog(sink=bad_sink)
        with caplog.at_level(logging.WARNING, logger="repro.jobs.events"):
            for _ in range(5):
                log.emit("submitted", key="k")
        warnings = [
            r for r in caplog.records if "event sink" in r.getMessage()
        ]
        assert len(warnings) == 1
        assert warnings[0].exc_info is not None

    def test_raising_sink_keeps_receiving_events(self):
        """A stateful sink that recovers sees the events after its failure."""
        seen = []

        def flaky_sink(event):
            if len(seen) == 0:
                seen.append("failed")
                raise RuntimeError("transient")
            seen.append(event.kind)

        log = EventLog(sink=flaky_sink)
        log.emit("submitted", key="a")
        log.emit("deduped", key="a")
        assert seen == ["failed", "deduped"]

    def test_one_bad_extra_sink_does_not_starve_others(self):
        """Extra sinks are isolated from each other too."""
        good = []

        def bad(event):
            raise RuntimeError("no")

        log = EventLog()
        log.add_sink(bad)
        log.add_sink(lambda e: good.append(e.kind))
        log.emit("batch_start")
        log.emit("batch_end", wall_time=0.2)
        assert good == ["batch_start", "batch_end"]

    def test_unknown_kind_still_rejected(self):
        """Isolation applies to sinks, not to invalid emissions."""
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("not-a-kind")
        assert "submitted" in EVENT_KINDS
