"""Result-cache behaviour: hits, misses, and every corruption mode.

The cache must never raise on bad on-disk state — a damaged entry is a
miss (counted as corrupt) that the next ``put`` silently heals.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.jobs import CACHE_SCHEMA_VERSION, ResultCache

KEY = "ab" + "0" * 62
SPEC = {"schema": 1, "fake": True}
OUTCOME = {"wall_cycles": 123.0, "tasks": []}


def test_miss_then_hit_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(KEY) is None
    cache.put(KEY, SPEC, OUTCOME)
    assert cache.get(KEY) == OUTCOME
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.writes == 1
    assert cache.stats.corrupt == 0


def test_fanout_layout(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(KEY, SPEC, OUTCOME)
    assert path == tmp_path / KEY[:2] / f"{KEY}.json"
    assert path.exists()
    # No stray temp files left behind.
    assert [p.name for p in path.parent.iterdir()] == [path.name]


def corrupt_variants():
    """Every on-disk corruption the cache must treat as a miss."""
    good = {
        "version": CACHE_SCHEMA_VERSION,
        "key": KEY,
        "spec": SPEC,
        "outcome": OUTCOME,
    }
    wrong_version = dict(good, version=CACHE_SCHEMA_VERSION + 1)
    wrong_key = dict(good, key="cd" + "0" * 62)
    not_a_dict = dict(good, outcome=[1, 2, 3])
    return [
        b"",  # empty file
        b"{\"version\": 1,",  # truncated JSON
        b"\xff\xfe garbage \x00",  # non-ASCII garbage
        json.dumps(wrong_version).encode(),
        json.dumps(wrong_key).encode(),
        json.dumps(not_a_dict).encode(),
        json.dumps([1, 2]).encode(),  # envelope is not an object
    ]


def test_corrupt_entries_are_counted_misses(tmp_path):
    for i, payload in enumerate(corrupt_variants()):
        cache = ResultCache(tmp_path / str(i))
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(payload)
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 1


def test_put_heals_a_corrupt_entry(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.path_for(KEY)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not json at all")
    assert cache.get(KEY) is None
    cache.put(KEY, SPEC, OUTCOME)
    assert cache.get(KEY) == OUTCOME


def test_non_directory_root_rejected_up_front(tmp_path):
    """A root that exists as a file fails at construction, not mid-sweep."""
    not_a_dir = tmp_path / "cache.file"
    not_a_dir.write_text("occupied")
    with pytest.raises(ConfigurationError, match="not a directory"):
        ResultCache(not_a_dir)


def test_crash_between_write_and_replace_leaves_no_entry(tmp_path, monkeypatch):
    """A crash after the temp write but before the rename commits nothing.

    The injected ``os.replace`` failure stands in for a process death at
    the worst moment: the staged bytes exist but were never installed.
    The final path must not appear, the temp file must be cleaned up, and
    the next ``get`` must be an ordinary miss — never a corrupt entry.
    """
    cache = ResultCache(tmp_path)

    def crash(src, dst):
        raise OSError("injected crash between write and replace")

    monkeypatch.setattr("os.replace", crash)
    with pytest.raises(OSError, match="injected crash"):
        cache.put(KEY, SPEC, OUTCOME)
    monkeypatch.undo()

    path = cache.path_for(KEY)
    assert not path.exists()
    assert list(path.parent.iterdir()) == []  # staged temp file removed
    assert cache.stats.writes == 0
    assert cache.get(KEY) is None
    assert cache.stats.corrupt == 0  # a non-commit is a miss, not damage
    # The cache heals on the next successful put.
    cache.put(KEY, SPEC, OUTCOME)
    assert cache.get(KEY) == OUTCOME


def test_quarantine_preserves_evidence_and_logs_once(tmp_path, caplog):
    """Corrupt entries are renamed aside; only the first one logs loudly."""
    import logging

    cache = ResultCache(tmp_path)
    other_key = "cd" + "1" * 62
    for key in (KEY, other_key):
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not json at all")

    with caplog.at_level(logging.DEBUG, logger="repro.jobs.cache"):
        assert cache.get(KEY) is None
        assert cache.get(other_key) is None
    warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
    assert len(warnings) == 1  # one loud signal, no log spam
    assert cache.stats.quarantined == 2

    for key in (KEY, other_key):
        path = cache.path_for(key)
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
    # A fresh put reinstalls a clean entry next to the evidence.
    cache.put(KEY, SPEC, OUTCOME)
    assert cache.get(KEY) == OUTCOME


def test_distinct_keys_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    other_key = "cd" + "1" * 62
    cache.put(KEY, SPEC, OUTCOME)
    cache.put(other_key, SPEC, {"wall_cycles": 456.0, "tasks": []})
    assert cache.get(KEY)["wall_cycles"] == 123.0
    assert cache.get(other_key)["wall_cycles"] == 456.0


def test_repeated_corruption_keeps_every_piece_of_evidence(tmp_path):
    """One key corrupted thrice: three distinct ``.corrupt`` files.

    Regression: ``os.replace`` onto a fixed ``.corrupt`` name silently
    overwrote the earlier evidence when the same entry was recomputed
    and corrupted again. The quarantine now probes ``.corrupt``,
    ``.corrupt.1``, ``.corrupt.2``, … so nothing is lost.
    """
    cache = ResultCache(tmp_path)
    for rounds in range(3):
        cache.put(KEY, SPEC, OUTCOME)
        cache.path_for(KEY).write_bytes(f"garbage {rounds}".encode())
        assert cache.get(KEY) is None

    parent = cache.path_for(KEY).parent
    evidence = sorted(p.name for p in parent.glob("*.corrupt*"))
    assert evidence == [
        f"{KEY}.json.corrupt",
        f"{KEY}.json.corrupt.1",
        f"{KEY}.json.corrupt.2",
    ]
    assert cache.stats.quarantined == 3
    # Each file still holds the bytes of its own corruption round.
    assert (parent / f"{KEY}.json.corrupt").read_bytes() == b"garbage 0"
    assert (parent / f"{KEY}.json.corrupt.2").read_bytes() == b"garbage 2"
