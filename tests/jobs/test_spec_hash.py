"""Fail-loud guarantees of the spec content address.

A spec's key must cover *everything* that changes the run's result.
Two classes of silent corruption are rejected outright rather than
hashed around:

* a dataclass field with no canonical serialisation (an extension this
  version of ``to_dict`` does not know) — hashing would silently drop
  it from the content address;
* a spec dict carrying unknown keys — round-tripping it would rehash to
  a *different* address than the producer computed.
"""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.errors import ConfigurationError, JobError
from repro.jobs import RunSpec, make_run_spec, spec_key
from repro.jobs.spec import WorkloadSpec
from repro.perf.machine import core2duo


def small_spec(**kwargs):
    return make_run_spec(
        core2duo(),
        WorkloadSpec(
            kind="spec", names=("mcf", "povray"), instructions=50_000
        ),
        **kwargs,
    )


class TestUnknownFieldsFailLoudly:
    def test_unserialised_dataclass_field_rejected_at_hash_time(self):
        @dataclass(frozen=True)
        class ExtendedSpec(RunSpec):
            prefetcher: Optional[str] = "stride"

        spec = ExtendedSpec(
            machine=small_spec().machine,
            workload=small_spec().workload,
        )
        with pytest.raises(JobError, match="prefetcher"):
            spec.to_dict()
        with pytest.raises(JobError, match="prefetcher"):
            spec_key(spec)

    def test_unknown_dict_keys_rejected_on_round_trip(self):
        d = small_spec().to_dict()
        d["prefetcher"] = "stride"
        with pytest.raises(JobError, match="prefetcher"):
            RunSpec.from_dict(d)

    def test_wrong_schema_rejected(self):
        d = small_spec().to_dict()
        d["schema"] = "v999"
        with pytest.raises(JobError):
            RunSpec.from_dict(d)


class TestBackendInTheContentAddress:
    def test_default_backend_is_omitted(self):
        """Pre-backend spec dicts must keep their original keys."""
        d = small_spec().to_dict()
        assert "backend" not in d
        assert "estimator" not in d

    def test_backends_never_share_a_key(self):
        exact = small_spec()
        analytical = small_spec(backend="analytical")
        sampled = small_spec(backend="sampled")
        keys = {spec_key(s) for s in (exact, analytical, sampled)}
        assert len(keys) == 3

    def test_estimator_options_enter_the_key(self):
        a = small_spec(backend="sampled", estimator={"denominator": 8})
        b = small_spec(backend="sampled", estimator={"denominator": 16})
        assert spec_key(a) != spec_key(b)
        assert spec_key(a) != spec_key(small_spec(backend="sampled"))

    def test_round_trip_preserves_backend_and_key(self):
        spec = small_spec(backend="analytical", estimator={"reuse_bins": 64})
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt.backend == "analytical"
        assert rebuilt.estimator == {"reuse_bins": 64}
        assert spec_key(rebuilt) == spec_key(spec)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(backend="psychic")

    def test_estimator_on_exact_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(estimator={"denominator": 8})

    def test_unknown_estimator_knob_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="turbo"):
            small_spec(backend="sampled", estimator={"turbo": True})
