"""Content-addressed key stability: same spec, same key — anywhere.

The whole caching/dedup story rests on ``spec_key`` being a pure
function of the spec's content: independent of dict insertion order,
process boundaries and hash randomisation, and undefined for values
with no canonical JSON form.
"""

import subprocess
import sys

import pytest

from repro.errors import JobError
from repro.jobs import canonical_json, make_run_spec, spec_key
from repro.jobs.spec import MonitorSpec, WorkloadSpec
from repro.perf.machine import core2duo


def small_spec(seed=0):
    """A representative phase-1 spec for key tests."""
    return make_run_spec(
        core2duo(),
        WorkloadSpec(
            kind="spec", names=("mcf", "povray"), instructions=100_000, seed=seed
        ),
        monitor=MonitorSpec.make("weight_sort", {}),
        seed=seed,
    )


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    assert canonical_json({"a": 2, "b": 1}) == '{"a":2,"b":1}'


def test_canonical_json_rejects_nan_and_objects():
    with pytest.raises(JobError):
        canonical_json({"x": float("nan")})
    with pytest.raises(JobError):
        canonical_json({"x": object()})


def test_spec_key_is_stable_and_content_sensitive():
    spec = small_spec()
    assert spec_key(spec) == spec_key(spec.to_dict())
    # Round-tripping through the dict form preserves the key.
    from repro.jobs import RunSpec

    assert spec_key(RunSpec.from_dict(spec.to_dict())) == spec_key(spec)
    # Any content change changes the key.
    assert spec_key(small_spec(seed=1)) != spec_key(spec)


def test_spec_key_stable_across_processes():
    """A fresh interpreter (fresh hash seed) computes the same key."""
    spec = small_spec()
    program = (
        "import json,sys\n"
        "from repro.jobs import RunSpec, spec_key\n"
        "spec = RunSpec.from_dict(json.loads(sys.stdin.read()))\n"
        "print(spec_key(spec))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", program],
        input=canonical_json(spec.to_dict()),
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip() == spec_key(spec)


def test_monitor_kwargs_order_does_not_change_key():
    a = MonitorSpec.make("two_phase", {"method": "weighted", "seed": 3})
    b = MonitorSpec.make("two_phase", {"seed": 3, "method": "weighted"})
    assert a == b
    machine = core2duo()
    workload = WorkloadSpec(kind="spec", names=("mcf",), instructions=50_000)
    assert spec_key(make_run_spec(machine, workload, monitor=a)) == spec_key(
        make_run_spec(machine, workload, monitor=b)
    )
