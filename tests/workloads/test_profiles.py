"""Tests for the SPEC/PARSEC-like profile pools and the aim9 microbenchmark."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.aim9 import (
    aim9_phases,
    make_aim9_generator,
    true_footprint_schedule,
)
from repro.workloads.base import BLOCK_BYTES, WorkloadProfile
from repro.workloads.parsec import (
    PARSEC_PROFILES,
    parsec_pool,
    parsec_profile,
    parsec_profile_names,
)
from repro.workloads.spec import SPEC_PROFILES, spec_pool, spec_profile, spec_profile_names


class TestWorkloadProfile:
    def test_block_conversions(self):
        p = spec_profile("mcf")
        assert p.working_set_blocks == 16 * 1024 * 1024 // 64
        assert p.hot_set_blocks == p.hot_set_kb * 1024 // 64

    def test_access_instruction_roundtrip(self):
        p = spec_profile("gobmk")  # 5 accesses / kinstr
        assert p.accesses_for_instructions(1_000_000) == 5000
        assert p.instructions_for_accesses(5000) == 1_000_000

    def test_hot_exceeding_ws_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(
                name="bad",
                category="x",
                working_set_kb=64,
                hot_set_kb=128,
                accesses_per_kinstr=1.0,
                pattern="zipf",
            )

    def test_non_positive_intensity_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(
                name="bad",
                category="x",
                working_set_kb=64,
                hot_set_kb=64,
                accesses_per_kinstr=0.0,
                pattern="zipf",
            )

    def test_make_generator_bounds(self):
        p = spec_profile("povray")
        gen = p.make_generator(base_block=123, seed=5)
        out = gen.next_batch(1000)
        assert out.min() >= 123
        assert out.max() < 123 + p.working_set_blocks


class TestSpecPool:
    def test_pool_has_12_benchmarks(self):
        # The paper's pool: "12 SPEC 2006 programs ... chosen to have a
        # diverse mix".
        assert len(SPEC_PROFILES) == 12

    def test_expected_members(self):
        for name in ["mcf", "omnetpp", "libquantum", "hmmer", "povray", "gobmk"]:
            assert name in SPEC_PROFILES

    def test_diverse_categories(self):
        cats = {p.category for p in spec_pool()}
        assert {"cache_sensitive", "compute_bound", "bandwidth_bound", "streaming"} <= cats

    def test_mcf_is_most_sensitive_shape(self):
        # mcf: hot set below cache size, full set above it, high intensity.
        mcf = spec_profile("mcf")
        cache_kb = 4 * 1024
        assert mcf.hot_set_kb < cache_kb < mcf.working_set_kb
        assert mcf.accesses_per_kinstr == max(
            p.accesses_per_kinstr for p in spec_pool()
        )

    def test_povray_is_light(self):
        povray = spec_profile("povray")
        assert povray.working_set_kb <= 256
        assert povray.accesses_per_kinstr <= 2.0

    def test_unknown_profile_raises(self):
        with pytest.raises(WorkloadError, match="unknown SPEC profile"):
            spec_profile("doom3")

    def test_names_sorted_and_stable(self):
        assert spec_profile_names() == sorted(spec_profile_names())
        assert [p.name for p in spec_pool()] == spec_profile_names()

    def test_all_generators_construct(self):
        for profile in spec_pool():
            gen = profile.make_generator(seed=1)
            assert len(gen.next_batch(64)) == 64


class TestParsecPool:
    def test_pool_members(self):
        assert "ferret" in PARSEC_PROFILES
        assert len(PARSEC_PROFILES) >= 6

    def test_four_threads_default(self):
        # Paper: "each application has four threads".
        assert all(p.threads == 4 for p in parsec_pool())

    def test_footprint_blocks(self):
        p = parsec_profile("ferret")
        assert p.footprint_blocks == p.shared_blocks + 4 * p.private_blocks

    def test_thread_generators_share_shared_region(self):
        p = parsec_profile("streamcluster")  # 90% shared
        g0 = p.make_thread_generator(0, base_block=0, seed=3)
        g1 = p.make_thread_generator(1, base_block=0, seed=3)
        a = g0.next_batch(5000)
        b = g1.next_batch(5000)
        shared_a = set(a[a < p.shared_blocks].tolist())
        shared_b = set(b[b < p.shared_blocks].tolist())
        # Heavy sharing: the streams touch many common blocks.
        assert len(shared_a & shared_b) > 0.3 * min(len(shared_a), len(shared_b))

    def test_private_regions_disjoint(self):
        p = parsec_profile("bodytrack")
        g0 = p.make_thread_generator(0, seed=1)
        g1 = p.make_thread_generator(1, seed=1)
        a = g0.next_batch(5000)
        b = g1.next_batch(5000)
        priv_a = set(a[a >= p.shared_blocks].tolist())
        priv_b = set(b[b >= p.shared_blocks].tolist())
        assert not (priv_a & priv_b)

    def test_thread_index_validated(self):
        with pytest.raises(WorkloadError):
            parsec_profile("ferret").make_thread_generator(4)

    def test_base_block_offsets(self):
        p = parsec_profile("swaptions")
        gen = p.make_thread_generator(0, base_block=10_000, seed=0)
        assert gen.next_batch(100).min() >= 10_000

    def test_unknown_profile(self):
        with pytest.raises(WorkloadError):
            parsec_profile("raytrace9000")

    def test_names_sorted(self):
        assert parsec_profile_names() == sorted(parsec_profile_names())

    def test_accesses_for_instructions(self):
        p = parsec_profile("ferret")
        assert p.accesses_for_instructions(1000_000) == 12_000


class TestAim9:
    def test_phase_schedule_nonempty(self):
        phases = aim9_phases()
        assert len(phases) >= 5
        assert all(kb > 0 and 0 < churn <= 1 and n > 0 for kb, churn, n in phases)

    def test_footprint_varies_over_time(self):
        sizes = [kb for kb, _, _ in aim9_phases()]
        assert max(sizes) / min(sizes) >= 8  # big dynamic range

    def test_footprint_and_churn_decorrelated(self):
        # The Figure 2 construction: miss rate (churn) carries no
        # information about working-set size.
        sizes = np.array([kb for kb, _, _ in aim9_phases()], dtype=float)
        churns = np.array([c for _, c, _ in aim9_phases()], dtype=float)
        corr = abs(np.corrcoef(sizes, churns)[0, 1])
        assert corr < 0.5

    def test_generator_live_window_respected(self):
        gen = make_aim9_generator(seed=0)
        for window_kb, churn, accesses in aim9_phases():
            window_blocks = window_kb * 1024 // BLOCK_BYTES
            out = gen.next_batch(accesses)
            # Live-window property: every access lies within window_blocks
            # of the running maximum (the stream cursor).
            running_max = np.maximum.accumulate(out)
            assert ((running_max - out) <= window_blocks).all()

    def test_phases_use_disjoint_slices(self):
        gen = make_aim9_generator(seed=0)
        phase_blocks = [
            gen.next_batch(accesses) for _, _, accesses in aim9_phases()
        ]
        for a, b in zip(phase_blocks, phase_blocks[1:]):
            assert set(a.tolist()).isdisjoint(set(b.tolist()))

    def test_true_footprint_schedule_alignment(self):
        schedule = true_footprint_schedule()
        phases = aim9_phases()
        assert len(schedule) == len(phases)
        for (accesses, blocks), (kb, churn, n) in zip(schedule, phases):
            assert accesses == n
            assert blocks == kb * 1024 // BLOCK_BYTES

    def test_custom_phases(self):
        gen = make_aim9_generator(phases=[(64, 0.5, 100), (128, 0.4, 100)], seed=1)
        out = gen.next_batch(200)
        assert len(out) == 200

    def test_reset(self):
        gen = make_aim9_generator(seed=2)
        first = gen.next_batch(1000)
        gen.reset()
        assert np.array_equal(gen.next_batch(1000), first)
