"""Tests for the sliding-window (aim9-style) generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.patterns import SlidingWindowGenerator


class TestSlidingWindow:
    def test_live_window_bound(self):
        gen = SlidingWindowGenerator(window_blocks=50, churn=0.4, seed=0)
        out = gen.next_batch(5000)
        running_max = np.maximum.accumulate(out)
        assert ((running_max - out) <= 50).all()

    def test_cursor_advances_with_churn(self):
        gen = SlidingWindowGenerator(window_blocks=50, churn=0.5, seed=0)
        out = gen.next_batch(10_000)
        # Fresh-block fraction ~ churn.
        advance = out.max()
        assert 4000 < advance < 6000

    def test_full_churn_is_pure_stream(self):
        gen = SlidingWindowGenerator(window_blocks=10, churn=1.0, seed=0)
        out = gen.next_batch(100)
        assert out.tolist() == list(range(1, 101))

    def test_base_block_applied(self):
        gen = SlidingWindowGenerator(window_blocks=10, churn=0.5, base_block=1000, seed=0)
        assert gen.next_batch(100).min() >= 1000

    def test_reset_replays(self):
        gen = SlidingWindowGenerator(window_blocks=20, churn=0.3, seed=5)
        first = gen.next_batch(500)
        gen.reset()
        assert np.array_equal(gen.next_batch(500), first)

    def test_batch_split_invariance(self):
        a = SlidingWindowGenerator(window_blocks=20, churn=0.3, seed=5)
        b = SlidingWindowGenerator(window_blocks=20, churn=0.3, seed=5)
        one = a.next_batch(400)
        two = np.concatenate([b.next_batch(137), b.next_batch(263)])
        assert np.array_equal(one, two)

    def test_invalid_churn(self):
        with pytest.raises(WorkloadError):
            SlidingWindowGenerator(10, churn=0.0)
        with pytest.raises(WorkloadError):
            SlidingWindowGenerator(10, churn=1.5)

    def test_addresses_never_negative(self):
        gen = SlidingWindowGenerator(window_blocks=1000, churn=0.1, seed=1)
        assert gen.next_batch(200).min() >= 0

    @given(
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_window_property_holds(self, window, churn, n):
        gen = SlidingWindowGenerator(window_blocks=window, churn=churn, seed=0)
        out = gen.next_batch(n)
        running_max = np.maximum.accumulate(out)
        assert ((running_max - out) <= window).all()
        assert (out >= 0).all()
