"""Seeded arrival traces: determinism, barriers, validation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.arrivals import (
    EVENT_KINDS,
    ArrivalTrace,
    bursty_trace,
    poisson_trace,
)
from repro.workloads.spec import spec_profile_names


@pytest.mark.parametrize("factory", [poisson_trace, bursty_trace])
class TestTraceInvariants:
    def test_same_seed_same_trace(self, factory):
        a = factory(200, seed=7)
        b = factory(200, seed=7)
        assert a.events == b.events
        assert a.seed == b.seed == 7

    def test_different_seeds_differ(self, factory):
        assert factory(200, seed=1).events != factory(200, seed=2).events

    def test_length_and_sequencing(self, factory):
        trace = factory(150, seed=3)
        assert len(trace) == 150
        assert [e.seq for e in trace] == list(range(150))
        times = [e.time for e in trace]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)

    def test_kinds_and_profiles_are_legal(self, factory):
        trace = factory(300, seed=5)
        names = set(spec_profile_names())
        for event in trace:
            assert event.kind in EVENT_KINDS
            assert event.name in names

    def test_population_respects_barriers(self, factory):
        trace = factory(500, seed=9, min_live=2, max_live=6)
        live = set()
        for event in trace:
            if event.kind == "admit":
                assert event.pid not in live
                live.add(event.pid)
            elif event.kind == "retire":
                assert event.pid in live
                live.remove(event.pid)
            else:
                assert event.pid in live
            assert len(live) <= 6
            # The floor may be crossed by exactly one departure before
            # the builder's next step re-admits.
            assert len(live) >= 1 or event.seq == 0

    def test_phase_fraction_zero_means_no_phase_changes(self, factory):
        trace = factory(300, seed=4, phase_fraction=0.0)
        assert all(e.kind != "phase_change" for e in trace)

    def test_phase_changes_switch_profiles(self, factory):
        trace = factory(400, seed=6)
        profile = {}
        for event in trace:
            if event.kind == "phase_change":
                assert profile[event.pid] != event.name
            if event.kind == "retire":
                profile.pop(event.pid)
            else:
                profile[event.pid] = event.name

    def test_final_and_peak_population_helpers(self, factory):
        trace = factory(250, seed=8, min_live=2, max_live=7)
        live = {}
        peak = 0
        for event in trace:
            if event.kind == "retire":
                live.pop(event.pid)
            else:
                live[event.pid] = event.name
            peak = max(peak, len(live))
        assert trace.final_population() == live
        assert trace.peak_population() == peak


class TestValidation:
    def test_rejects_bad_num_events(self):
        with pytest.raises(WorkloadError):
            poisson_trace(0, seed=0)

    def test_rejects_empty_pool(self):
        with pytest.raises(WorkloadError):
            poisson_trace(10, seed=0, pool=[])

    def test_rejects_duplicate_pool(self):
        with pytest.raises(WorkloadError):
            poisson_trace(10, seed=0, pool=["mcf", "mcf"])

    def test_rejects_bad_barriers(self):
        with pytest.raises(WorkloadError):
            poisson_trace(10, seed=0, min_live=0)
        with pytest.raises(WorkloadError):
            poisson_trace(10, seed=0, min_live=5, max_live=4)

    def test_rejects_bad_phase_fraction(self):
        with pytest.raises(WorkloadError):
            poisson_trace(10, seed=0, phase_fraction=1.0)

    def test_phase_changes_need_two_profiles(self):
        with pytest.raises(WorkloadError):
            poisson_trace(10, seed=0, pool=["mcf"], phase_fraction=0.1)
        # A single-profile pool is fine without phase changes.
        trace = poisson_trace(
            10, seed=0, pool=["mcf"], phase_fraction=0.0, min_live=1
        )
        assert len(trace) == 10

    def test_rejects_bad_interarrival(self):
        with pytest.raises(WorkloadError):
            poisson_trace(10, seed=0, mean_interarrival=0.0)
        with pytest.raises(WorkloadError):
            bursty_trace(10, seed=0, burst_interarrival=0.0)
        with pytest.raises(WorkloadError):
            bursty_trace(10, seed=0, burst_length=0)


def test_bursty_has_tighter_gaps_inside_bursts():
    trace = bursty_trace(
        600, seed=12, burst_interarrival=0.05, calm_interarrival=2.0
    )
    gaps = [
        b.time - a.time for a, b in zip(trace.events, trace.events[1:])
    ]
    # Bimodal gap distribution: plenty of sub-0.3s burst gaps AND
    # plenty of >0.5s calm gaps in the same trace.
    assert sum(1 for g in gaps if g < 0.3) > 100
    assert sum(1 for g in gaps if g > 0.5) > 50


def test_trace_is_a_frozen_value():
    trace = poisson_trace(20, seed=1)
    assert isinstance(trace, ArrivalTrace)
    with pytest.raises(AttributeError):
        trace.seed = 2
