"""Tests for address-pattern generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.base import WorkloadProfile
from repro.workloads.patterns import (
    HotColdGenerator,
    MixtureGenerator,
    PhasedGenerator,
    PointerChaseGenerator,
    RandomRegionGenerator,
    StreamGenerator,
    StridedGenerator,
    generator_for_profile,
)

ALL_SIMPLE = [
    lambda: StridedGenerator(100, 3, seed=1),
    lambda: StreamGenerator(100, seed=1),
    lambda: RandomRegionGenerator(100, seed=1),
    lambda: HotColdGenerator(100, 10, 0.8, seed=1),
    lambda: PointerChaseGenerator(100, seed=1),
]


@pytest.mark.parametrize("factory", ALL_SIMPLE)
class TestCommonGeneratorContract:
    def test_batch_length(self, factory):
        gen = factory()
        assert len(gen.next_batch(37)) == 37

    def test_addresses_in_region(self, factory):
        gen = factory()
        out = gen.next_batch(500)
        assert out.min() >= 0 and out.max() < 100

    def test_deterministic_replay_after_reset(self, factory):
        gen = factory()
        first = gen.next_batch(200)
        gen.reset()
        assert np.array_equal(gen.next_batch(200), first)
        assert gen.blocks_generated == 200

    def test_base_block_offsets_everything(self, factory):
        gen = factory()
        gen.base_block = 10_000
        out = gen.next_batch(100)
        assert out.min() >= 10_000 and out.max() < 10_100

    def test_stream_continues_across_batches(self, factory):
        gen = factory()
        a = np.concatenate([gen.next_batch(50), gen.next_batch(50)])
        gen.reset()
        b = gen.next_batch(100)
        assert np.array_equal(a, b)

    def test_rejects_zero_batch(self, factory):
        with pytest.raises(ValueError):
            factory().next_batch(0)


class TestStrided:
    def test_sequence(self):
        gen = StridedGenerator(10, 3)
        assert gen.next_batch(5).tolist() == [0, 3, 6, 9, 2]

    def test_unit_stride_wraps(self):
        gen = StreamGenerator(4)
        assert gen.next_batch(6).tolist() == [0, 1, 2, 3, 0, 1]

    def test_figure1_conflict_pattern(self):
        # Stride == num_sets on a direct-mapped cache -> single-set conflicts.
        gen = StridedGenerator(64, 8)
        out = gen.next_batch(8)
        assert set(out % 8) == {0}


class TestHotCold:
    def test_hot_fraction_respected(self):
        gen = HotColdGenerator(1000, 10, hot_fraction=0.9, seed=0)
        out = gen.next_batch(20_000)
        frac_hot = (out < 10).mean()
        assert 0.88 < frac_hot < 0.93

    def test_all_cold(self):
        gen = HotColdGenerator(1000, 10, hot_fraction=0.0, seed=0)
        out = gen.next_batch(5000)
        # Uniform over the whole region: hot share ~ 10/1000.
        assert (out < 10).mean() < 0.05

    def test_hot_exceeding_region_rejected(self):
        with pytest.raises(WorkloadError):
            HotColdGenerator(10, 20)

    def test_bad_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            HotColdGenerator(10, 5, hot_fraction=1.5)


class TestPointerChase:
    def test_covers_region_exactly_once_per_lap(self):
        gen = PointerChaseGenerator(50, seed=3)
        lap = gen.next_batch(50)
        assert sorted(lap.tolist()) == list(range(50))

    def test_laps_identical(self):
        gen = PointerChaseGenerator(50, seed=3)
        lap1 = gen.next_batch(50)
        lap2 = gen.next_batch(50)
        assert np.array_equal(lap1, lap2)

    def test_order_is_shuffled(self):
        gen = PointerChaseGenerator(100, seed=3)
        assert gen.next_batch(100).tolist() != list(range(100))

    def test_different_seeds_different_orders(self):
        a = PointerChaseGenerator(100, seed=1).next_batch(100)
        b = PointerChaseGenerator(100, seed=2).next_batch(100)
        assert not np.array_equal(a, b)


class TestPhased:
    def test_phase_transitions(self):
        g1 = StridedGenerator(4, 1, seed=0)
        g2 = StridedGenerator(4, 1, seed=0)
        g2.base_block = 100
        gen = PhasedGenerator([(g1, 3), (g2, 2)])
        out = gen.next_batch(5)
        assert out.tolist() == [0, 1, 2, 100, 101]
        assert gen.current_phase == 0  # cycled back

    def test_cycles(self):
        g1 = StridedGenerator(10, 1, seed=0)
        gen = PhasedGenerator([(g1, 3)])
        out = gen.next_batch(7)
        assert len(out) == 7

    def test_batch_spanning_phases(self):
        g1 = RandomRegionGenerator(10, seed=0)
        g2 = RandomRegionGenerator(10, seed=0)
        g2.base_block = 1000
        gen = PhasedGenerator([(g1, 5), (g2, 5)])
        out = gen.next_batch(10)
        assert (out[:5] < 10).all()
        assert (out[5:] >= 1000).all()

    def test_reset_restarts_phases(self):
        g1 = StridedGenerator(10, 1, seed=0)
        g2 = RandomRegionGenerator(10, seed=5)
        gen = PhasedGenerator([(g1, 4), (g2, 4)])
        first = gen.next_batch(8)
        gen.reset()
        assert np.array_equal(gen.next_batch(8), first)

    def test_empty_phases_rejected(self):
        with pytest.raises(WorkloadError):
            PhasedGenerator([])


class TestMixture:
    def test_weights_respected(self):
        hot = RandomRegionGenerator(10, seed=1)
        cold = RandomRegionGenerator(10, seed=2)
        cold.base_block = 1000
        gen = MixtureGenerator([hot, cold], [0.75, 0.25], seed=0)
        out = gen.next_batch(40_000)
        frac_hot = (out < 1000).mean()
        assert 0.70 < frac_hot < 0.80

    def test_reset_replays(self):
        gen = MixtureGenerator(
            [RandomRegionGenerator(10, seed=1), RandomRegionGenerator(10, seed=2)],
            [0.5, 0.5],
            seed=3,
        )
        first = gen.next_batch(500)
        gen.reset()
        assert np.array_equal(gen.next_batch(500), first)

    def test_base_applies_on_top(self):
        gen = MixtureGenerator([RandomRegionGenerator(10, seed=1)], [1.0], base_block=50)
        out = gen.next_batch(100)
        assert out.min() >= 50 and out.max() < 60

    def test_misaligned_weights_rejected(self):
        with pytest.raises(WorkloadError):
            MixtureGenerator([RandomRegionGenerator(10)], [0.5, 0.5])

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(WorkloadError):
            MixtureGenerator([RandomRegionGenerator(10)], [0.0])

    def test_stream_identical_to_scalar_chunk_loop(self):
        """The vectorised ``_generate`` must be byte-for-byte the stream
        of the original one-``rng.choice``-per-chunk loop (traces are
        content-addressed; any drift would invalidate cached results)."""

        class ScalarMixture(MixtureGenerator):
            def _generate(self, n):
                out = []
                remaining = n
                while remaining > 0:
                    idx = self._rng.choice(len(self.generators), p=self.weights)
                    take = min(self.CHUNK, remaining)
                    out.append(self.generators[int(idx)].next_batch(take))
                    remaining -= take
                return np.concatenate(out)

        def build(cls, seed):
            return cls(
                [
                    RandomRegionGenerator(32, seed=11),
                    StreamGenerator(64, seed=12),
                ],
                [0.6, 0.4],
                seed=seed,
            )

        # Odd sizes exercise partial chunks and the chunk-merging path;
        # both generators see the same splits (chunking is per call).
        for seed in (0, 5):
            for splits in ((457,), (7, 16, 33, 400, 1)):
                new = build(MixtureGenerator, seed)
                old = build(ScalarMixture, seed)
                got = np.concatenate([new.next_batch(k) for k in splits])
                want = np.concatenate([old.next_batch(k) for k in splits])
                assert np.array_equal(got, want), (seed, splits)


class TestGeneratorForProfile:
    def _profile(self, pattern, **kw):
        defaults = dict(
            name="x",
            category="moderate",
            working_set_kb=64,
            hot_set_kb=16,
            accesses_per_kinstr=5.0,
            pattern=pattern,
            locality=0.8,
        )
        defaults.update(kw)
        return WorkloadProfile(**defaults)

    @pytest.mark.parametrize(
        "pattern", ["stream", "strided", "random", "zipf", "pointer_chase", "mixed"]
    )
    def test_all_patterns_construct_and_stay_in_bounds(self, pattern):
        profile = self._profile(pattern)
        gen = generator_for_profile(profile, base_block=500, seed=1)
        out = gen.next_batch(2000)
        assert out.min() >= 500
        assert out.max() < 500 + profile.working_set_blocks

    def test_chase_without_hot_subset(self):
        profile = self._profile("pointer_chase", hot_set_kb=64)
        gen = generator_for_profile(profile)
        assert isinstance(gen, PointerChaseGenerator)

    def test_unknown_pattern_rejected(self):
        profile = self._profile("zipf")
        object.__setattr__(profile, "pattern", "wavelet")
        with pytest.raises(WorkloadError):
            generator_for_profile(profile)

    def test_seeded_determinism(self):
        profile = self._profile("mixed")
        a = generator_for_profile(profile, seed=9).next_batch(300)
        b = generator_for_profile(profile, seed=9).next_batch(300)
        assert np.array_equal(a, b)


class TestGeneratorProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_region_bounds(self, region, n, seed):
        gen = RandomRegionGenerator(region, seed=seed)
        out = gen.next_batch(n)
        assert out.min() >= 0 and out.max() < region

    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_chase_is_permutation_cycle(self, region, n):
        gen = PointerChaseGenerator(region, seed=0)
        out = gen.next_batch(n)
        # Any window of length <= region has no repeats.
        take = min(n, region)
        assert len(set(out[:take].tolist())) == take
