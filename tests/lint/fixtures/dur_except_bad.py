"""Fixture: exception handling RPR202/RPR203 must flag."""


def swallow_everything(work):
    """Bare except: catches KeyboardInterrupt too."""
    try:
        return work()
    except:  # RPR202
        return None


def swallow_broad(work):
    """Broad except that neither raises, logs, nor reads the fault."""
    try:
        return work()
    except Exception:  # RPR203
        return None


def swallow_bound_but_unread(work):
    """Binding the exception without reading it is still swallowing."""
    try:
        return work()
    except BaseException as exc:  # RPR203 (exc never read)
        return None
