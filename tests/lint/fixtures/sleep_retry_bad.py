"""Fixture: hand-rolled backoff loops RPR303 must flag."""

import time


def fetch_with_doubling(fetch, attempts):
    """Classic unbounded exponential backoff — the pattern RPR303 bans."""
    delay = 0.1
    for _ in range(attempts):
        try:
            return fetch()
        except OSError:
            time.sleep(delay)
            delay = delay * 2
    raise OSError("gave up")


def wait_for_marker(path, backoff=0.05):
    """Computed sleep in a while loop is backoff too."""
    while not path.exists():
        time.sleep(backoff * 3)
