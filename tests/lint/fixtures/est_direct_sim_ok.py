"""Fixture: seam-respecting estimate code RPR503 must leave alone."""

from repro.estimate.dispatch import make_exact_simulator


def build_through_seam(machine, tasks):
    """The sanctioned construction path."""
    return make_exact_simulator(machine, tasks, seed=1)


def unrelated_call(machine, tasks):
    """A local helper that merely shares the suffix is not the engine."""

    def multicore_simulator(m, t):
        """Lowercase local — resolves to itself, not the class."""
        return (m, t)

    return multicore_simulator(machine, tasks)


def mention_without_call():
    """Referencing the class name in data is not construction."""
    return "MulticoreSimulator"
