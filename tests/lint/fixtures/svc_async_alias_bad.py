"""Fixture: aliased blocking imports inside coroutines (RPR501).

The alias spellings that a naive name-match would miss: a from-import
renamed at the import site, and a module import bound to a short alias.
Linted as a ``repro.service`` module; expects two violations.
"""

import time as t
from time import sleep as pause


async def stall_via_from_alias():
    """RPR501 through the renamed from-import."""
    pause(0.1)  # RPR501


async def stall_via_module_alias():
    """RPR501 through the renamed module import."""
    t.sleep(0.1)  # RPR501
