"""Fixture: worker-API call shapes RPR301/RPR302 must accept."""


def module_level_job(payload):
    """Picklable: defined at module scope."""
    return payload * 2


def run_batch(pool, orchestrator, specs, payloads):
    """Module-level functions, parent-side callbacks, sort keys."""

    def observe(kind, **fields):
        return None

    def measure(mapping):
        # Called here, in the parent; only its *result* crosses.
        return specs[0]

    results = pool.map(module_level_job, payloads, on_event=observe)
    outcomes = orchestrator.run_specs([measure(m) for m in payloads])
    ordered = sorted(payloads, key=lambda p: str(p))
    return results, outcomes, ordered
