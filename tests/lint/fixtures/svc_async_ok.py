"""Fixture: the sanctioned async patterns RPR501 must not flag."""

import asyncio
import time


async def pace(interval):
    """asyncio.sleep yields the loop — the correct way to wait."""
    await asyncio.sleep(interval)


async def offload(path):
    """Blocking work wrapped in a nested sync helper for an executor."""

    def read_blocking():
        """Runs in the executor's thread, not on the event loop."""
        with open(path) as handle:
            return handle.read()

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, read_blocking)


def synchronous_helper(interval):
    """Plain sync code may sleep; only coroutine bodies are constrained."""
    time.sleep(interval)
