"""Fixture: exact-simulator constructions RPR503 must flag."""

from repro.perf import simulator
from repro.perf.simulator import MulticoreSimulator
from repro.perf.simulator import MulticoreSimulator as Engine


def build_directly(machine, tasks):
    """Plain imported-name construction."""
    return MulticoreSimulator(machine, tasks)  # RPR503


def build_via_module(machine, tasks):
    """Attribute-chain construction through the module object."""
    return simulator.MulticoreSimulator(machine, tasks, seed=1)  # RPR503


def build_via_alias(machine, tasks):
    """An import alias must not dodge the seam."""
    return Engine(machine, tasks)  # RPR503
