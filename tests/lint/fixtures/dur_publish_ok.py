"""Fixture: durable publishes RPR502 must accept."""

import os


def publish_durably(tmp, final):
    """fsync before the rename — the contract RPR502 enforces."""
    with open(tmp, "w") as handle:
        handle.write("state")
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(tmp, final)


def pathlib_publish_durably(tmp_path, final_path):
    """The method form is fine too, once the data is fsynced."""
    with open(tmp_path, "w") as handle:
        handle.write("state")
        handle.flush()
        os.fsync(handle.fileno())
    tmp_path.replace(final_path)


def string_replace_is_not_a_publish(label):
    """str.replace takes two arguments and is never matched."""
    return label.replace("-", "_")


def keyword_call_is_not_a_publish(frame):
    """A one-arg call with keywords is not the pathlib signature."""
    return frame.rename(columns={"a": "b"})
