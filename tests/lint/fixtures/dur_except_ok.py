"""Fixture: exception handling RPR202/RPR203 must accept."""

import logging

logger = logging.getLogger(__name__)


def narrow(work):
    """Narrow exception types are always fine."""
    try:
        return work()
    except (ValueError, OSError):
        return None


def broad_but_logged(work):
    """A broad handler that reports the fault is fine."""
    try:
        return work()
    except Exception:
        logger.warning("work failed; degrading")
        return None


def broad_but_reraised(work):
    """Cleanup-and-reraise is the sanctioned broad pattern."""
    try:
        return work()
    except BaseException:
        raise


def broad_but_read(work, failures):
    """Recording the exception counts as handling it."""
    try:
        return work()
    except Exception as exc:
        failures.append(str(exc))
        return None
