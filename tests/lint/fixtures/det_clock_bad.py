"""Fixture: every style of wall-clock read RPR101 must catch.

Linted *as if* it lived in the simulation core (the test passes
``module='repro.perf._fixture'``); each marked line is one expected
violation.
"""

import time as clock
from datetime import date, datetime
from time import perf_counter


def sample_times():
    """Read clocks in all the shapes the rule must resolve."""
    values = [
        clock.time(),           # RPR101: aliased module attribute
        clock.monotonic(),      # RPR101
        perf_counter(),         # RPR101: from-import
        datetime.now(),         # RPR101: from-import of the class
        date.today(),           # RPR101
    ]
    return values
