"""Fixture: an adversarial generator drawing from an unseeded RNG.

Linted under a pretend ``repro.adversary`` module name: the adversary
package is inside ``SIM_CORE_PACKAGES``, so the determinism rules must
fire here exactly as they do in ``repro.workloads``.
"""

import numpy as np


class SneakyGenerator:
    """An attack stream whose randomness is not derived from a seed."""

    def __init__(self, region_blocks):
        self.region_blocks = region_blocks
        self._rng = np.random.default_rng()  # RPR102: unseeded generator

    def next_batch(self, n):
        """Unreproducible addresses defeat the suite's determinism."""
        return self._rng.integers(0, self.region_blocks, n)
