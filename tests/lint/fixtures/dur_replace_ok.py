"""Fixture: the correct write-tmp / flush / fsync / replace protocol."""

import os


def publish_durably(tmp, final):
    """fsync before replace — the contract RPR201 enforces."""
    with open(tmp, "w") as handle:
        handle.write("data")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
