"""Fixture: unseeded / global-state RNG uses RPR102 must catch."""

import random

import numpy as np


def draw_everything():
    """Each line is one expected RPR102 violation."""
    a = random.random()              # RPR102: global RNG
    b = random.Random()              # RPR102: unseeded instance
    c = np.random.rand(4)            # RPR102: legacy global API
    d = np.random.default_rng()      # RPR102: unseeded generator
    e = np.random.default_rng(None)  # RPR102: explicit None seed
    return a, b, c, d, e
