"""Fixture: clock-adjacent code RPR101 must *not* flag.

Simulated time derived from cycle counters, a local function that
happens to be called ``time``, and a shadowed import are all legal.
"""


def time():
    """A local function named time is not the stdlib clock."""
    return 0.0


def simulated_seconds(cycles, clock_hz):
    """Simulated time is a pure function of counters."""
    local = time()
    return local + cycles / clock_hz
