"""Fixture: suppression comments — line, file, and malformed.

The file-level waiver covers RPR202; the line waivers cover one RPR101
site; the unsuppressed datetime.now() and the blanket noqa must still
be reported.
"""
# repro: noqa-file[RPR202]

from datetime import datetime
from time import perf_counter


def timed():
    """One waived clock read, one live one, one blanket comment."""
    t0 = perf_counter()  # repro: noqa[RPR101] — telemetry-only timing
    stamp = datetime.now()  # still RPR101: not waived
    try:
        return t0, stamp
    except:  # waived by the file-level noqa-file[RPR202]
        pass
    value = 1  # repro: noqa — malformed: RPR002, names no codes
    return value
