"""Fixture: the sanctioned single-guard telemetry fast path."""

from repro.telemetry import current as telemetry_current


def guarded(name):
    """Bind once, branch on None — the disabled path touches nothing."""
    tel = telemetry_current()
    if tel is None:
        return None
    if tel.tracer is not None:
        return tel.tracer.begin(name)
    return None
