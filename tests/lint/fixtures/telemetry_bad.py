"""Fixture: telemetry guard bypass (RPR401) and core installs (RPR402).

Linted as a sim-core module for RPR402 and as any non-telemetry module
for RPR401.
"""

from repro.telemetry import configure, current
from repro.telemetry import current as telemetry_current


def bypass_guard(name):
    """Two RPR401 violations: chained access off current()."""
    span = current().tracer.begin(name)           # RPR401
    telemetry_current().metrics.counter(name)     # RPR401
    return span


def install_from_core():
    """RPR402: a core component must not install process state."""
    return configure()  # RPR402
