"""Fixture: rename-family durable publishes RPR502 must flag."""

import os
import shutil


def publish_via_rename(tmp, final):
    """os.rename dodges the RPR201 os.replace audit entirely."""
    with open(tmp, "w") as handle:
        handle.write("state")
    os.rename(tmp, final)  # RPR502


def publish_via_move(tmp, final):
    """shutil.move is a rename in a trenchcoat."""
    shutil.move(tmp, final)  # RPR502


def publish_via_pathlib(tmp_path, final_path):
    """Path.replace(target): one-argument method form, no fsync."""
    tmp_path.write_text("state")
    tmp_path.replace(final_path)  # RPR502


def fsync_after_the_fact(tmp_path, final_path, fd):
    """The fsync happens too late — after the publish."""
    tmp_path.rename(final_path)  # RPR502
    os.fsync(fd)


def outer_fsync_inner_rename(tmp, final, fd):
    """An enclosing fsync must not excuse a nested function's rename."""
    os.fsync(fd)

    def publish():
        os.rename(tmp, final)  # RPR502

    return publish
