"""Fixture: blocking calls inside coroutines (RPR501).

Linted as a ``repro.service`` module; expects three violations.
"""

import subprocess
import time
from time import sleep


async def stall_the_loop(path):
    """Three RPR501 violations: sleep twice (module and from-import), open."""
    time.sleep(0.1)                    # RPR501
    sleep(0.1)                         # RPR501
    with open(path) as handle:         # RPR501
        return handle.read()


async def spawn_process(cmd):
    """One more RPR501: a synchronous subprocess inside a coroutine."""
    return subprocess.run(cmd)  # RPR501
