"""Fixture: sleep shapes RPR303 must accept."""

import time

from repro.supervise.retry import RetryPolicy


def poll_until(done):
    """Fixed-interval polling: a literal sleep in a loop is legal."""
    while not done():
        time.sleep(0.05)


def settle(grace_seconds):
    """A computed sleep *outside* any loop is not a retry schedule."""
    time.sleep(grace_seconds)


def fetch_with_policy(fetch, attempts):
    """The sanctioned shape: delays come from a RetrySession."""
    session = RetryPolicy(base=0.1).session()
    for _ in range(attempts):
        try:
            return fetch()
        except OSError:
            session.sleep()
    raise OSError("gave up")
