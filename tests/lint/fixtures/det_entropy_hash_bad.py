"""Fixture: entropy sources (RPR103) and builtin hash (RPR104)."""

import os
import uuid


def unique_token(name):
    """Three violations: urandom, uuid4, and randomised hash()."""
    salt = os.urandom(8)        # RPR103
    ident = uuid.uuid4()        # RPR103
    bucket = hash(name) % 64    # RPR104
    return salt, ident, bucket
