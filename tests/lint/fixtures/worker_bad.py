"""Fixture: unpicklable callables crossing the spawn-pool boundary."""


def run_batch(pool, orchestrator, payloads, make_spec):
    """Four violations: lambdas and local callables handed to workers."""

    def local_job(payload):
        return payload * 2

    class LocalSpec:
        pass

    results = pool.map(lambda p: p + 1, payloads)       # RPR301
    results += pool.map(local_job, payloads)            # RPR302
    outcomes = orchestrator.run_specs(
        [lambda: None] + [LocalSpec]                    # RPR301 + RPR302
    )
    return results, outcomes, make_spec
