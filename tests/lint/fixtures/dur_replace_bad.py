"""Fixture: os.replace publishes RPR201 must flag."""

import os


def publish_unfsynced(tmp, final):
    """Replace with no fsync at all."""
    with open(tmp, "w") as handle:
        handle.write("data")
    os.replace(tmp, final)  # RPR201


def publish_fsync_after(tmp, final, log_fd):
    """The fsync happens too late — after the publish."""
    os.replace(tmp, final)  # RPR201
    os.fsync(log_fd)


def outer_fsync_inner_replace(tmp, final, fd):
    """An enclosing fsync must not excuse a nested function's replace."""
    os.fsync(fd)

    def publish():
        os.replace(tmp, final)  # RPR201

    return publish
