"""Fixture: properly seeded RNG construction RPR102 must accept."""

import numpy as np


def draw_seeded(seed):
    """Seeded construction in every accepted shape."""
    a = np.random.default_rng(seed)
    b = np.random.default_rng(1234)
    c = np.random.Generator(np.random.PCG64(seed))
    d = np.random.SeedSequence(seed).spawn(2)
    return a, b, c, d
