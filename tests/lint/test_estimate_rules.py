"""RPR503: exact-simulator construction stays behind the dispatch seam."""

from pathlib import Path

from repro.lint import lint_paths

from tests.lint.conftest import codes_of

#: Pretend modules placing fixtures inside (and outside) the package.
ESTIMATE_MODULE = "repro.estimate._lint_fixture"
DISPATCH_MODULE = "repro.estimate.dispatch"


def test_bad_fixture_flags_every_construction(lint_fixture):
    violations = lint_fixture("est_direct_sim_bad.py", module=ESTIMATE_MODULE)
    assert codes_of(violations) == ["RPR503"] * 3


def test_seam_and_lookalike_calls_are_clean(lint_fixture):
    assert lint_fixture("est_direct_sim_ok.py", module=ESTIMATE_MODULE) == []


def test_dispatch_module_is_the_sanctioned_exception(lint_fixture):
    violations = lint_fixture("est_direct_sim_bad.py", module=DISPATCH_MODULE)
    assert "RPR503" not in codes_of(violations)


def test_rule_is_scoped_to_the_estimate_package(lint_fixture):
    # The rest of the codebase constructs the simulator by design.
    assert (
        codes_of(lint_fixture("est_direct_sim_bad.py", module="repro.perf._fx"))
        == []
    )
    assert (
        codes_of(
            lint_fixture("est_direct_sim_bad.py", module="repro.service._fx")
        )
        == []
    )


def test_shipped_estimate_package_is_clean():
    # The estimation backends must satisfy their own seam discipline.
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    result = lint_paths([src / "estimate"])
    assert [v for v in result.violations if v.code == "RPR503"] == []
