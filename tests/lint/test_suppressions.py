"""Suppression machinery: line noqa, file waivers, malformed comments."""

from tests.lint.conftest import codes_of

from repro.lint import lint_source


def test_suppressed_fixture_mixes_waived_and_live(lint_fixture):
    violations = lint_fixture("suppressed.py")
    # The file-level RPR202 waiver and the line-level RPR101 noqa hold;
    # the un-annotated datetime.now() stays live and the blanket noqa is
    # itself reported as malformed.
    assert codes_of(violations) == ["RPR002", "RPR101"]


def test_line_noqa_only_covers_its_own_code():
    source = (
        '"""Doc."""\n'
        "import time\n"
        "def stamp():\n"
        '    """Clock read with the wrong waiver code."""\n'
        "    return time.time()  # repro: noqa[RPR999]\n"
    )
    flagged = lint_source("m.py", source, module="repro.core._fx")
    assert codes_of(flagged) == ["RPR101"]


def test_noqa_in_docstring_is_not_a_suppression():
    source = (
        '"""Mentions # repro: noqa[RPR101] in prose only."""\n'
        "import time\n"
        "def stamp():\n"
        '    """Read the clock."""\n'
        "    return time.time()\n"
    )
    flagged = lint_source("m.py", source, module="repro.core._fx")
    assert codes_of(flagged) == ["RPR101"]


def test_parse_error_reports_rpr001():
    flagged = lint_source("broken.py", "def f(:\n", module=None)
    assert codes_of(flagged) == ["RPR001"]


# --- Flow findings ride the same suppression machinery -----------------

_TAINT_HELPER = (
    "src/repro/io/timeutil.py",
    '"""Helper outside the core."""\n'
    "import time\n"
    "def stamp():\n"
    '    """Reads the wall clock."""\n'
    "    return time.time()\n",
    "repro.io.timeutil",
)


def _flow_over(*triples):
    from repro.flow import Program, run_flow

    return run_flow(Program.from_sources(list(triples))).violations


def test_noqa_file_waives_flow_findings_at_the_report_site():
    caller = (
        "src/repro/perf/model.py",
        '"""Core module, wholesale waiver."""\n'
        "# repro: noqa-file[RPR601]\n"
        "from repro.io.timeutil import stamp\n"
        "def simulate():\n"
        '    """Waived."""\n'
        "    return stamp()\n",
        "repro.perf.model",
    )
    assert _flow_over(_TAINT_HELPER, caller) == []


def test_line_noqa_waives_flow_findings_at_the_report_line():
    caller = (
        "src/repro/perf/model.py",
        '"""Core module with a line waiver."""\n'
        "from repro.io.timeutil import stamp\n"
        "def simulate():\n"
        '    """Waived at the call line."""\n'
        "    return stamp()  # repro: noqa[RPR601]\n",
        "repro.perf.model",
    )
    assert _flow_over(_TAINT_HELPER, caller) == []


def test_wrong_code_in_noqa_leaves_the_flow_finding_live():
    caller = (
        "src/repro/perf/model.py",
        '"""Core module with the wrong waiver code."""\n'
        "from repro.io.timeutil import stamp\n"
        "def simulate():\n"
        '    """Waiver names a different rule."""\n'
        "    return stamp()  # repro: noqa[RPR999]\n",
        "repro.perf.model",
    )
    assert codes_of(_flow_over(_TAINT_HELPER, caller)) == ["RPR601"]


def test_analysis_covers_resolves_paths_and_lines():
    from repro.flow import Program, analyze

    caller = (
        "src/repro/perf/model.py",
        '"""Core module with a line waiver."""\n'
        "from repro.io.timeutil import stamp\n"
        "def simulate():\n"
        '    """Waived at the call line."""\n'
        "    return stamp()  # repro: noqa[RPR601]\n",
        "repro.perf.model",
    )
    analysis = analyze(Program.from_sources([_TAINT_HELPER, caller]))
    assert analysis.covers("src/repro/perf/model.py", "RPR601", 5)
    assert not analysis.covers("src/repro/perf/model.py", "RPR601", 4)
    assert not analysis.covers("src/repro/perf/model.py", "RPR602", 5)
    assert not analysis.covers("unknown/path.py", "RPR601", 5)
