"""Suppression machinery: line noqa, file waivers, malformed comments."""

from tests.lint.conftest import codes_of

from repro.lint import lint_source


def test_suppressed_fixture_mixes_waived_and_live(lint_fixture):
    violations = lint_fixture("suppressed.py")
    # The file-level RPR202 waiver and the line-level RPR101 noqa hold;
    # the un-annotated datetime.now() stays live and the blanket noqa is
    # itself reported as malformed.
    assert codes_of(violations) == ["RPR002", "RPR101"]


def test_line_noqa_only_covers_its_own_code():
    source = (
        '"""Doc."""\n'
        "import time\n"
        "def stamp():\n"
        '    """Clock read with the wrong waiver code."""\n'
        "    return time.time()  # repro: noqa[RPR999]\n"
    )
    flagged = lint_source("m.py", source, module="repro.core._fx")
    assert codes_of(flagged) == ["RPR101"]


def test_noqa_in_docstring_is_not_a_suppression():
    source = (
        '"""Mentions # repro: noqa[RPR101] in prose only."""\n'
        "import time\n"
        "def stamp():\n"
        '    """Read the clock."""\n'
        "    return time.time()\n"
    )
    flagged = lint_source("m.py", source, module="repro.core._fx")
    assert codes_of(flagged) == ["RPR101"]


def test_parse_error_reports_rpr001():
    flagged = lint_source("broken.py", "def f(:\n", module=None)
    assert codes_of(flagged) == ["RPR001"]
