"""RPR502: rename-family durable publishes need a preceding fsync."""

from pathlib import Path

from repro.lint import lint_paths, lint_source

from tests.lint.conftest import codes_of

#: Pretend modules placing fixtures inside the durable-state packages.
DURABLE_MODULE = "repro.durable._lint_fixture"
SERVICE_MODULE = "repro.service._lint_fixture"


def test_bad_fixture_flags_every_rename(lint_fixture):
    violations = lint_fixture("dur_publish_bad.py", module=DURABLE_MODULE)
    assert codes_of(violations) == ["RPR502"] * 5


def test_rule_also_covers_the_service_package(lint_fixture):
    violations = lint_fixture("dur_publish_bad.py", module=SERVICE_MODULE)
    assert "RPR502" in codes_of(violations)


def test_fsynced_and_lookalike_calls_are_clean(lint_fixture):
    assert lint_fixture("dur_publish_ok.py", module=DURABLE_MODULE) == []


def test_rule_is_scoped_to_the_durable_packages(lint_fixture):
    # The same renames are legal elsewhere — RPR201 still audits the
    # os.replace spelling globally, but the heuristic method-form match
    # only pays for itself where scheduler state is persisted.
    assert lint_fixture("dur_publish_bad.py", module="repro.jobs._fx") == []
    assert lint_fixture("dur_publish_bad.py", module="repro.perf._fx") == []


def test_os_replace_is_left_to_rpr201():
    # The one rename spelling RPR502 ignores: flagging os.replace here
    # too would demand paired noqa comments for every waiver.
    source = (
        '"""Doc."""\n'
        "import os\n"
        "def publish(tmp, final):\n"
        '    """Unfsynced os.replace — RPR201 territory, not RPR502."""\n'
        "    os.replace(tmp, final)\n"
    )
    violations = lint_source("fx.py", source, module=DURABLE_MODULE)
    assert codes_of(violations) == ["RPR201"]


def test_shipped_durable_state_packages_are_clean():
    # The durability layer must satisfy its own publish discipline.
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    result = lint_paths([src / "durable", src / "service"])
    assert [v for v in result.violations if v.code == "RPR502"] == []
