"""RPR4xx telemetry-hygiene rules: guard bypass and core installs."""

from tests.lint.conftest import codes_of

from repro.lint import lint_source


def test_telemetry_fixture_flags_bypass_and_install(lint_fixture):
    violations = lint_fixture("telemetry_bad.py")
    assert codes_of(violations) == ["RPR401", "RPR401", "RPR402"]


def test_bypass_rule_applies_outside_sim_core_too(lint_fixture):
    violations = lint_fixture("telemetry_bad.py", module="repro.jobs._fx")
    assert codes_of(violations) == ["RPR401", "RPR401"]


def test_telemetry_package_itself_is_exempt(lint_fixture):
    assert lint_fixture(
        "telemetry_bad.py", module="repro.telemetry._fx"
    ) == []


def test_guarded_fast_path_is_clean(lint_fixture):
    assert lint_fixture("telemetry_ok.py") == []


def test_installers_allowed_outside_core():
    source = (
        '"""Doc."""\n'
        "from repro.telemetry import configure\n"
        "def enable():\n"
        '    """CLI-side install is the sanctioned place."""\n'
        "    return configure()\n"
    )
    assert lint_source("cli.py", source, module="repro.cli") == []
