"""RPR1xx determinism rules: positive and negative fixtures, scoping."""

from tests.lint.conftest import codes_of

from repro.lint import lint_source


def test_clock_fixture_flags_every_read(lint_fixture):
    violations = lint_fixture("det_clock_bad.py")
    assert codes_of(violations) == ["RPR101"] * 5
    # Each flagged line resolves a different import/alias shape.
    flagged = {v.source.split("(")[0].split("=")[-1].strip()
               for v in violations}
    assert flagged == {
        "clock.time", "clock.monotonic", "perf_counter",
        "datetime.now", "date.today",
    }


def test_clock_negative_fixture_is_clean(lint_fixture):
    assert lint_fixture("det_clock_ok.py") == []


def test_clock_rule_is_package_scoped(lint_fixture):
    """The same source is legal inside repro.jobs / repro.telemetry."""
    for pkg in ("repro.jobs._fixture", "repro.telemetry._fixture", None):
        assert lint_fixture("det_clock_bad.py", module=pkg) == []


def test_rng_fixture_flags_unseeded_and_global(lint_fixture):
    violations = lint_fixture("det_rng_bad.py")
    assert codes_of(violations) == ["RPR102"] * 5


def test_rng_negative_fixture_is_clean(lint_fixture):
    assert lint_fixture("det_rng_ok.py") == []


def test_entropy_and_hash_fixture(lint_fixture):
    violations = lint_fixture("det_entropy_hash_bad.py")
    assert codes_of(violations) == ["RPR103", "RPR103", "RPR104"]


def test_shadowed_hash_is_not_flagged():
    source = (
        '"""Doc."""\n'
        "def hash(x):\n"
        '    """Local hash."""\n'
        "    return 0\n"
        "def use(x):\n"
        '    """Use it."""\n'
        "    return hash(x)\n"
    )
    assert lint_source("mod.py", source, module="repro.core._fx") == []
