"""CLI acceptance: exit codes, JSON report, baseline flags."""

import json

from tests.lint.conftest import FIXTURES

from repro.lint.cli import main


def test_exit_one_on_seeded_violation_fixture(capsys):
    rc = main([str(FIXTURES / "dur_except_bad.py")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "RPR202" in out
    assert "FAIL" in out


def _plant_in_sim_core(tmp_path, fixture_name):
    """Copy a fixture into a src-layout path so package-scoped rules fire."""
    target = tmp_path / "src" / "repro" / "core" / "planted.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        (FIXTURES / fixture_name).read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    return target


def test_determinism_rules_fire_via_cli_on_src_layout(tmp_path, capsys):
    planted = _plant_in_sim_core(tmp_path, "det_clock_bad.py")
    rc = main([str(planted)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "RPR101" in out


def test_exit_zero_on_src_repro_with_committed_baseline(capsys, repo_root):
    rc = main([
        "--baseline",
        "--baseline-file", str(repo_root / "lint-baseline.json"),
        str(repo_root / "src" / "repro"),
    ])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "OK" in out


def test_json_report_shape(capsys):
    rc = main(["--format", "json", str(FIXTURES / "dur_except_bad.py")])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["version"] == 1
    codes = sorted(v["code"] for v in payload["violations"])
    assert codes == ["RPR202", "RPR203", "RPR203"]
    assert payload["summary"]["files_scanned"] == 1


def test_select_restricts_rules(capsys):
    rc = main([
        "--select", "RPR202", str(FIXTURES / "dur_except_bad.py"),
    ])
    out = capsys.readouterr().out
    assert rc == 1
    assert "RPR203" not in out


def test_select_rejects_unknown_code(capsys):
    rc = main(["--select", "RPR999", str(FIXTURES / "dur_except_bad.py")])
    assert rc == 2


def test_update_baseline_refuses_determinism_codes(tmp_path, capsys):
    planted = _plant_in_sim_core(tmp_path, "det_clock_bad.py")
    target = tmp_path / "base.json"
    rc = main([
        "--update-baseline", "--baseline-file", str(target), str(planted),
    ])
    assert rc == 2  # configuration error, never success
    assert not target.exists()


def test_update_baseline_then_gate_is_clean(tmp_path, capsys):
    target = tmp_path / "base.json"
    fixture = str(FIXTURES / "dur_except_bad.py")
    assert main(["--update-baseline", "--baseline-file", str(target),
                 fixture]) == 0
    capsys.readouterr()
    rc = main(["--baseline", "--baseline-file", str(target), fixture])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "baselined" in out


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR101", "RPR201", "RPR301", "RPR401"):
        assert code in out
