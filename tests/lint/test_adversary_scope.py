"""``repro.adversary`` is inside the simulation core's determinism scope.

The adversary suite's whole value rests on reproducibility — an attack
that cannot be replayed cannot be regression-pinned — so its package is
listed in ``SIM_CORE_PACKAGES`` and both the per-file RPR102 rule and
the whole-program RPR601 taint pass must treat it exactly like the
benign workload generators.
"""

from tests.flow.conftest import flow_violations
from tests.lint.conftest import codes_of

from repro.lint import SIM_CORE_PACKAGES


def test_adversary_package_is_sim_core():
    assert "repro.adversary" in SIM_CORE_PACKAGES


def test_unseeded_adversary_generator_flags_rpr102(lint_fixture):
    violations = lint_fixture(
        "adv_rng_bad.py", module="repro.adversary._lint_fixture"
    )
    assert codes_of(violations) == ["RPR102"]
    assert "default_rng" in violations[0].source


def test_unseeded_rng_through_helper_flags_rpr601():
    # No lexical violation in the adversary module: the unseeded draw
    # hides one hop away, outside the core. Only the interprocedural
    # pass can see it — and it must, because the module is sim-core.
    helper = (
        "repro.io.noise",
        '"""Helper outside the core."""\n'
        "import numpy as np\n"
        "def entropy_stream(n):\n"
        '    """Unseeded draw."""\n'
        "    return np.random.default_rng().integers(0, 10, n)\n",
    )
    caller = (
        "repro.adversary.sneaky",
        '"""Adversary module with no lexical violation."""\n'
        "from repro.io.noise import entropy_stream\n"
        "def next_batch(n):\n"
        '    """Leaks entropy through the helper."""\n'
        "    return entropy_stream(n)\n",
    )
    violations = flow_violations(helper, caller, select=("RPR601",))
    assert codes_of(violations) == ["RPR601"]
    assert violations[0].path == "src/repro/adversary/sneaky.py"
