"""Self-check: the shipped source tree satisfies its own linter."""

from repro.lint import Baseline, lint_paths
from repro.lint.baseline import DEFAULT_BASELINE_NAME


def test_src_repro_is_clean_against_committed_baseline(repo_root):
    baseline = Baseline.load(repo_root / DEFAULT_BASELINE_NAME)
    result = lint_paths([repo_root / "src" / "repro"], root=repo_root)
    fresh, _ = baseline.split(result.violations)
    assert fresh == [], "\n".join(v.format() for v in fresh)
    assert result.files_scanned > 30


def test_committed_baseline_contains_no_determinism_entries(repo_root):
    baseline = Baseline.load(repo_root / DEFAULT_BASELINE_NAME)
    assert not any(code.startswith("RPR1") for code in baseline.codes())


def test_scripts_and_tests_are_clean(repo_root):
    baseline = Baseline.load(repo_root / DEFAULT_BASELINE_NAME)
    result = lint_paths(
        [repo_root / "scripts", repo_root / "tests"], root=repo_root
    )
    fresh, _ = baseline.split(result.violations)
    assert fresh == [], "\n".join(v.format() for v in fresh)
