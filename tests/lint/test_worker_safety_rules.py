"""RPR3xx worker-safety rules: pickled values vs parent-side calls."""

from tests.lint.conftest import codes_of


def test_worker_fixture_flags_lambdas_and_locals(lint_fixture):
    violations = lint_fixture("worker_bad.py", module=None)
    assert codes_of(violations) == [
        "RPR301", "RPR301", "RPR302", "RPR302",
    ]
    by_code = {v.code: set() for v in violations}
    for violation in violations:
        by_code[violation.code].add(violation.source)
    assert any("LocalSpec" in s for s in by_code["RPR302"])


def test_worker_negative_fixture_is_clean(lint_fixture):
    """Observer callbacks, parent-side calls, and sort keys are legal."""
    assert lint_fixture("worker_ok.py", module=None) == []


def test_sleep_retry_fixture_flags_hand_rolled_backoff(lint_fixture):
    violations = lint_fixture("sleep_retry_bad.py", module=None)
    assert codes_of(violations) == ["RPR303", "RPR303"]
    assert all("RetryPolicy" in v.message for v in violations)


def test_sleep_retry_negative_fixture_is_clean(lint_fixture):
    """Literal polling, one-shot sleeps, and RetrySession are legal."""
    assert lint_fixture("sleep_retry_ok.py", module=None) == []


def test_sleep_rule_is_silent_inside_supervise(lint_fixture):
    """RetrySession.sleep's own home package is exempt by design."""
    assert (
        lint_fixture("sleep_retry_bad.py", module="repro.supervise.retry")
        == []
    )
