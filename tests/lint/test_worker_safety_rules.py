"""RPR3xx worker-safety rules: pickled values vs parent-side calls."""

from tests.lint.conftest import codes_of


def test_worker_fixture_flags_lambdas_and_locals(lint_fixture):
    violations = lint_fixture("worker_bad.py", module=None)
    assert codes_of(violations) == [
        "RPR301", "RPR301", "RPR302", "RPR302",
    ]
    by_code = {v.code: set() for v in violations}
    for violation in violations:
        by_code[violation.code].add(violation.source)
    assert any("LocalSpec" in s for s in by_code["RPR302"])


def test_worker_negative_fixture_is_clean(lint_fixture):
    """Observer callbacks, parent-side calls, and sort keys are legal."""
    assert lint_fixture("worker_ok.py", module=None) == []
