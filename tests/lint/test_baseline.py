"""Baseline ratchet: split semantics, RPR1xx refusal, round-trip."""

import pytest

from repro.errors import ConfigurationError
from repro.lint import Baseline, Violation


def _v(code, line=3, path="src/repro/jobs/x.py", source="do()"):
    return Violation(
        path=path, line=line, col=0, code=code,
        message="m", source=source,
    )


def test_split_matches_on_fingerprint_not_line_number():
    base = Baseline.from_violations([_v("RPR202", line=10)])
    new, baselined = base.split([_v("RPR202", line=99)])
    assert new == []
    assert len(baselined) == 1


def test_split_counts_are_a_ratchet():
    base = Baseline.from_violations([_v("RPR202")])
    dup = [_v("RPR202", line=4), _v("RPR202", line=9)]
    new, baselined = base.split(dup)
    # One occurrence is grandfathered; the extra one is new debt.
    assert len(new) == 1
    assert len(baselined) == 1


def test_determinism_codes_can_never_be_baselined():
    with pytest.raises(ConfigurationError) as err:
        Baseline.from_violations([_v("RPR101")])
    assert "RPR101" in str(err.value)


def test_round_trip_and_missing_file(tmp_path):
    path = tmp_path / "lint-baseline.json"
    assert len(Baseline.load(path)) == 0
    base = Baseline.from_violations([_v("RPR202"), _v("RPR301")])
    base.dump(path)
    reloaded = Baseline.load(path)
    assert reloaded.codes() == ("RPR202", "RPR301")
    assert len(reloaded) == 2


def test_dump_is_deterministic(tmp_path):
    violations = [_v("RPR301"), _v("RPR202"), _v("RPR203")]
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    Baseline.from_violations(violations).dump(a)
    Baseline.from_violations(list(reversed(violations))).dump(b)
    assert a.read_text() == b.read_text()
