"""RPR5xx service-responsiveness rules: blocking calls in coroutines."""

from tests.lint.conftest import codes_of

#: Pretend module placing a fixture inside the service package.
SERVICE_MODULE = "repro.service._lint_fixture"


def test_blocking_fixture_flags_every_call(lint_fixture):
    violations = lint_fixture("svc_async_bad.py", module=SERVICE_MODULE)
    assert codes_of(violations) == ["RPR501", "RPR501", "RPR501", "RPR501"]


def test_sanctioned_patterns_are_clean(lint_fixture):
    assert lint_fixture("svc_async_ok.py", module=SERVICE_MODULE) == []


def test_rule_is_scoped_to_the_service_package(lint_fixture):
    # The same blocking code is legal outside repro.service — worker
    # bootstrap and the jobs layer sleep synchronously by design.
    assert lint_fixture("svc_async_bad.py", module="repro.jobs._fx") == []
    assert lint_fixture("svc_async_bad.py", module="repro.perf._fx") == []


def test_nested_sync_def_is_the_escape_hatch(lint_fixture):
    source = (
        '"""Doc."""\n'
        "import time\n"
        "async def outer():\n"
        '    """Dispatches the nested helper to an executor."""\n'
        "    def helper():\n"
        '        """Blocking by design; runs off-loop."""\n'
        "        time.sleep(1)\n"
        "    return helper\n"
    )
    from repro.lint import lint_source

    assert lint_source("svc.py", source, module=SERVICE_MODULE) == []


def test_alias_spellings_still_flag(lint_fixture):
    # Regression guard: `from time import sleep as pause` and
    # `import time as t; t.sleep()` must both resolve through the alias
    # map — a bare name-match would miss them.
    violations = lint_fixture(
        "svc_async_alias_bad.py", module=SERVICE_MODULE
    )
    assert codes_of(violations) == ["RPR501", "RPR501"]


def test_aliased_helper_is_subsumed_by_the_flow_pass():
    # One call hop is enough to blind RPR501; RPR602 closes the gap and
    # still sees through the alias spelling inside the helper.
    from repro.flow import Program, run_flow
    from repro.lint.registry import all_flow_rules

    helper = (
        "src/repro/service/helpers.py",
        '"""Aliased blocking helper."""\n'
        "from time import sleep as pause\n"
        "def settle():\n"
        '    """Blocks via the alias."""\n'
        "    pause(0.1)\n",
        "repro.service.helpers",
    )
    caller = (
        "src/repro/service/loop.py",
        '"""Coroutine one hop from the aliased sleep."""\n'
        "from repro.service.helpers import settle\n"
        "async def run():\n"
        '    """No lexical blocking call."""\n'
        "    settle()\n",
        "repro.service.loop",
    )
    rules = [r for r in all_flow_rules() if r.code == "RPR602"]
    result = run_flow(Program.from_sources([helper, caller]), rules=rules)
    assert codes_of(result.violations) == ["RPR602"]
    assert "time.sleep" in result.violations[0].message


def test_service_package_itself_is_clean():
    # The shipped daemon must satisfy its own responsiveness rule.
    from pathlib import Path

    from repro.lint import lint_paths

    root = Path(__file__).resolve().parents[2] / "src" / "repro" / "service"
    result = lint_paths([root])
    assert [v for v in result.violations if v.code.startswith("RPR5")] == []
