"""Shared helpers for the lint-rule tests.

``lint_fixture`` lints one snippet from ``tests/lint/fixtures/`` under a
chosen pretend module name (so sim-core-scoped rules fire on fixture
files that physically live outside ``src/``) and returns the violation
list; ``codes_of`` compresses it for assertions.
"""

from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Pretend module placing a fixture inside the simulation core.
SIM_CORE_MODULE = "repro.perf._lint_fixture"


@pytest.fixture
def repo_root():
    """The repository root (parent of ``src`` and ``tests``)."""
    return REPO_ROOT


@pytest.fixture
def lint_fixture():
    """Lint a fixture file as *module* and return its violations."""

    def _lint(name, module=SIM_CORE_MODULE, rules=None):
        path = FIXTURES / name
        return lint_source(
            path, path.read_text(encoding="utf-8"), module=module,
            rules=rules,
        )

    return _lint


def codes_of(violations):
    """The sorted multiset of codes in *violations*."""
    return sorted(v.code for v in violations)
