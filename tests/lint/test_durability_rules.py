"""RPR2xx durability rules: replace/fsync ordering, except hygiene."""

from tests.lint.conftest import codes_of

from repro.lint import lint_source


def test_replace_fixture_flags_all_three_shapes(lint_fixture):
    violations = lint_fixture("dur_replace_bad.py", module=None)
    assert codes_of(violations) == ["RPR201"] * 3
    lines = {v.line for v in violations}
    # One in each function: missing, too-late, and nested-scope fsync.
    assert len(lines) == 3


def test_replace_negative_fixture_is_clean(lint_fixture):
    assert lint_fixture("dur_replace_ok.py", module=None) == []


def test_except_fixture_flags_bare_and_swallowed(lint_fixture):
    violations = lint_fixture("dur_except_bad.py", module=None)
    assert codes_of(violations) == ["RPR202", "RPR203", "RPR203"]


def test_except_negative_fixture_is_clean(lint_fixture):
    assert lint_fixture("dur_except_ok.py", module=None) == []


def test_sink_isolation_modules_are_allowlisted():
    source = (
        '"""Doc."""\n'
        "def drop(sink, event):\n"
        '    """Sink isolation swallows by design."""\n'
        "    try:\n"
        "        sink(event)\n"
        "    except Exception:\n"
        "        return None\n"
    )
    flagged = lint_source("events.py", source, module="repro.jobs._fx")
    assert codes_of(flagged) == ["RPR203"]
    allowed = lint_source("events.py", source, module="repro.jobs.events")
    assert allowed == []
