"""Metrics registry semantics: instruments, determinism, the event sink."""

import pytest

from repro.errors import ConfigurationError
from repro.jobs.events import EventLog
from repro.telemetry.metrics import (
    DURATION_BUCKETS,
    EventCounterSink,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        """Counters only go up."""
        registry = MetricsRegistry()
        c = registry.counter("hits")
        c.inc()
        c.inc(2.5)
        assert registry.snapshot()["hits"] == {"type": "counter", "value": 3.5}
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        """Gauges record the latest value."""
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(10)
        g.set(4)
        assert registry.snapshot()["depth"] == {"type": "gauge", "value": 4.0}

    def test_histogram_cumulative_buckets(self):
        """Observations land in Prometheus-style cumulative buckets."""
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(105.0)
        assert snap["buckets"] == [["1", 1], ["2", 2], ["4", 3], ["+Inf", 4]]

    def test_histogram_rejects_bad_bounds_and_nan(self):
        """Unordered/empty bounds and NaN observations are errors."""
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(2.0, 1.0))
        h = Histogram("h", bounds=(1.0,))
        with pytest.raises(ConfigurationError):
            h.observe(float("nan"))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        """Re-requesting a name returns the registered instrument."""
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert len(registry) == 1
        assert "c" in registry

    def test_type_mismatch_is_an_error(self):
        """One name cannot be a counter and a gauge."""
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_histogram_bounds_mismatch_is_an_error(self):
        """Silent re-bucketing would break snapshot determinism."""
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_is_sorted_and_detached(self):
        """Snapshots iterate in name order and don't track later updates."""
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("aardvark").inc()
        snap = registry.snapshot()
        assert list(snap) == ["aardvark", "zebra"]
        registry.counter("zebra").inc()
        assert snap["zebra"]["value"] == 1


class TestEventCounterSink:
    def test_mirrors_event_stream_into_registry(self):
        """Each event kind gets a counter; durations feed histograms."""
        registry = MetricsRegistry()
        log = EventLog()
        log.add_sink(EventCounterSink(registry))
        log.emit("batch_start")
        log.emit("submitted", key="k")
        log.emit("completed", key="k", wall_time=0.25)
        log.emit("batch_end", wall_time=0.5)
        snap = registry.snapshot()
        assert snap["jobs_events_submitted_total"]["value"] == 1
        assert snap["jobs_events_completed_total"]["value"] == 1
        assert snap["jobs_job_seconds"]["count"] == 1
        assert snap["jobs_batch_seconds"]["count"] == 1
        # Rolling counters stay authoritative alongside the mirror.
        assert log.counters.executed == 1

    def test_duration_buckets_are_the_shared_default(self):
        """The sink's histograms use the fixed DURATION_BUCKETS bounds."""
        registry = MetricsRegistry()
        sink = EventCounterSink(registry)
        assert sink._job_seconds.bounds == tuple(DURATION_BUCKETS)
