"""Tests for the :mod:`repro.telemetry` observability subsystem."""
