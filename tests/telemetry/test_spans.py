"""Span/Tracer semantics: nesting, threads, leak handling, aggregates."""

import threading

from repro.telemetry.spans import Tracer


def by_name(spans):
    """Index a span list by name (names unique in these tests)."""
    return {s.name: s for s in spans}


class TestNesting:
    def test_children_link_to_enclosing_span(self):
        """begin() under an open span records that span as the parent."""
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = by_name(tracer.drain())
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id

    def test_siblings_share_a_parent(self):
        """Two sequential children of one span get the same parent id."""
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        spans = by_name(tracer.drain())
        assert spans["first"].parent_id == spans["parent"].span_id
        assert spans["second"].parent_id == spans["parent"].span_id

    def test_ending_a_span_closes_leaked_descendants(self):
        """end(outer) pops and records descendants left open (fail paths)."""
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("leaked")
        tracer.end(outer)
        spans = by_name(tracer.drain())
        assert set(spans) == {"outer", "leaked"}
        assert spans["leaked"].duration is not None

    def test_durations_and_order(self):
        """Finished spans carry non-negative durations, inner first."""
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = tracer.drain()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert all(s.duration >= 0.0 for s in spans)


class TestThreads:
    def test_thread_stacks_are_independent(self):
        """A thread's spans root at None, not under another thread's open span."""
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("threaded") as s:
                seen["parent"] = s.parent_id
                seen["tid"] = s.tid

        with tracer.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["parent"] is None
        assert seen["tid"] != threading.get_ident()


class TestAggregates:
    def test_add_complete_parents_under_open_span(self):
        """Synthetic spans adopt the currently open span as parent."""
        tracer = Tracer()
        with tracer.span("run") as run:
            s = tracer.add_complete("phase.x", start=0.25, duration=0.5, ops=7)
        assert s.parent_id == run.span_id
        assert (s.start, s.duration, s.attrs["ops"]) == (0.25, 0.5, 7)

    def test_drain_clears(self):
        """drain() hands off and empties the finished list."""
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_span_ids_are_unique(self):
        """Every span gets a distinct id."""
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.drain()]
        assert len(set(ids)) == len(ids)
