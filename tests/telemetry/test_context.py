"""Context activation, scoping, and worker-process propagation."""

import os

import pytest

from repro.telemetry import context as ctx
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer


@pytest.fixture(autouse=True)
def clean_context():
    """Every test starts and ends in the disabled state."""
    ctx.deactivate()
    yield
    ctx.deactivate()


class TestActivation:
    def test_disabled_by_default(self):
        """current() is None until somebody configures telemetry."""
        assert ctx.current() is None

    def test_configure_then_deactivate(self):
        """configure installs the context; deactivate removes it."""
        installed = ctx.configure(tracer=Tracer(), metrics=MetricsRegistry())
        assert ctx.current() is installed
        ctx.deactivate()
        assert ctx.current() is None

    def test_use_restores_previous_state(self):
        """use() scopes a context and restores what was active before."""
        outer = ctx.configure(metrics=MetricsRegistry())
        scoped = ctx.TelemetryContext(metrics=MetricsRegistry())
        with ctx.use(scoped):
            assert ctx.current() is scoped
        assert ctx.current() is outer


class TestEnvPropagation:
    def test_init_from_env_unset_is_noop(self):
        """Without REPRO_TRACE the worker stays untraced."""
        assert ctx.init_from_env(environ={}) is None
        assert ctx.current() is None

    def test_init_from_env_activates_autoflush_context(self, tmp_path):
        """REPRO_TRACE=path builds a tracing context flushed to parts."""
        trace = str(tmp_path / "trace.json")
        installed = ctx.init_from_env(environ={ctx.TRACE_ENV_VAR: trace})
        assert ctx.current() is installed
        assert installed.autoflush
        assert installed.trace_path == trace
        assert installed.tracer is not None and installed.metrics is not None

    def test_init_from_env_respects_existing_context(self):
        """An already-active context wins over the environment."""
        installed = ctx.configure(metrics=MetricsRegistry())
        again = ctx.init_from_env(environ={ctx.TRACE_ENV_VAR: "elsewhere"})
        assert again is installed


class TestFlushPart:
    def test_flush_writes_a_pid_part_file(self, tmp_path):
        """flush_part appends drained spans to <trace>.part-<pid>."""
        trace = tmp_path / "trace.json"
        context = ctx.TelemetryContext(tracer=Tracer(), trace_path=str(trace))
        with context.tracer.span("work"):
            pass
        part = context.flush_part()
        assert part == f"{trace}.part-{os.getpid()}"
        assert os.path.exists(part)
        # Nothing left to flush: the second call is a no-op.
        assert context.flush_part() is None

    def test_flush_without_destination_is_noop(self):
        """No trace path means nothing to write."""
        context = ctx.TelemetryContext(tracer=Tracer())
        with context.tracer.span("work"):
            pass
        assert context.flush_part() is None
