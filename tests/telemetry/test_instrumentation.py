"""End-to-end instrumentation acceptance.

The load-bearing claims from the observability contract
(docs/observability.md):

* enabling telemetry does not change a run's simulated results;
* the trace nests orchestrator → job → simulator → phase via explicit
  parent links;
* a fixed-seed run produces a byte-identical snapshot of every simulated
  metric — pinned here, histogram included;
* the CLI flags emit a valid Chrome trace-event JSON file and a
  Prometheus metrics file.
"""

import json

import pytest

from repro.jobs import Orchestrator, make_run_spec
from repro.jobs.spec import WorkloadSpec
from repro.perf.machine import core2duo
from repro.telemetry import MetricsRegistry, TelemetryContext, Tracer, use
from repro.telemetry.profiler import PhaseProfile


def tiny_spec():
    """The pinned fixed-seed measurement spec."""
    return make_run_spec(
        core2duo(),
        WorkloadSpec(
            kind="spec", names=("mcf", "povray"), instructions=100_000
        ),
        mapping=[[0], [1]],
        seed=0,
    )


def traced_run():
    """Run the tiny spec under telemetry; return (outcome, spans, snapshot)."""
    tracer, metrics = Tracer(), MetricsRegistry()
    with use(TelemetryContext(tracer=tracer, metrics=metrics)):
        outcome = Orchestrator(jobs=1).run_spec(tiny_spec())
    return outcome, tracer.drain(), metrics.snapshot()


class TestNeutrality:
    def test_enabled_run_matches_disabled_run(self):
        """Telemetry observes the simulation; it must not perturb it."""
        disabled = Orchestrator(jobs=1).run_spec(tiny_spec())
        enabled, _, _ = traced_run()
        assert enabled.to_dict() == disabled.to_dict()


class TestSpanTree:
    def test_orchestrator_job_simulator_phase_nesting(self):
        """The span tree links run_specs → execute → spec → sim → phases."""
        _, spans, _ = traced_run()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, span)
        chain = [
            "orchestrator.run_specs",
            "job.execute",
            "job.execute_spec",
            "simulator.run",
        ]
        for parent, child in zip(chain, chain[1:]):
            assert by_name[child].parent_id == by_name[parent].span_id, (
                f"{child} should nest under {parent}"
            )
        assert by_name["orchestrator.run_specs"].parent_id is None
        sim_id = by_name["simulator.run"].span_id
        phases = [s for s in spans if s.name.startswith("phase.")]
        assert phases, "simulator emitted no phase spans"
        assert all(p.parent_id == sim_id for p in phases)


class TestPinnedSnapshot:
    """Byte-identical simulated metrics for the fixed-seed tiny spec.

    Wall-clock metrics (``*_seconds*``, ``*_per_second``) are excluded —
    everything else is a pure function of the spec and must reproduce
    exactly, histogram buckets included.
    """

    def test_snapshot_pins(self):
        """The simulated quantities match their pinned values exactly."""
        _, _, snap = traced_run()
        assert snap["sim_runs_total"]["value"] == 1
        assert snap["sim_batches_total"]["value"] == 28
        assert snap["sim_l2_accesses_total"]["value"] == 5500
        assert snap["sim_phase_interleave_ops_total"]["value"] == 28
        assert snap["sim_phase_l2_access_ops_total"]["value"] == 5500
        assert snap["sim_phase_timing_ops_total"]["value"] == 28
        assert snap["sim_wall_cycles"]["value"] == pytest.approx(
            956962.5123197634, rel=1e-9
        )
        for kind in ("submitted", "started", "completed", "batch_end"):
            assert snap[f"jobs_events_{kind}_total"]["value"] == 1
        assert snap["sim_l2_batch_misses"] == {
            "type": "histogram",
            "count": 28,
            "sum": 5086.0,
            "buckets": [
                ["0", 2], ["1", 2], ["2", 2], ["4", 2], ["8", 2],
                ["16", 2], ["32", 2], ["64", 2], ["128", 10],
                ["256", 28], ["+Inf", 28],
            ],
        }

    def test_two_runs_identical_for_simulated_metrics(self):
        """Determinism holds for the whole simulated subset, not just pins."""
        _, _, first = traced_run()
        _, _, second = traced_run()
        simulated = [
            name for name in first
            if "seconds" not in name and "per_second" not in name
        ]
        assert simulated, "no simulated metrics in snapshot"
        for name in simulated:
            assert first[name] == second[name], name


class TestPhaseProfile:
    def test_unknown_phase_is_an_error(self):
        """Typo'd phase names must not vanish silently."""
        profile = PhaseProfile(phases=("a",))
        with pytest.raises(KeyError):
            profile.add("b", 1.0)

    def test_emit_spans_lays_phases_back_to_back(self):
        """Aggregate spans tile the parent from its start."""
        tracer = Tracer()
        profile = PhaseProfile(phases=("a", "b", "c"))
        profile.add("a", 1.0, ops=2)
        profile.add("c", 0.5, ops=1)
        with tracer.span("run"):
            profile.emit_spans(tracer, start=10.0)
        spans = {s.name: s for s in tracer.drain()}
        assert "phase.b" not in spans  # zero ops: skipped
        assert spans["phase.a"].start == 10.0
        assert spans["phase.c"].start == 11.0
        assert profile.total_seconds() == pytest.approx(1.5)

    def test_emit_metrics_folds_totals(self):
        """Per-phase seconds/ops land as counters."""
        registry = MetricsRegistry()
        profile = PhaseProfile(phases=("a", "b"))
        profile.add("a", 0.25, ops=4)
        profile.emit_metrics(registry)
        snap = registry.snapshot()
        assert snap["sim_phase_a_seconds_total"]["value"] == 0.25
        assert snap["sim_phase_a_ops_total"]["value"] == 4
        assert "sim_phase_b_ops_total" not in snap


class TestCliFlags:
    def test_trace_and_metrics_out(self, tmp_path, capsys):
        """--trace-out writes nested Chrome JSON; --metrics-out Prometheus."""
        from repro.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        code = main([
            "mix", "mcf", "povray",
            "--instructions", "100000", "--seed", "3",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ])
        assert code == 0
        events = json.loads(trace.read_text())
        assert isinstance(events, list) and events
        names = {e["name"] for e in events}
        assert {
            "orchestrator.run_specs", "job.execute",
            "job.execute_spec", "simulator.run",
        } <= names
        by_id = {e["args"]["span_id"]: e for e in events}
        sims = [e for e in events if e["name"] == "simulator.run"]
        for sim in sims:  # every simulator run hangs off a job span
            parent = by_id[sim["args"]["parent_id"]]
            assert parent["name"] == "job.execute_spec"
        assert metrics.read_text().startswith("# TYPE")
        out = capsys.readouterr().out
        assert "telemetry metrics" in out

    def test_disabled_flags_leave_telemetry_inactive(self, capsys):
        """Without the flags the command runs with telemetry off."""
        from repro.cli import main
        from repro.telemetry import current

        code = main([
            "mix", "mcf", "povray",
            "--instructions", "100000", "--seed", "3",
        ])
        assert code == 0
        assert current() is None
        assert "telemetry metrics" not in capsys.readouterr().out
