"""Exporter formats: Chrome trace JSON, part merging, Prometheus text."""

import json

from repro.telemetry.exporters import (
    append_trace_part,
    chrome_trace_events,
    merged_trace_events,
    metrics_json,
    prometheus_text,
    write_chrome_trace,
    write_merged_chrome_trace,
    write_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer


def make_spans():
    """A two-level finished span tree."""
    tracer = Tracer()
    with tracer.span("outer", mixes=3):
        with tracer.span("inner"):
            pass
    return tracer.drain()


class TestChromeTrace:
    def test_events_carry_ids_and_microseconds(self):
        """Events are complete-phase with explicit span/parent links."""
        spans = make_spans()
        events = {e["name"]: e for e in chrome_trace_events(spans)}
        outer, inner = events["outer"], events["inner"]
        assert outer["ph"] == "X" and inner["ph"] == "X"
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert "parent_id" not in outer["args"]
        assert outer["args"]["mixes"] == 3
        assert outer["dur"] >= inner["dur"] >= 0.0

    def test_written_file_is_a_valid_json_array(self, tmp_path):
        """The file loads as one JSON array (what Perfetto ingests)."""
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, make_spans())
        events = json.loads(path.read_text())
        assert isinstance(events, list) and len(events) == count == 2


class TestPartMerging:
    def test_parts_fold_in_and_are_consumed(self, tmp_path):
        """Worker part files merge into the trace and are removed."""
        trace = tmp_path / "trace.json"
        append_trace_part(f"{trace}.part-111", make_spans())
        events = merged_trace_events(make_spans(), trace)
        assert len(events) == 4
        assert not list(tmp_path.glob("trace.json.part-*"))

    def test_torn_part_lines_are_skipped(self, tmp_path):
        """A worker killed mid-write must not invalidate the trace."""
        trace = tmp_path / "trace.json"
        part = tmp_path / "trace.json.part-222"
        append_trace_part(part, make_spans())
        with open(part, "a", encoding="utf-8") as fh:
            fh.write('{"name": "torn')
        events = merged_trace_events([], trace)
        # Merge orders by (pid, ts): outer starts first. The torn line
        # is dropped, the two intact events survive.
        assert [e["name"] for e in events] == ["outer", "inner"]

    def test_write_merged_produces_valid_json(self, tmp_path):
        """The merged write is itself a valid Chrome trace array."""
        trace = tmp_path / "trace.json"
        append_trace_part(f"{trace}.part-9", make_spans())
        count = write_merged_chrome_trace(trace, make_spans())
        assert len(json.loads(trace.read_text())) == count == 4


class TestMetricsFormats:
    def make_snapshot(self):
        """A snapshot with one of each instrument type."""
        registry = MetricsRegistry()
        registry.counter("runs_total").inc(3)
        registry.gauge("depth").set(1.5)
        registry.histogram("lat", bounds=(1.0, 2.0)).observe(0.5)
        return registry.snapshot()

    def test_prometheus_text_format(self, tmp_path):
        """TYPE lines, cumulative buckets, _sum and _count series."""
        text = prometheus_text(self.make_snapshot())
        lines = text.splitlines()
        assert "# TYPE runs_total counter" in lines
        assert "runs_total 3" in lines
        assert "depth 1.5" in lines
        assert 'lat_bucket{le="1"} 1' in lines
        assert 'lat_bucket{le="+Inf"} 1' in lines
        assert "lat_sum 0.5" in lines
        assert "lat_count 1" in lines
        path = tmp_path / "metrics.prom"
        write_prometheus(path, self.make_snapshot())
        assert path.read_text() == text

    def test_metrics_json_roundtrips(self):
        """The JSON export parses back to the snapshot."""
        snap = self.make_snapshot()
        assert json.loads(metrics_json(snap)) == snap
