"""Tests for mappings and balanced-mapping enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.sched.affinity import Mapping, balanced_mappings, canonical_mapping


class TestMapping:
    def test_core_of(self):
        m = canonical_mapping([[1, 2], [3]])
        assert m.core_of(3) != m.core_of(1)
        assert m.core_of(1) == m.core_of(2)

    def test_unknown_task(self):
        m = canonical_mapping([[1], [2]])
        with pytest.raises(AllocationError):
            m.core_of(9)

    def test_duplicate_rejected(self):
        with pytest.raises(AllocationError):
            Mapping.from_groups([[1, 2], [2, 3]])

    def test_canonical_is_core_permutation_invariant(self):
        a = canonical_mapping([[1, 2], [3, 4]])
        b = canonical_mapping([[3, 4], [1, 2]])
        assert a == b
        assert hash(a) == hash(b)

    def test_task_ids(self):
        m = canonical_mapping([[5, 1], [9]])
        assert m.task_ids == frozenset({1, 5, 9})

    def test_str(self):
        m = canonical_mapping([[2, 1], [3]])
        assert str(m) == "{1,2} | {3}"

    def test_num_cores(self):
        assert canonical_mapping([[1], [2], []]).num_cores == 3


class TestBalancedMappings:
    def test_four_on_two_gives_table1_shape(self):
        # Paper Table 1: "There are only three possible mappings for 4
        # processes running on a dual-core".
        maps = balanced_mappings([0, 1, 2, 3], 2)
        assert len(maps) == 3
        group_sets = {
            frozenset(frozenset(g) for g in m.groups) for m in maps
        }
        assert frozenset({frozenset({0, 1}), frozenset({2, 3})}) in group_sets
        assert frozenset({frozenset({0, 2}), frozenset({1, 3})}) in group_sets
        assert frozenset({frozenset({0, 3}), frozenset({1, 2})}) in group_sets

    def test_two_on_two(self):
        maps = balanced_mappings([7, 9], 2)
        assert len(maps) == 1
        assert maps[0] == canonical_mapping([[7], [9]])

    def test_single_core(self):
        maps = balanced_mappings([1, 2, 3], 1)
        assert len(maps) == 1
        assert maps[0].groups[0] == frozenset({1, 2, 3})

    def test_odd_tasks_use_ceil_groups(self):
        maps = balanced_mappings([0, 1, 2], 2)
        for m in maps:
            sizes = sorted(len(g) for g in m.groups)
            assert sizes == [1, 2]
        assert len(maps) == 3

    def test_no_duplicates(self):
        maps = balanced_mappings(list(range(6)), 2)
        assert len(maps) == len(set(maps))
        assert len(maps) == 10  # C(6,3)/2

    def test_empty_tasks(self):
        maps = balanced_mappings([], 2)
        assert len(maps) == 1

    def test_duplicate_ids_rejected(self):
        with pytest.raises(AllocationError):
            balanced_mappings([1, 1], 2)

    def test_eight_on_four(self):
        maps = balanced_mappings(list(range(8)), 4)
        # 8!/(2!^4 * 4!) = 105 distinct balanced placements.
        assert len(maps) == 105

    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_mapping_covers_all_tasks(self, n_tasks, n_cores):
        ids = list(range(n_tasks))
        for m in balanced_mappings(ids, n_cores):
            assert m.task_ids == frozenset(ids)
            sizes = [len(g) for g in m.groups if g]
            if sizes:
                assert max(sizes) - min(sizes) <= 1
