"""Tests for SimTask / SimProcess."""

import pytest

from repro.errors import SchedulingError, WorkloadError
from repro.sched.process import (
    INCARNATION_SLICES,
    INCARNATION_STRIDE_BLOCKS,
    SimProcess,
    SimTask,
    process_from_parsec,
    task_from_profile,
)
from repro.workloads.parsec import parsec_profile
from repro.workloads.patterns import StridedGenerator
from repro.workloads.spec import spec_profile


def make_task(total=100, base=0, **kw):
    defaults = dict(
        name="t",
        generator=StridedGenerator(50, 1, base_block=base, seed=0),
        total_accesses=total,
        accesses_per_kinstr=10.0,
    )
    defaults.update(kw)
    return SimTask(**defaults)


class TestSimTask:
    def test_unique_tids(self):
        assert make_task().tid != make_task().tid

    def test_instructions_for(self):
        task = make_task(accesses_per_kinstr=20.0)
        assert task.instructions_for(100) == pytest.approx(5000.0)

    def test_advance_accumulates(self):
        task = make_task(total=100)
        done = task.advance(40, 1000.0)
        assert not done
        assert task.remaining_accesses == 60
        assert task.user_cycles == 1000.0

    def test_completion_and_restart(self):
        task = make_task(total=100)
        task.advance(100, 5000.0)
        assert task.completed_once
        assert task.completions == 1
        assert task.first_completion_cycles == 5000.0
        assert task.accesses_done == 0  # restarted

    def test_first_completion_sticky(self):
        task = make_task(total=10)
        task.advance(10, 100.0)
        task.advance(10, 900.0)
        assert task.first_completion_cycles == 100.0
        assert task.completions == 2

    def test_restart_shifts_address_slice(self):
        task = make_task(total=10, base=1000)
        first = task.generator.next_batch(5)
        task.generator.reset()
        task.advance(10, 1.0)
        second = task.generator.next_batch(5)
        assert (second - first == INCARNATION_STRIDE_BLOCKS).all()

    def test_incarnations_cycle(self):
        task = make_task(total=10, base=0)
        for _ in range(INCARNATION_SLICES):
            task.advance(10, 1.0)
        # After a full cycle the slice wraps to the original base.
        assert task.generator.base_block == 0

    def test_overrun_rejected(self):
        task = make_task(total=10)
        with pytest.raises(SchedulingError):
            task.advance(11, 1.0)

    def test_reset_runtime(self):
        task = make_task(total=10, base=7)
        task.advance(10, 1.0)
        task.context_switches = 3
        task.reset_runtime()
        assert task.completions == 0
        assert task.first_completion_cycles is None
        assert task.generator.base_block == 7
        assert task.context_switches == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_task(total=0)
        with pytest.raises(WorkloadError):
            make_task(accesses_per_kinstr=0.0)
        with pytest.raises(WorkloadError):
            make_task(mlp=0.5)


class TestSimProcess:
    def test_groups_tasks_under_one_pid(self):
        tasks = [make_task(), make_task()]
        proc = SimProcess(name="app", tasks=tasks)
        assert tasks[0].process_id == tasks[1].process_id == proc.process_id

    def test_completed_once_requires_all_threads(self):
        tasks = [make_task(total=10), make_task(total=10)]
        proc = SimProcess(name="app", tasks=tasks)
        tasks[0].advance(10, 1.0)
        assert not proc.completed_once
        tasks[1].advance(10, 2.0)
        assert proc.completed_once

    def test_process_user_time_is_slowest_thread(self):
        tasks = [make_task(total=10), make_task(total=10)]
        proc = SimProcess(name="app", tasks=tasks)
        tasks[0].advance(10, 100.0)
        tasks[1].advance(10, 300.0)
        assert proc.user_cycles_first_completion == 300.0

    def test_incomplete_process_time_is_none(self):
        proc = SimProcess(name="app", tasks=[make_task(total=10)])
        assert proc.user_cycles_first_completion is None

    def test_empty_process_rejected(self):
        with pytest.raises(SchedulingError):
            SimProcess(name="app", tasks=[])


class TestFactories:
    def test_task_from_profile(self):
        profile = spec_profile("gobmk")
        task = task_from_profile(profile, instructions=1_000_000, seed=1)
        assert task.name == "gobmk"
        assert task.total_accesses == 5000
        assert task.mlp == profile.mlp

    def test_process_from_parsec(self):
        profile = parsec_profile("ferret")
        proc = process_from_parsec(profile, instructions_per_thread=100_000, seed=1)
        assert len(proc.tasks) == 4
        assert {t.name for t in proc.tasks} == {f"ferret.t{i}" for i in range(4)}
        pids = {t.process_id for t in proc.tasks}
        assert len(pids) == 1

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            task_from_profile(spec_profile("gobmk"), instructions=0)
