"""Tests for the OS scheduling model and the syscall boundary."""

import numpy as np
import pytest

from repro.core.signature import SignatureConfig, SignatureUnit
from repro.errors import SchedulingError
from repro.sched.affinity import canonical_mapping
from repro.sched.os_model import OSScheduler, SchedulerConfig
from repro.sched.process import SimTask
from repro.sched.syscall import SyscallInterface
from repro.workloads.patterns import StridedGenerator


def make_task(name="t"):
    return SimTask(
        name=name,
        generator=StridedGenerator(50, 1, seed=0),
        total_accesses=1000,
        accesses_per_kinstr=10.0,
    )


def make_sched(cores=2, timeslice=100.0, signature=False, smoothing=1.0):
    sig = None
    if signature:
        sig = SignatureUnit(SignatureConfig(num_cores=cores, num_sets=16, ways=2))
    return (
        OSScheduler(
            SchedulerConfig(
                num_cores=cores,
                timeslice_cycles=timeslice,
                context_smoothing=smoothing,
            ),
            signature_unit=sig,
        ),
        sig,
    )


class TestPlacement:
    def test_explicit_core(self):
        sched, _ = make_sched()
        t = make_task()
        sched.add_task(t, core=1)
        assert sched.current_task(1) is t
        assert sched.current_task(0) is None

    def test_least_loaded_default(self):
        sched, _ = make_sched()
        sched.add_task(make_task(), core=0)
        t2 = make_task()
        sched.add_task(t2)
        assert sched.core_of(t2.tid) == 1

    def test_duplicate_add_rejected(self):
        sched, _ = make_sched()
        t = make_task()
        sched.add_task(t, 0)
        with pytest.raises(SchedulingError):
            sched.add_task(t, 1)

    def test_runnable_cores(self):
        sched, _ = make_sched()
        assert sched.runnable_cores() == []
        sched.add_task(make_task(), 1)
        assert sched.runnable_cores() == [1]

    def test_invalid_core(self):
        sched, _ = make_sched()
        with pytest.raises(SchedulingError):
            sched.add_task(make_task(), 5)


class TestQuantum:
    def test_charge_until_expiry(self):
        sched, _ = make_sched(timeslice=100.0)
        sched.add_task(make_task(), 0)
        assert not sched.charge(0, 60.0)
        assert sched.charge(0, 60.0)

    def test_context_switch_rotates(self):
        sched, _ = make_sched()
        a, b = make_task("a"), make_task("b")
        sched.add_task(a, 0)
        sched.add_task(b, 0)
        assert sched.current_task(0) is a
        sched.context_switch(0)
        assert sched.current_task(0) is b
        sched.context_switch(0)
        assert sched.current_task(0) is a

    def test_switch_resets_quantum(self):
        sched, _ = make_sched(timeslice=100.0)
        sched.add_task(make_task(), 0)
        sched.charge(0, 150.0)
        sched.context_switch(0)
        assert not sched.charge(0, 60.0)

    def test_switch_on_idle_core(self):
        sched, _ = make_sched()
        assert sched.context_switch(0) is None

    def test_switch_counts(self):
        sched, _ = make_sched()
        t = make_task()
        sched.add_task(t, 0)
        sched.context_switch(0)
        assert t.context_switches == 1
        assert sched.total_context_switches == 1


class TestAffinity:
    def test_queued_task_migrates_immediately(self):
        sched, _ = make_sched()
        a, b = make_task("a"), make_task("b")
        sched.add_task(a, 0)
        sched.add_task(b, 0)  # b queued behind a
        sched.set_affinity(b.tid, 1)
        assert sched.core_of(b.tid) == 1
        assert sched.total_migrations == 1

    def test_running_task_migrates_at_switch(self):
        sched, _ = make_sched()
        a = make_task("a")
        sched.add_task(a, 0)
        sched.set_affinity(a.tid, 1)
        assert sched.core_of(a.tid) == 0  # deferred
        sched.context_switch(0)
        assert sched.core_of(a.tid) == 1

    def test_same_core_affinity_noop(self):
        sched, _ = make_sched()
        a = make_task()
        sched.add_task(a, 0)
        sched.set_affinity(a.tid, 0)
        assert sched.total_migrations == 0

    def test_pending_cancelled_by_same_core(self):
        sched, _ = make_sched()
        a = make_task()
        sched.add_task(a, 0)
        sched.set_affinity(a.tid, 1)
        sched.set_affinity(a.tid, 0)  # cancel
        sched.context_switch(0)
        assert sched.core_of(a.tid) == 0

    def test_apply_mapping(self):
        sched, _ = make_sched()
        a, b, c = make_task("a"), make_task("b"), make_task("c")
        for t, core in [(a, 0), (b, 0), (c, 1)]:
            sched.add_task(t, core)
        mapping = canonical_mapping([[a.tid, c.tid], [b.tid]])
        sched.apply_mapping(mapping)
        sched.context_switch(0)
        sched.context_switch(1)
        placement = {t.tid: sched.core_of(t.tid) for t in [a, b, c]}
        assert placement[a.tid] == placement[c.tid]
        assert placement[b.tid] != placement[a.tid]

    def test_unknown_task(self):
        sched, _ = make_sched()
        with pytest.raises(SchedulingError):
            sched.set_affinity(12345, 0)

    def test_mapping_too_many_cores(self):
        sched, _ = make_sched(cores=2)
        a = make_task()
        sched.add_task(a, 0)
        with pytest.raises(SchedulingError):
            sched.apply_mapping(canonical_mapping([[a.tid], [], []]))


class TestSignatureIntegration:
    def test_switch_updates_context(self):
        sched, sig = make_sched(signature=True)
        t = make_task()
        sched.add_task(t, 0)
        sig.record_fill_batch(0, np.array([1, 2, 3]))
        sample = sched.context_switch(0)
        assert sample is not None
        ctx = sched.contexts[t.tid]
        assert ctx.valid
        assert ctx.occupancy == 3
        assert ctx.last_core == 0

    def test_mismatched_signature_cores_rejected(self):
        sig = SignatureUnit(SignatureConfig(num_cores=4, num_sets=16, ways=2))
        with pytest.raises(SchedulingError):
            OSScheduler(SchedulerConfig(num_cores=2), signature_unit=sig)

    def test_smoothing_propagates(self):
        sched, sig = make_sched(signature=True, smoothing=0.5)
        t = make_task()
        sched.add_task(t, 0)
        assert sched.contexts[t.tid].smoothing == 0.5

    def test_invalid_smoothing_config(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(num_cores=2, context_smoothing=0.0)


class TestSyscallInterface:
    def test_query_tasks(self):
        sched, sig = make_sched(signature=True)
        a, b = make_task("a"), make_task("b")
        sched.add_task(a, 0)
        sched.add_task(b, 1)
        sys_if = SyscallInterface(sched)
        views = sys_if.query_tasks()
        assert [v.name for v in views] == ["a", "b"]
        assert not views[0].valid

    def test_views_are_snapshots(self):
        sched, sig = make_sched(signature=True)
        t = make_task()
        sched.add_task(t, 0)
        sig.record_fill_batch(0, np.array([1]))
        sched.context_switch(0)
        sys_if = SyscallInterface(sched)
        view = sys_if.query_tasks()[0]
        view.symbiosis[0] = -99  # mutating the copy...
        assert sched.contexts[t.tid].symbiosis[0] != -99

    def test_current_placement_and_set_affinity(self):
        sched, _ = make_sched()
        a, b = make_task("a"), make_task("b")
        sched.add_task(a, 0)
        sched.add_task(b, 0)
        sys_if = SyscallInterface(sched)
        assert sys_if.current_placement() == {a.tid: 0, b.tid: 0}
        sys_if.set_affinity(b.tid, 1)
        assert sys_if.current_placement()[b.tid] == 1

    def test_interference_with_core(self):
        sched, sig = make_sched(signature=True)
        t = make_task()
        sched.add_task(t, 0)
        sig.record_fill_batch(0, np.array([1, 2]))
        sched.context_switch(0)
        view = SyscallInterface(sched).query_tasks()[0]
        # Own-core symbiosis is 0 (RBV == CF) -> clamped interference 1.0.
        assert view.interference_with_core(0) == 1.0

    def test_num_cores(self):
        sched, _ = make_sched(cores=3)
        assert SyscallInterface(sched).num_cores == 3
