"""Tests for set-sampling (paper Section 5.4)."""

import numpy as np
import pytest

from repro.core.sampling import SetSampler


class TestSetSampler:
    def test_no_sampling_tracks_all(self):
        s = SetSampler(64, 1)
        assert s.rate == 1.0
        assert s.sampled_sets == 64
        assert s.mask(np.arange(100)).all()

    def test_quarter_sampling(self):
        s = SetSampler(64, 4)
        assert s.rate == 0.25
        assert s.sampled_sets == 16
        blocks = np.arange(256)
        mask = s.mask(blocks)
        assert mask.sum() == 64  # one in four sets
        # Exactly those whose set index is 0 mod 4.
        assert ((blocks[mask] & 63) % 4 == 0).all()

    def test_scalar_matches_vector(self):
        s = SetSampler(64, 4)
        blocks = np.arange(200)
        mask = s.mask(blocks)
        for b, m in zip(blocks, mask):
            assert s.tracks_block(int(b)) == bool(m)

    def test_set_of(self):
        s = SetSampler(16, 1)
        assert s.set_of(np.array([0, 15, 16, 33])).tolist() == [0, 15, 0, 1]

    def test_compress_set(self):
        s = SetSampler(64, 4)
        # Sampled sets 0,4,8,... compress to 0,1,2,...
        assert s.compress_set(np.array([0, 4, 8, 60])).tolist() == [0, 1, 2, 15]

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            SetSampler(60, 1)
        with pytest.raises(ValueError):
            SetSampler(64, 3)

    def test_rejects_denominator_above_sets(self):
        with pytest.raises(ValueError):
            SetSampler(8, 16)

    def test_frozen(self):
        s = SetSampler(64, 2)
        with pytest.raises(AttributeError):
            s.denominator = 4
