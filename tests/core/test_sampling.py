"""Tests for set-sampling (paper Section 5.4)."""

import numpy as np
import pytest

from repro.core.sampling import SetSampler


class TestSetSampler:
    def test_no_sampling_tracks_all(self):
        s = SetSampler(64, 1)
        assert s.rate == 1.0
        assert s.sampled_sets == 64
        assert s.mask(np.arange(100)).all()

    def test_quarter_sampling(self):
        s = SetSampler(64, 4)
        assert s.rate == 0.25
        assert s.sampled_sets == 16
        blocks = np.arange(256)
        mask = s.mask(blocks)
        assert mask.sum() == 64  # one in four sets
        # Exactly those whose set index is 0 mod 4.
        assert ((blocks[mask] & 63) % 4 == 0).all()

    def test_scalar_matches_vector(self):
        s = SetSampler(64, 4)
        blocks = np.arange(200)
        mask = s.mask(blocks)
        for b, m in zip(blocks, mask):
            assert s.tracks_block(int(b)) == bool(m)

    def test_set_of(self):
        s = SetSampler(16, 1)
        assert s.set_of(np.array([0, 15, 16, 33])).tolist() == [0, 15, 0, 1]

    def test_compress_set(self):
        s = SetSampler(64, 4)
        # Sampled sets 0,4,8,... compress to 0,1,2,...
        assert s.compress_set(np.array([0, 4, 8, 60])).tolist() == [0, 1, 2, 15]

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            SetSampler(60, 1)
        with pytest.raises(ValueError):
            SetSampler(64, 3)

    def test_rejects_denominator_above_sets(self):
        with pytest.raises(ValueError):
            SetSampler(8, 16)

    def test_frozen(self):
        s = SetSampler(64, 2)
        with pytest.raises(AttributeError):
            s.denominator = 4


class TestSetSamplerEdgeCases:
    def test_full_ratio_tracks_exactly_one_set(self):
        """denominator == num_sets is the extreme legal ratio: only set 0."""
        s = SetSampler(16, 16)
        assert s.sampled_sets == 1
        assert s.rate == pytest.approx(1 / 16)
        blocks = np.arange(64)
        mask = s.mask(blocks)
        assert mask.sum() == 4  # blocks 0, 16, 32, 48
        assert (s.set_of(blocks[mask]) == 0).all()
        assert s.compress_set(np.array([0])).tolist() == [0]

    def test_single_set_cache(self):
        """A 1-set (fully-associative) cache only admits denominator 1."""
        s = SetSampler(1, 1)
        assert s.sampled_sets == 1
        assert s.rate == 1.0
        blocks = np.arange(50)
        assert s.mask(blocks).all()
        assert (s.set_of(blocks) == 0).all()
        assert s.tracks_block(12345)
        with pytest.raises(ValueError):
            SetSampler(1, 2)

    def test_decisions_depend_only_on_addresses(self):
        """Sampling is address-deterministic: the same blocks get the
        same mask no matter which seed generated them or which sampler
        instance answers."""
        a = SetSampler(64, 4)
        b = SetSampler(64, 4)
        assert a == b
        for seed in (0, 1, 17):
            blocks = np.random.default_rng(seed).integers(
                0, 10_000, size=500
            )
            mask_a = a.mask(blocks)
            assert (mask_a == b.mask(blocks)).all()
            assert (mask_a == a.mask(blocks.copy())).all()
            for block, m in zip(blocks[:50], mask_a[:50]):
                assert a.tracks_block(int(block)) == bool(m)

    def test_mask_of_empty_block_array(self):
        for denominator in (1, 4):
            s = SetSampler(64, denominator)
            assert s.mask(np.array([], dtype=np.int64)).tolist() == []

    def test_compress_set_is_bijective_on_sampled_sets(self):
        s = SetSampler(128, 8)
        sampled = np.arange(0, 128, 8)
        compressed = s.compress_set(sampled)
        assert compressed.tolist() == list(range(s.sampled_sets))
