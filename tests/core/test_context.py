"""Tests for the per-process (2+N)-entry signature context (Sec 3.2)."""

import numpy as np
import pytest

from repro.core.context import SignatureContext, SignatureSample
from repro.errors import SignatureError


def sample(core=0, occupancy=10, symbiosis=(5, 20)):
    return SignatureSample(
        core=core, occupancy=occupancy, symbiosis=np.asarray(symbiosis, dtype=np.int64)
    )


class TestSignatureSample:
    def test_interference_is_reciprocal(self):
        s = sample(symbiosis=(4, 2))
        assert s.interference().tolist() == [0.25, 0.5]

    def test_interference_clamps_zero(self):
        s = sample(symbiosis=(0, 1))
        assert s.interference()[0] == 1.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            sample().core = 3


class TestSignatureContext:
    def test_initial_state_invalid(self):
        ctx = SignatureContext(2)
        assert not ctx.valid
        assert ctx.last_core is None

    def test_update_latest_sample_wins_by_default(self):
        ctx = SignatureContext(2)
        ctx.update(sample(core=0, occupancy=10, symbiosis=(1, 2)))
        ctx.update(sample(core=1, occupancy=30, symbiosis=(3, 4)))
        assert ctx.last_core == 1
        assert ctx.occupancy == 30.0
        assert ctx.symbiosis.tolist() == [3.0, 4.0]
        assert ctx.samples_seen == 2

    def test_smoothing_blends(self):
        ctx = SignatureContext(2, smoothing=0.5)
        ctx.update(sample(occupancy=10, symbiosis=(10, 10)))
        ctx.update(sample(occupancy=20, symbiosis=(20, 20)))
        assert ctx.occupancy == pytest.approx(15.0)
        assert ctx.symbiosis.tolist() == [15.0, 15.0]

    def test_first_sample_not_smoothed(self):
        ctx = SignatureContext(2, smoothing=0.1)
        ctx.update(sample(occupancy=40))
        assert ctx.occupancy == 40.0

    def test_invalid_smoothing(self):
        with pytest.raises(SignatureError):
            SignatureContext(2, smoothing=0.0)
        with pytest.raises(SignatureError):
            SignatureContext(2, smoothing=1.5)

    def test_core_out_of_range_rejected(self):
        ctx = SignatureContext(2)
        with pytest.raises(SignatureError):
            ctx.update(sample(core=2))

    def test_symbiosis_length_mismatch_rejected(self):
        ctx = SignatureContext(3)
        with pytest.raises(SignatureError):
            ctx.update(sample(symbiosis=(1, 2)))

    def test_interference_with_core(self):
        ctx = SignatureContext(2)
        ctx.update(sample(symbiosis=(4, 0)))
        assert ctx.interference_with_core(0) == 0.25
        assert ctx.interference_with_core(1) == 1.0
        with pytest.raises(SignatureError):
            ctx.interference_with_core(5)

    def test_as_tuple_shape(self):
        # The literal (2+N)-entry structure of Section 3.2.
        ctx = SignatureContext(4)
        ctx.update(sample(core=0, occupancy=7, symbiosis=(1, 2, 3, 4)))
        t = ctx.as_tuple()
        assert len(t) == 2 + 4
        assert t[0] == 0 and t[1] == 7.0

    def test_repr(self):
        assert "SignatureContext" in repr(SignatureContext(2))
