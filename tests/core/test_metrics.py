"""Tests for RBV / occupancy / symbiosis / interference metrics (Sec 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    interference_from_symbiosis,
    occupancy_weight,
    running_bit_vector,
    symbiosis,
    symbiosis_vector,
    weighted_edge_weight,
)
from repro.utils.bitvec import BitVector


def bv(size, indices):
    return BitVector.from_indices(size, indices)


class TestRunningBitVector:
    def test_new_bits_only(self):
        cf = bv(16, [0, 1, 2, 3])
        lf = bv(16, [0, 1])
        assert running_bit_vector(cf, lf).to_indices().tolist() == [2, 3]

    def test_erratum_not_nor(self):
        # The paper's printed "¬(CF ∨ LF)" would return the bits NEITHER
        # vector holds; the implemented CF ∧ ¬LF must not equal that.
        cf = bv(8, [0, 1])
        lf = bv(8, [0])
        rbv = running_bit_vector(cf, lf)
        nor = ~(cf | lf)
        assert rbv != nor
        assert rbv.to_indices().tolist() == [1]

    def test_no_activity_gives_empty_rbv(self):
        cf = bv(16, [3, 4])
        assert running_bit_vector(cf, cf.copy()).popcount() == 0

    def test_cleared_bits_drop_out(self):
        # A counter-zeroing clears CF bits; the RBV must reflect that.
        cf = bv(16, [1])
        lf = bv(16, [1, 2])
        assert running_bit_vector(cf, lf).popcount() == 0


class TestOccupancyAndSymbiosis:
    def test_occupancy_weight_is_popcount(self):
        assert occupancy_weight(bv(32, [0, 5, 9])) == 3

    def test_disjoint_footprints_high_symbiosis(self):
        rbv = bv(32, range(0, 8))
        other = bv(32, range(8, 16))
        assert symbiosis(rbv, other) == 16

    def test_identical_footprints_zero_symbiosis(self):
        rbv = bv(32, range(8))
        assert symbiosis(rbv, rbv.copy()) == 0

    def test_paper_figure6b_example_ordering(self):
        # Fig 6(b): App1's RBV has higher symbiosis with Core0's CF than
        # with Core1's CF, so Core0 is the better placement. Reconstruct
        # the qualitative situation: Core0's footprint is disjoint,
        # Core1's overlaps heavily.
        rbv = bv(16, [0, 1, 2, 3])
        cf_core0 = bv(16, [8, 9])          # disjoint
        cf_core1 = bv(16, [0, 1, 2])       # heavy overlap
        s = symbiosis_vector(rbv, [cf_core0, cf_core1])
        assert s[0] > s[1]

    def test_symbiosis_vector_length(self):
        rbv = bv(8, [0])
        s = symbiosis_vector(rbv, [bv(8, []), bv(8, [1]), bv(8, [0])])
        assert s.tolist() == [1, 2, 0]
        assert s.dtype == np.int64


class TestInterference:
    def test_reciprocal(self):
        assert interference_from_symbiosis(4) == 0.25

    def test_zero_symbiosis_clamped(self):
        assert interference_from_symbiosis(0) == 1.0

    def test_monotone_decreasing(self):
        values = [interference_from_symbiosis(s) for s in [1, 2, 5, 100]]
        assert values == sorted(values, reverse=True)


class TestWeightedEdge:
    def test_formula(self):
        # W1*I12 + W2*I21
        assert weighted_edge_weight(10, 0.5, 4, 0.25) == pytest.approx(6.0)

    def test_small_weight_damps_interference(self):
        # Section 3.3.3: a near-empty RBV (low occupancy) must not produce
        # a large edge even if its raw interference metric is high.
        noisy_small = weighted_edge_weight(1, 1.0, 1, 1.0)
        real_large = weighted_edge_weight(100, 0.2, 100, 0.2)
        assert real_large > noisy_small

    def test_symmetric_in_pairs(self):
        assert weighted_edge_weight(3, 0.1, 7, 0.2) == pytest.approx(
            weighted_edge_weight(7, 0.2, 3, 0.1)
        )


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=63), max_size=40),
        st.lists(st.integers(min_value=0, max_value=63), max_size=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_rbv_set_semantics(self, cf_idx, lf_idx):
        cf, lf = bv(64, cf_idx), bv(64, lf_idx)
        rbv = running_bit_vector(cf, lf)
        assert set(rbv.to_indices().tolist()) == set(cf_idx) - set(lf_idx)

    @given(
        st.lists(st.integers(min_value=0, max_value=63), max_size=40),
        st.lists(st.integers(min_value=0, max_value=63), max_size=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_symbiosis_is_symmetric_difference(self, a_idx, b_idx):
        a, b = bv(64, a_idx), bv(64, b_idx)
        assert symbiosis(a, b) == len(set(a_idx) ^ set(b_idx))

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_interference_in_unit_interval(self, s):
        assert 0.0 < interference_from_symbiosis(s) <= 1.0
