"""Seeded property-based invariants for the Counting Bloom Filter.

Randomised inputs, deterministic seeds: each property is checked over a
fixed set of RNG seeds so a failure is reproducible by construction.
The three families pin exactly the behaviours the adversarial suite
leans on: occupancy monotonicity (the footprint signal), the analytical
false-positive bound (the alias-rate yardstick the
:class:`~repro.estimate.gate.EstimateGate` reasons against), and decay
safety (aging can never corrupt a filter).
"""

import numpy as np
import pytest

from repro.adversary import alias_preimages
from repro.core.cbf import CountingBloomFilter, false_positive_rate
from repro.utils.rng import make_rng

SEEDS = (0, 3, 11, 29)
ENTRIES = 256


def _random_blocks(seed, count, span=1 << 40):
    rng = make_rng(seed)
    return np.unique(rng.integers(0, span, count, dtype=np.int64))


@pytest.mark.parametrize("seed", SEEDS)
def test_occupancy_is_monotone_under_inserts(seed):
    cbf = CountingBloomFilter(ENTRIES, num_hashes=2)
    blocks = _random_blocks(seed, 400)
    previous = 0
    for chunk in np.array_split(blocks, 8):
        cbf.insert_many(chunk)
        weight = cbf.occupancy_weight()
        assert weight >= previous, "inserts can only raise occupancy"
        assert weight <= ENTRIES
        previous = weight
    assert previous > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_occupancy_bounded_by_distinct_inserts_times_hashes(seed):
    cbf = CountingBloomFilter(ENTRIES, num_hashes=2)
    blocks = _random_blocks(seed, 60)
    cbf.insert_many(blocks)
    assert cbf.occupancy_weight() <= len(blocks) * cbf.num_hashes


@pytest.mark.parametrize("seed", SEEDS)
def test_empirical_alias_rate_tracks_analytical_bound(seed):
    """A uniform workload's false-hit rate sits near the textbook bound.

    ``(1 - e^{-kn/m})^k`` is an expectation, so the empirical rate is
    checked within a generous band — the point is the *scale*: a
    uniformly-hashed stream stays in the bound's neighbourhood, while
    the adversarial preimage family (next test) pegs the rate at 1.
    """
    inserted = _random_blocks(seed, 120)
    cbf = CountingBloomFilter(ENTRIES, num_hashes=1)
    cbf.insert_many(inserted)
    probes = _random_blocks(seed + 1000, 3000)
    probes = np.setdiff1d(probes, inserted)
    hits = sum(cbf.query(int(block)) for block in probes)
    empirical = hits / len(probes)
    analytical = false_positive_rate(ENTRIES, 1, len(inserted))
    assert abs(empirical - analytical) < 0.08, (
        f"empirical {empirical:.3f} strays from analytical {analytical:.3f}"
    )


def test_aliased_stream_pegs_false_hit_rate_at_one():
    # One inserted preimage makes every OTHER preimage of the same index
    # a guaranteed false hit — the adversarial ceiling the analytical
    # formula (~0.004 for n=1, m=256) is nowhere near.
    family = alias_preimages(ENTRIES, target_index=7, count=64)
    cbf = CountingBloomFilter(ENTRIES, num_hashes=1)
    cbf.insert(int(family[0]))
    rest = family[1:]
    assert all(cbf.query(int(block)) for block in rest)
    assert false_positive_rate(ENTRIES, 1, 1) < 0.01


@pytest.mark.parametrize("seed", SEEDS)
def test_decay_never_underflows_and_is_monotone(seed):
    cbf = CountingBloomFilter(ENTRIES, num_hashes=2, counter_bits=3)
    rng = make_rng(seed)
    live = []
    for _ in range(300):
        op = rng.integers(0, 4)
        if op <= 1 or not live:
            block = int(rng.integers(0, 1 << 40))
            cbf.insert(block)
            live.append(block)
        elif op == 2:
            cbf.delete(live.pop(int(rng.integers(len(live)))))
        else:
            before = cbf.counters.copy()
            cbf.decay()
            assert np.all(cbf.counters >= 0)
            assert np.all(cbf.counters <= before)
        assert np.all(cbf.counters >= 0)
        assert np.all(cbf.counters <= cbf.counter_max)


@pytest.mark.parametrize("seed", SEEDS)
def test_repeated_decay_reaches_empty(seed):
    cbf = CountingBloomFilter(ENTRIES, num_hashes=1, counter_bits=3)
    cbf.insert_many(_random_blocks(seed, 200))
    for _ in range(cbf.counter_bits):
        cbf.decay()
    assert cbf.occupancy_weight() == 0
    assert np.all(cbf.counters == 0)


def test_nonstrict_delete_clamps_and_counts_underflow():
    cbf = CountingBloomFilter(ENTRIES, num_hashes=1)
    cbf.delete(42)
    assert cbf.underflow_events == 1
    assert np.all(cbf.counters == 0)
