"""Equivalence: a single-core SignatureUnit is a counting Bloom filter.

Section 3.1 derives the split signature unit from the CBF of Section 2.4;
with one core and one hash function the two must behave identically —
a strong cross-validation of both implementations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cbf import CountingBloomFilter
from repro.core.signature import SignatureConfig, SignatureUnit


def make_pair(entries_pow=8, counter_bits=8):
    sets = 1 << (entries_pow - 2)
    unit = SignatureUnit(
        SignatureConfig(
            num_cores=1,
            num_sets=sets,
            ways=4,
            counter_bits=counter_bits,
            exact=True,
        )
    )
    cbf = CountingBloomFilter(
        unit.num_entries, num_hashes=1, counter_bits=counter_bits, kind="xor"
    )
    return unit, cbf


class TestEquivalence:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1), max_size=80),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_insert_delete_sequences_match(self, inserts, data):
        unit, cbf = make_pair()
        for block in inserts:
            unit.record_fill_batch(0, np.asarray([block]))
            cbf.insert(block)
        deletions = data.draw(
            st.lists(st.sampled_from(inserts), max_size=len(inserts))
            if inserts
            else st.just([])
        )
        for block in deletions:
            unit.record_eviction_batch(np.asarray([block]))
            cbf.delete(block)
        assert np.array_equal(unit.counters, cbf.counters)
        assert unit.total_occupancy() == cbf.occupancy_weight()

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_cf_bits_match_cbf_membership(self, inserts):
        unit, cbf = make_pair()
        for block in inserts:
            unit.record_fill_batch(0, np.asarray([block]))
            cbf.insert(block)
        # Every inserted block queries positive in both structures.
        for block in inserts:
            assert cbf.query(block)
            idx = unit.hashes[0].hash_one(block)
            assert unit.core_filters[0].test(idx)

    def test_saturation_parity(self):
        unit, cbf = make_pair(counter_bits=1)
        # Force a counter collision: same block twice.
        for _ in range(3):
            unit.record_fill_batch(0, np.asarray([42]))
            cbf.insert(42)
        assert unit.stats.saturation_events == cbf.saturation_events

    def test_underflow_parity(self):
        unit, cbf = make_pair()
        unit.record_eviction_batch(np.asarray([7]))
        cbf.delete(7)
        assert unit.stats.underflow_events == cbf.underflow_events
        assert np.array_equal(unit.counters, cbf.counters)
