"""Tests for signature event replay: cache events -> signature semantics.

The cache reports each batch's fills and evictions with the interleaving
information (``evict_fill_pos``); exact-mode signature units must replay
that order precisely, and batched mode must remain statistically faithful.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import tiny_cache
from repro.core.signature import SignatureConfig, SignatureUnit


def make_unit(exact, sets=16, ways=2, cores=2, **kw):
    return SignatureUnit(
        SignatureConfig(
            num_cores=cores, num_sets=sets, ways=ways, counter_bits=8,
            exact=exact, **kw,
        )
    )


def feed_cache_events(unit, cache, core, blocks):
    r = cache.access_batch(core, blocks)
    unit.record_events(
        core, r.fills, r.fill_slots, r.evictions, r.evict_slots, r.evict_fill_pos
    )
    return r


class TestExactReplay:
    def test_exact_replay_matches_per_event_feed(self):
        """Batch replay with positions == feeding each event one at a time."""
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 256, 800)

        # Unit A: batch-fed with exact=True (uses evict_fill_pos replay).
        cache_a = SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=1)
        unit_a = make_unit(exact=True, cores=1)
        r = cache_a.access_batch(0, blocks)
        unit_a.record_events(
            0, r.fills, r.fill_slots, r.evictions, r.evict_slots, r.evict_fill_pos
        )

        # Unit B: driven access-by-access (ground truth ordering).
        cache_b = SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=1)
        unit_b = make_unit(exact=True, cores=1)
        for block in blocks:
            rr = cache_b.access_batch(0, np.asarray([block]))
            unit_b.record_events(
                0, rr.fills, rr.fill_slots, rr.evictions, rr.evict_slots,
                rr.evict_fill_pos,
            )

        assert np.array_equal(unit_a.counters, unit_b.counters)
        assert unit_a.core_filters[0] == unit_b.core_filters[0]

    def test_counters_track_cache_multiset(self):
        """With a collision-free mapping, counters mirror residency."""
        cache = SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=1)
        unit = make_unit(exact=True, cores=1, hash_kind="presence")
        blocks = np.random.default_rng(1).integers(0, 128, 500)
        feed_cache_events(unit, cache, 0, blocks)
        # In presence mode each slot's counter is exactly line validity.
        assert unit.total_occupancy() == cache.footprint_lines()
        assert unit.stats.underflow_events == 0
        assert unit.stats.saturation_events == 0

    def test_presence_cf_equals_true_residency(self):
        cache = SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=2)
        unit = make_unit(exact=True, hash_kind="presence")
        rng = np.random.default_rng(2)
        feed_cache_events(unit, cache, 0, rng.integers(0, 64, 300))
        feed_cache_events(unit, cache, 1, rng.integers(64, 128, 300))
        occupancy = cache.occupancy_by_core()
        assert unit.core_occupancy(0) == occupancy[0]
        assert unit.core_occupancy(1) == occupancy[1]


class TestBatchedFidelity:
    @given(st.integers(min_value=0, max_value=9))
    @settings(max_examples=20, deadline=None)
    def test_batched_counters_match_exact_totals(self, seed):
        """Counter *sums* are order-independent; totals must agree exactly."""
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 512, 600)
        results = []
        for exact in (True, False):
            cache = SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=1)
            unit = make_unit(exact=exact, cores=1)
            feed_cache_events(unit, cache, 0, blocks)
            results.append(unit)
        exact_unit, fast_unit = results
        assert exact_unit.counters.sum() == fast_unit.counters.sum()
        # Per-entry counters agree too (increments/decrements commute when
        # no clamping occurs with 8-bit counters at this scale).
        assert np.array_equal(exact_unit.counters, fast_unit.counters)

    def test_batched_cf_close_to_exact(self):
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 512, 3000)
        occs = []
        for exact in (True, False):
            cache = SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=1)
            unit = make_unit(exact=exact, cores=1)
            feed_cache_events(unit, cache, 0, blocks)
            occs.append(unit.core_occupancy(0))
        assert abs(occs[0] - occs[1]) <= max(2, 0.1 * occs[0])


class TestPresenceVectorisedPath:
    @given(st.integers(min_value=0, max_value=9), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_vectorised_presence_equals_exact_replay(self, seed, sticky):
        """The commuting-counts shortcut must match ordered replay exactly."""
        kind = "presence_sticky" if sticky else "presence"
        rng = np.random.default_rng(seed)
        caches = [
            SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=2)
            for _ in range(2)
        ]
        units = [
            make_unit(exact=exact, hash_kind=kind) for exact in (False, True)
        ]
        for _ in range(10):
            for core in (0, 1):
                blocks = rng.integers(core * 10_000, core * 10_000 + 200, 300)
                for cache, unit in zip(caches, units):
                    r = cache.access_batch(core, blocks)
                    unit.record_events(
                        core, r.fills, r.fill_slots, r.evictions,
                        r.evict_slots, r.evict_fill_pos,
                    )
        fast, exact = units
        for c in (0, 1):
            assert fast.core_filters[c] == exact.core_filters[c]
        if not sticky:
            assert np.array_equal(fast.counters, exact.counters)

    def test_presence_matches_true_residency_through_contention(self):
        cache = SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=2)
        unit = make_unit(exact=False, hash_kind="presence")
        rng = np.random.default_rng(3)
        for _ in range(30):
            for core in (0, 1):
                blocks = rng.integers(core * 10_000, core * 10_000 + 100, 200)
                r = cache.access_batch(core, blocks)
                unit.record_events(
                    core, r.fills, r.fill_slots, r.evictions, r.evict_slots,
                    r.evict_fill_pos,
                )
        occupancy = cache.occupancy_by_core()
        assert unit.core_occupancy(0) == occupancy[0]
        assert unit.core_occupancy(1) == occupancy[1]


class TestSampledEventFeed:
    def test_sampled_unit_sees_subset(self):
        cache = SetAssociativeCache(tiny_cache(sets=16, ways=2), num_cores=1)
        full = make_unit(exact=True, cores=1)
        sampled = make_unit(exact=True, cores=1, sampling_denominator=4)
        blocks = np.random.default_rng(4).integers(0, 256, 400)
        r = cache.access_batch(0, blocks)
        for unit in (full, sampled):
            unit.record_events(
                0, r.fills, r.fill_slots, r.evictions, r.evict_slots,
                r.evict_fill_pos,
            )
        assert sampled.stats.fills_tracked < full.stats.fills_tracked
        assert sampled.stats.fills_tracked + sampled.stats.fills_ignored == (
            full.stats.fills_tracked
        )
