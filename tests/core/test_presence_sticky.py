"""Tests for the paper's presence-bit variant (no clearing path)."""

import numpy as np
import pytest

from repro.core.signature import SignatureConfig, SignatureUnit
from repro.errors import ConfigurationError


def make_unit(kind="presence_sticky", **kw):
    defaults = dict(num_cores=2, num_sets=16, ways=2, counter_bits=8)
    defaults.update(kw)
    return SignatureUnit(SignatureConfig(hash_kind=kind, **defaults))


class TestPresenceSticky:
    def test_bits_survive_eviction(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([5]), slots=np.array([3]))
        unit.record_eviction_batch(np.array([5]), slots=np.array([3]))
        assert unit.core_occupancy(0) == 1  # never cleared
        assert unit.stats.evictions_ignored == 1
        assert unit.stats.underflow_events == 0

    def test_clearing_variant_differs(self):
        sticky = make_unit("presence_sticky")
        clearing = make_unit("presence")
        for unit in (sticky, clearing):
            unit.record_fill_batch(0, np.array([5]), slots=np.array([3]))
            unit.record_eviction_batch(np.array([5]), slots=np.array([3]))
        assert sticky.core_occupancy(0) == 1
        assert clearing.core_occupancy(0) == 0

    def test_saturation_for_heavy_users(self):
        # The Section 5.3 failure mode: a heavy cache user's sticky vector
        # fills completely, so its RBV (new bits per quantum) goes to zero.
        unit = make_unit()
        slots = np.arange(32)  # all slots of the 16x2 cache
        unit.record_fill_batch(0, np.arange(32) + 100, slots=slots)
        unit.on_context_switch(0)
        # Heavy reuse keeps refilling the same slots...
        unit.record_fill_batch(0, np.arange(32) + 200, slots=slots)
        sample = unit.on_context_switch(0)
        assert unit.core_occupancy(0) == 32  # saturated
        assert sample.occupancy == 0  # RBV conveys nothing

    def test_rejects_multiple_hashes(self):
        with pytest.raises(ConfigurationError):
            make_unit(num_hashes=2)

    def test_sampled_sticky(self):
        unit = make_unit(sampling_denominator=4)
        # Set 0 sampled; block in set 1 ignored.
        unit.record_fill_batch(0, np.array([0]), slots=np.array([1]))
        unit.record_fill_batch(0, np.array([1]), slots=np.array([2]))
        assert unit.core_occupancy(0) == 1
