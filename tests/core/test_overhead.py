"""Tests for the Section 5.4 overhead models."""

import pytest

from repro.core.overhead import (
    bits_accurate_overhead,
    paper_hardware_overhead,
    software_overhead,
)


class TestPaperHardwareOverhead:
    def test_paper_dual_core_unsampled(self):
        # Paper: "For a dual-core machine it is 8.5% of the cache size".
        assert paper_hardware_overhead(2) == pytest.approx(0.0854, abs=0.001)

    def test_paper_dual_core_sampled(self):
        # Paper: "our total overhead ... only about 2.13% of the L2 size".
        assert paper_hardware_overhead(2, sampling_denominator=4) == pytest.approx(
            0.0213, abs=0.0005
        )

    def test_grows_with_cores(self):
        assert paper_hardware_overhead(4) > paper_hardware_overhead(2)

    def test_sampling_scales_linearly(self):
        full = paper_hardware_overhead(2)
        assert paper_hardware_overhead(2, sampling_denominator=2) == pytest.approx(
            full / 2
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            paper_hardware_overhead(0)
        with pytest.raises(ValueError):
            paper_hardware_overhead(2, sampling_denominator=0)


class TestBitsAccurateOverhead:
    def test_much_smaller_than_paper_number(self):
        # The dimensionally consistent figure is ~1.3% for a dual-core.
        v = bits_accurate_overhead(2)
        assert 0.01 < v < 0.02
        assert v < paper_hardware_overhead(2)

    def test_sampling(self):
        assert bits_accurate_overhead(2, sampling_denominator=4) == pytest.approx(
            bits_accurate_overhead(2) / 4
        )


class TestSoftwareOverhead:
    def test_context_bytes_matches_2_plus_n(self):
        so = software_overhead(num_cores=2, num_entries=8192, num_processes=4)
        assert so.context_bytes_per_process == 4 * (2 + 2)

    def test_rbv_bytes(self):
        # Paper: "the number of bytes in an RBV is 1KB".
        so = software_overhead(num_cores=2, num_entries=8192, num_processes=4)
        assert so.rbv_bytes == 1024
        assert so.rbv_transfer_bytes_per_switch == 2048

    def test_allocator_fraction_negligible(self):
        # Paper: hundreds of instructions every 100ms is negligible.
        so = software_overhead(num_cores=2, num_entries=8192, num_processes=4)
        assert so.allocator_cpu_fraction < 1e-5

    def test_scales_with_processes(self):
        a = software_overhead(2, 8192, 4)
        b = software_overhead(2, 8192, 40)
        assert b.allocator_instructions_per_invocation > a.allocator_instructions_per_invocation
