"""Tests for the Bloom-filter hash function family (paper Section 5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashes import (
    HASH_KINDS,
    ModuloHash,
    XorFoldHash,
    XorInverseReverseHash,
    make_hash,
    make_hash_family,
)
from repro.errors import ConfigurationError

ALL_KINDS = ["xor", "xor_inverse_reverse", "modulo"]


class TestRegistry:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_make_hash(self, kind):
        h = make_hash(kind, 256)
        assert h.kind == kind
        assert h.num_entries == 256

    def test_presence_rejected(self):
        with pytest.raises(ConfigurationError, match="presence"):
            make_hash("presence", 256)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown hash kind"):
            make_hash("fnv", 256)

    def test_hash_kinds_tuple(self):
        assert set(HASH_KINDS) == {
            "xor",
            "xor_inverse_reverse",
            "modulo",
            "presence",
            "presence_sticky",
        }

    def test_family_distinct_salts(self):
        family = make_hash_family("xor", 1024, 3)
        assert [h.salt_index for h in family] == [0, 1, 2]

    def test_family_too_many(self):
        with pytest.raises(ConfigurationError):
            make_hash_family("xor", 1024, 100)

    def test_family_count_positive(self):
        with pytest.raises(ConfigurationError):
            make_hash_family("xor", 1024, 0)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestCommonBehaviour:
    def test_range(self, kind):
        h = make_hash(kind, 512)
        blocks = np.random.default_rng(0).integers(0, 1 << 40, 2000)
        idx = h.hash_many(blocks)
        assert idx.min() >= 0
        assert idx.max() < 512

    def test_deterministic(self, kind):
        h = make_hash(kind, 512)
        blocks = np.arange(100, dtype=np.int64) * 977
        assert np.array_equal(h.hash_many(blocks), h.hash_many(blocks))

    def test_scalar_matches_vector(self, kind):
        h = make_hash(kind, 256)
        blocks = np.array([0, 1, 63, 4096, (1 << 35) + 17], dtype=np.int64)
        vec = h.hash_many(blocks)
        for b, v in zip(blocks, vec):
            assert h.hash_one(int(b)) == int(v)

    def test_salted_variants_differ(self, kind):
        h0 = make_hash(kind, 4096, salt_index=0)
        h1 = make_hash(kind, 4096, salt_index=1)
        blocks = np.arange(500, dtype=np.int64)
        assert not np.array_equal(h0.hash_many(blocks), h1.hash_many(blocks))

    def test_distribution_covers_filter(self, kind):
        # Random addresses should touch a large fraction of a small filter.
        h = make_hash(kind, 128)
        blocks = np.random.default_rng(1).integers(0, 1 << 40, 5000)
        assert len(np.unique(h.hash_many(blocks))) > 100

    def test_empty_input(self, kind):
        h = make_hash(kind, 128)
        assert h.hash_many(np.array([], dtype=np.int64)).shape == (0,)


class TestXorFold:
    def test_sequential_blocks_spread(self):
        # XOR folding maps consecutive block addresses to distinct indices
        # (low bits pass through) - the property that makes it good for
        # footprint tracking of strided workloads.
        h = XorFoldHash(256)
        idx = h.hash_many(np.arange(256, dtype=np.int64))
        assert len(np.unique(idx)) == 256

    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            XorFoldHash(100)

    def test_rejects_single_entry(self):
        with pytest.raises(ConfigurationError):
            XorFoldHash(1)

    def test_fold_covers_high_bits(self):
        # Addresses differing only above the index width must not all
        # collide onto the same index.
        h = XorFoldHash(256)
        blocks = (np.arange(64, dtype=np.int64) << 8) | 5
        assert len(np.unique(h.hash_many(blocks))) > 1


class TestXorInverseReverse:
    def test_is_permutation_of_xor(self):
        # invert+reverse is a bijection on the index space, so the number of
        # distinct indices must match plain XOR folding.
        blocks = np.random.default_rng(2).integers(0, 1 << 40, 3000)
        xor = XorFoldHash(512).hash_many(blocks)
        xir = XorInverseReverseHash(512).hash_many(blocks)
        assert len(np.unique(xor)) == len(np.unique(xir))

    def test_differs_from_plain_xor(self):
        blocks = np.arange(100, dtype=np.int64)
        xor = XorFoldHash(512).hash_many(blocks)
        xir = XorInverseReverseHash(512).hash_many(blocks)
        assert not np.array_equal(xor, xir)


class TestModulo:
    def test_non_power_of_two_size(self):
        h = ModuloHash(100)
        idx = h.hash_many(np.arange(1000, dtype=np.int64))
        assert idx.min() >= 0 and idx.max() < 100

    def test_identity_below_size_unsalted(self):
        h = ModuloHash(256, salt_index=0)
        blocks = np.arange(256, dtype=np.int64)
        assert np.array_equal(h.hash_many(blocks), blocks)


class TestProperties:
    @given(
        st.sampled_from(ALL_KINDS),
        st.integers(min_value=3, max_value=12),
        st.lists(st.integers(min_value=0, max_value=(1 << 45) - 1), min_size=1, max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_indices_always_in_range(self, kind, log_entries, blocks):
        h = make_hash(kind, 1 << log_entries)
        idx = h.hash_many(np.asarray(blocks, dtype=np.int64))
        assert ((idx >= 0) & (idx < (1 << log_entries))).all()

    @given(st.integers(min_value=0, max_value=(1 << 45) - 1))
    @settings(max_examples=60, deadline=None)
    def test_same_address_same_index(self, block):
        for kind in ALL_KINDS:
            h = make_hash(kind, 1024)
            assert h.hash_one(block) == h.hash_one(block)
