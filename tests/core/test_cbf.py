"""Tests for the classic Bloom filter / counting Bloom filter (Sec 2.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cbf import BloomFilter, CountingBloomFilter
from repro.errors import CounterSaturationError


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(256, num_hashes=2)
        blocks = [3, 999, 123456, 1 << 30]
        for b in blocks:
            bf.insert(b)
        for b in blocks:
            assert bf.query(b), "inserted element reported as true miss"

    def test_true_miss_on_empty(self):
        bf = BloomFilter(256)
        assert not bf.query(42)

    def test_insert_many_matches_loop(self):
        blocks = np.random.default_rng(0).integers(0, 1 << 35, 300)
        a = BloomFilter(512, num_hashes=2)
        b = BloomFilter(512, num_hashes=2)
        a.insert_many(blocks)
        for blk in blocks:
            b.insert(int(blk))
        assert a.bits == b.bits

    def test_query_many(self):
        bf = BloomFilter(512)
        bf.insert_many(np.array([10, 20, 30]))
        res = bf.query_many(np.array([10, 20, 30]))
        assert res.all()

    def test_occupancy_weight(self):
        bf = BloomFilter(512)
        assert bf.occupancy_weight() == 0
        bf.insert(7)
        assert bf.occupancy_weight() == 1

    def test_saturation_metric(self):
        bf = BloomFilter(64)
        bf.insert_many(np.random.default_rng(1).integers(0, 1 << 35, 5000))
        assert bf.saturation() > 0.95

    def test_more_hashes_saturate_faster(self):
        # Section 5.3: multiple hash functions pollute small filters faster.
        blocks = np.random.default_rng(2).integers(0, 1 << 35, 200)
        k1 = BloomFilter(1024, num_hashes=1)
        k4 = BloomFilter(1024, num_hashes=4)
        k1.insert_many(blocks)
        k4.insert_many(blocks)
        assert k4.saturation() > k1.saturation()

    def test_clear(self):
        bf = BloomFilter(64)
        bf.insert(1)
        bf.clear()
        assert bf.occupancy_weight() == 0
        assert not bf.query(1)


class TestCountingBloomFilter:
    def test_insert_delete_roundtrip(self):
        cbf = CountingBloomFilter(256, num_hashes=2)
        blocks = [5, 1000, 424242]
        for b in blocks:
            cbf.insert(b)
        for b in blocks:
            cbf.delete(b)
        assert cbf.occupancy_weight() == 0
        assert cbf.saturation_events == 0
        assert cbf.underflow_events == 0

    def test_no_false_negative_while_present(self):
        cbf = CountingBloomFilter(256)
        cbf.insert(77)
        cbf.insert(78)
        cbf.delete(78)
        assert cbf.query(77)

    def test_true_miss_after_delete(self):
        cbf = CountingBloomFilter(4096, num_hashes=1)
        cbf.insert(77)
        cbf.delete(77)
        assert not cbf.query(77)

    def test_duplicate_hash_indices_counted_once(self):
        # With k=2 both hashes can collide for some address; the paper says
        # the counter moves only once. Force it with a tiny filter.
        cbf = CountingBloomFilter(2, num_hashes=2)
        cbf.insert(0)
        assert cbf.counters.sum() <= 2

    def test_saturation_clamps_and_counts(self):
        cbf = CountingBloomFilter(4, counter_bits=1, num_hashes=1)
        target = 0
        idx = cbf.hashes[0].hash_one(target)
        cbf.insert(target)
        cbf.insert(target)  # would exceed max=1
        assert cbf.counters[idx] == 1
        assert cbf.saturation_events == 1

    def test_strict_saturation_raises(self):
        cbf = CountingBloomFilter(4, counter_bits=1, strict=True)
        cbf.insert(0)
        with pytest.raises(CounterSaturationError):
            cbf.insert(0)

    def test_underflow_clamps_and_counts(self):
        cbf = CountingBloomFilter(16)
        cbf.delete(3)
        assert cbf.underflow_events == 1
        assert (cbf.counters >= 0).all()

    def test_strict_underflow_raises(self):
        cbf = CountingBloomFilter(16, strict=True)
        with pytest.raises(CounterSaturationError):
            cbf.delete(3)

    def test_insert_many_delete_many(self):
        blocks = np.random.default_rng(3).integers(0, 1 << 35, 100)
        cbf = CountingBloomFilter(1 << 12, counter_bits=8)
        cbf.insert_many(blocks)
        cbf.delete_many(blocks)
        assert cbf.occupancy_weight() == 0

    def test_clear(self):
        cbf = CountingBloomFilter(64)
        cbf.insert(5)
        cbf.delete(6)
        cbf.clear()
        assert cbf.occupancy_weight() == 0
        assert cbf.underflow_events == 0


class TestCbfProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1), max_size=60),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_multiset_roundtrip_never_negative(self, blocks, k):
        cbf = CountingBloomFilter(128, num_hashes=k, counter_bits=16)
        for b in blocks:
            cbf.insert(b)
        for b in blocks:
            assert cbf.query(b), "present element must never be a true miss"
        for b in blocks:
            cbf.delete(b)
        assert cbf.occupancy_weight() == 0
        assert cbf.underflow_events == 0

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounded_by_distinct_inserts(self, blocks):
        cbf = CountingBloomFilter(256, num_hashes=1, counter_bits=16)
        for b in blocks:
            cbf.insert(b)
        assert cbf.occupancy_weight() <= len(set(blocks))
