"""Tests for the split-CBF SignatureUnit (paper Section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import SignatureConfig, SignatureUnit
from repro.errors import ConfigurationError, CounterSaturationError, SignatureError


def make_unit(**kwargs):
    defaults = dict(num_cores=2, num_sets=64, ways=4, counter_bits=8)
    defaults.update(kwargs)
    return SignatureUnit(SignatureConfig(**defaults))


class TestConfig:
    def test_entries_default_to_line_count(self):
        cfg = SignatureConfig(num_cores=2, num_sets=64, ways=4)
        assert cfg.tracked_lines == 256
        assert cfg.num_entries == 256

    def test_sampling_shrinks_entries(self):
        cfg = SignatureConfig(num_cores=2, num_sets=64, ways=4, sampling_denominator=4)
        assert cfg.tracked_lines == 64
        assert cfg.num_entries == 64

    def test_non_pow2_lines_rounded_for_xor(self):
        cfg = SignatureConfig(num_cores=2, num_sets=64, ways=12)
        assert cfg.tracked_lines == 768
        assert cfg.num_entries == 1024

    def test_non_pow2_lines_exact_for_modulo(self):
        cfg = SignatureConfig(num_cores=2, num_sets=64, ways=12, hash_kind="modulo")
        assert cfg.num_entries == 768

    def test_presence_with_multiple_hashes_rejected(self):
        with pytest.raises(ConfigurationError):
            SignatureConfig(
                num_cores=2, num_sets=64, ways=4, hash_kind="presence", num_hashes=2
            )

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SignatureConfig(num_cores=2, num_sets=63, ways=4)


class TestFillEvict:
    def test_fill_sets_cf_of_requesting_core_only(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([123]))
        assert unit.core_occupancy(0) == 1
        assert unit.core_occupancy(1) == 0

    def test_fill_increments_counter(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([123]))
        assert unit.total_occupancy() == 1

    def test_eviction_to_zero_clears_all_cfs(self):
        unit = make_unit()
        # Both cores touch the same block (e.g. after line migration).
        unit.record_fill_batch(0, np.array([99]))
        unit.record_fill_batch(1, np.array([99]))
        unit.record_eviction_batch(np.array([99]))
        unit.record_eviction_batch(np.array([99]))
        assert unit.core_occupancy(0) == 0
        assert unit.core_occupancy(1) == 0

    def test_eviction_above_zero_keeps_cf_bits(self):
        # Paper's documented inaccuracy: the CF bit survives until the
        # counter reaches zero, even if this core's line left long ago.
        unit = make_unit()
        unit.record_fill_batch(0, np.array([99]))
        unit.record_fill_batch(1, np.array([99]))
        unit.record_eviction_batch(np.array([99]))
        assert unit.core_occupancy(0) == 1
        assert unit.core_occupancy(1) == 1

    def test_empty_batches_noop(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([], dtype=np.int64))
        unit.record_eviction_batch(np.array([], dtype=np.int64))
        assert unit.total_occupancy() == 0

    def test_invalid_core_raises(self):
        unit = make_unit()
        with pytest.raises(SignatureError):
            unit.record_fill_batch(5, np.array([1]))

    def test_underflow_counted_and_clamped(self):
        unit = make_unit()
        unit.record_eviction_batch(np.array([42]))
        assert unit.stats.underflow_events == 1
        assert (unit.counters >= 0).all()

    def test_strict_underflow_raises(self):
        unit = make_unit(strict_saturation=True)
        with pytest.raises(CounterSaturationError):
            unit.record_eviction_batch(np.array([42]))

    def test_saturation_counted_and_clamped(self):
        unit = make_unit(counter_bits=1)
        block = np.array([7])
        unit.record_fill_batch(0, block)
        unit.record_fill_batch(0, block)
        assert unit.stats.saturation_events == 1
        assert unit.counters.max() == 1

    def test_strict_saturation_raises(self):
        unit = make_unit(counter_bits=1, strict_saturation=True)
        unit.record_fill_batch(0, np.array([7]))
        with pytest.raises(CounterSaturationError):
            unit.record_fill_batch(0, np.array([7]))


class TestContextSwitch:
    def test_rbv_captures_new_bits_only(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([1, 2, 3]))
        unit.on_context_switch(0)  # snapshot
        unit.record_fill_batch(0, np.array([100, 200]))
        sample = unit.on_context_switch(0)
        assert sample.occupancy == 2

    def test_first_switch_sees_everything(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([1, 2, 3]))
        assert unit.on_context_switch(0).occupancy == 3

    def test_symbiosis_against_other_core(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([1, 2, 3, 4]))
        unit.record_fill_batch(1, np.array([1000, 2000]))
        sample = unit.on_context_switch(0)
        # RBV(core0) has 4 bits; CF(core1) has 2 disjoint bits -> XOR = 6.
        assert sample.symbiosis[1] == 6
        # Against its own CF the RBV is identical (first switch) -> XOR = 0.
        assert sample.symbiosis[0] == 0

    def test_lf_snapshot_advances(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([5]))
        unit.on_context_switch(0)
        # No new activity: RBV empty now.
        assert unit.on_context_switch(0).occupancy == 0

    def test_peek_rbv_does_not_snapshot(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([5]))
        assert unit.peek_rbv(0).popcount() == 1
        assert unit.peek_rbv(0).popcount() == 1  # unchanged
        assert unit.on_context_switch(0).occupancy == 1

    def test_switch_counts(self):
        unit = make_unit()
        unit.on_context_switch(0)
        unit.on_context_switch(1)
        assert unit.stats.context_switches == 2

    def test_invalid_core(self):
        unit = make_unit()
        with pytest.raises(SignatureError):
            unit.on_context_switch(9)


class TestPresenceMode:
    def test_requires_slots(self):
        unit = make_unit(hash_kind="presence")
        with pytest.raises(SignatureError):
            unit.record_fill_batch(0, np.array([1]))

    def test_slot_identity_mapping(self):
        unit = make_unit(hash_kind="presence")
        unit.record_fill_batch(0, np.array([111]), slots=np.array([37]))
        assert unit.core_filters[0].test(37)

    def test_fill_then_evict_slot_roundtrip(self):
        unit = make_unit(hash_kind="presence")
        unit.record_fill_batch(0, np.array([111]), slots=np.array([37]))
        unit.record_eviction_batch(np.array([111]), slots=np.array([37]))
        assert unit.core_occupancy(0) == 0

    def test_no_aliasing(self):
        # Presence bits are exact: N distinct slots -> N bits.
        unit = make_unit(hash_kind="presence")
        slots = np.arange(100)
        unit.record_fill_batch(0, np.arange(100) + 5000, slots=slots)
        assert unit.core_occupancy(0) == 100

    def test_sampled_presence_compresses_slots(self):
        unit = make_unit(hash_kind="presence", sampling_denominator=4)
        # Block in set 0 (sampled), slot = set*ways + way = 0*4+2.
        unit.record_fill_batch(0, np.array([0]), slots=np.array([2]))
        assert unit.core_filters[0].test(2)
        # Block in set 1 (not sampled) is ignored entirely.
        unit.record_fill_batch(0, np.array([1]), slots=np.array([6]))
        assert unit.core_occupancy(0) == 1
        assert unit.stats.fills_ignored == 1


class TestSampling:
    def test_unsampled_blocks_ignored(self):
        unit = make_unit(sampling_denominator=4)
        # set index = block & 63; block 1 -> set 1, unsampled.
        unit.record_fill_batch(0, np.array([1]))
        assert unit.total_occupancy() == 0
        assert unit.stats.fills_ignored == 1

    def test_sampled_blocks_tracked(self):
        unit = make_unit(sampling_denominator=4)
        unit.record_fill_batch(0, np.array([64]))  # set 0, sampled
        assert unit.total_occupancy() == 1
        assert unit.stats.fills_tracked == 1

    def test_eviction_sampling_symmetric(self):
        unit = make_unit(sampling_denominator=4)
        unit.record_fill_batch(0, np.array([64]))
        unit.record_eviction_batch(np.array([64]))
        assert unit.total_occupancy() == 0
        unit.record_eviction_batch(np.array([1]))  # unsampled: ignored
        assert unit.stats.underflow_events == 0


class TestExactVsBatched:
    def test_single_event_batches_identical(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 1 << 30, 400)
        exact = make_unit(exact=True)
        fast = make_unit(exact=False)
        for b in blocks:
            exact.record_fill_batch(0, np.array([b]))
            fast.record_fill_batch(0, np.array([b]))
        # Interleave evictions of half the blocks.
        for b in blocks[::2]:
            exact.record_eviction_batch(np.array([b]))
            fast.record_eviction_batch(np.array([b]))
        assert np.array_equal(exact.counters, fast.counters)
        assert exact.core_filters[0] == fast.core_filters[0]
        s_e = exact.on_context_switch(0)
        s_f = fast.on_context_switch(0)
        assert s_e.occupancy == s_f.occupancy
        assert np.array_equal(s_e.symbiosis, s_f.symbiosis)

    def test_batched_close_to_exact_statistically(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 1 << 20, 2000)
        evicts = blocks[rng.permutation(len(blocks))][:1000]
        exact = make_unit(exact=True)
        fast = make_unit(exact=False)
        for unit in (exact, fast):
            unit.record_fill_batch(0, blocks)
            unit.record_eviction_batch(evicts)
        occ_e = exact.core_occupancy(0)
        occ_f = fast.core_occupancy(0)
        assert abs(occ_e - occ_f) <= 0.05 * max(occ_e, 1)


class TestMultipleHashes:
    def test_k2_sets_up_to_two_bits(self):
        unit = make_unit(num_hashes=2)
        unit.record_fill_batch(0, np.array([12345]))
        assert 1 <= unit.core_occupancy(0) <= 2

    def test_k2_fill_evict_roundtrip(self):
        unit = make_unit(num_hashes=2)
        blocks = np.arange(50) * 131
        unit.record_fill_batch(0, blocks)
        unit.record_eviction_batch(blocks)
        assert unit.total_occupancy() == 0
        assert unit.stats.underflow_events == 0

    def test_more_hashes_saturate_filter_faster(self):
        # Section 5.3's rationale for k=1.
        blocks = np.random.default_rng(5).integers(0, 1 << 30, 300)
        k1 = make_unit(num_hashes=1)
        k3 = make_unit(num_hashes=3)
        k1.record_fill_batch(0, blocks)
        k3.record_fill_batch(0, blocks)
        assert k3.core_occupancy(0) > k1.core_occupancy(0)


class TestHousekeeping:
    def test_reset(self):
        unit = make_unit()
        unit.record_fill_batch(0, np.array([1, 2]))
        unit.on_context_switch(0)
        unit.reset()
        assert unit.total_occupancy() == 0
        assert unit.stats.context_switches == 0
        assert unit.core_occupancy(0) == 0

    def test_state_bits(self):
        unit = make_unit(counter_bits=3)
        assert unit.state_bits() == 256 * (3 + 4)

    def test_repr(self):
        assert "SignatureUnit" in repr(make_unit())


class TestSignatureProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 25) - 1), max_size=80),
        st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=50, deadline=None)
    def test_cf_subset_of_nonzero_counters(self, blocks, core):
        unit = make_unit()
        unit.record_fill_batch(core, np.asarray(blocks, dtype=np.int64))
        cf_bits = set(unit.core_filters[core].to_indices().tolist())
        nonzero = set(np.nonzero(unit.counters)[0].tolist())
        assert cf_bits <= nonzero

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 25) - 1), max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_fill_evict_roundtrip_clears_everything(self, blocks):
        unit = make_unit()
        arr = np.asarray(blocks, dtype=np.int64)
        unit.record_fill_batch(0, arr)
        unit.record_eviction_batch(arr)
        assert unit.total_occupancy() == 0
        assert unit.core_occupancy(0) == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 25) - 1), max_size=60),
        st.lists(st.integers(min_value=0, max_value=(1 << 25) - 1), max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded_by_rbv_size(self, batch1, batch2):
        unit = make_unit()
        unit.record_fill_batch(0, np.asarray(batch1, dtype=np.int64))
        unit.on_context_switch(0)
        unit.record_fill_batch(0, np.asarray(batch2, dtype=np.int64))
        sample = unit.on_context_switch(0)
        assert 0 <= sample.occupancy <= len(set(batch2))
