"""Tests for the repro-cli command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mix_defaults(self):
        args = build_parser().parse_args(["mix", "mcf", "povray"])
        assert args.names == ["mcf", "povray"]
        assert args.policy == "weighted"

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])


class TestJobsValidation:
    """``--jobs`` must reject zero/negative/non-integer counts loudly."""

    def test_zero_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["mix", "mcf", "povray", "--jobs", "0"])
        assert exc_info.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--jobs", "-2"]
            )
        err = capsys.readouterr().err
        assert "must be >= 1" in err
        assert "--jobs 1" in err  # the error names the escape hatch

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "mcf", "povray", "--jobs", "two"])
        assert "not an integer" in capsys.readouterr().err

    def test_positive_jobs_accepted(self):
        args = build_parser().parse_args(
            ["mix", "mcf", "povray", "--jobs", "3"]
        )
        assert args.jobs == 3


class TestSupervisionFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.max_retries == 2
        assert args.hang_timeout is None
        assert args.quarantine is None

    def test_parse(self):
        args = build_parser().parse_args(
            [
                "sweep", "--max-retries", "5", "--hang-timeout", "2.5",
                "--quarantine", "poison.jsonl",
            ]
        )
        assert args.max_retries == 5
        assert args.hang_timeout == 2.5
        assert args.quarantine == "poison.jsonl"


class TestProfiles:
    def test_lists_pools(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "ferret" in out
        assert "SPEC2006-like pool" in out


class TestMix:
    def test_unknown_benchmark(self, capsys):
        assert main(["mix", "doom3", "mcf"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().out

    def test_small_mix_runs(self, capsys):
        code = main(
            ["mix", "povray", "sjeng", "--instructions", "150000", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen schedule" in out
        assert "povray" in out


class TestPairwise:
    def test_needs_two(self, capsys):
        assert main(["pairwise", "mcf"]) == 2

    def test_unknown(self, capsys):
        assert main(["pairwise", "mcf", "doom3"]) == 2

    def test_runs(self, capsys):
        code = main(
            ["pairwise", "povray", "sjeng", "--instructions", "150000"]
        )
        assert code == 0
        assert "worst-case degradation" in capsys.readouterr().out


class TestFigure:
    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
