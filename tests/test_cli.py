"""Tests for the repro-cli command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mix_defaults(self):
        args = build_parser().parse_args(["mix", "mcf", "povray"])
        assert args.names == ["mcf", "povray"]
        assert args.policy == "weighted"

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])


class TestProfiles:
    def test_lists_pools(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "ferret" in out
        assert "SPEC2006-like pool" in out


class TestMix:
    def test_unknown_benchmark(self, capsys):
        assert main(["mix", "doom3", "mcf"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().out

    def test_small_mix_runs(self, capsys):
        code = main(
            ["mix", "povray", "sjeng", "--instructions", "150000", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen schedule" in out
        assert "povray" in out


class TestPairwise:
    def test_needs_two(self, capsys):
        assert main(["pairwise", "mcf"]) == 2

    def test_unknown(self, capsys):
        assert main(["pairwise", "mcf", "doom3"]) == 2

    def test_runs(self, capsys):
        code = main(
            ["pairwise", "povray", "sjeng", "--instructions", "150000"]
        )
        assert code == 0
        assert "worst-case degradation" in capsys.readouterr().out


class TestFigure:
    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
