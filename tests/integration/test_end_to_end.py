"""Cross-subsystem integration tests at miniature scale.

These exercise the complete pipelines (cache -> signature -> scheduler ->
policy -> timing) on a shrunken machine so they stay fast while covering
the same code paths as the paper-scale benchmarks.
"""


from repro.alloc import (
    UserLevelMonitor,
    WeightedInterferenceGraphPolicy,
    WeightSortPolicy,
)
from repro.cache.config import CacheConfig, CacheGeometry
from repro.core.signature import SignatureConfig
from repro.perf.machine import MachineConfig
from repro.perf.simulator import MulticoreSimulator
from repro.perf.timing import TimingModel
from repro.sched.affinity import canonical_mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.workloads.base import WorkloadProfile
from repro.workloads.patterns import HotColdGenerator, StreamGenerator


def mini_machine(cores=2):
    """A 64 KB shared L2 'Core 2 Duo' with the real timing model."""
    return MachineConfig(
        name="mini",
        num_cores=cores,
        l2=CacheConfig(
            name="mini-l2",
            geometry=CacheGeometry(size_bytes=64 * 1024, line_bytes=64, ways=8),
        ),
        shared_l2=True,
        timing=TimingModel(),
    )


def victim_task(name="victim", accesses=60_000, seed=1):
    """Cache-sensitive: reuses a hot set of half the mini cache."""
    return SimTask(
        name=name,
        generator=HotColdGenerator(2048, 512, hot_fraction=0.9, seed=seed),
        total_accesses=accesses,
        accesses_per_kinstr=40.0,
        mlp=1.0,
    )


def polluter_task(name="polluter", accesses=60_000, seed=2):
    """Streaming: floods the mini cache with fresh lines."""
    return SimTask(
        name=name,
        generator=StreamGenerator(1 << 22, base_block=1 << 24, seed=seed),
        total_accesses=accesses,
        accesses_per_kinstr=25.0,
        mlp=6.0,
    )


def light_task(name="light", accesses=4_000, seed=3, base=1 << 26):
    """Compute-bound: tiny footprint, low memory intensity."""
    return SimTask(
        name=name,
        generator=HotColdGenerator(64, 32, hot_fraction=0.95, base_block=base, seed=seed),
        total_accesses=accesses,
        accesses_per_kinstr=1.0,
        mlp=1.0,
    )


def mini_sched(quantum=300_000.0, smoothing=0.6):
    return SchedulerConfig(
        num_cores=2, timeslice_cycles=quantum, context_smoothing=smoothing
    )


class TestContentionPhysics:
    """The paper's core phenomenon must hold on the mini machine."""

    def run_mapping(self, groups, tasks):
        by_name = {t.name: t.tid for t in tasks}
        mapping = canonical_mapping([[by_name[n] for n in g] for g in groups])
        sim = MulticoreSimulator(
            mini_machine(), tasks, mapping=mapping,
            scheduler_config=SchedulerConfig(num_cores=2, timeslice_cycles=5e7),
        )
        return sim.run()

    def test_mapping_controls_victim_performance(self):
        # victim+polluter same core (timeshare) must beat them concurrent.
        tasks = [victim_task(), polluter_task(), light_task("l1"), light_task("l2", seed=4, base=1 << 27)]
        together = self.run_mapping(
            [["victim", "polluter"], ["l1", "l2"]],
            [victim_task(), polluter_task(), light_task("l1"),
             light_task("l2", seed=4, base=1 << 27)],
        )
        apart = self.run_mapping(
            [["victim", "l1"], ["polluter", "l2"]],
            [victim_task(), polluter_task(), light_task("l1"),
             light_task("l2", seed=4, base=1 << 27)],
        )
        assert together.user_time("victim") < apart.user_time("victim")

    def test_lights_are_insensitive(self):
        a = self.run_mapping(
            [["victim", "polluter"], ["l1", "l2"]],
            [victim_task(), polluter_task(), light_task("l1"),
             light_task("l2", seed=4, base=1 << 27)],
        )
        b = self.run_mapping(
            [["victim", "l1"], ["polluter", "l2"]],
            [victim_task(), polluter_task(), light_task("l1"),
             light_task("l2", seed=4, base=1 << 27)],
        )
        ratio = a.user_time("l1") / b.user_time("l1")
        assert 0.9 < ratio < 1.1


class TestPhase1Pipeline:
    def make_tasks(self):
        return [
            victim_task(),
            light_task("l1"),
            polluter_task(),
            light_task("l2", seed=4, base=1 << 27),
        ]

    def signature_config(self):
        return SignatureConfig(num_cores=2, num_sets=128, ways=8)

    def test_monitor_reaches_decisions(self):
        monitor = UserLevelMonitor(
            WeightedInterferenceGraphPolicy(seed=1), interval_cycles=400_000.0
        )
        sim = MulticoreSimulator(
            mini_machine(),
            self.make_tasks(),
            signature_config=self.signature_config(),
            monitor=monitor,
            scheduler_config=mini_sched(),
        )
        result = sim.run(min_wall_cycles=8_000_000.0)
        assert len(result.decisions) >= 3
        assert result.majority_mapping is not None

    def test_weight_sort_identifies_heavies(self):
        # Occupancy-weight ranking must put victim+polluter above lights.
        monitor = UserLevelMonitor(WeightSortPolicy(), interval_cycles=400_000.0)
        tasks = self.make_tasks()
        sim = MulticoreSimulator(
            mini_machine(),
            tasks,
            signature_config=self.signature_config(),
            monitor=monitor,
            scheduler_config=mini_sched(),
        )
        result = sim.run(min_wall_cycles=8_000_000.0)
        by_name = {t.name: t.tid for t in tasks}
        majority = result.majority_mapping
        assert majority.core_of(by_name["victim"]) == majority.core_of(
            by_name["polluter"]
        )

    def test_signature_stats_consistent(self):
        sim = MulticoreSimulator(
            mini_machine(),
            self.make_tasks(),
            signature_config=self.signature_config(),
            scheduler_config=mini_sched(),
        )
        result = sim.run()
        stats = result.signature_stats
        # Tracked fills can't exceed cache misses; switches happened.
        assert 0 < stats.fills_tracked
        assert stats.context_switches > 0
        assert stats.evictions_tracked <= stats.fills_tracked

    def test_exact_and_batched_signatures_agree_on_decisions(self):
        def majority(exact):
            monitor = UserLevelMonitor(WeightSortPolicy(), interval_cycles=400_000.0)
            sim = MulticoreSimulator(
                mini_machine(),
                self.make_tasks(),
                signature_config=SignatureConfig(
                    num_cores=2, num_sets=128, ways=8, exact=exact
                ),
                monitor=monitor,
                scheduler_config=mini_sched(),
            )
            return sim.run(min_wall_cycles=4_000_000.0).majority_mapping

        # Task tids differ between runs, so compare group *names* via sizes.
        a, b = majority(False), majority(True)
        assert sorted(len(g) for g in a.groups) == sorted(
            len(g) for g in b.groups
        )


class TestAllMappingsInvariants:
    def test_mapping_times_positive_and_complete(self):
        from repro.perf.experiment import run_all_mappings

        tasks = [
            victim_task(),
            light_task("l1"),
            polluter_task(),
            light_task("l2", seed=4, base=1 << 27),
        ]
        times = run_all_mappings(
            mini_machine(),
            tasks,
            scheduler_config=SchedulerConfig(num_cores=2, timeslice_cycles=5e7),
        )
        assert len(times) == 3
        for mapping_times in times.values():
            assert set(mapping_times) == {"victim", "polluter", "l1", "l2"}
            assert all(v > 0 for v in mapping_times.values())

    def test_victim_best_mapping_is_with_polluter(self):
        from repro.perf.experiment import run_all_mappings

        tasks = [
            victim_task(),
            light_task("l1"),
            polluter_task(),
            light_task("l2", seed=4, base=1 << 27),
        ]
        by_name = {t.name: t.tid for t in tasks}
        times = run_all_mappings(
            mini_machine(),
            tasks,
            scheduler_config=SchedulerConfig(num_cores=2, timeslice_cycles=5e7),
        )
        best_mapping = min(times, key=lambda m: times[m]["victim"])
        assert best_mapping.core_of(by_name["victim"]) == best_mapping.core_of(
            by_name["polluter"]
        )


class TestPageRemappingClaim:
    """Section 5.3: page-granularity remapping shouldn't change decisions.

    The signature operates at cache-line granularity with hashed indexing,
    so relocating a task's pages (new physical addresses, same behaviour)
    must yield the same schedule.
    """

    def majority_for(self, base_shift):
        tasks = [
            victim_task(),
            light_task("l1"),
            polluter_task(),
            light_task("l2", seed=4, base=1 << 27),
        ]
        # "Remap" the victim's pages: shift its address slice.
        tasks[0].generator.base_block += base_shift
        monitor = UserLevelMonitor(WeightSortPolicy(), interval_cycles=400_000.0)
        sim = MulticoreSimulator(
            mini_machine(),
            tasks,
            signature_config=SignatureConfig(num_cores=2, num_sets=128, ways=8),
            monitor=monitor,
            scheduler_config=mini_sched(),
        )
        result = sim.run(min_wall_cycles=8_000_000.0)
        names = {t.tid: t.name for t in tasks}
        return frozenset(
            frozenset(names[t] for t in g) for g in result.majority_mapping.groups
        )

    def test_remapped_pages_same_decision(self):
        # 0 pages vs 4096 pages (64-block pages x 512) of displacement.
        assert self.majority_for(0) == self.majority_for(512 * 64)


class TestProfileDrivenTasks:
    def test_profile_pipeline_smoke(self):
        profile = WorkloadProfile(
            name="toy",
            category="moderate",
            working_set_kb=16,
            hot_set_kb=8,
            accesses_per_kinstr=10.0,
            pattern="zipf",
            locality=0.85,
        )
        from repro.sched.process import task_from_profile

        task = task_from_profile(profile, instructions=500_000, seed=1)
        sim = MulticoreSimulator(mini_machine(), [task])
        result = sim.run()
        assert result.task("toy").completions >= 1
