"""Deterministic crash recovery: kill-at-every-index equivalence.

The contract pinned here is the tentpole's acceptance criterion: for a
500-event seeded trace, killing the daemon after *any* event index and
recovering from the durability directory must reproduce — byte for
byte, via :func:`~repro.durable.state.state_fingerprint` — the state an
uninterrupted run reaches at that index, with no event ever applied
twice. Events are driven through ``_handle`` directly (the exact code
path the consumer task and the recovery replay both use) so every
post-event state directory can be copied synchronously.
"""

import shutil

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.durable.manager import DurabilityManager
from repro.durable.state import capture_state, restore_state, state_fingerprint
from repro.errors import ServiceError
from repro.service.daemon import SchedulerService, ServiceConfig
from repro.service.events import event_from_arrival
from repro.workloads.arrivals import poisson_trace

TRACE_EVENTS = 500
TRACE_SEED = 13
SNAPSHOT_INTERVAL = 64


def make_config(**overrides):
    defaults = dict(num_cores=4, drift_threshold=8)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def trace_events(count=TRACE_EVENTS, seed=TRACE_SEED):
    return [
        event_from_arrival(a) for a in poisson_trace(count, seed=seed)
    ]


def run_oracle(events, config):
    """Uninterrupted run; returns the service and per-index fingerprints."""
    service = SchedulerService(WeightSortPolicy(), config)
    fingerprints = []
    for event in events:
        service._handle(event)
        fingerprints.append(state_fingerprint(capture_state(service)))
    return service, fingerprints


def run_durable(events, config, state_dir, copies_dir):
    """Durable run that copies the state directory after every event."""
    durability = DurabilityManager(
        state_dir, snapshot_interval=SNAPSHOT_INTERVAL
    )
    service = SchedulerService(WeightSortPolicy(), config, durability=durability)
    for index, event in enumerate(events, start=1):
        service._handle(event)
        shutil.copytree(state_dir, copies_dir / f"at-{index}")
    return service


def test_kill_at_every_index_recovers_the_exact_state(tmp_path):
    events = trace_events()
    config = make_config()
    oracle, fingerprints = run_oracle(events, config)
    durable = run_durable(
        events, config, tmp_path / "live", tmp_path / "copies"
    )
    # The durable run itself never diverged from the oracle.
    assert state_fingerprint(capture_state(durable)) == fingerprints[-1]
    mismatches = []
    for index in range(1, len(events) + 1):
        recovered = SchedulerService.recover(
            WeightSortPolicy(),
            config,
            state_dir=tmp_path / "copies" / f"at-{index}",
            snapshot_interval=SNAPSHOT_INTERVAL,
        )
        if state_fingerprint(capture_state(recovered)) != fingerprints[
            index - 1
        ]:
            mismatches.append(index)
        # No event applied twice, none lost: the counter is exact.
        assert recovered.events_processed == index
    assert mismatches == []


def test_recovered_run_continues_to_the_oracle_end(tmp_path):
    events = trace_events(count=200, seed=7)
    config = make_config()
    oracle, fingerprints = run_oracle(events, config)
    run_durable(events, config, tmp_path / "live", tmp_path / "copies")
    for crash_index in (1, 63, 64, 65, 137, 199):
        recovered = SchedulerService.recover(
            WeightSortPolicy(),
            config,
            state_dir=tmp_path / "copies" / f"at-{crash_index}",
            snapshot_interval=SNAPSHOT_INTERVAL,
        )
        for event in events[crash_index:]:
            recovered._handle(event)
        assert (
            state_fingerprint(capture_state(recovered)) == fingerprints[-1]
        )
        # Full-remap counts track StablePolicy invocations one-to-one.
        assert recovered.mapper.full_remaps == oracle.mapper.full_remaps


def test_recovery_without_a_snapshot_replays_the_full_wal(tmp_path):
    events = trace_events(count=50, seed=3)
    config = make_config()
    _, fingerprints = run_oracle(events, config)
    durability = DurabilityManager(tmp_path / "wal-only", snapshot_interval=10_000)
    service = SchedulerService(WeightSortPolicy(), config, durability=durability)
    for event in events:
        service._handle(event)
    recovered = SchedulerService.recover(
        WeightSortPolicy(), config, state_dir=tmp_path / "wal-only"
    )
    assert not recovered.recovered_from_snapshot
    assert recovered.recovered_events == len(events)
    assert state_fingerprint(capture_state(recovered)) == fingerprints[-1]


def test_corrupt_snapshot_falls_back_to_wal_replay(tmp_path):
    events = trace_events(count=40, seed=5)
    config = make_config()
    _, fingerprints = run_oracle(events, config)
    state_dir = tmp_path / "dir"
    durability = DurabilityManager(state_dir, snapshot_interval=10_000)
    service = SchedulerService(WeightSortPolicy(), config, durability=durability)
    for event in events:
        service._handle(event)
    # A garbage snapshot lands in the directory (torn write, bad disk).
    (state_dir / "snapshot.json").write_text("garbage", encoding="ascii")
    recovered = SchedulerService.recover(
        WeightSortPolicy(), config, state_dir=state_dir
    )
    assert not recovered.recovered_from_snapshot
    assert state_fingerprint(capture_state(recovered)) == fingerprints[-1]
    assert (state_dir / "snapshot.json.corrupt").exists()


def test_torn_wal_tail_loses_only_the_unacknowledged_event(tmp_path):
    events = trace_events(count=30, seed=9)
    config = make_config()
    state_dir = tmp_path / "dir"
    durability = DurabilityManager(state_dir, snapshot_interval=10_000)
    service = SchedulerService(WeightSortPolicy(), config, durability=durability)
    for event in events:
        service._handle(event)
    with open(state_dir / "events.wal", "a", encoding="ascii") as handle:
        handle.write('{"version": 1, "lsn": 31, "ev')  # crash mid-append
    recovered = SchedulerService.recover(
        WeightSortPolicy(), config, state_dir=state_dir
    )
    assert recovered.events_processed == len(events)


def test_restore_refuses_a_mismatched_configuration(tmp_path):
    events = trace_events(count=SNAPSHOT_INTERVAL + 5, seed=2)
    state_dir = tmp_path / "dir"
    durability = DurabilityManager(
        state_dir, snapshot_interval=SNAPSHOT_INTERVAL
    )
    service = SchedulerService(
        WeightSortPolicy(), make_config(), durability=durability
    )
    for event in events:
        service._handle(event)
    with pytest.raises(ServiceError, match="num_cores"):
        SchedulerService.recover(
            WeightSortPolicy(),
            make_config(num_cores=8),
            state_dir=state_dir,
            snapshot_interval=SNAPSHOT_INTERVAL,
        )


def test_restore_refuses_an_unknown_schema():
    service = SchedulerService(WeightSortPolicy(), make_config())
    state = capture_state(service)
    state["schema"] = 99
    with pytest.raises(ServiceError, match="schema"):
        restore_state(service, state)


def test_checkpoint_bounds_the_wal_tail(tmp_path):
    events = trace_events(count=20, seed=4)
    config = make_config()
    durability = DurabilityManager(tmp_path / "dir", snapshot_interval=10_000)
    service = SchedulerService(WeightSortPolicy(), config, durability=durability)
    for event in events:
        service._handle(event)
    assert service.checkpoint() is True
    recovered = SchedulerService.recover(
        WeightSortPolicy(), config, state_dir=tmp_path / "dir"
    )
    assert recovered.recovered_from_snapshot
    assert recovered.recovered_events == 0  # snapshot covers everything
    assert recovered.events_processed == len(events)


def test_checkpoint_without_durability_is_a_noop():
    service = SchedulerService(WeightSortPolicy(), make_config())
    assert service.checkpoint() is False
