"""DurabilityManager: write-ahead ordering, checkpoint cadence, loading."""

import pytest

from repro.durable.manager import DurabilityManager
from repro.errors import ConfigurationError


def test_record_event_appends_before_anything_else(tmp_path):
    manager = DurabilityManager(tmp_path)
    assert manager.record_event({"kind": "admit", "pid": 1}) == 1
    assert manager.record_event({"kind": "retire", "pid": 1}) == 2
    assert [lsn for lsn, _ in manager.wal.replay(0)] == [1, 2]


def test_note_applied_checkpoints_on_the_interval(tmp_path):
    manager = DurabilityManager(tmp_path, snapshot_interval=3)
    captured = []

    def capture():
        captured.append(True)
        return {"population": len(captured)}

    for event_number in range(1, 7):
        manager.record_event({"n": event_number})
        checkpointed = manager.note_applied(capture)
        assert checkpointed is (event_number % 3 == 0)
    # capture() ran only when a snapshot was actually due.
    assert len(captured) == 2
    assert manager.checkpoints == 2
    state, last_lsn = manager.snapshots.load()
    assert state == {"population": 2} and last_lsn == 6
    # The WAL was compacted behind the snapshot (anchor record only).
    assert [lsn for lsn, _ in manager.wal.replay(last_lsn)] == []


def test_load_returns_snapshot_plus_wal_tail(tmp_path):
    manager = DurabilityManager(tmp_path, snapshot_interval=2)
    for event_number in range(1, 6):  # snapshot at 2 and 4; tail = [5]
        manager.record_event({"n": event_number})
        manager.note_applied(lambda: {"upto": event_number})
    state, snapshot_lsn, tail = DurabilityManager(tmp_path).load()
    assert state == {"upto": 4} and snapshot_lsn == 4
    assert [(lsn, event["n"]) for lsn, event in tail] == [(5, 5)]


def test_load_without_any_state_is_empty(tmp_path):
    state, snapshot_lsn, tail = DurabilityManager(tmp_path / "fresh").load()
    assert state is None and snapshot_lsn == 0 and tail == []


def test_load_falls_back_to_full_wal_on_corrupt_snapshot(tmp_path):
    manager = DurabilityManager(tmp_path, snapshot_interval=100)
    for event_number in range(3):
        manager.record_event({"n": event_number})
    (tmp_path / "snapshot.json").write_text("garbage", encoding="ascii")
    fresh = DurabilityManager(tmp_path)
    state, snapshot_lsn, tail = fresh.load()
    assert state is None and snapshot_lsn == 0
    assert [lsn for lsn, _ in tail] == [1, 2, 3]
    assert fresh.snapshots.corrupt == 1


def test_status_payload(tmp_path):
    manager = DurabilityManager(tmp_path, snapshot_interval=5)
    manager.record_event({"n": 1})
    manager.note_applied(lambda: {})
    status = manager.status()
    assert status["state_dir"] == str(tmp_path)
    assert status["snapshot_interval"] == 5
    assert status["wal_last_lsn"] == 1
    assert status["wal_records_written"] == 1
    assert status["checkpoints"] == 0
    assert status["events_since_snapshot"] == 1


def test_constructor_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        DurabilityManager(tmp_path, snapshot_interval=0)
    blocker = tmp_path / "blocker"
    blocker.write_text("file", encoding="ascii")
    with pytest.raises(ConfigurationError):
        DurabilityManager(blocker)
