"""Idempotency: the dedup table, and duplicate resends over real sockets."""

import asyncio

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.durable.dedup import DedupTable
from repro.errors import ConfigurationError
from repro.service.client import ServiceClient
from repro.service.daemon import SchedulerService, ServiceConfig
from repro.service.server import ServiceServer


def test_fresh_requests_are_not_duplicates():
    table = DedupTable()
    assert table.check("cli", 1) is None
    assert table.hits == 0


def test_remembered_request_answers_from_the_window():
    table = DedupTable()
    table.remember("cli", 1, {"ok": True, "pid": 7})
    assert table.check("cli", 1) == {"ok": True, "pid": 7}
    assert table.hits == 1


def test_old_duplicate_outside_the_window_is_still_recognised():
    table = DedupTable(window=2)
    for seq in range(1, 5):
        table.remember("cli", seq, {"seq": seq})
    # seq 1 and 2 were evicted, but stay below the high-water mark.
    assert table.check("cli", 1) == {"duplicate": True}
    assert table.check("cli", 4) == {"seq": 4}
    assert table.check("cli", 5) is None


def test_clients_are_independent():
    table = DedupTable()
    table.remember("a", 3, {"who": "a"})
    assert table.check("b", 3) is None
    assert len(table) == 1


def test_export_restore_round_trip():
    table = DedupTable(window=4)
    table.remember("a", 1, {"r": 1})
    table.remember("a", 2, {"r": 2})
    table.remember("b", 9, {"r": 9})
    clone = DedupTable(window=4)
    clone.restore(table.export_state())
    assert clone.check("a", 2) == {"r": 2}
    assert clone.check("b", 9) == {"r": 9}
    assert clone.check("a", 3) is None
    assert clone.export_state() == table.export_state()


def test_window_validation():
    with pytest.raises(ConfigurationError):
        DedupTable(window=0)


def test_duplicate_resend_after_reconnect_is_not_reapplied():
    """The satellite contract: a client that times out, reconnects, and
    resends its last mutating request must see the original result and
    must not mutate the daemon a second time."""

    async def run():
        service = SchedulerService(
            WeightSortPolicy(), ServiceConfig(num_cores=2)
        )
        await service.start()
        server = ServiceServer(service, host="127.0.0.1", port=0)
        await server.start()
        host, port = server.address
        client = await ServiceClient.connect(
            host, port, client_id="cli-1", timeout=5.0
        )
        try:
            first = await client.submit(1, "mcf")
            assert first["ok"] and "duplicate" not in first["result"]
            # The connection dies (e.g. after a ServiceTimeout); the
            # request-id and seq counters survive the reconnect.
            await client.reconnect(attempts=3)
            resent = await client.resend_last()
            assert resent["ok"]
            assert resent["result"]["duplicate"] is True
            assert resent["result"]["pid"] == first["result"]["pid"]
            assert resent["result"]["mapping"] == first["result"]["mapping"]
            # Applied exactly once despite two wire deliveries.
            assert service.events_processed == 1
            assert service.events_deduped == 1
            assert len(service.registry) == 1
            status = await client.status()
            assert status["status"]["events"]["deduped"] == 1
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_untagged_clients_keep_at_least_once_semantics():
    # Without a client_id there is no tag: a resend is a second apply
    # (and the daemon answers it as a duplicate-admit rejection).
    async def run():
        service = SchedulerService(
            WeightSortPolicy(), ServiceConfig(num_cores=2)
        )
        await service.start()
        server = ServiceServer(service, host="127.0.0.1", port=0)
        await server.start()
        host, port = server.address
        client = await ServiceClient.connect(host, port, timeout=5.0)
        try:
            first = await client.submit(1, "mcf")
            assert first["ok"]
            resent = await client.resend_last()
            assert resent["result"]["ok"] is False  # pid already admitted
            assert service.events_processed == 2
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())
