"""Tests for the crash-consistency layer (:mod:`repro.durable`)."""
