"""Snapshot store: checksums, atomic publish, quarantine on corruption."""

import json

import pytest

from repro.durable.snapshot import SNAPSHOT_SCHEMA_VERSION, SnapshotStore
from repro.errors import ConfigurationError

STATE = {"registry": {"processes": {}}, "counters": {"events_processed": 7}}


def test_save_load_round_trip(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save(STATE, last_lsn=41)
    assert store.load() == (STATE, 41)
    assert store.writes == 1 and store.corrupt == 0


def test_newer_save_replaces_older(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save(STATE, last_lsn=10)
    store.save({"v": 2}, last_lsn=20)
    assert store.load() == ({"v": 2}, 20)


def test_missing_snapshot_is_none_without_quarantine(tmp_path):
    store = SnapshotStore(tmp_path)
    assert store.load() is None
    assert store.corrupt == 0
    assert not list(tmp_path.glob("*.corrupt*"))


def test_bitflipped_state_fails_the_checksum_and_quarantines(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save(STATE, last_lsn=41)
    envelope = json.loads(store.path.read_text(encoding="ascii"))
    envelope["state"]["counters"]["events_processed"] = 9999  # tampered
    store.path.write_text(json.dumps(envelope), encoding="ascii")
    assert store.load() is None
    assert store.corrupt == 1
    assert (tmp_path / "snapshot.json.corrupt").exists()
    assert not store.path.exists()  # moved aside, not copied


def test_undecodable_snapshot_is_quarantined(tmp_path):
    store = SnapshotStore(tmp_path)
    store.root.mkdir(exist_ok=True)
    store.path.write_text("not json at all", encoding="ascii")
    assert store.load() is None
    assert (tmp_path / "snapshot.json.corrupt").exists()


def test_wrong_schema_version_is_quarantined(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save(STATE, last_lsn=1)
    envelope = json.loads(store.path.read_text(encoding="ascii"))
    envelope["version"] = SNAPSHOT_SCHEMA_VERSION + 1
    store.path.write_text(json.dumps(envelope), encoding="ascii")
    assert store.load() is None
    assert store.corrupt == 1


def test_quarantine_names_never_collide(tmp_path):
    store = SnapshotStore(tmp_path)
    for round_number in range(3):
        store.root.mkdir(exist_ok=True)
        store.path.write_text(f"garbage {round_number}", encoding="ascii")
        assert store.load() is None
    names = sorted(p.name for p in tmp_path.glob("snapshot.json.corrupt*"))
    assert names == [
        "snapshot.json.corrupt",
        "snapshot.json.corrupt.1",
        "snapshot.json.corrupt.2",
    ]
    assert store.corrupt == 3
    # The evidence survives: each quarantined file keeps its bytes.
    assert (tmp_path / "snapshot.json.corrupt").read_text(
        encoding="ascii"
    ) == "garbage 0"


def test_quarantine_warns_once_then_logs_quietly(tmp_path, caplog):
    store = SnapshotStore(tmp_path)
    with caplog.at_level("WARNING", logger="repro.durable.snapshot"):
        for round_number in range(2):
            store.root.mkdir(exist_ok=True)
            store.path.write_text("junk", encoding="ascii")
            store.load()
    warnings = [r for r in caplog.records if r.levelname == "WARNING"]
    assert len(warnings) == 1


def test_saving_after_corruption_restores_service(tmp_path):
    store = SnapshotStore(tmp_path)
    store.root.mkdir(exist_ok=True)
    store.path.write_text("junk", encoding="ascii")
    assert store.load() is None
    store.save(STATE, last_lsn=5)
    assert store.load() == (STATE, 5)


def test_non_directory_root_is_rejected(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("file", encoding="ascii")
    with pytest.raises(ConfigurationError):
        SnapshotStore(blocker)
