"""The event WAL: LSN ordering, torn tails, compaction, fsync policy."""

import pytest

from repro.durable.wal import WAL_SCHEMA_VERSION, EventWAL
from repro.errors import ConfigurationError


def wal_at(tmp_path, **kwargs):
    """A fresh EventWAL under the test's temp directory."""
    return EventWAL(tmp_path / "events.wal", **kwargs)


def test_append_assigns_consecutive_lsns(tmp_path):
    wal = wal_at(tmp_path)
    lsns = [wal.append({"kind": "admit", "pid": p}) for p in range(5)]
    assert lsns == [1, 2, 3, 4, 5]
    assert wal.last_lsn == 5
    assert [lsn for lsn, _ in wal.replay(0)] == lsns


def test_replay_after_lsn_is_strict(tmp_path):
    wal = wal_at(tmp_path)
    for p in range(4):
        wal.append({"pid": p})
    tail = wal.replay(2)
    assert [lsn for lsn, _ in tail] == [3, 4]
    assert [event["pid"] for _, event in tail] == [2, 3]


def test_reopened_wal_continues_the_sequence(tmp_path):
    wal_at(tmp_path).append({"pid": 1})
    reopened = wal_at(tmp_path)
    assert reopened.append({"pid": 2}) == 2


def test_torn_tail_is_skipped_by_replay(tmp_path):
    wal = wal_at(tmp_path)
    for p in range(3):
        wal.append({"pid": p})
    # Simulate a crash mid-append: a partial record with no newline.
    with open(wal.path, "a", encoding="ascii") as handle:
        handle.write('{"version": 1, "lsn": 4, "ev')
    reopened = wal_at(tmp_path)
    assert [lsn for lsn, _ in reopened.replay(0)] == [1, 2, 3]
    assert reopened.corrupt_lines == 1


def test_torn_tail_is_truncated_before_the_next_append(tmp_path):
    # A record appended behind a torn line would be durable yet
    # invisible to strict replay — the first append must repair first.
    wal = wal_at(tmp_path)
    for p in range(3):
        wal.append({"pid": p})
    with open(wal.path, "a", encoding="ascii") as handle:
        handle.write("garbage that never ends")
    reopened = wal_at(tmp_path)
    assert reopened.append({"pid": 99}) == 4
    fresh = wal_at(tmp_path)
    assert [lsn for lsn, _ in fresh.replay(0)] == [1, 2, 3, 4]
    assert fresh.corrupt_lines == 0


def test_garbled_middle_ends_trustworthy_history(tmp_path):
    wal = wal_at(tmp_path)
    for p in range(4):
        wal.append({"pid": p})
    lines = wal.path.read_text(encoding="ascii").splitlines(keepends=True)
    lines[1] = "}}corrupt{{\n"
    wal.path.write_text("".join(lines), encoding="ascii")
    reopened = wal_at(tmp_path)
    # Records past the corruption have no trustworthy ordering.
    assert [lsn for lsn, _ in reopened.replay(0)] == [1]
    assert reopened.corrupt_lines == 1


def test_out_of_sequence_lsn_ends_replay(tmp_path):
    wal = wal_at(tmp_path)
    for p in range(3):
        wal.append({"pid": p})
    lines = wal.path.read_text(encoding="ascii").splitlines(keepends=True)
    del lines[1]  # a gap: 1, 3
    wal.path.write_text("".join(lines), encoding="ascii")
    assert [lsn for lsn, _ in wal_at(tmp_path).replay(0)] == [1]


def test_wrong_schema_version_is_corruption(tmp_path):
    wal = wal_at(tmp_path)
    wal.append({"pid": 1})
    text = wal.path.read_text(encoding="ascii")
    wal.path.write_text(
        text.replace(f'"version":{WAL_SCHEMA_VERSION}', '"version":99'),
        encoding="ascii",
    )
    assert wal_at(tmp_path).replay(0) == []


def test_compact_drops_covered_records_but_keeps_the_anchor(tmp_path):
    wal = wal_at(tmp_path)
    for p in range(6):
        wal.append({"pid": p})
    assert wal.compact(4) == 2
    assert [lsn for lsn, _ in wal.replay(0)] == [5, 6]
    # Fully covered: the newest record survives as the LSN anchor.
    assert wal.compact(6) == 1
    assert [lsn for lsn, _ in wal.replay(0)] == [6]
    assert wal.append({"pid": 99}) == 7
    reopened = wal_at(tmp_path)
    assert reopened.last_lsn == 7


def test_compact_on_an_empty_wal_is_a_noop(tmp_path):
    wal = wal_at(tmp_path)
    assert wal.compact(0) == 0
    assert wal.last_lsn == 0


def test_fsync_every_batches_syncs(tmp_path):
    wal = wal_at(tmp_path, fsync_every=3)
    for p in range(7):
        wal.append({"pid": p})
    assert wal.fsyncs == 2  # after records 3 and 6
    wal.sync()
    assert wal.fsyncs == 3  # the deferred seventh record
    wal.sync()
    assert wal.fsyncs == 3  # nothing pending: no extra fsync


def test_len_counts_intact_records(tmp_path):
    wal = wal_at(tmp_path)
    assert len(wal) == 0
    wal.append({"pid": 1})
    assert len(wal) == 1


def test_constructor_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        EventWAL(tmp_path / "log", fsync_every=0)
    (tmp_path / "adir").mkdir()
    with pytest.raises(ConfigurationError):
        EventWAL(tmp_path / "adir")
