"""Replay driver: load reports, transports, and the pinned
incremental-vs-full equivalence contract."""

import json

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.alloc.weighted import WeightedInterferenceGraphPolicy
from repro.errors import ServiceError
from repro.service.daemon import ServiceConfig
from repro.service.replay import (
    ReplayReport,
    percentile,
    run_replay,
    write_bench_json,
)
from repro.workloads.arrivals import bursty_trace, poisson_trace


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 99.0) == 4.0
        assert percentile(values, 0.0) == 1.0

    def test_rejects_bad_q(self):
        with pytest.raises(ServiceError):
            percentile([1.0], 101.0)


def test_unknown_transport_is_rejected():
    with pytest.raises(ServiceError):
        run_replay(poisson_trace(5, seed=0), transport="carrier-pigeon")


def test_direct_replay_report_shape():
    trace = poisson_trace(120, seed=11)
    report = run_replay(trace)
    assert report.trace_kind == "poisson"
    assert report.trace_seed == 11
    assert report.trace_events == 120
    assert report.transport == "direct"
    assert report.processed == 121  # every event + the trailing settle
    assert report.processed == report.ok + report.rejected
    assert report.rejected == 0
    assert report.dropped == 0
    assert report.events_per_second > 0.0
    assert report.latency_p99_seconds >= report.latency_p50_seconds >= 0.0
    assert report.full_remaps >= 1  # at least the settle
    assert report.final_population == len(trace.final_population())
    assert report.oracle_match


def test_socket_replay_round_trips_every_event():
    trace = poisson_trace(60, seed=4)
    report = run_replay(trace, transport="socket")
    assert report.transport == "socket"
    assert report.processed == 61
    assert report.rejected == 0
    assert report.dropped == 0
    assert report.oracle_match


@pytest.mark.parametrize(
    "make_trace", [poisson_trace, bursty_trace], ids=["poisson", "bursty"]
)
def test_500_event_incremental_matches_full_remap(make_trace):
    """The PR's pinned equivalence contract.

    Replaying the same 500-event trace with drift_threshold=16 (real
    incremental operation) and drift_threshold=1 (a full remap on every
    event) must end in byte-identical final mappings, and both must
    equal the from-scratch oracle on the final snapshot.
    """
    trace = make_trace(500, seed=11)
    incremental = run_replay(
        trace,
        WeightSortPolicy(),
        config=ServiceConfig(num_cores=4, drift_threshold=16),
    )
    full = run_replay(
        trace,
        WeightSortPolicy(),
        config=ServiceConfig(num_cores=4, drift_threshold=1),
    )
    assert incremental.dropped == full.dropped == 0
    assert incremental.oracle_match
    assert full.oracle_match
    assert incremental.final_mapping == full.final_mapping
    assert incremental.oracle_mapping == full.oracle_mapping
    # And the runs really took different paths to the same answer.
    assert incremental.incremental_updates > 0
    assert full.incremental_updates == 0
    assert full.full_remaps > incremental.full_remaps


def test_weighted_policy_also_settles_to_its_oracle():
    trace = poisson_trace(80, seed=7)
    report = run_replay(
        trace,
        WeightedInterferenceGraphPolicy(seed=3),
        config=ServiceConfig(num_cores=2, drift_threshold=8),
    )
    assert report.dropped == 0
    assert report.oracle_match
    assert report.policy == "weighted_interference_graph"


def test_replay_is_deterministic_in_everything_but_time():
    trace = bursty_trace(150, seed=9)
    a = run_replay(trace)
    b = run_replay(trace)
    for field in (
        "processed", "ok", "rejected", "dropped", "full_remaps",
        "incremental_updates", "final_population", "final_mapping",
        "oracle_mapping", "oracle_match",
    ):
        assert getattr(a, field) == getattr(b, field)


def test_write_bench_json(tmp_path):
    report = run_replay(poisson_trace(30, seed=2))
    target = write_bench_json(report, tmp_path / "nested" / "bench.json")
    payload = json.loads(target.read_text())
    assert payload["events"]["dropped"] == 0
    assert payload["final"]["oracle_match"] is True
    assert payload["trace"] == {"kind": "poisson", "seed": 2, "events": 30}
    assert isinstance(report, ReplayReport)
