"""Overload protection and liveness: timeouts, shedding, degraded mode."""

import asyncio
import time

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.errors import ConfigurationError, ServiceTimeout
from repro.service.client import ServiceClient
from repro.service.daemon import SchedulerService, ServiceConfig
from repro.service.events import AdmitEvent
from repro.service.server import ServiceServer


async def start_stack(config=None, **server_kwargs):
    """A running daemon + server on an ephemeral localhost port."""
    service = SchedulerService(
        WeightSortPolicy(),
        config if config is not None else ServiceConfig(num_cores=2),
    )
    await service.start()
    server = ServiceServer(service, host="127.0.0.1", port=0, **server_kwargs)
    await server.start()
    return service, server


def test_server_overload_knob_validation():
    service = SchedulerService(WeightSortPolicy())
    with pytest.raises(ConfigurationError):
        ServiceServer(service, request_timeout=0.0)
    with pytest.raises(ConfigurationError):
        ServiceServer(service, shed_queue_depth=0)


def test_half_open_socket_raises_service_timeout_not_a_hang():
    """Regression for the unbounded-read bug: a peer that accepts the
    connection but never answers must surface a ServiceTimeout within
    the deadline instead of blocking the caller forever."""

    async def mute_handler(reader, writer):
        await reader.read()  # swallow everything, answer nothing

    async def run():
        mute = await asyncio.start_server(mute_handler, "127.0.0.1", 0)
        host, port = mute.sockets[0].getsockname()[:2]
        client = await ServiceClient.connect(host, port, timeout=0.2)
        try:
            started = time.monotonic()
            with pytest.raises(ServiceTimeout, match="reconnect"):
                await client.ping()
            assert time.monotonic() - started < 2.0
        finally:
            await client.close()
            mute.close()
            await mute.wait_closed()

    asyncio.run(run())


def test_timeout_none_disables_the_deadline():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        client = await ServiceClient.connect(host, port, timeout=None)
        try:
            assert (await client.ping())["ok"]
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_deep_queue_sheds_mutating_requests():
    async def run():
        service, server = await start_stack(shed_queue_depth=2)
        host, port = server.address
        # Simulate a backlog the consumer has not drained yet.
        service.queue_depth = lambda: 5
        client = await ServiceClient.connect(host, port, timeout=5.0)
        try:
            shed = await client.submit(1, "mcf")
            assert shed["ok"] is False and shed["error"] == "overloaded"
            assert server.requests_shed == 1
            # Reads are never shed: status still answers under backlog.
            assert (await client.status())["ok"]
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_request_deadline_answers_instead_of_stalling():
    async def run():
        service, server = await start_stack(request_timeout=0.05)
        host, port = server.address

        async def stuck_submit(event):
            await asyncio.sleep(30.0)

        service.submit_event = stuck_submit
        client = await ServiceClient.connect(host, port, timeout=5.0)
        try:
            late = await client.submit(1, "mcf")
            assert late["ok"] is False
            assert "deadline exceeded" in late["error"]
            assert "idempotency" in late["error"]
            assert server.requests_deadline_exceeded == 1
        finally:
            await client.close()
            del service.submit_event  # restore the real method
            await server.stop()

    asyncio.run(run())


def test_degraded_mode_serves_the_last_good_mapping():
    async def run():
        config = ServiceConfig(num_cores=2, stale_after_seconds=0.02)
        service, server = await start_stack(config=config)
        host, port = server.address
        client = await ServiceClient.connect(host, port, timeout=5.0)
        try:
            admit = await client.submit(1, "mcf")
            assert admit["ok"]
            assert service.degraded is False  # stream is fresh
            await asyncio.sleep(0.08)  # silence past the threshold
            assert service.degraded is True
            status = await client.status()
            assert status["status"]["degraded"] is True
            # Degraded is a flag, not a refusal: the last-good mapping
            # keeps being served.
            mapping = await client.mapping()
            assert mapping["ok"] and mapping["population"] == 1
            # A fresh event clears the staleness.
            await client.submit(2, "povray")
            assert service.degraded is False
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_degraded_is_inert_when_unarmed():
    service = SchedulerService(WeightSortPolicy(), ServiceConfig(num_cores=2))
    assert service.degraded is False
    service._handle(AdmitEvent(pid=1, name="mcf"))
    # No clock was read: the stamp stays unset with the feature off.
    assert service._last_event_monotonic is None
    assert service.degraded is False


def test_status_surfaces_the_new_fields():
    service = SchedulerService(WeightSortPolicy(), ServiceConfig(num_cores=2))
    status = service.status()
    assert status["degraded"] is False
    assert status["queue_depth"] == 0
    assert status["events"]["deduped"] == 0
    assert status["durability"] is None
