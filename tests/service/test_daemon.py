"""The scheduler daemon: lifecycle, backpressure, draining, health."""

import asyncio

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.errors import ConfigurationError, ServiceError
from repro.service.daemon import SchedulerService, ServiceConfig
from repro.service.events import (
    AdmitEvent,
    PhaseChangeEvent,
    RetireEvent,
    SettleEvent,
    event_from_arrival,
)
from repro.workloads.arrivals import ArrivalEvent


def make_service(**overrides):
    defaults = dict(num_cores=2, queue_capacity=8)
    defaults.update(overrides)
    return SchedulerService(WeightSortPolicy(), ServiceConfig(**defaults))


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(queue_capacity=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(wave_events=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(heartbeat_interval=0.0)


def test_submit_before_start_is_rejected():
    service = make_service()

    async def run():
        await service.submit_event(AdmitEvent(pid=1, name="mcf"))

    with pytest.raises(ServiceError):
        asyncio.run(run())


def test_double_start_is_rejected():
    async def run():
        service = make_service()
        await service.start()
        try:
            with pytest.raises(ServiceError):
                await service.start()
        finally:
            await service.stop()

    asyncio.run(run())


def test_stop_without_start_is_a_noop():
    async def run():
        await make_service().stop()

    asyncio.run(run())


def test_event_lifecycle_end_to_end():
    async def run():
        service = make_service()
        await service.start()
        try:
            admit = await service.submit_event(AdmitEvent(pid=1, name="mcf"))
            assert admit["ok"] and admit["kind"] == "admit"
            assert admit["population"] == 1
            await service.submit_event(AdmitEvent(pid=2, name="povray"))
            phase = await service.submit_event(
                PhaseChangeEvent(pid=1, name="astar")
            )
            assert phase["ok"] and phase["action"] == "full"
            retire = await service.submit_event(RetireEvent(pid=2))
            assert retire["ok"] and retire["population"] == 1
            settle = await service.submit_event(SettleEvent())
            assert settle["ok"] and settle["action"] == "full"
            assert settle["mapping"] == settle["oracle"]
        finally:
            await service.stop()
        assert service.events_processed == 5
        assert service.events_ok == 5
        assert service.events_rejected == 0
        assert service.events_dropped == 0

    asyncio.run(run())


def test_rejections_answer_instead_of_crashing():
    async def run():
        service = make_service()
        await service.start()
        try:
            dup = await service.submit_event(AdmitEvent(pid=1, name="mcf"))
            assert dup["ok"]
            dup = await service.submit_event(AdmitEvent(pid=1, name="mcf"))
            assert not dup["ok"] and "already registered" in dup["error"]
            gone = await service.submit_event(RetireEvent(pid=42))
            assert not gone["ok"]
            bogus = await service.submit_event(
                AdmitEvent(pid=2, name="no-such-benchmark")
            )
            assert not bogus["ok"] and "unknown workload" in bogus["error"]
            # The daemon is still healthy after every rejection.
            fine = await service.submit_event(AdmitEvent(pid=3, name="astar"))
            assert fine["ok"]
        finally:
            await service.stop()
        assert service.events_rejected == 3
        assert service.events_ok == 2

    asyncio.run(run())


def test_unknown_event_type_is_rejected():
    async def run():
        service = make_service()
        await service.start()
        try:
            result = await service.submit_event(object())
            assert not result["ok"]
        finally:
            await service.stop()

    asyncio.run(run())


def test_breaker_short_circuits_poison_profiles():
    async def run():
        service = make_service(breaker_threshold=2)
        await service.start()
        try:
            for pid in (1, 2):
                result = await service.submit_event(
                    AdmitEvent(pid=pid, name="no-such-benchmark")
                )
                assert not result["ok"]
                assert "short_circuited" not in result
            tripped = await service.submit_event(
                AdmitEvent(pid=3, name="no-such-benchmark")
            )
            assert tripped["short_circuited"] is True
            # Healthy profiles are unaffected by the open circuit.
            fine = await service.submit_event(AdmitEvent(pid=4, name="mcf"))
            assert fine["ok"]
            assert "no-such-benchmark" in service.status()["breaker_open"]
        finally:
            await service.stop()

    asyncio.run(run())


def test_try_submit_drops_only_when_full():
    async def run():
        service = make_service(queue_capacity=2)
        await service.start()
        try:
            # No await between the three calls: the consumer cannot run,
            # so the third submission meets a full queue.
            futures = [
                service.try_submit(AdmitEvent(pid=pid, name="mcf"))
                for pid in (1, 2, 3)
            ]
            assert futures[0] is not None and futures[1] is not None
            assert futures[2] is None
            assert service.events_dropped == 1
            results = await asyncio.gather(futures[0], futures[1])
            assert all(r["ok"] for r in results)
        finally:
            await service.stop()
        assert service.events_processed == 2

    asyncio.run(run())


def test_graceful_stop_drains_queued_events():
    async def run():
        service = make_service(queue_capacity=8)
        await service.start()
        futures = [
            service.try_submit(AdmitEvent(pid=pid, name="mcf"))
            for pid in (1, 2, 3, 4, 5)
        ]
        assert all(f is not None for f in futures)
        # Stop immediately: the consumer has not processed anything yet,
        # yet a graceful stop must resolve every queued decision.
        await service.stop(drain=True)
        assert all(f.done() for f in futures)
        results = [f.result() for f in futures]
        assert all(r["ok"] for r in results)
        assert [r["population"] for r in results] == [1, 2, 3, 4, 5]
        assert service.events_processed == 5
        assert service.events_dropped == 0
        assert not service.running
        with pytest.raises(ServiceError):
            await service.submit_event(AdmitEvent(pid=9, name="mcf"))

    asyncio.run(run())


def test_abort_stop_fails_queued_events_as_dropped():
    async def run():
        service = make_service(queue_capacity=8)
        await service.start()
        futures = [
            service.try_submit(AdmitEvent(pid=pid, name="mcf"))
            for pid in (1, 2, 3)
        ]
        await service.stop(drain=False)
        assert service.events_dropped == 3
        assert service.events_processed == 0
        for future in futures:
            assert future.done()
            assert future.result()["ok"] is False

    asyncio.run(run())


def test_heartbeat_board_sees_event_and_idle_ticks():
    async def run():
        board = {}
        service = SchedulerService(
            WeightSortPolicy(),
            ServiceConfig(num_cores=2, heartbeat_interval=0.01),
            heartbeat_board=board,
            heartbeat_slot=(0, 7),
        )
        await service.start()
        try:
            await service.submit_event(AdmitEvent(pid=1, name="mcf"))
            phase, _, _ = board[(0, 7)]
            assert phase == "service:admit"
            await asyncio.sleep(0.05)  # idle: the watchdog still sees beats
            phase, _, _ = board[(0, 7)]
            assert phase == "service:idle"
        finally:
            await service.stop()

    asyncio.run(run())


def test_status_and_mapping_payloads():
    import json

    async def run():
        service = make_service()
        await service.start()
        try:
            await service.submit_event(AdmitEvent(pid=1, name="mcf"))
            await service.submit_event(AdmitEvent(pid=2, name="povray"))
            status = service.status()
            assert status["running"] and status["accepting"]
            assert status["events"]["processed"] == 2
            assert status["registry"]["population"] == 2
            mapping = service.mapping_payload()
            assert mapping["population"] == 2
            assert sorted(p for g in mapping["groups"] for p in g) == [1, 2]
            json.dumps(status), json.dumps(mapping)  # JSON-native
        finally:
            await service.stop()

    asyncio.run(run())


def test_event_from_arrival_rejects_unknown_kinds():
    bad = ArrivalEvent(seq=0, time=0.0, kind="explode", pid=1, name="mcf")
    with pytest.raises(ServiceError):
        event_from_arrival(bad)
