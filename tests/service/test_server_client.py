"""Client/server protocol round trips over real TCP sockets."""

import asyncio

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.errors import ReproError
from repro.service.client import ServiceClient
from repro.service.daemon import SchedulerService, ServiceConfig
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
)
from repro.service.server import ServiceServer


async def start_stack(**config_overrides):
    """A running daemon + server on an ephemeral localhost port."""
    defaults = dict(num_cores=2, queue_capacity=32)
    defaults.update(config_overrides)
    service = SchedulerService(WeightSortPolicy(), ServiceConfig(**defaults))
    await service.start()
    server = ServiceServer(service, host="127.0.0.1", port=0)
    await server.start()
    return service, server


def test_address_requires_start():
    service = SchedulerService(WeightSortPolicy())
    with pytest.raises(ReproError):
        ServiceServer(service).address


def test_ping_and_full_event_round_trip():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        client = await ServiceClient.connect(host, port)
        try:
            pong = await client.ping()
            assert pong["ok"] and pong["version"] == PROTOCOL_VERSION
            admit = await client.submit(1, "mcf")
            assert admit["ok"] and admit["result"]["kind"] == "admit"
            await client.submit(2, "povray")
            phase = await client.phase_change(1, "astar")
            assert phase["ok"] and phase["result"]["action"] == "full"
            status = await client.status()
            assert status["status"]["registry"]["population"] == 2
            mapping = await client.mapping()
            assert mapping["population"] == 2
            retire = await client.retire(2)
            assert retire["ok"] and retire["result"]["population"] == 1
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_rejections_travel_as_ok_false():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        client = await ServiceClient.connect(host, port)
        try:
            await client.submit(1, "mcf")
            dup = await client.submit(1, "mcf")
            assert dup["ok"] is True  # transport ok...
            assert dup["result"]["ok"] is False  # ...decision rejected
            # A daemon-level error (unknown pid) still answers.
            gone = await client.retire(99)
            assert gone["result"]["ok"] is False
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


async def raw_exchange(host, port, payload_bytes):
    """Send raw bytes, return the first decoded response line."""
    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES
    )
    try:
        writer.write(payload_bytes)
        await writer.drain()
        line = await reader.readline()
        return decode_message(line.rstrip(b"\n"))
    finally:
        writer.close()


def test_malformed_json_answers_then_drops_the_connection():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        try:
            response = await raw_exchange(host, port, b"{broken\n")
            assert response["ok"] is False
            assert "malformed" in response["error"]
            # The daemon survives the confused client.
            client = await ServiceClient.connect(host, port)
            assert (await client.ping())["ok"]
            await client.close()
        finally:
            await server.stop()

    asyncio.run(run())


def test_unknown_op_and_missing_fields_answer_errors():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        try:
            bad_op = await raw_exchange(
                host, port,
                encode_message({"v": 1, "op": "explode", "id": 1}),
            )
            assert bad_op["ok"] is False and "unknown op" in bad_op["error"]
            missing = await raw_exchange(
                host, port,
                encode_message({"v": 1, "op": "submit", "id": 2, "pid": 1}),
            )
            assert missing["ok"] is False and "name" in missing["error"]
            wrong_type = await raw_exchange(
                host, port,
                encode_message(
                    {"v": 1, "op": "retire", "id": 3, "pid": "seven"}
                ),
            )
            assert wrong_type["ok"] is False and "int" in wrong_type["error"]
        finally:
            await server.stop()

    asyncio.run(run())


def test_future_protocol_versions_are_rejected():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        try:
            response = await raw_exchange(
                host, port,
                encode_message(
                    {"v": PROTOCOL_VERSION + 1, "op": "ping", "id": 1}
                ),
            )
            assert response["ok"] is False
            assert "version" in response["error"]
        finally:
            await server.stop()

    asyncio.run(run())


def test_shutdown_op_drains_and_stops_everything():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        client = await ServiceClient.connect(host, port)
        await client.submit(1, "mcf")
        reply = await client.shutdown()
        assert reply["ok"] and reply["stopping"] is True
        await asyncio.wait_for(server.serve_until_closed(), timeout=5.0)
        assert not service.running
        assert service.events_processed == 1
        await client.close()
        # New connections are refused once the listener is gone.
        with pytest.raises(OSError):
            await ServiceClient.connect(host, port)

    asyncio.run(run())


def test_overlong_line_is_answered_and_the_connection_dropped():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        try:
            writer.write(b"x" * (MAX_LINE_BYTES + 10) + b"\n")
            await writer.drain()
            line = await reader.readline()
            response = decode_message(line.rstrip(b"\n"))
            assert response["ok"] is False and "cap" in response["error"]
            assert await reader.read() == b""  # server hung up on us
        finally:
            writer.close()
            await server.stop()

    asyncio.run(run())


def test_surviving_connections_refuse_work_after_stop():
    async def run():
        service, server = await start_stack()
        host, port = server.address
        client = await ServiceClient.connect(host, port)
        try:
            await server.stop()  # listener closed, daemon drained...
            refused = await client.submit(1, "mcf")
            # ...but the open connection still answers — with a refusal.
            assert refused["ok"] is False
            assert "not accepting" in refused["error"]
        finally:
            await client.close()

    asyncio.run(run())
