"""Incremental mapper: stable policies, drift, repair, equivalence."""

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.alloc.weighted import WeightedInterferenceGraphPolicy
from repro.errors import ConfigurationError, ServiceError
from repro.service.mapper import IncrementalMapper, MapDecision, StablePolicy
from repro.service.registry import ProcessRegistry

PROFILES = [
    "mcf", "povray", "astar", "milc", "gcc", "bzip2", "hmmer", "sjeng",
]


def make_views(count, num_cores=2, observations=3):
    """A registry snapshot of *count* deterministic processes."""
    reg = ProcessRegistry(num_cores)
    for pid in range(1, count + 1):
        reg.admit(pid, PROFILES[(pid - 1) % len(PROFILES)])
    for _ in range(observations):
        for pid in range(1, count + 1):
            reg.observe(pid)
    return reg.views()


class TestStablePolicy:
    def test_pure_function_of_the_snapshot(self):
        views = make_views(6)
        stable = StablePolicy(WeightedInterferenceGraphPolicy(seed=5))
        first = stable.allocate(views, 2)
        for _ in range(3):
            assert stable.allocate(views, 2) == first

    def test_wrapped_counter_is_restored(self):
        policy = WeightedInterferenceGraphPolicy(seed=5)
        policy._invocations = 7
        StablePolicy(policy).allocate(make_views(4), 2)
        assert policy._invocations == 7

    def test_policies_without_counters_work(self):
        stable = StablePolicy(WeightSortPolicy())
        assert stable.name == "stable(weight_sort)"
        views = make_views(4)
        assert stable.allocate(views, 2) == stable.allocate(views, 2)


class TestMapperBasics:
    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            IncrementalMapper(WeightSortPolicy(), 0)
        with pytest.raises(ConfigurationError):
            IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=0)

    def test_admit_is_incremental_and_balanced(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=100)
        views = make_views(4)
        for pid in (1, 2, 3, 4):
            decision = mapper.admit(views, pid)
            assert isinstance(decision, MapDecision)
            assert decision.action == "incremental"
            assert decision.moved == ()  # arrivals never displace others
        sizes = sorted(len(g) for g in mapper.mapping.groups)
        assert sizes == [2, 2]
        assert mapper.incremental_updates == 4
        assert mapper.full_remaps == 0

    def test_admit_of_missing_view_is_rejected(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=100)
        with pytest.raises(ServiceError):
            mapper.admit(make_views(2), 99)

    def test_retire_unknown_pid_is_rejected(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=100)
        with pytest.raises(ServiceError):
            mapper.retire(make_views(2), 99)

    def test_phase_change_unknown_pid_is_rejected(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2)
        with pytest.raises(ServiceError):
            mapper.phase_change(make_views(2), 99)

    def test_retire_rebalances(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=100)
        views = make_views(6)
        for pid in range(1, 7):
            mapper.admit(views, pid)
        # Retire both members of one group; rebalance must keep the
        # size gap at <= 1 without a full remap.
        groups = [sorted(g) for g in mapper.mapping.groups]
        victims = groups[0][:2]
        remaining = make_views(6)
        for pid in victims:
            remaining = [v for v in remaining if v.tid != pid]
            mapper.retire(remaining, pid)
        sizes = sorted(len(g) for g in mapper.mapping.groups)
        assert sizes == [2, 2]
        assert mapper.full_remaps == 0

    def test_phase_change_forces_full_remap(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=100)
        views = make_views(4)
        for pid in (1, 2, 3, 4):
            mapper.admit(views, pid)
        assert mapper.drift == 4
        decision = mapper.phase_change(views, 2)
        assert decision.action == "full"
        assert mapper.drift == 0
        assert mapper.full_remaps == 1


class TestDrift:
    def test_threshold_triggers_full_remap(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=3)
        views = make_views(4)
        assert mapper.admit(views, 1).action == "incremental"
        assert mapper.admit(views, 2).action == "incremental"
        assert mapper.drift == 2
        decision = mapper.admit(views, 3)  # drift would reach 3: full
        assert decision.action == "full"
        assert mapper.drift == 0

    def test_threshold_one_disables_incrementality(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=1)
        views = make_views(3)
        for pid in (1, 2, 3):
            assert mapper.admit(views, pid).action == "full"
        assert mapper.incremental_updates == 0

    def test_settle_always_full_remaps(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=100)
        views = make_views(2)
        mapper.admit(views, 1)
        mapper.admit(views, 2)
        first = mapper.settle(views)
        assert first.action == "full"
        # Even with zero drift: settle pins the equivalence contract.
        second = mapper.settle(views)
        assert second.action == "full"
        assert second.mapping == first.mapping


class TestOracle:
    def test_oracle_is_a_pure_query(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2, drift_threshold=100)
        views = make_views(4)
        for pid in (1, 2, 3, 4):
            mapper.admit(views, pid)
        before = (mapper.drift, mapper.mapping, mapper.full_remaps)
        mapper.oracle(views)
        assert (mapper.drift, mapper.mapping, mapper.full_remaps) == before

    def test_settle_matches_oracle_on_the_same_views(self):
        for policy_cls in (WeightSortPolicy,):
            mapper = IncrementalMapper(policy_cls(), 2, drift_threshold=100)
            views = make_views(6)
            for pid in range(1, 7):
                mapper.admit(views, pid)
            fresh = make_views(6)
            assert mapper.settle(fresh).mapping == mapper.oracle(fresh)

    def test_oracle_of_empty_views_is_the_empty_mapping(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 3)
        mapping = mapper.oracle([])
        assert all(len(g) == 0 for g in mapping.groups)
