"""Process registry: lifecycle, streaming estimates, mapper views."""

import pytest

from repro.errors import ConfigurationError, ServiceError, WorkloadError
from repro.service.registry import DEFAULT_CAPACITY_LINES, ProcessRegistry
from repro.sched.affinity import canonical_mapping


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        ProcessRegistry(0)
    with pytest.raises(ConfigurationError):
        ProcessRegistry(2, capacity_lines=0)
    with pytest.raises(ConfigurationError):
        ProcessRegistry(2, ewma_alpha=0.0)
    with pytest.raises(ConfigurationError):
        ProcessRegistry(2, ewma_alpha=1.5)


def test_admit_retire_lifecycle():
    reg = ProcessRegistry(2)
    handle = reg.admit(1, "mcf")
    assert handle.pid == 1
    assert handle.profile.name == "mcf"
    assert handle.samples_seen == 1
    assert handle.footprint > 0.0
    assert 1 in reg
    assert len(reg) == 1
    retired = reg.retire(1)
    assert retired is handle
    assert 1 not in reg
    assert len(reg) == 0


def test_duplicate_admit_rejected():
    reg = ProcessRegistry(2)
    reg.admit(1, "mcf")
    with pytest.raises(ServiceError):
        reg.admit(1, "povray")


def test_unknown_profile_rejected():
    reg = ProcessRegistry(2)
    with pytest.raises(WorkloadError):
        reg.admit(1, "no-such-benchmark")


def test_unknown_pid_rejected():
    reg = ProcessRegistry(2)
    with pytest.raises(ServiceError):
        reg.retire(99)
    with pytest.raises(ServiceError):
        reg.observe(99)
    with pytest.raises(ServiceError):
        reg.handle(99)
    with pytest.raises(ServiceError):
        reg.phase_change(99, "mcf")


def test_provisional_core_is_least_populated():
    reg = ProcessRegistry(3)
    assert reg.admit(1, "mcf").core == 0
    assert reg.admit(2, "mcf").core == 1
    assert reg.admit(3, "mcf").core == 2
    assert reg.admit(4, "mcf").core == 0


def test_footprint_samples_are_replay_deterministic():
    def build():
        reg = ProcessRegistry(2)
        reg.admit(1, "mcf")
        reg.admit(2, "povray")
        for _ in range(5):
            reg.observe(1)
            reg.observe(2)
        return reg

    a, b = build(), build()
    assert a.handle(1).footprint == b.handle(1).footprint
    assert a.handle(2).footprint == b.handle(2).footprint


def test_samples_are_order_insensitive_per_process():
    # Interleaving other processes' samples must not shift pid 1's
    # estimate: samples index per-process, not through a shared stream.
    lone = ProcessRegistry(2)
    lone.admit(1, "mcf")
    lone.observe(1)
    crowded = ProcessRegistry(2)
    crowded.admit(1, "mcf")
    crowded.admit(2, "povray")
    crowded.observe(2)
    crowded.observe(1)
    crowded.observe(2)
    assert lone.handle(1).footprint == crowded.handle(1).footprint


def test_footprint_stays_near_hot_set():
    reg = ProcessRegistry(2)
    reg.admit(1, "mcf")
    hot = reg.handle(1).profile.hot_set_blocks
    for _ in range(20):
        footprint = reg.observe(1)
        assert 0.8 * hot <= footprint <= 1.2 * hot


def test_footprint_saturates_at_capacity():
    reg = ProcessRegistry(2, capacity_lines=100)
    reg.admit(1, "mcf")
    for _ in range(10):
        assert reg.observe(1) <= 100.0


def test_phase_change_restarts_the_estimate():
    reg = ProcessRegistry(2)
    reg.admit(1, "mcf")
    for _ in range(5):
        reg.observe(1)
    before = reg.handle(1).samples_seen
    handle = reg.phase_change(1, "povray")
    assert handle.profile.name == "povray"
    # The estimate restarts from a single fresh sample of the new
    # profile — no EWMA memory of the old one survives.
    assert handle.samples_seen == before + 1
    assert 0.8 * handle.profile.hot_set_blocks <= handle.footprint
    assert handle.footprint <= 1.2 * handle.profile.hot_set_blocks


def test_views_are_sorted_and_well_formed():
    reg = ProcessRegistry(2)
    for pid, name in [(3, "mcf"), (1, "povray"), (2, "astar")]:
        reg.admit(pid, name)
    views = reg.views()
    assert [v.tid for v in views] == [1, 2, 3]
    for view in views:
        assert view.valid
        assert view.occupancy > 0.0
        assert len(view.symbiosis) == 2
        assert all(s >= 0.0 for s in view.symbiosis)


def test_symbiosis_follows_the_xor_population_model():
    reg = ProcessRegistry(2)
    reg.admit(1, "mcf")
    reg.admit(2, "mcf")
    reg.apply_mapping(canonical_mapping([[1, 2], []]))
    shared = reg.handle(1).core
    assert reg.handle(2).core == shared
    empty = 1 - shared
    (view, _) = reg.views()
    # Against the empty core the XOR population is just |P|; sharing
    # with another copy of mcf overlaps heavily, shrinking the XOR
    # (lower symbiosis value = more footprint overlap, per the paper).
    assert view.symbiosis[empty] == pytest.approx(view.occupancy)
    assert view.symbiosis[shared] < view.symbiosis[empty]


def test_apply_mapping_moves_and_counts():
    reg = ProcessRegistry(2)
    reg.admit(1, "mcf")
    reg.admit(2, "povray")
    mapping = canonical_mapping([[1, 2], []])
    moved = reg.apply_mapping(mapping)
    assert moved == 1  # exactly one process had to change cores
    assert reg.handle(1).core == reg.handle(2).core
    assert reg.apply_mapping(mapping) == 0  # idempotent


def test_status_payload_is_json_native():
    import json

    reg = ProcessRegistry(2)
    reg.admit(1, "mcf")
    payload = reg.status()
    assert payload["population"] == 1
    assert payload["capacity_lines"] == DEFAULT_CAPACITY_LINES
    assert payload["processes"]["1"]["profile"] == "mcf"
    json.dumps(payload)  # must not raise


def test_live_pids_sorted():
    reg = ProcessRegistry(2)
    for pid in (5, 1, 3):
        reg.admit(pid, "mcf")
    assert reg.live_pids() == [1, 3, 5]
