"""The IncrementalMapper flap guard: hysteresis, rate-limit, opt-in.

The guard exists for exactly one adversary — a process flapping its
phase faster than the EWMA window, turning every event into a full
policy rerun — and must cost nothing when disarmed (the default): a
``flap_threshold=None`` mapper makes byte-identical decisions and
exports byte-identical snapshots to the pre-guard code.
"""

import pytest

from repro.alloc.weight_sort import WeightSortPolicy
from repro.errors import ConfigurationError
from repro.service.mapper import IncrementalMapper
from repro.service.registry import ProcessRegistry
from repro.service.tuning import DEFAULT_TUNING, ServiceTuning

PROFILES = ["mcf", "povray", "astar", "milc", "gcc", "bzip2"]


def make_views(count, num_cores=2, observations=3):
    """A registry snapshot of *count* deterministic processes."""
    reg = ProcessRegistry(num_cores)
    for pid in range(1, count + 1):
        reg.admit(pid, PROFILES[(pid - 1) % len(PROFILES)])
    for _ in range(observations):
        for pid in range(1, count + 1):
            reg.observe(pid)
    return reg.views()


def armed_mapper(threshold=4, window=32, drift_threshold=16):
    return IncrementalMapper(
        WeightSortPolicy(),
        2,
        drift_threshold=drift_threshold,
        tuning=ServiceTuning(flap_window=window, flap_threshold=threshold),
    )


def storm(mapper, views, pid, events):
    """Drive *events* phase changes of one pid; return the decisions."""
    return [mapper.phase_change(views, pid) for _ in range(events)]


class TestTuningValidation:
    def test_defaults_are_disarmed(self):
        assert DEFAULT_TUNING.flap_threshold is None
        assert not IncrementalMapper(WeightSortPolicy(), 2).flap_armed

    def test_bad_values_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceTuning(ewma_alpha=0.0)
        with pytest.raises(ConfigurationError):
            ServiceTuning(flap_window=0)
        with pytest.raises(ConfigurationError):
            ServiceTuning(flap_threshold=1)


class TestDisarmedIsByteIdentical:
    def test_decisions_match_the_default_mapper(self):
        views = make_views(4)
        plain = IncrementalMapper(WeightSortPolicy(), 2)
        explicit = IncrementalMapper(
            WeightSortPolicy(), 2,
            tuning=ServiceTuning(flap_threshold=None),
        )
        for mapper in (plain, explicit):
            for pid in (1, 2, 3, 4):
                mapper.admit(views, pid)
        for step in range(6):
            pid = 1 + step % 4
            assert plain.phase_change(views, pid) == explicit.phase_change(
                views, pid
            )
        assert plain.full_remaps == explicit.full_remaps
        assert plain.damped_updates == explicit.damped_updates == 0

    def test_disarmed_snapshot_has_no_guard_state(self):
        mapper = IncrementalMapper(WeightSortPolicy(), 2)
        views = make_views(2)
        mapper.admit(views, 1)
        state = mapper.export_state()
        assert "flap" not in state and "damped_updates" not in state


class TestArmedGuard:
    def test_flapper_is_detected_and_damped(self):
        mapper = armed_mapper(threshold=4)
        views = make_views(4)
        for pid in (1, 2, 3, 4):
            mapper.admit(views, pid)
        decisions = storm(mapper, views, 1, 10)
        # The first flips remap fully; once the rate crosses the
        # threshold the pid is damped to incremental re-placements.
        assert decisions[0].action == "full"
        assert decisions[-1].action == "damped"
        assert 1 in mapper.flapping_pids
        assert mapper.damped_updates > 0

    def test_full_remaps_are_rate_limited_by_drift(self):
        drift_threshold = 8
        mapper = armed_mapper(threshold=4, drift_threshold=drift_threshold)
        views = make_views(4)
        for pid in (1, 2, 3, 4):
            mapper.admit(views, pid)
        baseline = mapper.full_remaps
        events = 64
        storm(mapper, views, 1, events)
        # Un-damped flips before detection plus drift-crossing remaps:
        # far fewer than the one-per-event storm an unguarded mapper pays.
        assert mapper.full_remaps - baseline <= (
            4 + events // drift_threshold
        )

    def test_hysteresis_releases_a_quiet_pid(self):
        mapper = armed_mapper(threshold=4, window=8)
        views = make_views(4)
        for pid in (1, 2, 3, 4):
            mapper.admit(views, pid)
        storm(mapper, views, 1, 6)
        assert 1 in mapper.flapping_pids
        # Quiet period: other events age pid 1's history out of the
        # window; its next (single) flip is below threshold/2 = released.
        without_4 = [v for v in views if v.tid != 4]
        for _ in range(16):
            mapper.retire(without_4, 4)
            mapper.admit(views, 4)
        assert mapper.phase_change(views, 1).action == "full"
        assert 1 not in mapper.flapping_pids

    def test_retire_forgets_guard_state(self):
        mapper = armed_mapper(threshold=4)
        views = make_views(4)
        for pid in (1, 2, 3, 4):
            mapper.admit(views, pid)
        storm(mapper, views, 1, 6)
        assert 1 in mapper.flapping_pids
        mapper.retire(views, 1)
        assert 1 not in mapper.flapping_pids

    def test_armed_snapshot_round_trips_guard_state(self):
        mapper = armed_mapper(threshold=4)
        views = make_views(4)
        for pid in (1, 2, 3, 4):
            mapper.admit(views, pid)
        storm(mapper, views, 1, 6)
        state = mapper.export_state()
        assert state["flap"]["flapping"] == [1]

        restored = armed_mapper(threshold=4)
        restored.restore(state)
        assert restored.flapping_pids == mapper.flapping_pids
        assert restored.damped_updates == mapper.damped_updates
        # Post-restore behaviour continues where the original left off.
        assert restored.phase_change(views, 1) == mapper.phase_change(
            views, 1
        )
