"""Tests for the online scheduling daemon (repro.service)."""
