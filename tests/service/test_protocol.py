"""Wire protocol framing: encode/decode, caps, stream reading."""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    read_message,
    request,
    response_error,
    response_ok,
)


def test_encode_decode_roundtrip():
    payload = {"op": "submit", "id": 3, "pid": 7, "name": "mcf"}
    line = encode_message(payload)
    assert line.endswith(b"\n")
    assert b" " not in line  # compact separators
    assert decode_message(line.rstrip(b"\n")) == payload


def test_encode_is_canonical():
    a = encode_message({"b": 1, "a": 2})
    b = encode_message({"a": 2, "b": 1})
    assert a == b  # sorted keys: key order never leaks onto the wire


def test_encode_rejects_oversized_payloads():
    with pytest.raises(ProtocolError):
        encode_message({"blob": "x" * MAX_LINE_BYTES})


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_message(b"{not json")
    with pytest.raises(ProtocolError):
        decode_message(b'"a bare string"')
    with pytest.raises(ProtocolError):
        decode_message(b"\xff\xfe")
    with pytest.raises(ProtocolError):
        decode_message(b"x" * (MAX_LINE_BYTES + 1))


def test_request_builder():
    payload = request("status", 5)
    assert payload == {"v": PROTOCOL_VERSION, "op": "status", "id": 5}
    with pytest.raises(ProtocolError):
        request("no-such-op", 1)
    assert set(OPS) >= {"submit", "retire", "status", "shutdown"}


def test_response_builders():
    ok = response_ok(4, result={"x": 1})
    assert ok["ok"] is True and ok["id"] == 4
    err = response_error(None, "boom")
    assert err == {"id": None, "ok": False, "error": "boom"}


def _feed(data, *, eof=True, limit=MAX_LINE_BYTES):
    reader = asyncio.StreamReader(limit=limit)
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def test_read_message_roundtrip():
    async def run():
        reader = _feed(encode_message({"op": "ping", "id": 1}))
        return await read_message(reader)

    assert asyncio.run(run()) == {"op": "ping", "id": 1}


def test_read_message_eof_is_none():
    async def run():
        return await read_message(_feed(b""))

    assert asyncio.run(run()) is None


def test_read_message_overlong_line_raises():
    async def run():
        reader = _feed(b"x" * 2048, eof=False, limit=1024)
        return await read_message(reader)

    with pytest.raises(ProtocolError):
        asyncio.run(run())
