"""Figure 12 — multithreaded PARSEC mixes under the two-phase policy.

Paper claims: improvements are modest compared with SPEC (smaller, more
compute-bound working sets); ferret leads at ~10.1%.
"""

from conftest import run_once

from repro.analysis.figures import figure12_parsec_sweep
from repro.analysis.report import render_sweep

MIXES_DEFAULT = [
    ("ferret", "streamcluster", "blackscholes", "bodytrack"),
    ("ferret", "canneal", "swaptions", "x264"),
    ("dedup", "streamcluster", "blackscholes", "swaptions"),
    ("ferret", "dedup", "canneal", "bodytrack"),
]

MIXES_FULL = MIXES_DEFAULT + [
    ("canneal", "streamcluster", "x264", "bodytrack"),
    ("ferret", "x264", "blackscholes", "dedup"),
    ("swaptions", "bodytrack", "canneal", "dedup"),
    ("ferret", "streamcluster", "canneal", "swaptions"),
]


def bench_figure12_parsec(benchmark, report, full_scale):
    mixes = MIXES_FULL if full_scale else MIXES_DEFAULT
    sweep = run_once(
        benchmark,
        lambda: figure12_parsec_sweep(
            mixes, instructions_per_thread=1_500_000, seed=3
        ),
    )
    report(
        "fig12_parsec_improvement",
        render_sweep(
            sweep,
            "Figure 12: max/avg improvement per application "
            "(4-thread PARSEC-like, two-phase policy)",
        ),
    )
    # Shape: gains modest overall; ferret competitive; compute-bound apps flat.
    assert sweep.max_improvement("ferret") > 0.02
    assert sweep.max_improvement("blackscholes") < 0.05
    assert max(
        sweep.max_improvement(n) for n in sweep.benchmarks()
    ) < 0.45
