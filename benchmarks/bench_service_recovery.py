"""Service extension — crash-recovery latency for the durable daemon.

No paper figure corresponds to this: it prices the tentpole of the
durability layer (:mod:`repro.durable`). A seeded 5,000-event Poisson
trace (20,000 under ``REPRO_FULL=1``) is replayed through a daemon with
the WAL and snapshotting enabled, the dirty state directory is left
behind exactly as a crash would leave it, and the bench then times the
complete restart path — snapshot read + checksum verification, state
restore, and WAL-tail replay through the event handler — via
:func:`repro.service.replay.measure_recovery`.

Hard assertions:

* the recovered daemon's event counter equals the crashed run's — no
  event lost, none applied twice;
* the recovered mapping is byte-identical to the crashed run's final
  mapping;
* the WAL tail replayed is bounded by the snapshot interval — recovery
  cost is a function of the checkpoint cadence, not of uptime.

Writes ``results/BENCH_service_recovery.json`` with the recovery
report (latency, replayed-event count, state fingerprint).
"""

from conftest import RESULTS_DIR, run_once

from repro.service.daemon import ServiceConfig
from repro.service.replay import measure_recovery, run_replay, write_bench_json
from repro.utils.tables import format_table
from repro.workloads.arrivals import poisson_trace

#: Applied events between snapshots — also the recovery replay bound.
SNAPSHOT_INTERVAL = 256


def bench_service_recovery(benchmark, report, full_scale, tmp_path):
    num_events = 20_000 if full_scale else 5_000
    trace = poisson_trace(num_events, seed=17)
    config = ServiceConfig(num_cores=4)
    state_dir = tmp_path / "state"

    # The "crash": a full durable run whose directory is never cleaned.
    crashed = run_replay(
        trace,
        config=config,
        state_dir=state_dir,
        snapshot_interval=SNAPSHOT_INTERVAL,
    )

    result = run_once(
        benchmark, lambda: measure_recovery(state_dir, config=config)
    )

    assert result.events_processed == crashed.processed, (
        "recovery must reproduce the crashed run's event count exactly: "
        f"{result.events_processed} != {crashed.processed}"
    )
    assert result.final_mapping == crashed.final_mapping, (
        "recovered mapping diverged from the crashed run's final mapping"
    )
    assert result.recovered_events <= SNAPSHOT_INTERVAL, (
        f"WAL tail of {result.recovered_events} events exceeds the "
        f"{SNAPSHOT_INTERVAL}-event snapshot interval"
    )

    write_bench_json(result, RESULTS_DIR / "BENCH_service_recovery.json")
    report(
        "service_recovery",
        format_table(
            ["quantity", "value"],
            [
                ["trace events", crashed.processed],
                ["snapshot interval", SNAPSHOT_INTERVAL],
                ["recovered from snapshot", result.from_snapshot],
                ["WAL tail replayed", result.recovered_events],
                ["recovery latency (ms)",
                 f"{result.recovery_seconds * 1e3:.1f}"],
                ["final mapping matches", True],
                ["state fingerprint", result.fingerprint[:16]],
            ],
            title="Service extension: crash-recovery latency (5k-event run)",
        ),
    )
