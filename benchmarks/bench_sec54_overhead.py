"""Section 5.4 — implementation overheads.

Paper claims: per the printed formula the signature hardware costs 8.5%
of the L2 for a dual-core, reduced to ~2.13% by 25% set sampling; the
software bookkeeping (three 32-bit words per process, an allocator run of
hundreds of instructions every 100 ms, 1 KB RBV transfers) is negligible.
"""

import pytest
from conftest import run_once

from repro.core.overhead import (
    bits_accurate_overhead,
    paper_hardware_overhead,
    software_overhead,
)
from repro.core.signature import SignatureConfig, SignatureUnit
from repro.utils.tables import format_percent, format_table


def bench_sec54_overheads(benchmark, report):
    def compute():
        rows = []
        for cores in (2, 4, 8):
            for denom in (1, 4):
                rows.append(
                    (
                        cores,
                        denom,
                        paper_hardware_overhead(cores, sampling_denominator=denom),
                        bits_accurate_overhead(cores, sampling_denominator=denom),
                    )
                )
        return rows

    rows = run_once(benchmark, compute)
    table = format_table(
        ["cores", "sampling 1/k", "paper formula", "bits-accurate"],
        [
            [c, d, format_percent(p, 2), format_percent(b, 2)]
            for c, d, p, b in rows
        ],
        title="Section 5.4: signature hardware cost as a fraction of the L2",
    )

    # Measured state of the default dual-core unit, sampled and not.
    full = SignatureUnit(SignatureConfig(num_cores=2, num_sets=4096, ways=16))
    sampled = SignatureUnit(
        SignatureConfig(num_cores=2, num_sets=4096, ways=16, sampling_denominator=4)
    )
    so = software_overhead(num_cores=2, num_entries=full.num_entries, num_processes=4)
    table += "\n\n" + format_table(
        ["quantity", "value"],
        [
            ["unsampled hardware state (bits)", full.state_bits()],
            ["25%-sampled hardware state (bits)", sampled.state_bits()],
            ["per-process context (bytes)", so.context_bytes_per_process],
            ["RBV size (bytes)", so.rbv_bytes],
            ["allocator CPU fraction", f"{so.allocator_cpu_fraction:.2e}"],
        ],
        title="measured signature-unit state and software costs",
    )
    report("sec54_overhead", table)

    # The paper's two headline numbers.
    assert paper_hardware_overhead(2) == pytest.approx(0.0854, abs=0.001)
    assert paper_hardware_overhead(2, sampling_denominator=4) == pytest.approx(
        0.0213, abs=0.0005
    )
    # Sampling shrinks measured state 4x; software cost is negligible.
    assert full.state_bits() == 4 * sampled.state_bits()
    assert so.allocator_cpu_fraction < 1e-5
