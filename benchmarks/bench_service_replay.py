"""Service extension — replayed-arrival load bench for the daemon.

No paper figure corresponds to this: the paper schedules a fixed
process mix offline, while :mod:`repro.service` admits and retires
processes online. This bench replays a seeded 5,000-event Poisson
arrival trace (20,000 under ``REPRO_FULL=1``) through the daemon's
admission queue and reports throughput, decision-latency percentiles,
and the incremental/full remap split.

The replay runs with the durability layer **enabled** — every event is
WAL-appended and fsynced before it is applied, and state snapshots
every 256 events — so the throughput floor prices in the full
crash-consistency tax, not a best-case in-memory run.

Hard assertions (the subsystem's acceptance contract):

* zero dropped events — awaited submission backpressures, never drops;
* the settled final mapping is byte-identical to the full-remap oracle;
* throughput meets the ``REPRO_SERVICE_MIN_EPS`` floor (default 1,000
  events/second) *with the WAL enabled*.

Writes ``results/BENCH_service_replay.json`` with the full replay
report (including the durability summary).
"""

import os

from conftest import RESULTS_DIR, run_once

from repro.service.daemon import ServiceConfig
from repro.service.replay import run_replay, write_bench_json
from repro.utils.tables import format_table
from repro.workloads.arrivals import poisson_trace

#: Throughput floor in events/second (env-overridable for slow CI hosts).
MIN_EVENTS_PER_SECOND = float(os.environ.get("REPRO_SERVICE_MIN_EPS", "1000"))


def bench_service_replay(benchmark, report, full_scale, tmp_path):
    num_events = 20_000 if full_scale else 5_000
    trace = poisson_trace(num_events, seed=11)

    result = run_once(
        benchmark,
        lambda: run_replay(
            trace,
            config=ServiceConfig(num_cores=4),
            state_dir=tmp_path / "state",
        ),
    )

    assert result.dropped == 0, "the awaited submission path never drops"
    assert result.durability is not None
    assert result.durability["wal_records_written"] == result.processed
    assert result.oracle_match, (
        "settled mapping must equal the full-remap oracle: "
        f"{result.final_mapping} != {result.oracle_mapping}"
    )
    assert result.events_per_second >= MIN_EVENTS_PER_SECOND, (
        f"{result.events_per_second:.0f} events/s is under the "
        f"{MIN_EVENTS_PER_SECOND:.0f}/s floor"
    )

    write_bench_json(result, RESULTS_DIR / "BENCH_service_replay.json")
    report(
        "service_replay",
        format_table(
            ["quantity", "value"],
            [
                ["trace", f"{result.trace_kind} seed {result.trace_seed}"],
                ["events replayed", result.processed],
                ["dropped", result.dropped],
                ["throughput (events/s)", f"{result.events_per_second:.0f}"],
                ["p50 latency (us)",
                 f"{result.latency_p50_seconds * 1e6:.0f}"],
                ["p99 latency (us)",
                 f"{result.latency_p99_seconds * 1e6:.0f}"],
                ["full remaps", result.full_remaps],
                ["incremental updates", result.incremental_updates],
                ["final population", result.final_population],
                ["oracle match", result.oracle_match],
                ["WAL records", result.durability["wal_records_written"]],
                ["WAL fsyncs", result.durability["wal_fsyncs"]],
                ["snapshots", result.durability["snapshot_writes"]],
            ],
            title="Service extension: 5k-event replayed-arrival load (WAL on)",
        ),
    )
