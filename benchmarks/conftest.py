"""Shared fixtures for the figure/table reproduction harnesses.

Every ``bench_*`` file regenerates one table or figure from the paper's
evaluation section: it computes the series at a default scale (set
``REPRO_FULL=1`` for the paper's full sweep sizes), prints the paper-style
rows, saves them under ``benchmarks/results/``, and times the computation
with a single pedantic round (these are experiments, not microbenchmarks —
re-running them dozens of times would be pointless).
"""

import json
import os
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """True when REPRO_FULL=1: run the paper's full sweep sizes."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def jobs() -> int:
    """Worker count from REPRO_JOBS (default 1: the serial code path).

    Set ``REPRO_JOBS=4`` to fan the sweep harnesses out over a
    :class:`repro.jobs.Orchestrator` process pool; results stay
    bit-identical to the serial orchestrated run (see
    ``docs/orchestration.md``).
    """
    return int(os.environ.get("REPRO_JOBS", "1"))


def orchestrator_for(jobs: int):
    """An :class:`~repro.jobs.Orchestrator` for *jobs* > 1, else ``None``."""
    if jobs <= 1:
        return None
    from repro.jobs import Orchestrator

    return Orchestrator(jobs=jobs)


@pytest.fixture(autouse=True)
def telemetry(request):
    """Per-bench telemetry: metrics always on, tracing when REPRO_TRACE set.

    Every bench runs under an active :mod:`repro.telemetry` context so
    the simulator/orchestrator metrics it accumulates land in a
    machine-readable ``results/BENCH_<name>.json`` (bench name, wall
    seconds, metrics snapshot) at teardown — the artifact CI and
    regression tooling diff instead of scraping ``bench_output.txt``.

    Setting ``REPRO_TRACE`` (any non-empty value; with ``REPRO_JOBS > 1``
    it must be a writable path, as spawned workers append span part files
    next to it) additionally records spans and writes a per-bench Chrome
    trace to ``results/TRACE_<name>.json``.
    """
    from repro.telemetry import MetricsRegistry, TRACE_ENV_VAR, Tracer
    from repro.telemetry import configure, deactivate
    from repro.telemetry.exporters import merged_trace_events

    trace_root = os.environ.get(TRACE_ENV_VAR) or None
    context = configure(
        tracer=Tracer() if trace_root else None,
        metrics=MetricsRegistry(),
        trace_path=trace_root,
    )
    name = request.node.name
    started = time.perf_counter()
    try:
        yield context
    finally:
        wall = time.perf_counter() - started
        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "name": name,
            "wall_seconds": wall,
            "metrics": context.metrics.snapshot(),
        }
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        if context.tracer is not None:
            events = merged_trace_events(context.tracer.drain(), trace_root)
            (RESULTS_DIR / f"TRACE_{name}.json").write_text(
                json.dumps(events, sort_keys=True) + "\n"
            )
        deactivate()


@pytest.fixture()
def report():
    """Print a rendered report block and persist it under results/."""

    def _report(name: str, text: str) -> None:
        banner = "=" * 72
        print(f"\n{banner}\n{name}\n{banner}\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Execute *fn* exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
