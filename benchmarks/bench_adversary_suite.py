"""Robustness extension — adversary suite for the offline two-phase stack.

No paper figure corresponds to this: the paper evaluates the scheduler
on benign SPEC-like mixes, while :mod:`repro.adversary` constructs
workloads against the stack's own mechanisms — signature-aliasing
preimage families, CBF footprint bombs, LRU thrashers, and phase
flappers — and scores the hardened stack (signature confidence verdicts
+ :class:`~repro.estimate.gate.EstimateGate` envelope checks) against
the unhardened one on each.

Hard assertions (the hardening acceptance contract):

* **benign is free** — with hardening enabled the benign mix produces
  byte-identical slowdowns, zero suspect/degraded invocations and no
  gate trips (the defences are pure observers inside the envelope);
* **aliasing is beaten** — the hardened stack strictly improves the
  victims' worst-case slowdown under the signature-aliasing deception
  (the gate detects the preimage family and reroutes to the protective
  fallback schedule);
* **nothing regresses** — every adversary class has a hardened
  victim-worst no worse than the unhardened one (delta >= 0).

Writes ``results/BENCH_adversary_suite.json`` with every cell's score
and the per-adversary hardening deltas (the artifact the CI
``adversary-suite`` job gates on and promotes to the repo root).
"""

import json

from conftest import RESULTS_DIR, run_once

from repro.adversary import adversary_machine, run_adversary_suite
from repro.alloc import (
    InterferenceGraphPolicy,
    WeightedInterferenceGraphPolicy,
    WeightSortPolicy,
)
from repro.utils.tables import format_table

SEED = 3
INSTRUCTIONS = 150_000


def bench_adversary_suite(benchmark, report, full_scale):
    machine = adversary_machine()
    policies = [("weight-sort", WeightSortPolicy)]
    if full_scale:
        policies += [
            ("interference", lambda: InterferenceGraphPolicy(seed=SEED)),
            ("weighted", lambda: WeightedInterferenceGraphPolicy(seed=SEED)),
        ]

    suite = run_once(
        benchmark,
        lambda: run_adversary_suite(
            machine, policies, instructions=INSTRUCTIONS, seed=SEED
        ),
    )

    by_cell = {(s.adversary, s.policy, s.hardened): s for s in suite.scores}
    for name, _ in policies:
        base = by_cell[("benign", name, False)]
        hard = by_cell[("benign", name, True)]
        assert (
            hard.victim_worst_slowdown == base.victim_worst_slowdown
            and hard.worst_slowdown == base.worst_slowdown
            and hard.chosen_groups == base.chosen_groups
        ), f"benign mix must be byte-identical under hardening ({name})"
        assert (
            hard.suspect_invocations == 0
            and hard.degraded_invocations == 0
            and not hard.gate_tripped
        ), f"benign mix must trip no defence ({name})"
        assert by_cell[
            ("aliasing", name, True)
        ].gate_tripped, f"the gate must catch the aliasing preimages ({name})"

    deltas = suite.to_dict()["deltas"]
    assert deltas["aliasing"]["delta"] > 0, (
        "hardening must strictly improve the victims' worst case under "
        f"signature aliasing, got delta {deltas['aliasing']['delta']:.4f}"
    )
    for kind, entry in deltas.items():
        assert entry["delta"] >= 0, (
            f"hardening must never hurt the victims: {kind} delta "
            f"{entry['delta']:.4f}"
        )

    (RESULTS_DIR / "BENCH_adversary_suite.json").write_text(
        json.dumps(suite.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    report(
        "adversary_suite",
        format_table(
            ["adversary", "baseline vws", "hardened vws", "delta"],
            [
                [kind,
                 f"{entry['unhardened_victim_worst_slowdown']:.4f}",
                 f"{entry['hardened_victim_worst_slowdown']:.4f}",
                 f"{entry['delta']:+.4f}"]
                for kind, entry in sorted(deltas.items())
            ],
            title="Adversary suite: victim worst-case slowdown, "
            f"{len(policies)} policy/ies, seed {SEED}",
        ),
    )
