"""Speedup of the fast-path backends at figure-10 sweep scale.

The paper's figure-10 evaluation covers all C(12,4) = 495 four-task SPEC
mixes. Exact and sampled simulation pay per mix; the analytical backend
profiles each of the 12 benchmarks once and prices every mix with
closed-form arithmetic, so its cost is one profiling pass plus ~3 ms per
prediction — the asymmetry this bench pins down:

* **analytical**: profiling + all 495 predictions, measured in full;
* **exact / sampled**: measured on five probe mixes drawn from the
  reference-count quantiles of the 495 (cost scales with references
  simulated), then extrapolated to the sweep by total reference count.

CI gates on the resulting speedups (the ``estimate-speed`` job):
analytical must clear ``REPRO_EST_MIN_SPEEDUP_ANALYTICAL`` (default
100x) and sampled ``REPRO_EST_MIN_SPEEDUP_SAMPLED`` (default 10x).
"""

import itertools
import os
import time

from conftest import run_once

from repro.estimate.analytical import AnalyticalModel
from repro.estimate.reuse import profile_task
from repro.estimate.sampled import sampled_simulation
from repro.perf.machine import quadcore_shared
from repro.perf.runner import build_tasks, run_mix
from repro.workloads.spec import spec_profile_names

#: Speedup floors (env-overridable: shared CI runners shift absolute
#: times, and although ratios are far more stable, they still wobble).
MIN_SPEEDUP_ANALYTICAL = float(
    os.environ.get("REPRO_EST_MIN_SPEEDUP_ANALYTICAL", "100")
)
MIN_SPEEDUP_SAMPLED = float(
    os.environ.get("REPRO_EST_MIN_SPEEDUP_SAMPLED", "10")
)

#: Reference-count quantiles the exact/sampled probe mixes come from.
PROBE_QUANTILES = (0.1, 0.3, 0.5, 0.7, 0.9)


def _measure(instructions):
    """Time the three backends over the 495-mix figure-10 sweep."""
    machine = quadcore_shared()
    names = spec_profile_names()
    tasks_by = {
        n: build_tasks([n], instructions=instructions, seed=0)[0]
        for n in names
    }

    started = time.perf_counter()
    profiles = {n: profile_task(tasks_by[n]) for n in names}
    t_profile = time.perf_counter() - started

    mixes = list(itertools.combinations(names, 4))
    started = time.perf_counter()
    for mix in mixes:
        model = AnalyticalModel(machine, [profiles[n] for n in mix])
        model.predict([[0], [1], [2], [3]])
    t_predict = time.perf_counter() - started

    refs_of = {n: profiles[n].refs for n in names}
    sweep_refs = sum(refs_of[n] for mix in mixes for n in mix)
    ranked = sorted(mixes, key=lambda m: sum(refs_of[n] for n in m))
    probes = [
        ranked[int(q * (len(ranked) - 1))] for q in PROBE_QUANTILES
    ]
    probe_refs = sum(refs_of[n] for mix in probes for n in mix)

    t_exact = t_sampled = 0.0
    for mix in probes:
        tasks = build_tasks(list(mix), instructions=instructions, seed=0)
        started = time.perf_counter()
        run_mix(machine, tasks)
        t_exact += time.perf_counter() - started
        tasks = build_tasks(list(mix), instructions=instructions, seed=0)
        started = time.perf_counter()
        sampled_simulation(machine, tasks)
        t_sampled += time.perf_counter() - started

    exact_sweep = t_exact / probe_refs * sweep_refs
    sampled_sweep = t_sampled / probe_refs * sweep_refs
    analytical_sweep = t_profile + t_predict
    return {
        "mixes": len(mixes),
        "sweep_refs": sweep_refs,
        "probe_refs": probe_refs,
        "profile_seconds": t_profile,
        "predict_seconds": t_predict,
        "exact_probe_seconds": t_exact,
        "sampled_probe_seconds": t_sampled,
        "exact_sweep_seconds": exact_sweep,
        "sampled_sweep_seconds": sampled_sweep,
        "analytical_sweep_seconds": analytical_sweep,
        "analytical_speedup": exact_sweep / analytical_sweep,
        "sampled_speedup": exact_sweep / sampled_sweep,
    }


def bench_estimate_speed(benchmark, report, full_scale):
    instructions = 8_000_000 if full_scale else 4_000_000
    m = run_once(benchmark, lambda: _measure(instructions))

    text = (
        f"estimate backend speed, figure-10 scale "
        f"(quadcore shared L2, 12 SPEC benchmarks @ {instructions} "
        f"instructions)\n"
        f"full sweep: {m['mixes']} four-task mixes, "
        f"{m['sweep_refs']} task references\n"
        f"\n  exact       probe {m['exact_probe_seconds']:6.2f} s "
        f"-> sweep {m['exact_sweep_seconds']:7.1f} s (extrapolated)"
        f"\n  sampled     probe {m['sampled_probe_seconds']:6.2f} s "
        f"-> sweep {m['sampled_sweep_seconds']:7.1f} s "
        f"({m['sampled_speedup']:.1f}x)"
        f"\n  analytical  profile {m['profile_seconds']:.2f} s + "
        f"{m['mixes']} predictions {m['predict_seconds']:.2f} s "
        f"= {m['analytical_sweep_seconds']:7.1f} s "
        f"({m['analytical_speedup']:.1f}x)"
    )
    report("estimate_speed", text)

    assert m["analytical_speedup"] >= MIN_SPEEDUP_ANALYTICAL, (
        f"analytical sweep speedup {m['analytical_speedup']:.1f}x "
        f"below {MIN_SPEEDUP_ANALYTICAL}x"
    )
    assert m["sampled_speedup"] >= MIN_SPEEDUP_SAMPLED, (
        f"sampled sweep speedup {m['sampled_speedup']:.1f}x "
        f"below {MIN_SPEEDUP_SAMPLED}x"
    )
