"""Figure 13 — the three allocation algorithms compared.

Paper claims: the simple weight-sorting algorithm is surprisingly strong
on some mixes (footprint alone is a good predictor); the weighted
interference graph performs as well as or better than the others overall.
"""

import numpy as np
from conftest import run_once

from repro.analysis.figures import figure13_algorithm_comparison
from repro.analysis.report import render_mix_comparison

MIXES_DEFAULT = [
    ("mcf", "povray", "libquantum", "gobmk"),
    ("omnetpp", "hmmer", "perlbench", "sjeng"),
    ("mcf", "astar", "povray", "sjeng"),
]

MIXES_FULL = MIXES_DEFAULT + [
    ("gobmk", "hmmer", "libquantum", "povray"),
    ("mcf", "gcc", "bzip2", "milc"),
    ("omnetpp", "libquantum", "gcc", "perlbench"),
]


def _mean_improvement(results):
    return float(
        np.mean([r.improvement(n) for r in results for n in r.names])
    )


def bench_figure13_algorithms(benchmark, report, full_scale):
    mixes = MIXES_FULL if full_scale else MIXES_DEFAULT
    comparison = run_once(
        benchmark,
        lambda: figure13_algorithm_comparison(mixes, seed=3),
    )
    text = render_mix_comparison(
        comparison, "Figure 13: mean improvement per mix per algorithm"
    )
    means = {k: _mean_improvement(v) for k, v in comparison.items()}
    text += "\n\noverall mean improvement per algorithm:"
    for key, value in means.items():
        text += f"\n  {key:28s} {100*value:5.1f}%"
    report("fig13_algorithms", text)

    # Shape: the weighted graph is competitive with the best of the three
    # (within a few points — the paper's "as good or better" claim).
    best = max(means.values())
    assert means["weighted_interference_graph"] >= best - 0.05
    # And every algorithm extracts *some* benefit on these mixes.
    assert all(v > 0.0 for v in means.values())
