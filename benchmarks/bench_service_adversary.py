"""Robustness extension — adversarial arrival storms against the daemon.

Companion to ``bench_service_replay`` (benign Poisson churn): replays
the two :mod:`repro.adversary.arrivals` attack traces through the
online daemon and pins the :class:`~repro.service.mapper.IncrementalMapper`
flap guard's contract.

* ``flap_storm`` — victim pids flip their phase on ~every event. The
  unguarded mapper pays a full policy rerun per flip (a remap storm);
  the armed guard damps flapping pids to incremental re-placements, so
  the drift threshold becomes the full-remap rate limit.
* ``admission_storm`` — deterministic admit-to-ceiling /
  drain-to-floor sawtooth with near-zero gaps: maximum queue pressure.

Hard assertions:

* **zero drops everywhere** — hardened or not, both storms ride the
  awaited-submission backpressure path, never the drop path;
* **the guard kills the remap storm** — the armed mapper performs
  strictly fewer full remaps than the unguarded one on the same
  flap-storm trace (and stays under the drift-rate ceiling);
* **benign is free** — on the benign Poisson trace the armed guard
  never engages: mapping, remap split, and event counts are
  byte-identical to the unguarded daemon.

Writes ``results/BENCH_service_adversary.json`` with both storm
reports and the remap-storm delta.
"""

import json

from conftest import RESULTS_DIR, run_once

from repro.adversary import admission_storm_trace, flap_storm_trace
from repro.service.daemon import ServiceConfig
from repro.service.replay import run_replay
from repro.utils.tables import format_table
from repro.workloads.arrivals import poisson_trace

#: Flap-guard arming used for the hardened daemon runs.
FLAP_WINDOW = 32
FLAP_THRESHOLD = 4


def _hardened_config() -> ServiceConfig:
    return ServiceConfig(
        num_cores=4, flap_window=FLAP_WINDOW, flap_threshold=FLAP_THRESHOLD
    )


def bench_service_adversary(benchmark, report, full_scale):
    num_events = 8_000 if full_scale else 2_000
    storm = flap_storm_trace(num_events, seed=11)
    admission = admission_storm_trace(num_events, seed=7)
    benign = poisson_trace(num_events // 2, seed=11)

    def _run_all():
        return {
            "flap_storm_unguarded": run_replay(
                storm, config=ServiceConfig(num_cores=4)
            ),
            "flap_storm_guarded": run_replay(storm, config=_hardened_config()),
            "admission_storm_guarded": run_replay(
                admission, config=_hardened_config()
            ),
            "benign_unguarded": run_replay(
                benign, config=ServiceConfig(num_cores=4)
            ),
            "benign_guarded": run_replay(benign, config=_hardened_config()),
        }

    results = run_once(benchmark, _run_all)

    for name, result in results.items():
        assert result.dropped == 0, f"{name}: the daemon must never drop"
        assert result.oracle_match, (
            f"{name}: settled mapping must equal the full-remap oracle"
        )

    unguarded = results["flap_storm_unguarded"]
    guarded = results["flap_storm_guarded"]
    assert guarded.full_remaps < unguarded.full_remaps, (
        "the flap guard must kill the remap storm: "
        f"{guarded.full_remaps} !< {unguarded.full_remaps} full remaps"
    )
    # Order-of-magnitude pin, not just "fewer": once the victims are
    # damped, full remaps come only from drift crossings and the few
    # un-damped flips before hysteresis engages (locally ~14x fewer).
    assert guarded.full_remaps * 8 <= unguarded.full_remaps, (
        "the armed guard should cut full remaps by about an order of "
        f"magnitude: {guarded.full_remaps} vs {unguarded.full_remaps}"
    )

    for field in (
        "full_remaps", "incremental_updates", "final_mapping",
        "final_population", "ok", "rejected",
    ):
        assert getattr(results["benign_guarded"], field) == getattr(
            results["benign_unguarded"], field
        ), f"benign replay must be byte-identical under the guard: {field}"

    payload = {
        "flap": {"window": FLAP_WINDOW, "threshold": FLAP_THRESHOLD},
        "remap_storm_delta": unguarded.full_remaps - guarded.full_remaps,
        "replays": {
            name: result.to_payload() for name, result in results.items()
        },
    }
    (RESULTS_DIR / "BENCH_service_adversary.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    report(
        "service_adversary",
        format_table(
            ["replay", "events", "full remaps", "incremental", "drops"],
            [
                [name, result.processed, result.full_remaps,
                 result.incremental_updates, result.dropped]
                for name, result in results.items()
            ],
            title=f"Adversarial arrival storms ({num_events} events, "
            f"guard: {FLAP_THRESHOLD}/{FLAP_WINDOW})",
        ),
    )
