"""Cross-validation — do the fast backends drive the exact schedules?

Twelve stratified 4-benchmark SPEC mixes (every benchmark appears in at
least three) are pushed through the full decision pipeline under each
backend: pairwise degradation matrix, then all three mapping algorithms
(greedy pairing, exhaustive MIN-CUT, solo-weighted MIN-CUT). A mix
counts as agreeing only when *every* algorithm's choice is
decision-equivalent to exact's (identical, or equally cheap when priced
on the exact matrix). Whole-mix miss-rate error is tracked alongside.

CI gates on this bench (the ``estimate-accuracy`` job): agreement must
reach ``REPRO_EST_MIN_AGREEMENT`` of the 12 mixes per backend (default
10) and the miss-rate MAPE must stay under ``REPRO_EST_MAX_MAPE``
(default 6%; observed ~1-2% for both backends).
"""

import os

from conftest import run_once

from repro.estimate.validate import validate_mixes
from repro.perf.experiment import stratified_mixes
from repro.perf.machine import core2duo
from repro.utils.tables import format_percent
from repro.workloads.spec import spec_profile_names

#: Gate knobs (env-overridable so CI can tune without a code change).
MIN_AGREEMENT = int(os.environ.get("REPRO_EST_MIN_AGREEMENT", "10"))
MAX_MAPE = float(os.environ.get("REPRO_EST_MAX_MAPE", "0.06"))

#: Seed 7 + truncation gives exactly the 12 mixes the gate is pinned to,
#: with every benchmark still covered at least 3 times.
MIX_COUNT = 12


def bench_estimate_accuracy(benchmark, report, full_scale):
    instructions = 600_000 if full_scale else 300_000
    mixes = stratified_mixes(
        spec_profile_names(), mixes_per_benchmark=4, mix_size=4, seed=7
    )[:MIX_COUNT]
    summary = run_once(
        benchmark,
        lambda: validate_mixes(
            core2duo(), mixes, instructions=instructions, seed=0
        ),
    )

    text = (
        f"backend cross-validation: {len(mixes)} stratified SPEC mixes, "
        f"{instructions} instructions, core2duo\n"
    )
    for backend in summary.backends():
        agreed, total = summary.agreement(backend)
        text += (
            f"\n  {backend:10s} mapping agreement {agreed}/{total}"
            f"  miss-rate MAPE {format_percent(summary.miss_rate_mape(backend))}"
            f"  MAE {summary.miss_rate_mae(backend):.4f}"
        )
        for record in summary.to_dict()[backend]["disagreeing_mixes"]:
            text += f"\n    disagreed: {'+'.join(record)}"
    report("estimate_accuracy", text)

    for backend in ("analytical", "sampled"):
        agreed, total = summary.agreement(backend)
        assert total == MIX_COUNT
        assert agreed >= MIN_AGREEMENT, (
            f"{backend}: only {agreed}/{total} mixes decision-equivalent "
            f"to exact (floor {MIN_AGREEMENT})"
        )
        mape = summary.miss_rate_mape(backend)
        assert mape <= MAX_MAPE, (
            f"{backend}: miss-rate MAPE {mape:.3f} above {MAX_MAPE}"
        )
