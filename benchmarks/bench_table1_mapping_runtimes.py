"""Table 1 — povray/gobmk/libquantum/hmmer under all three mappings.

Paper claims for this mix: the {gobmk,libquantum} co-location mapping is
best; libquantum improves ~11% over its worst mapping; povray and hmmer
are schedule-insensitive.
"""

from conftest import run_once

from repro.analysis.figures import table1_mapping_runtimes
from repro.analysis.report import render_table1
from repro.perf.machine import core2duo
from repro.utils.tables import format_percent


def bench_table1_mapping_runtimes(benchmark, report, full_scale):
    instructions = 12_000_000 if full_scale else 6_000_000
    names, times = run_once(
        benchmark, lambda: table1_mapping_runtimes(instructions=instructions)
    )
    machine = core2duo()
    text = render_table1(names, times, machine.clock_hz)

    def spread(name):
        values = [t[name] for t in times.values()]
        return (max(values) - min(values)) / max(values)

    text += "\n\nper-benchmark best-vs-worst spread:"
    for name in names:
        text += f"\n  {name:11s} {format_percent(spread(name))}"
    report("table1_mapping_runtimes", text)

    # Shape: the bandwidth pair (libquantum, hmmer) is schedule-sensitive,
    # the light pair (povray, gobmk) is not.
    assert spread("libquantum") > 0.02
    assert spread("hmmer") > 0.02
    assert spread("povray") < 0.02
    assert spread("gobmk") < 0.05
