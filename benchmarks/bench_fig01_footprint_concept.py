"""Figure 1 — identical miss rates, different cache footprints.

Paper claim: two strided applications can both miss on 100% of their
accesses while occupying footprints that differ by a large factor — which
is why miss counters cannot stand in for footprint information.
"""

from conftest import run_once

from repro.analysis.figures import figure1_concept
from repro.utils.tables import format_table


def bench_figure1_concept(benchmark, report):
    out = run_once(benchmark, figure1_concept)
    rows = [
        [label, v["miss_rate"], int(v["footprint_lines"])]
        for label, v in out.items()
    ]
    report(
        "fig01_footprint_concept",
        format_table(
            ["application", "miss rate", "footprint (lines)"],
            rows,
            title="Figure 1: same miss rate, different footprint "
            "(8-set direct-mapped cache)",
        ),
    )
    assert out["A"]["miss_rate"] == out["B"]["miss_rate"] == 1.0
    assert out["B"]["footprint_lines"] > out["A"]["footprint_lines"]
