"""Ablation — Bloom-filter size vs footprint-tracking fidelity.

The paper pegs filter entries to the cache line count (load factor 1),
where hash aliasing is the dominant error source in the occupancy weight.
This harness sweeps the entries/lines ratio and measures the mean relative
tracking error against the exact resident-line count under contention.
"""

import numpy as np
from conftest import run_once

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import tiny_cache
from repro.core.signature import SignatureConfig, SignatureUnit
from repro.utils.tables import format_table
from repro.workloads.patterns import HotColdGenerator, StreamGenerator


def _tracking_error(entries_multiplier: int, steps: int = 60) -> float:
    sets, ways = 512, 8
    cache = SetAssociativeCache(tiny_cache(sets=sets, ways=ways), num_cores=2)
    unit = SignatureUnit(
        SignatureConfig(num_cores=2, num_sets=sets * entries_multiplier, ways=ways)
    )
    reuser = HotColdGenerator(3000, 1500, hot_fraction=0.9, seed=1)
    streamer = StreamGenerator(1 << 22, base_block=1 << 24, seed=2)
    errors = []
    for _ in range(steps):
        for core, gen in ((0, reuser), (1, streamer)):
            blocks = gen.next_batch(512)
            r = cache.access_batch(core, blocks)
            unit.record_events(
                core, r.fills, r.fill_slots, r.evictions, r.evict_slots,
                r.evict_fill_pos,
            )
        truth = int(cache.occupancy_by_core()[0])
        errors.append(abs(unit.core_occupancy(0) - truth) / max(truth, 1))
    return float(np.mean(errors))


def bench_ablation_filter_size(benchmark, report, full_scale):
    multipliers = (1, 2, 4, 8) if full_scale else (1, 2, 4)
    errors = run_once(
        benchmark, lambda: {m: _tracking_error(m) for m in multipliers}
    )
    report(
        "ablation_filter_size",
        format_table(
            ["entries / cache lines", "mean tracking error"],
            [[m, e] for m, e in errors.items()],
            title="Ablation: filter size vs occupancy-tracking error",
            float_digits=3,
        ),
    )
    # Shape: over-provisioning the filter monotonically improves fidelity.
    values = list(errors.values())
    assert values[-1] <= values[0]
    assert values[0] < 0.8  # even load factor 1 is usable (the paper's pick)
