"""Figure 2 — event counters do not reveal the working set.

Paper claim (Section 2.2): L2-miss, TLB-miss and page-fault counters show
little correlation with an application's working-set size over time.
"""

from conftest import run_once

from repro.analysis.figures import figure2_counters_vs_footprint
from repro.analysis.report import render_counter_series


def bench_figure2_counters(benchmark, report, full_scale):
    laps = 4 if full_scale else 2
    series = run_once(
        benchmark, lambda: figure2_counters_vs_footprint(laps=laps)
    )
    report("fig02_counters_vs_footprint", render_counter_series(series))
    # Shape assertions: no counter is a good working-set proxy...
    for counter in ("l2_misses", "page_faults"):
        assert abs(series.correlation(counter)) < 0.75
    # ...while the CBF tracks the measured cache footprint far better than
    # the miss counter tracks the working set (the joint Fig 2+5 story).
    assert series.correlation("occupancy_weight", "resident_lines") > abs(
        series.correlation("l2_misses")
    )
