"""Extension — prefetch hardware amplifies shared-cache pollution.

The paper's related work (Liu et al., Zhuravlev et al., Section 6) notes
that co-runners contend through prefetchers too; the paper's machine model
leaves them out. This harness quantifies the effect at the cache level:
a streaming co-runner with a next-N-line prefetcher evicts a victim's
resident working set faster as the prefetch degree grows.
"""

import numpy as np
from conftest import run_once

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import tiny_cache
from repro.cache.prefetch import PrefetchingCache
from repro.utils.tables import format_table
from repro.workloads.patterns import HotColdGenerator, StridedGenerator


def _victim_survival(degree: int, rounds: int = 40) -> float:
    """Fraction of the victim's hot set still resident after contention."""
    inner = SetAssociativeCache(tiny_cache(sets=256, ways=8), num_cores=2)
    cache = PrefetchingCache(inner, degree=degree) if degree else inner
    victim = HotColdGenerator(1024, 512, hot_fraction=0.95, seed=1)
    # A strided scan (every 8th line): its prefetches are NOT the
    # blocks it will demand next, so degree directly multiplies its
    # fill volume — the amplification the related work warns about.
    stream = StridedGenerator(1 << 22, 8, base_block=1 << 24, seed=2)
    for _ in range(rounds):
        cache.access_batch(0, victim.next_batch(256))
        cache.access_batch(1, stream.next_batch(192))
    hot = np.arange(512)
    resident = sum(inner.contains(int(b)) for b in hot)
    return resident / len(hot)


def bench_ext_prefetch(benchmark, report, full_scale):
    degrees = (0, 1, 2, 4) if not full_scale else (0, 1, 2, 4, 8)
    survival = run_once(
        benchmark, lambda: {d: _victim_survival(d) for d in degrees}
    )
    report(
        "ext_prefetch",
        format_table(
            ["streamer prefetch degree", "victim hot-set survival"],
            [[d, s] for d, s in survival.items()],
            title="Extension: prefetch-amplified pollution of a shared cache",
            float_digits=3,
        ),
    )
    values = list(survival.values())
    # Shape: survival degrades monotonically with prefetch degree, and the
    # most aggressive setting costs the victim a solid slice of its hot set.
    assert all(b <= a + 0.02 for a, b in zip(values, values[1:]))
    assert values[-1] < values[0] - 0.10
