"""Figure 3(a) — pairs timesharing a P4 Xeon core with a private L2.

Paper claim: when two benchmarks are confined to one processor (private
cache), the worst-case degradation stays small (< ~10%) — only context-
switch cache warm-up remains.
"""

from conftest import run_once

from repro.analysis.figures import figure3a_private_pairs
from repro.analysis.report import render_pairwise
from repro.workloads.spec import spec_profile_names


def bench_figure3a_private(benchmark, report, full_scale):
    pool = spec_profile_names() if full_scale else [
        "mcf", "libquantum", "povray", "gobmk", "hmmer", "omnetpp",
    ]
    instructions = 6_000_000 if full_scale else 3_000_000
    result = run_once(
        benchmark,
        lambda: figure3a_private_pairs(pool, instructions=instructions),
    )
    report(
        "fig03a_pairwise_private",
        render_pairwise(
            result, "Figure 3(a): worst-case degradation, private L2 (P4 Xeon)"
        ),
    )
    # Shape: private-cache timesharing hurts little.
    worst = max(result.worst_case_table().values())
    assert worst < 0.25, f"private-L2 degradation unexpectedly high: {worst:.2f}"
