"""Figure 11 — the same sweep inside Xen-like VMs.

Paper claims: VM encapsulation dampens the improvements (mcf 26% vs 54%
native; pool average 9.5% vs 22%) while preserving the relative ordering
of winners.
"""

import numpy as np
from conftest import orchestrator_for, run_once

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.analysis.figures import SHOWCASE_MIXES
from repro.analysis.report import render_sweep
from repro.perf.experiment import stratified_mixes
from repro.perf.machine import core2duo
from repro.utils.tables import format_percent
from repro.virt import vm_mix_sweep
from repro.workloads.spec import spec_profile_names


def bench_figure11_vm(benchmark, report, full_scale, jobs):
    sampled = stratified_mixes(
        spec_profile_names(),
        mixes_per_benchmark=4 if full_scale else 2,
        seed=3,
    )
    showcase = {tuple(sorted(m)) for m in SHOWCASE_MIXES}
    mixes = list(SHOWCASE_MIXES) + [
        m for m in sampled if tuple(sorted(m)) not in showcase
    ]
    sweep = run_once(
        benchmark,
        lambda: vm_mix_sweep(
            core2duo(),
            mixes,
            WeightedInterferenceGraphPolicy(),
            seed=3,
            orchestrator=orchestrator_for(jobs),
        ),
    )
    text = render_sweep(
        sweep, "Figure 11: max/avg improvement per benchmark (inside VMs)"
    )
    pool_avg_of_max = float(
        np.mean([sweep.max_improvement(n) for n in sweep.benchmarks()])
    )
    text += (
        f"\n\npool average of per-benchmark max improvements: "
        f"{format_percent(pool_avg_of_max)} (paper: ~9.5%; native ~22%)"
    )
    report("fig11_vm_improvement", text)

    # Shape: mcf still leads but below its native figure; trend preserved.
    assert 0.05 < sweep.max_improvement("mcf") < 0.45
    assert sweep.max_improvement("povray") < 0.05
