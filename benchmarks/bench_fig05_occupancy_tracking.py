"""Figure 5 — the CBF occupancy weight follows the cache footprint.

Paper claim (Section 2.4): "the occupancy weight follows the cache
footprint size more closely" than event counters do. We quantify it as
the mean relative error between the per-core filter popcount and the true
resident-line count, plus their correlation.
"""

from conftest import run_once

from repro.analysis.figures import figure5_occupancy_tracking
from repro.utils.tables import format_table


def bench_figure5_occupancy(benchmark, report, full_scale):
    laps = 4 if full_scale else 2
    series = run_once(
        benchmark, lambda: figure5_occupancy_tracking(laps=laps)
    )
    corr = series.correlation("occupancy_weight", "resident_lines")
    err = series.tracking_error()
    report(
        "fig05_occupancy_tracking",
        format_table(
            ["metric", "value"],
            [
                ["corr(occupancy weight, resident lines)", corr],
                ["mean relative tracking error", err],
                ["windows observed", len(series.resident_lines)],
            ],
            title="Figure 5: CBF occupancy weight vs true cache footprint",
            float_digits=3,
        ),
    )
    assert corr > 0.4
    assert err < 0.6
