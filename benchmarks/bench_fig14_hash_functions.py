"""Figure 14 — hash-function comparison for the signature filters.

Paper claims: XOR, XOR-inverse-reverse and modulo perform near-identically;
presence bits saturate for heavy cache users and convey little information,
so they deliver no scheduling benefit.

Two measurements per scheme, with phase 1 run well past the point where a
sticky presence vector saturates (the paper's emulation ran 2B
instructions):

* **improvement** — the chosen schedule's gain, across several policy
  tie-break seeds (a weak-signal scheme's outcome is seed-luck);
* **late signal** — the occupancy weight the allocator actually sees late
  in the run; this is the direct saturation evidence: once a vector is
  full, per-quantum RBVs are empty and the algorithms run blind.

Two presence variants are compared: ``presence_sticky`` is the paper's
(bits accumulate — no clearing path without the CBF counters); plain
``presence`` adds per-slot eviction clearing (exact per-core residency)
and keeps its signal — locating the paper's presence failure in the
missing clearing path, not the 1:1 mapping itself.
"""

from conftest import run_once

from repro.analysis.figures import figure14_hash_comparison
from repro.utils.tables import format_table

MIXES_DEFAULT = [("mcf", "povray", "libquantum", "gobmk")]
MIXES_FULL = MIXES_DEFAULT + [("omnetpp", "hmmer", "perlbench", "sjeng")]

HASH_SCHEMES = ("xor", "xor_inverse_reverse", "modulo")


def bench_figure14_hashes(benchmark, report, full_scale):
    mixes = MIXES_FULL if full_scale else MIXES_DEFAULT
    comparison = run_once(
        benchmark, lambda: figure14_hash_comparison(mixes, seed=3)
    )
    rows = []
    for kind, entry in comparison.items():
        rows.append(
            [
                kind,
                100 * entry.mean_improvement(),
                100 * entry.worst_seed_improvement(),
                entry.late_signal(),
            ]
        )
    report(
        "fig14_hash_functions",
        format_table(
            [
                "scheme",
                "mean improvement %",
                "worst-seed improvement %",
                "late occupancy signal (bits)",
            ],
            rows,
            title="Figure 14: hash schemes — improvement and post-saturation "
            "signal strength",
            float_digits=1,
        ),
    )
    means = {k: v.mean_improvement() for k, v in comparison.items()}
    signals = {k: v.late_signal() for k, v in comparison.items()}

    # Shape: the three hash schemes are close to each other and keep their
    # signal alive throughout the run.
    hash_means = [means[k] for k in HASH_SCHEMES]
    assert max(hash_means) - min(hash_means) < 0.12
    for kind in HASH_SCHEMES:
        assert signals[kind] > 1000
    # The paper's sticky presence bits saturate: the allocator's late-run
    # occupancy signal collapses by an order of magnitude.
    assert signals["presence_sticky"] < 0.2 * min(
        signals[k] for k in HASH_SCHEMES
    )
    # The clearing variant keeps its signal (the failure is the missing
    # clearing path, not the 1:1 mapping).
    assert signals["presence"] > 5 * signals["presence_sticky"]
