"""Ablation — set-sampling rate (extends Section 5.4).

Paper claim: 25% set sampling cuts the hardware cost 4x without changing
the scheduling decisions. This harness sweeps the sampling denominator
and compares the chosen schedule's improvement against the unsampled run.
"""

from conftest import run_once

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.perf.experiment import two_phase
from repro.perf.machine import core2duo
from repro.utils.tables import format_percent, format_table

MIX = ("mcf", "povray", "libquantum", "gobmk")


def bench_ablation_sampling(benchmark, report, full_scale):
    denominators = (1, 4, 16) if not full_scale else (1, 2, 4, 8, 16)

    def compute():
        out = {}
        for denom in denominators:
            result = two_phase(
                core2duo(),
                list(MIX),
                WeightedInterferenceGraphPolicy(seed=5),
                seed=5,
                signature_overrides={"sampling_denominator": denom},
            )
            out[denom] = result
        return out

    results = run_once(benchmark, compute)
    rows = []
    for denom, result in results.items():
        mean = sum(result.improvement(n) for n in MIX) / len(MIX)
        rows.append(
            [
                f"1/{denom}",
                format_percent(mean),
                format_percent(result.improvement("mcf")),
                str(result.chosen_mapping == results[1].chosen_mapping),
            ]
        )
    report(
        "ablation_sampling",
        format_table(
            ["sampling", "mean improvement", "mcf improvement", "same schedule as unsampled"],
            rows,
            title="Ablation: set-sampling rate vs decision quality "
            f"(mix: {'+'.join(MIX)})",
        ),
    )

    # Shape: the paper's 25% sampling keeps decision quality.
    full = sum(results[1].improvement(n) for n in MIX) / len(MIX)
    quarter = sum(results[4].improvement(n) for n in MIX) / len(MIX)
    assert quarter >= full - 0.05
