"""Extension — sensitivity of the headline result to the timing model.

The reproduction's conclusion ("co-locating mcf with its polluter buys
tens of percent, and the signature policy finds that schedule") must not
hinge on one lucky choice of memory latency or bus-queueing strength.
This harness sweeps the two most influential timing parameters and checks
the conclusion's direction survives across the span.
"""

from conftest import run_once

from repro.analysis.sensitivity import sweep_timing_parameter
from repro.utils.tables import format_table


def bench_ext_sensitivity(benchmark, report, full_scale):
    def compute():
        out = {}
        out["mem_cycles"] = sweep_timing_parameter(
            "mem_cycles",
            multipliers=(0.5, 1.0, 2.0) if not full_scale else (0.5, 0.75, 1.0, 1.5, 2.0),
        )
        out["queue_coeff"] = sweep_timing_parameter(
            "queue_coeff",
            multipliers=(0.0, 1.0, 2.0) if not full_scale else (0.0, 0.5, 1.0, 2.0),
        )
        return out

    sweeps = run_once(benchmark, compute)
    rows = []
    for parameter, points in sweeps.items():
        for p in points:
            rows.append(
                [
                    parameter,
                    p.multiplier,
                    100 * p.chosen_improvement,
                    100 * p.oracle_improvement,
                    str(p.policy_found_it),
                ]
            )
    report(
        "ext_sensitivity",
        format_table(
            ["parameter", "multiplier", "chosen %", "oracle %", "policy found it"],
            rows,
            title="Extension: mcf improvement vs timing-model perturbations "
            "(mix: mcf+povray+libquantum+gobmk)",
            float_digits=1,
        ),
    )

    # Shape: the *phenomenon* survives every perturbation (the oracle
    # improvement stays large), and the policy captures it at the
    # calibrated point and at most perturbed points. Individual off-default
    # points can lose to majority-vote variance (the votes run 10-10-8 at
    # some settings) — the paper's own methodology has that property, so it
    # is reported rather than hidden.
    all_points = [p for pts in sweeps.values() for p in pts]
    for p in all_points:
        assert p.oracle_improvement > 0.10, (p.parameter, p.multiplier)
    for pts in sweeps.values():
        at_default = [p for p in pts if p.multiplier == 1.0]
        assert all(p.policy_found_it for p in at_default)
    found = sum(p.policy_found_it for p in all_points)
    assert found >= (2 * len(all_points)) // 3, f"{found}/{len(all_points)}"
    # Longer memory latency -> more at stake (monotone oracle).
    mem = sweeps["mem_cycles"]
    assert mem[-1].oracle_improvement > mem[0].oracle_improvement
