"""Figure 3(b) — pairs on different cores sharing the Core 2 Duo L2.

Paper claim: despite the shared L2 being twice the size of the P4's
private one, concurrent pairs degrade far more (up to 67%, worst pair
mcf+libquantum) — scheduling-sensitive contention the private machine
does not show.
"""

from conftest import orchestrator_for, run_once

from repro.analysis.figures import figure3b_shared_pairs
from repro.analysis.report import render_pairwise
from repro.utils.tables import format_percent
from repro.workloads.spec import spec_profile_names


def bench_figure3b_shared(benchmark, report, full_scale, jobs):
    pool = spec_profile_names() if full_scale else [
        "mcf", "libquantum", "povray", "gobmk", "hmmer", "omnetpp",
    ]
    instructions = 6_000_000 if full_scale else 3_000_000
    result = run_once(
        benchmark,
        lambda: figure3b_shared_pairs(
            pool,
            instructions=instructions,
            orchestrator=orchestrator_for(jobs),
        ),
    )
    text = render_pairwise(
        result, "Figure 3(b): worst-case degradation, shared L2 (Core 2 Duo)"
    )
    mcf_partner, mcf_worst = result.worst_degradation("mcf")
    text += (
        f"\n\nheadline: mcf's worst partner is {mcf_partner} "
        f"({format_percent(mcf_worst)} degradation; paper: libquantum, 67%)"
    )
    report("fig03b_pairwise_shared", text)
    # Shape: shared-cache degradations dwarf the private-cache ones, and
    # mcf's worst partner is the streaming polluter.
    assert mcf_worst > 0.4
    assert mcf_partner in ("libquantum", "hmmer")
    assert result.worst_degradation("povray")[1] < 0.10
