"""Figure 10 — per-benchmark max/avg improvement, native execution.

Paper claims: weighted-interference-graph scheduling improves mcf by up to
54% and omnetpp by up to 49% over their worst-case mappings; compute-bound
(povray) and bandwidth-bound (hmmer) benchmarks see little benefit; the
average across the pool's maxima is ~22%.

The paper sweeps all C(12,4)=495 mixes on hardware; the default harness
uses a stratified subset (every benchmark in >= 3 mixes; REPRO_FULL=1
raises the coverage).
"""

import numpy as np
from conftest import orchestrator_for, run_once

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.analysis.figures import figure10_native_sweep
from repro.analysis.report import render_sweep
from repro.utils.tables import format_percent


def bench_fig10_native_improvement(benchmark, report, full_scale, jobs):
    mixes_per_benchmark = 6 if full_scale else 3
    sweep = run_once(
        benchmark,
        lambda: figure10_native_sweep(
            policy=WeightedInterferenceGraphPolicy(),
            mixes_per_benchmark=mixes_per_benchmark,
            seed=3,
            orchestrator=orchestrator_for(jobs),
        ),
    )
    text = render_sweep(
        sweep, "Figure 10: max/avg improvement per benchmark (native)"
    )
    pool_avg_of_max = float(
        np.mean([sweep.max_improvement(n) for n in sweep.benchmarks()])
    )
    text += (
        f"\n\npool average of per-benchmark max improvements: "
        f"{format_percent(pool_avg_of_max)} (paper: ~22%)"
    )
    report("fig10_native_improvement", text)

    # Shape assertions: the cache-sensitive benchmarks lead, the
    # compute/bandwidth-bound ones trail near zero.
    assert sweep.max_improvement("mcf") > 0.25
    assert sweep.max_improvement("mcf") >= sweep.max_improvement("povray")
    assert sweep.max_improvement("povray") < 0.05
    assert sweep.max_improvement("hmmer") < 0.35
    assert pool_avg_of_max > 0.05
