"""Extension — fairness of the symbiotic schedule.

The paper lists fairness among its keywords and argues its policies
"improve performance while providing fairness across workloads"
(Section 1) without quantifying it. This harness measures Jain's index
over normalised progress and the max/min slowdown spread for the chosen
schedule vs the worst mapping of a contentious mix.
"""

from conftest import run_once

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.analysis.fairness import fairness_report
from repro.perf.experiment import two_phase
from repro.perf.machine import core2duo
from repro.perf.runner import run_solo
from repro.utils.tables import format_table

MIX = ("mcf", "povray", "libquantum", "gobmk")


def bench_ext_fairness(benchmark, report, full_scale):
    instructions = 6_000_000

    def compute():
        machine = core2duo()
        result = two_phase(
            machine,
            list(MIX),
            WeightedInterferenceGraphPolicy(seed=5),
            instructions=instructions,
            seed=5,
        )
        solo = {
            name: run_solo(machine, name, instructions=instructions).user_time(name)
            for name in MIX
        }
        worst_mapping = max(
            result.mapping_times,
            key=lambda m: sum(result.mapping_times[m].values()),
        )
        chosen_report = fairness_report(
            result.mapping_times[result.chosen_mapping], solo
        )
        worst_report = fairness_report(result.mapping_times[worst_mapping], solo)
        return chosen_report, worst_report

    chosen_report, worst_report = run_once(benchmark, compute)
    rows = []
    for key in ("jain_index", "unfairness", "max_slowdown", "min_slowdown"):
        rows.append([key, chosen_report[key], worst_report[key]])
    report(
        "ext_fairness",
        format_table(
            ["metric", "chosen schedule", "worst schedule"],
            rows,
            title=f"Extension: fairness of the chosen schedule ({'+'.join(MIX)})",
            float_digits=3,
        ),
    )

    # Shape: the symbiotic schedule is at least as fair as the worst one.
    assert chosen_report["jain_index"] >= worst_report["jain_index"] - 0.02
    assert chosen_report["max_slowdown"] <= worst_report["max_slowdown"] + 0.05
