"""Ablation — number of hash functions (Section 5.3's k=1 argument).

Paper claim: with filter entries fixed at the cache line count, using
multiple hash functions saturates the bit vectors (like presence bits do
for heavy users) and would "render the technique ineffective"; k>1 would
only help with a much larger hardware budget.
"""

import numpy as np
from conftest import run_once

from repro.core.signature import SignatureConfig, SignatureUnit
from repro.utils.tables import format_table


def _fill_fraction(k: int, entries_pow: int = 12, inserts: int = 3000) -> float:
    unit = SignatureUnit(
        SignatureConfig(
            num_cores=1,
            num_sets=1 << (entries_pow - 3),
            ways=8,
            num_hashes=k,
            counter_bits=8,
        )
    )
    blocks = np.random.default_rng(0).integers(0, 1 << 30, inserts)
    unit.record_fill_batch(0, blocks)
    return unit.core_occupancy(0) / unit.num_entries


def bench_ablation_hash_count(benchmark, report, full_scale):
    ks = (1, 2, 3, 4) if full_scale else (1, 2, 4)
    fills = run_once(benchmark, lambda: {k: _fill_fraction(k) for k in ks})
    report(
        "ablation_hash_count",
        format_table(
            ["hash functions (k)", "filter fill fraction"],
            [[k, f] for k, f in fills.items()],
            title="Ablation: k hash functions vs filter saturation "
            "(entries = cache lines, 3000 insertions into 4096 entries)",
            float_digits=3,
        ),
    )
    values = list(fills.values())
    # Shape: saturation grows monotonically with k; k=1 keeps headroom.
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert fills[1] < 0.65
    assert fills[max(ks)] > 0.85
