"""Extension — hierarchical MIN-CUT on a quad-core shared-L2 machine.

The paper's algorithms extend to more cores by recursive bisection
("if we have four cores, we first divide into two groups using MIN-CUT and
then apply MIN-CUT to each group", Section 3.3.2). This harness runs the
full two-phase methodology with eight benchmarks on a 4-core machine —
the configuration the paper describes but does not evaluate.

The mapping space is large (105 balanced placements of 8 tasks on 4
cores); the reference set is a deterministic sample plus the chosen and
default mappings.
"""

from conftest import run_once

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.perf.experiment import two_phase
from repro.perf.machine import quadcore_shared
from repro.utils.tables import format_percent, format_table

MIX = ("mcf", "omnetpp", "libquantum", "hmmer", "povray", "gobmk", "sjeng", "perlbench")


def bench_ext_quadcore(benchmark, report, full_scale):
    result = run_once(
        benchmark,
        lambda: two_phase(
            quadcore_shared(),
            list(MIX),
            WeightedInterferenceGraphPolicy(seed=5),
            instructions=4_000_000,
            seed=5,
            max_mappings=16 if full_scale else 8,
        ),
    )
    rows = [
        [
            name,
            format_percent(result.improvement(name)),
            format_percent(result.oracle_improvement(name)),
        ]
        for name in MIX
    ]
    text = format_table(
        ["benchmark", "improvement", "oracle (sampled refs)"],
        rows,
        title="Extension: 8 benchmarks on a shared-L2 quad-core "
        "(hierarchical MIN-CUT)",
    )
    text += f"\n\nchosen mapping: {result.chosen_mapping}"
    text += f"\nphase-1 decisions: {len(result.decisions)}"
    report("ext_quadcore", text)

    # Shape: the methodology scales — sensitive benchmarks still gain,
    # compute-bound ones stay flat, nothing is badly hurt.
    assert result.improvement("povray") < 0.05
    mean = sum(result.improvement(n) for n in MIX) / len(MIX)
    assert mean >= 0.0
