"""``python -m repro`` — package summary and a 10-second self-check.

Prints the subsystem inventory, then runs a miniature end-to-end pipeline
(signature gathering -> allocation decision -> measured improvement) to
confirm the installation works.
"""

from __future__ import annotations

import sys

import repro
from repro.alloc import UserLevelMonitor, WeightedInterferenceGraphPolicy
from repro.cache.config import CacheConfig, CacheGeometry
from repro.core.signature import SignatureConfig
from repro.perf.machine import MachineConfig
from repro.perf.simulator import MulticoreSimulator
from repro.perf.timing import TimingModel
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.workloads.patterns import HotColdGenerator, StreamGenerator

BANNER = f"""repro {repro.__version__} — reproduction of
"Symbiotic Scheduling for Shared Caches in Multi-Core Systems Using
 Memory Footprint Signature" (ICPP 2011)

subsystems: core (CBF signatures), cache, workloads, sched, alloc,
            virt, perf, analysis
entry points: examples/quickstart.py, pytest benchmarks/ --benchmark-only
docs: README.md, DESIGN.md, EXPERIMENTS.md
"""


def self_check() -> int:
    """Miniature end-to-end run; returns 0 on success."""
    machine = MachineConfig(
        name="selfcheck",
        num_cores=2,
        l2=CacheConfig(
            name="l2",
            geometry=CacheGeometry(size_bytes=64 * 1024, line_bytes=64, ways=8),
        ),
        shared_l2=True,
        timing=TimingModel(),
    )
    tasks = [
        SimTask(
            name="victim",
            generator=HotColdGenerator(2048, 512, hot_fraction=0.9, seed=1),
            total_accesses=40_000,
            accesses_per_kinstr=40.0,
        ),
        SimTask(
            name="light",
            generator=HotColdGenerator(64, 32, base_block=1 << 26, seed=3),
            total_accesses=3_000,
            accesses_per_kinstr=1.0,
        ),
        SimTask(
            name="polluter",
            generator=StreamGenerator(1 << 22, base_block=1 << 24, seed=2),
            total_accesses=40_000,
            accesses_per_kinstr=25.0,
            mlp=6.0,
        ),
        SimTask(
            name="light2",
            generator=HotColdGenerator(64, 32, base_block=1 << 27, seed=4),
            total_accesses=3_000,
            accesses_per_kinstr=1.0,
        ),
    ]
    monitor = UserLevelMonitor(
        WeightedInterferenceGraphPolicy(seed=1), interval_cycles=400_000.0
    )
    sim = MulticoreSimulator(
        machine,
        tasks,
        signature_config=SignatureConfig(num_cores=2, num_sets=128, ways=8),
        monitor=monitor,
        scheduler_config=SchedulerConfig(
            num_cores=2, timeslice_cycles=300_000.0, context_smoothing=0.6
        ),
    )
    result = sim.run(min_wall_cycles=6_000_000.0)
    names = {t.tid: t.name for t in tasks}
    if result.majority_mapping is None:
        print("self-check FAILED: no allocation decisions reached")
        return 1
    groups = " | ".join(
        "{" + ",".join(names[i] for i in sorted(g)) + "}"
        for g in result.majority_mapping.groups
    )
    print(f"self-check: {len(result.decisions)} decisions, majority: {groups}")
    print("self-check PASSED")
    return 0


if __name__ == "__main__":
    print(BANNER)
    sys.exit(self_check())
