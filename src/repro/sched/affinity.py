"""Affinity masks and process-to-core mappings.

The paper's allocation algorithms output a *mapping*: which tasks share
which core. The user-level monitor enforces it by "setting affinity bits"
(Section 3.2) — it never preempts the in-core scheduler, it only constrains
where each task may run.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import AllocationError
from repro.utils.validation import require_positive

__all__ = ["Mapping", "balanced_mappings", "canonical_mapping"]


@dataclass(frozen=True)
class Mapping:
    """An assignment of task identifiers to cores.

    ``groups[c]`` is the frozenset of task ids pinned to core ``c``.
    """

    groups: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for group in self.groups:
            overlap = seen & group
            if overlap:
                raise AllocationError(f"tasks {sorted(overlap)} mapped twice")
            seen |= group

    @classmethod
    def from_groups(cls, groups: Sequence[Sequence[int]]) -> "Mapping":
        return cls(tuple(frozenset(g) for g in groups))

    @property
    def num_cores(self) -> int:
        return len(self.groups)

    @property
    def task_ids(self) -> FrozenSet[int]:
        out: set = set()
        for g in self.groups:
            out |= g
        return frozenset(out)

    def core_of(self, task_id: int) -> int:
        """Core the task is pinned to."""
        for core, group in enumerate(self.groups):
            if task_id in group:
                return core
        raise AllocationError(f"task {task_id} not in mapping")

    def canonical(self) -> "Mapping":
        """Core-permutation-invariant form (groups sorted by members).

        Two mappings that differ only in core numbering describe the same
        schedule; canonicalisation makes majority voting meaningful.
        """
        ordered = sorted(self.groups, key=lambda g: sorted(g))
        return Mapping(tuple(ordered))

    def __str__(self) -> str:
        return " | ".join(
            "{" + ",".join(str(t) for t in sorted(g)) + "}" for g in self.groups
        )


def canonical_mapping(groups: Sequence[Sequence[int]]) -> Mapping:
    """Build a canonical mapping from raw groups."""
    return Mapping.from_groups(groups).canonical()


def balanced_mappings(task_ids: Sequence[int], num_cores: int) -> List[Mapping]:
    """Every balanced assignment of tasks to cores, canonicalised.

    For the paper's standard shape — 4 tasks on a dual-core — this yields
    the three mappings of Table 1 (AB|CD, AC|BD, AD|BC). Group size is
    ``ceil(P / N)``; remainders make the last groups smaller.
    """
    require_positive(num_cores, "num_cores")
    ids = sorted(task_ids)
    if len(set(ids)) != len(ids):
        raise AllocationError("duplicate task ids")
    if num_cores == 1:
        return [canonical_mapping([ids])]
    if not ids:
        return [canonical_mapping([[] for _ in range(num_cores)])]
    # Near-balanced group sizes: ceil(P/N) for the first P mod N groups.
    base, extra = divmod(len(ids), num_cores)
    sizes = [base + 1 if c < extra else base for c in range(num_cores)]

    seen = set()
    results: List[Mapping] = []

    def recurse(remaining: Tuple[int, ...], groups: List[List[int]]) -> None:
        if not remaining:
            mapping = canonical_mapping(groups + [[]] * (num_cores - len(groups)))
            if mapping not in seen:
                seen.add(mapping)
                results.append(mapping)
            return
        this_size = sizes[len(groups)]
        if this_size == 0:
            recurse(remaining, groups + [[]])
            return
        for members in combinations(remaining, this_size):
            leftover = tuple(t for t in remaining if t not in members)
            recurse(leftover, groups + [list(members)])

    recurse(tuple(ids), [])
    return results
