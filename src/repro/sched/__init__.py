"""OS scheduling model: tasks, affinity, run queues, syscall boundary."""

from repro.sched.affinity import Mapping, balanced_mappings, canonical_mapping
from repro.sched.os_model import OSScheduler, SchedulerConfig
from repro.sched.process import (
    SimProcess,
    SimTask,
    process_from_parsec,
    task_from_profile,
)
from repro.sched.syscall import SyscallInterface, TaskView

__all__ = [
    "Mapping",
    "balanced_mappings",
    "canonical_mapping",
    "OSScheduler",
    "SchedulerConfig",
    "SimProcess",
    "SimTask",
    "process_from_parsec",
    "task_from_profile",
    "SyscallInterface",
    "TaskView",
]
