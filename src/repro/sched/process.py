"""Schedulable entities: simulated processes and threads.

The scheduler's unit of dispatch is a :class:`SimTask` — one
single-threaded process or one thread of a multithreaded process. Tasks
carry their trace generator, their execution budget, and the timing
parameters (memory intensity, memory-level parallelism) the performance
model needs. Restart semantics follow the paper's methodology: a completed
benchmark is restarted until the longest-running member of its mix finishes
(Section 4.2); the reported "user time" is the cycle count of the *first*
completion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SchedulingError, WorkloadError
from repro.utils.validation import require_positive
from repro.workloads.base import TraceGenerator, WorkloadProfile
from repro.workloads.parsec import MultithreadedProfile

__all__ = ["SimTask", "SimProcess", "task_from_profile", "process_from_parsec"]

_task_ids = itertools.count()
_process_ids = itertools.count()

#: Block-address shift applied per restart (fresh physical pages) and the
#: number of distinct incarnation slices cycled through.
INCARNATION_STRIDE_BLOCKS = 1 << 20
INCARNATION_SLICES = 8


@dataclass
class SimTask:
    """One schedulable entity.

    Attributes
    ----------
    name:
        Display name ('mcf' or 'ferret.t2').
    generator:
        The task's L2 reference stream.
    total_accesses:
        Trace length of one complete run.
    accesses_per_kinstr, mlp:
        Timing-model parameters (memory intensity, miss overlap).
    process_id:
        Grouping key: threads of one process share it; single-threaded
        processes get a unique one.
    """

    name: str
    generator: TraceGenerator
    total_accesses: int
    accesses_per_kinstr: float
    mlp: float = 1.0
    process_id: Optional[int] = None
    tid: int = field(default_factory=lambda: next(_task_ids))

    # -- runtime state (owned by the simulator) ------------------------
    accesses_done: int = 0
    user_cycles: float = 0.0
    completions: int = 0
    first_completion_cycles: Optional[float] = None
    context_switches: int = 0

    def __post_init__(self) -> None:
        require_positive(self.total_accesses, "total_accesses")
        if self.accesses_per_kinstr <= 0:
            raise WorkloadError("accesses_per_kinstr must be positive")
        if self.mlp < 1.0:
            raise WorkloadError("mlp must be >= 1.0")
        if self.process_id is None:
            self.process_id = next(_process_ids)
        self._base_block0 = self.generator.base_block

    @property
    def remaining_accesses(self) -> int:
        """Accesses left in the current run."""
        return self.total_accesses - self.accesses_done

    @property
    def completed_once(self) -> bool:
        """True once the task has finished at least one full run."""
        return self.completions > 0

    def instructions_for(self, accesses: int) -> float:
        """Instructions retired alongside *accesses* memory references."""
        return accesses * 1000.0 / self.accesses_per_kinstr

    def advance(self, accesses: int, cycles: float) -> bool:
        """Account one executed batch; returns True if the run completed.

        On completion the task restarts (paper Section 4.2): the generator
        replays its reference pattern, but in a shifted block-address slice
        — a restarted process gets fresh physical pages, so it must *not*
        hit the previous incarnation's cache contents. The shift cycles
        through :data:`INCARNATION_SLICES` disjoint slices.
        """
        if accesses > self.remaining_accesses:
            raise SchedulingError(
                f"task {self.name}: advanced {accesses} past remaining "
                f"{self.remaining_accesses}"
            )
        self.accesses_done += accesses
        self.user_cycles += cycles
        if self.accesses_done >= self.total_accesses:
            self.completions += 1
            if self.first_completion_cycles is None:
                self.first_completion_cycles = self.user_cycles
            self.accesses_done = 0
            self.generator.reset()
            incarnation = self.completions % INCARNATION_SLICES
            self.generator.base_block = (
                self._base_block0 + incarnation * INCARNATION_STRIDE_BLOCKS
            )
            return True
        return False

    def reset_runtime(self) -> None:
        """Clear all execution state (for reusing a task across runs)."""
        self.accesses_done = 0
        self.user_cycles = 0.0
        self.completions = 0
        self.first_completion_cycles = None
        self.context_switches = 0
        self.generator.reset()
        self.generator.base_block = self._base_block0

    def __repr__(self) -> str:
        return (
            f"SimTask({self.name!r}, tid={self.tid}, "
            f"done={self.accesses_done}/{self.total_accesses})"
        )


@dataclass
class SimProcess:
    """A process grouping one or more tasks (threads)."""

    name: str
    tasks: List[SimTask]
    process_id: int = field(default_factory=lambda: next(_process_ids))

    def __post_init__(self) -> None:
        if not self.tasks:
            raise SchedulingError(f"process {self.name!r} has no tasks")
        for task in self.tasks:
            task.process_id = self.process_id

    @property
    def completed_once(self) -> bool:
        """True when every thread has completed at least one run."""
        return all(t.completed_once for t in self.tasks)

    @property
    def user_cycles_first_completion(self) -> Optional[float]:
        """Process 'user time': the slowest thread's first completion.

        The paper measures "user time to completion of the enclosing
        process" for PARSEC (Section 4.2).
        """
        times = [t.first_completion_cycles for t in self.tasks]
        if any(t is None for t in times):
            return None
        return max(times)


def task_from_profile(
    profile: WorkloadProfile,
    instructions: int,
    base_block: int = 0,
    seed: int = 0,
) -> SimTask:
    """Build a single-threaded task from a SPEC-like profile.

    *instructions* is the per-run budget; the trace length follows from the
    profile's memory intensity.
    """
    require_positive(instructions, "instructions")
    return SimTask(
        name=profile.name,
        generator=profile.make_generator(base_block=base_block, seed=seed),
        total_accesses=profile.accesses_for_instructions(instructions),
        accesses_per_kinstr=profile.accesses_per_kinstr,
        mlp=profile.mlp,
    )


def process_from_parsec(
    profile: MultithreadedProfile,
    instructions_per_thread: int,
    base_block: int = 0,
    seed: int = 0,
) -> SimProcess:
    """Build a multithreaded process from a PARSEC-like profile."""
    require_positive(instructions_per_thread, "instructions_per_thread")
    tasks = [
        SimTask(
            name=f"{profile.name}.t{i}",
            generator=profile.make_thread_generator(
                i, base_block=base_block, seed=seed
            ),
            total_accesses=profile.accesses_for_instructions(
                instructions_per_thread
            ),
            accesses_per_kinstr=profile.accesses_per_kinstr,
            mlp=profile.mlp,
        )
        for i in range(profile.threads)
    ]
    return SimProcess(name=profile.name, tasks=tasks)
