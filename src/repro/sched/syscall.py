"""The syscall boundary between kernel and the user-level monitor.

The paper (Section 3.2) keeps the allocation *policy* in a user-level
process which "utilizes the system call interface to periodically query the
OS for updated information regarding executed applications" and pushes
decisions back by "setting affinity bits". :class:`SyscallInterface` is
that boundary: the monitor only ever sees task ids, names, and copies of
the ``(2+N)``-entry signature contexts — never the scheduler's internals.

The identical shape serves the virtualization case, where Dom0 talks to the
hypervisor through hypercalls (:mod:`repro.virt.dom0`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sched.affinity import Mapping
from repro.sched.os_model import OSScheduler

__all__ = ["TaskView", "SyscallInterface"]


@dataclass(frozen=True)
class TaskView:
    """Read-only snapshot of one task as exposed to the monitor.

    Mirrors the paper's per-entity record: identity plus the
    ``(last_core, occupancy, symbiosis[N])`` structure, with the grouping
    key (``process_id``) needed by the two-phase multithreaded algorithm.
    """

    tid: int
    name: str
    process_id: int
    last_core: Optional[int]
    occupancy: float
    symbiosis: np.ndarray
    valid: bool
    #: Context-switch samples folded into this context so far; lets the
    #: monitor's health layer detect a stale (non-refreshing) signature.
    samples_seen: int = 0

    def interference_with_core(self, core: int) -> float:
        """Reciprocal-symbiosis interference metric against *core*."""
        from repro.core.metrics import interference_from_symbiosis

        return interference_from_symbiosis(self.symbiosis[core])


class SyscallInterface:
    """User-space view of the scheduler state."""

    def __init__(self, scheduler: OSScheduler):
        self._scheduler = scheduler

    @property
    def num_cores(self) -> int:
        """Physical core count."""
        return self._scheduler.num_cores

    def query_tasks(self) -> List[TaskView]:
        """Snapshot every known task's signature context."""
        views: List[TaskView] = []
        for tid, task in self._scheduler.tasks.items():
            ctx = self._scheduler.contexts[tid]
            views.append(
                TaskView(
                    tid=tid,
                    name=task.name,
                    process_id=task.process_id,
                    last_core=ctx.last_core,
                    occupancy=ctx.occupancy,
                    symbiosis=ctx.symbiosis.copy(),
                    valid=ctx.valid,
                    samples_seen=ctx.samples_seen,
                )
            )
        views.sort(key=lambda v: v.tid)
        return views

    def current_placement(self) -> Dict[int, int]:
        """tid -> core for every queued task."""
        placement: Dict[int, int] = {}
        for core, queue in enumerate(self._scheduler.queues):
            for task in queue:
                placement[task.tid] = core
        return placement

    def set_affinity(self, tid: int, core: int) -> None:
        """Pin one task (the monitor's write path)."""
        self._scheduler.set_affinity(tid, core)

    def apply_mapping(self, mapping: Mapping) -> None:
        """Pin a whole mapping."""
        self._scheduler.apply_mapping(mapping)
