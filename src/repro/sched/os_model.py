"""The OS scheduling model: per-core run queues with round-robin quanta.

This mirrors the paper's software architecture (Section 3.2):

* the **kernel** keeps per-core run queues, performs round-robin context
  switches within a core, and — on every switch — reads the signature
  hardware (the Simics "magic instruction" in the paper's phase 1) to
  refresh the outgoing task's :class:`~repro.core.context.SignatureContext`;
* the **user-level monitor** (in :mod:`repro.alloc.monitor`) only sets
  affinity bits; migrations take effect at the next context switch so the
  running task is never yanked mid-quantum.

Timeslice and switch costs are in cycles. The default quantum is large
relative to this reproduction's compressed run lengths, mirroring the real
ratio on the paper's machines (a 100 ms Linux quantum is tiny next to a
100 s SPEC run, so per-quantum cache refill amortises to almost nothing;
with our scaled-down budgets the equivalent regime is run-granular
alternation). Phase-1 signature gathering overrides this with a small
quantum to sample RBVs densely (see repro.perf.experiment).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.context import SignatureContext, SignatureSample
from repro.core.signature import SignatureUnit
from repro.errors import SchedulingError
from repro.sched.affinity import Mapping
from repro.sched.process import SimTask
from repro.utils.validation import require_positive

__all__ = ["SchedulerConfig", "OSScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduling parameters.

    Parameters
    ----------
    num_cores:
        Physical cores managed.
    timeslice_cycles:
        Round-robin quantum.
    context_switch_cycles:
        Direct cost charged to the core at each switch (register/kernel
        overhead; cache warm-up emerges from the cache model itself).
    context_smoothing:
        EMA factor for the per-task signature contexts (1.0 = keep only
        the latest sample, the paper's behaviour; phase-1 gathering uses
        a lower value to stabilise allocator decisions).
    """

    num_cores: int
    timeslice_cycles: float = 50_000_000.0
    context_switch_cycles: float = 5_000.0
    context_smoothing: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.num_cores, "num_cores")
        if self.timeslice_cycles <= 0:
            raise SchedulingError("timeslice_cycles must be positive")
        if self.context_switch_cycles < 0:
            raise SchedulingError("context_switch_cycles must be >= 0")
        if not 0.0 < self.context_smoothing <= 1.0:
            raise SchedulingError("context_smoothing must be in (0, 1]")


class OSScheduler:
    """Per-core run queues, affinity handling and signature bookkeeping."""

    def __init__(
        self,
        config: SchedulerConfig,
        signature_unit: Optional[SignatureUnit] = None,
    ):
        self.config = config
        self.num_cores = config.num_cores
        self.signature_unit = signature_unit
        if signature_unit is not None and signature_unit.num_cores != self.num_cores:
            raise SchedulingError(
                f"signature unit covers {signature_unit.num_cores} cores, "
                f"scheduler has {self.num_cores}"
            )
        self.queues: List[Deque[SimTask]] = [deque() for _ in range(self.num_cores)]
        self.quantum_used: List[float] = [0.0] * self.num_cores
        self.tasks: Dict[int, SimTask] = {}
        self.contexts: Dict[int, SignatureContext] = {}
        self._pending_affinity: Dict[int, int] = {}
        self.total_context_switches = 0
        self.total_migrations = 0

    # ------------------------------------------------------------------
    # task placement
    # ------------------------------------------------------------------
    def add_task(self, task: SimTask, core: Optional[int] = None) -> None:
        """Enqueue a new task, on *core* or on the least-loaded core."""
        if task.tid in self.tasks:
            raise SchedulingError(f"task {task.tid} added twice")
        if core is None:
            core = min(range(self.num_cores), key=lambda c: len(self.queues[c]))
        self._check_core(core)
        self.queues[core].append(task)
        self.tasks[task.tid] = task
        self.contexts[task.tid] = SignatureContext(
            self.num_cores, smoothing=self.config.context_smoothing
        )

    def core_of(self, tid: int) -> int:
        """Core whose queue currently holds the task."""
        for core, queue in enumerate(self.queues):
            for task in queue:
                if task.tid == tid:
                    return core
        raise SchedulingError(f"task {tid} not queued")

    def set_affinity(self, tid: int, core: int) -> None:
        """Pin a task to *core* (the monitor's only lever, Section 3.2).

        A queued (not running) task migrates immediately; the running task
        of a core migrates at that core's next context switch.
        """
        self._check_core(core)
        if tid not in self.tasks:
            raise SchedulingError(f"unknown task {tid}")
        current = self.core_of(tid)
        if current == core:
            self._pending_affinity.pop(tid, None)
            return
        task = self.tasks[tid]
        if self.queues[current][0] is task:
            self._pending_affinity[tid] = core  # defer: currently running
            return
        self.queues[current].remove(task)
        self.queues[core].append(task)
        self.total_migrations += 1

    def apply_mapping(self, mapping: Mapping) -> None:
        """Set affinity of every task named in *mapping*."""
        if mapping.num_cores > self.num_cores:
            raise SchedulingError(
                f"mapping uses {mapping.num_cores} cores, have {self.num_cores}"
            )
        for core, group in enumerate(mapping.groups):
            for tid in group:
                self.set_affinity(tid, core)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def current_task(self, core: int) -> Optional[SimTask]:
        """The task occupying *core* (queue head)."""
        self._check_core(core)
        queue = self.queues[core]
        return queue[0] if queue else None

    def runnable_cores(self) -> List[int]:
        """Cores with at least one queued task."""
        return [c for c in range(self.num_cores) if self.queues[c]]

    def charge(self, core: int, cycles: float) -> bool:
        """Charge quantum usage; True when the timeslice expired."""
        self._check_core(core)
        self.quantum_used[core] += cycles
        return self.quantum_used[core] >= self.config.timeslice_cycles

    def context_switch(self, core: int) -> Optional[SignatureSample]:
        """End the current quantum on *core*.

        Snapshots the signature hardware (refreshing the outgoing task's
        context), applies any deferred affinity migration, rotates the run
        queue, and resets the quantum. Returns the signature sample, or
        ``None`` when no signature unit is attached or the core is idle.

        The direct switch cost is *not* charged here — the simulator adds
        ``config.context_switch_cycles`` to the core clock so the timing
        stays in one place.
        """
        self._check_core(core)
        queue = self.queues[core]
        self.quantum_used[core] = 0.0
        if not queue:
            return None
        outgoing = queue[0]
        sample: Optional[SignatureSample] = None
        if self.signature_unit is not None:
            sample = self.signature_unit.on_context_switch(core)
            # A fault-injected unit may drop the sample (lost sampling
            # window); the context then simply keeps its last reading.
            if sample is not None:
                self.contexts[outgoing.tid].update(sample)
        outgoing.context_switches += 1
        self.total_context_switches += 1
        # Deferred migration of the task that just stopped running.
        target = self._pending_affinity.pop(outgoing.tid, None)
        if target is not None and target != core:
            queue.popleft()
            self.queues[target].append(outgoing)
            self.total_migrations += 1
        else:
            queue.rotate(-1)
        return sample

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise SchedulingError(
                f"core {core} out of range for {self.num_cores}-core scheduler"
            )

    def __repr__(self) -> str:
        loads = [len(q) for q in self.queues]
        return f"OSScheduler(cores={self.num_cores}, queue_loads={loads})"
