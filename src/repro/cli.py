"""Command-line interface: ``repro-cli`` (or ``python -m repro.cli``).

Subcommands
-----------
``profiles``
    List the SPEC-like and PARSEC-like workload pools.
``mix``
    Run the paper's two-phase methodology on a benchmark mix and print the
    per-benchmark improvements (the Figure 10 metric).
``pairwise``
    Pairwise worst-case degradations for a set of benchmarks (Figure 3).
``sweep``
    A stratified Figure-10-style mix sweep through the job orchestrator
    (parallel workers and an on-disk result cache).
``figure``
    Regenerate a quick paper figure (1, 2/5, or table1) at reduced scale.
``lint``
    Run the AST-based invariant linter (:mod:`repro.lint`) over the
    tree: determinism, durability, worker-safety and telemetry-hygiene
    rules, with ``# repro: noqa[CODE]`` suppressions and a committed
    baseline — see ``docs/static-analysis.md``. With ``--flow``, the
    whole-program RPR6xx passes (:mod:`repro.flow`) run over the same
    parse: call-graph construction plus interprocedural determinism,
    async-safety, and durability checks, with JSON/DOT graph export.
``serve``
    Run the online scheduling daemon (:mod:`repro.service`): admits and
    retires processes dynamically over a newline-JSON TCP protocol and
    remaps cores incrementally — see ``docs/service.md``. With
    ``--state-dir`` the daemon is crash-consistent (event WAL +
    snapshots, :mod:`repro.durable`); ``--recover`` rebuilds its exact
    pre-crash state from that directory. ``--request-timeout`` and
    ``--shed-queue-depth`` arm the overload protections;
    ``--ewma-alpha`` / ``--flap-window`` / ``--flap-threshold`` expose
    the adaptation tuning (:class:`~repro.service.tuning.ServiceTuning`;
    the flap guard stays disarmed unless ``--flap-threshold`` is given).
``adversary``
    Score the scheduling stack against adversarial workloads
    (:mod:`repro.adversary`): signature-aliasing streams, footprint
    bombs, LRU thrashers and phase flappers, each run hardened vs
    unhardened — see ``docs/robustness.md``.
``submit``
    One-shot client for a running daemon: admit/retire/phase-change a
    process, or query status/mapping, printing the JSON response.
    ``--timeout`` bounds connect/read (loud ``ServiceTimeout`` instead
    of hanging); ``--client-id`` tags mutating ops for idempotent
    retries.

All commands accept ``--seed`` for reproducibility; ``mix`` and
``pairwise`` accept ``--instructions`` to trade fidelity for speed.
``mix`` and ``sweep`` accept ``--jobs`` (parallel simulation workers) and
``--cache-dir`` (content-addressed result cache) — see
:mod:`repro.jobs` — plus the robustness flags: ``--keep-going`` /
``--fail-fast`` (salvage failing mixes into a failure report vs abort on
the first error; fail-fast is the default) and ``--resume JOURNAL``
(write-ahead journal of completed runs; re-invoking with the same
journal re-executes only what had not finished), the supervision flags
``--max-retries N`` (retry budget per job), ``--hang-timeout SECONDS``
(heartbeat watchdog: kill workers that stop proving liveness) and
``--quarantine FILE`` (persisted poison-spec denylist fed by the circuit
breaker; consulted again on resume) — see :mod:`repro.supervise` and
``docs/robustness.md`` — and the observability flags ``--trace-out
FILE`` (Chrome trace-event JSON of the run, loadable in Perfetto) and
``--metrics-out FILE`` (Prometheus-format metrics snapshot plus a
printed summary table) — see :mod:`repro.telemetry` and
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from repro.adversary import (
    ADVERSARY_KINDS,
    adversary_machine,
    run_adversary_suite,
)
from repro.alloc import (
    InterferenceGraphPolicy,
    WeightedInterferenceGraphPolicy,
    WeightSortPolicy,
)
from repro.analysis.figures import (
    figure1_concept,
    figure2_counters_vs_footprint,
    figure10_native_sweep,
    table1_mapping_runtimes,
)
from repro.analysis.report import (
    render_counter_series,
    render_metrics,
    render_pairwise,
    render_sweep,
    render_table1,
)
from repro.durable import DurabilityManager
from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.estimate.dispatch import BACKENDS
from repro.jobs import Orchestrator
from repro.lint import cli as lint_cli
from repro.service import (
    SchedulerService,
    ServiceConfig,
    ServiceServer,
    call_once,
)
from repro.supervise import SupervisionConfig
from repro.telemetry import (
    TRACE_ENV_VAR,
    MetricsRegistry,
    TelemetryContext,
    Tracer,
)
from repro.telemetry import configure as telemetry_configure
from repro.telemetry import deactivate as telemetry_deactivate
from repro.telemetry.exporters import write_merged_chrome_trace, write_prometheus
from repro.perf.experiment import pairwise_shared, two_phase
from repro.perf.machine import core2duo
from repro.utils.tables import format_percent, format_table
from repro.workloads.parsec import parsec_pool
from repro.workloads.spec import spec_pool, spec_profile_names

__all__ = ["main", "build_parser"]

_POLICIES = {
    "weight-sort": WeightSortPolicy,
    "interference": InterferenceGraphPolicy,
    "weighted": WeightedInterferenceGraphPolicy,
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-cli`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Symbiotic shared-cache scheduling (ICPP 2011) — "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("profiles", help="list the workload profile pools")

    mix = sub.add_parser("mix", help="two-phase methodology on one mix")
    mix.add_argument("names", nargs="+", help="benchmark names (e.g. mcf povray)")
    mix.add_argument(
        "--policy", choices=sorted(_POLICIES), default="weighted",
        help="allocation policy (default: weighted)",
    )
    mix.add_argument("--instructions", type=int, default=6_000_000)
    mix.add_argument("--seed", type=int, default=3)
    _add_jobs_arguments(mix)

    pw = sub.add_parser("pairwise", help="pairwise degradations (Figure 3b)")
    pw.add_argument("names", nargs="+", help="benchmark names")
    pw.add_argument("--instructions", type=int, default=3_000_000)
    pw.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="stratified mix sweep through the job orchestrator"
    )
    sweep.add_argument(
        "--policy", choices=sorted(_POLICIES), default="weighted",
        help="allocation policy (default: weighted)",
    )
    sweep.add_argument(
        "--mixes-per-benchmark", type=int, default=2,
        help="stratified coverage: mixes containing each benchmark",
    )
    sweep.add_argument("--instructions", type=int, default=1_000_000)
    sweep.add_argument("--seed", type=int, default=3)
    sweep.add_argument(
        "--backend", choices=list(BACKENDS), default="exact",
        help="simulation backend for phase-2 measurements "
        "(default: exact; see docs/estimation.md)",
    )
    _add_jobs_arguments(sweep)

    fig = sub.add_parser("figure", help="regenerate a quick paper figure")
    fig.add_argument("which", choices=["1", "2", "5", "table1"])
    fig.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint",
        help="AST-based invariant linter (determinism, durability, "
        "worker-safety, telemetry hygiene)",
    )
    lint_cli.add_arguments(lint)

    serve = sub.add_parser(
        "serve",
        help="run the online scheduling daemon (newline-JSON over TCP)",
    )
    serve.add_argument(
        "--policy", choices=sorted(_POLICIES), default="weight-sort",
        help="allocation policy (default: weight-sort)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--cores", type=_positive_int, default=4,
        help="number of cores to map onto (default: 4)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 picks a free one and prints it (default: 0)",
    )
    serve.add_argument(
        "--queue-capacity", type=_positive_int, default=1024,
        help="bounded admission queue depth (default: 1024)",
    )
    serve.add_argument(
        "--drift-threshold", type=_positive_int, default=16,
        help="incremental updates tolerated before a full remap "
        "(default: 16)",
    )
    serve.add_argument(
        "--state-dir", default=None,
        help="durability directory (event WAL + snapshots); omit for a "
        "purely in-memory daemon",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="rebuild daemon state from --state-dir before serving "
        "(snapshot + WAL tail replay)",
    )
    serve.add_argument(
        "--snapshot-interval", type=_positive_int, default=256,
        help="events between durable state snapshots (default: 256)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=None,
        help="per-request deadline in seconds for mutating ops "
        "(default: none)",
    )
    serve.add_argument(
        "--shed-queue-depth", type=_positive_int, default=None,
        help="shed mutating requests with 'overloaded' once the "
        "admission queue is this deep (default: never shed)",
    )
    serve.add_argument(
        "--stale-after", type=float, default=None,
        help="seconds of event silence before status reports "
        "degraded=true (default: never)",
    )
    serve.add_argument(
        "--ewma-alpha", type=float, default=None,
        help="registry footprint-EWMA smoothing factor in (0, 1] "
        "(default: the ServiceTuning default)",
    )
    serve.add_argument(
        "--flap-window", type=_positive_int, default=None,
        help="sliding event window for the mapper's flap guard "
        "(default: the ServiceTuning default)",
    )
    serve.add_argument(
        "--flap-threshold", type=_positive_int, default=None,
        help="phase changes within --flap-window before a process is "
        "damped (remaps rate-limited); omit to disarm the flap guard "
        "(default: disarmed, byte-identical to the unguarded daemon)",
    )

    adv = sub.add_parser(
        "adversary",
        help="score the scheduling stack against adversarial workloads",
    )
    adv.add_argument(
        "--kinds", nargs="+", choices=list(ADVERSARY_KINDS),
        default=list(ADVERSARY_KINDS),
        help="adversary classes to score (default: all)",
    )
    adv.add_argument(
        "--policy", choices=sorted(_POLICIES), default="weight-sort",
        help="allocation policy (default: weight-sort)",
    )
    adv.add_argument("--instructions", type=_positive_int, default=150_000)
    adv.add_argument("--seed", type=int, default=3)
    adv.add_argument(
        "--json-out", metavar="FILE", default=None,
        help="write the full AdversaryReport as JSON",
    )

    submit = sub.add_parser(
        "submit",
        help="one-shot client: admit/retire/query a running daemon",
    )
    submit.add_argument(
        "--op",
        choices=[
            "submit", "retire", "phase_change",
            "status", "mapping", "ping", "shutdown",
        ],
        default="submit",
        help="operation to perform (default: submit, i.e. admit)",
    )
    submit.add_argument(
        "name", nargs="?",
        help="benchmark profile name (submit / phase_change)",
    )
    submit.add_argument(
        "--pid", type=int, default=None,
        help="process id (submit / retire / phase_change)",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, required=True)
    submit.add_argument(
        "--timeout", type=float, default=30.0,
        help="connect/read deadline in seconds (default: 30)",
    )
    submit.add_argument(
        "--client-id", default=None,
        help="idempotency tag: re-running a one-shot command with the "
        "same id is a safe retry of that ONE request (answered as a "
        "duplicate, never re-applied) — use a distinct id per logical "
        "request, or different requests dedup against each other",
    )

    return parser


def _positive_int(text: str) -> int:
    """argparse type for worker counts: a strictly positive integer.

    Rejects ``0`` and negatives at parse time with an actionable message
    (``--jobs 0`` used to surface much later as an opaque
    ``ConfigurationError`` from the pool constructor).
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an integer"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (got {value}); use '--jobs 1' for in-process "
            "execution"
        )
    return value


def _add_jobs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the orchestration flags shared by ``mix`` and ``sweep``."""
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="parallel simulation workers (default: 1, in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the content-addressed result cache",
    )
    going = parser.add_mutually_exclusive_group()
    going.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        help="salvage failing runs into a failure report instead of aborting",
    )
    going.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort on the first failing run (default)",
    )
    parser.set_defaults(keep_going=False)
    parser.add_argument(
        "--resume", metavar="JOURNAL", default=None,
        help="write-ahead journal file; completed runs recorded there are "
        "replayed instead of re-executed (checkpoint/resume)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="extra attempts a job gets after a worker crash, hang or "
        "timeout (default: 2)",
    )
    parser.add_argument(
        "--hang-timeout", type=float, default=None, metavar="SECONDS",
        help="arm the heartbeat watchdog: kill a worker after this many "
        "seconds of heartbeat silence (hung, as opposed to merely slow)",
    )
    parser.add_argument(
        "--quarantine", metavar="FILE", default=None,
        help="persisted poison-spec denylist: specs that trip the circuit "
        "breaker are recorded here and skipped by later (resumed) runs",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON file of the run "
        "(load in Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write a Prometheus-format metrics snapshot and print the "
        "metric summary table",
    )


def _wants_orchestration(args: argparse.Namespace) -> bool:
    """True when any *orchestration* flag (not telemetry) was given."""
    return (
        args.jobs > 1
        or args.cache_dir is not None
        or args.keep_going
        or args.resume is not None
        or args.max_retries != 2
        or args.hang_timeout is not None
        or args.quarantine is not None
    )


def _make_orchestrator(args: argparse.Namespace) -> Optional[Orchestrator]:
    """Build an orchestrator from the orchestration flags (or ``None``).

    The default flag set (``--jobs 1``, no cache, fail-fast, no journal,
    no telemetry) keeps the exact serial code path; any orchestration,
    robustness or telemetry flag opts the command into the
    :mod:`repro.jobs` subsystem (telemetry because the orchestrator is
    where the root ``orchestrator.run_specs`` span comes from).
    """
    if (
        not _wants_orchestration(args)
        and args.trace_out is None
        and args.metrics_out is None
    ):
        return None
    supervision = None
    if args.hang_timeout is not None or args.quarantine is not None:
        supervision = SupervisionConfig(
            hang_timeout=args.hang_timeout,
            quarantine=args.quarantine,
        )
    return Orchestrator(
        jobs=max(1, args.jobs),
        cache_dir=args.cache_dir,
        retries=args.max_retries,
        journal=args.resume,
        keep_going=args.keep_going,
        supervision=supervision,
    )


@contextmanager
def _telemetry_session(
    args: argparse.Namespace,
) -> Iterator[Optional[TelemetryContext]]:
    """Activate telemetry for one command when its flags ask for it.

    Without ``--trace-out`` / ``--metrics-out`` this yields ``None`` and
    touches nothing — the command runs the exact disabled fast path.
    With either flag it installs a process-wide context, exports the
    requested files after a successful command, and always deactivates.
    ``--trace-out`` with ``--jobs > 1`` additionally publishes the trace
    path through :data:`~repro.telemetry.TRACE_ENV_VAR` so spawned
    workers trace themselves into part files the final write merges.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out is None and metrics_out is None:
        yield None
        return
    context = telemetry_configure(
        tracer=Tracer(),
        metrics=MetricsRegistry(),
        trace_path=trace_out,
        metrics_path=metrics_out,
    )
    propagate = trace_out is not None and getattr(args, "jobs", 1) > 1
    saved_env = os.environ.get(TRACE_ENV_VAR)
    if propagate:
        os.environ[TRACE_ENV_VAR] = trace_out
    try:
        yield context
        _export_telemetry(context)
    finally:
        if propagate:
            if saved_env is None:
                os.environ.pop(TRACE_ENV_VAR, None)
            else:
                os.environ[TRACE_ENV_VAR] = saved_env
        telemetry_deactivate()


def _export_telemetry(context: TelemetryContext) -> None:
    """Write the trace / metrics files a finished command asked for."""
    if context.trace_path is not None:
        count = write_merged_chrome_trace(
            context.trace_path, context.tracer.drain()
        )
        print(f"\ntrace: {count} span(s) -> {context.trace_path}")
    if context.metrics_path is not None:
        snapshot = context.metrics.snapshot()
        write_prometheus(context.metrics_path, snapshot)
        print(f"\nmetrics: {len(snapshot)} series -> {context.metrics_path}")
        print()
        print(render_metrics(snapshot))


def _print_failures(sweep) -> None:
    """Print a keep-going sweep's failure report (when non-trivial)."""
    report = sweep.failures
    if report.ok:
        return
    print(report.summary())
    for failure in report.failures:
        print(f"  failed {'+'.join(failure.mix)}: {failure.error}")
    for degradation in report.degradations:
        print(
            f"  degraded {'+'.join(degradation.mix)}: "
            f"{len(degradation.events)} event(s), fell back to the "
            "default schedule"
        )


def _cmd_profiles() -> int:
    rows = [
        [p.name, p.category, p.working_set_kb, p.hot_set_kb,
         p.accesses_per_kinstr, p.pattern]
        for p in spec_pool()
    ]
    print(
        format_table(
            ["name", "category", "WS (KB)", "hot (KB)", "APKI", "pattern"],
            rows,
            title="SPEC2006-like pool (12 benchmarks)",
        )
    )
    rows = [
        [p.name, p.category, p.threads, p.shared_ws_kb, p.private_ws_kb,
         p.shared_fraction]
        for p in parsec_pool()
    ]
    print()
    print(
        format_table(
            ["name", "category", "threads", "shared (KB)", "private (KB)",
             "shared frac"],
            rows,
            title="PARSEC-like pool (8 applications)",
        )
    )
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    unknown = [n for n in args.names if n not in spec_profile_names()]
    if unknown:
        print(f"unknown benchmarks: {unknown}; see 'repro-cli profiles'")
        return 2
    machine = core2duo()
    try:
        orchestrator = _make_orchestrator(args)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
    try:
        result = two_phase(
            machine,
            args.names,
            _POLICIES[args.policy](seed=args.seed),
            instructions=args.instructions,
            seed=args.seed,
            orchestrator=orchestrator,
        )
    except SimulationError as exc:
        print(f"mix failed: {exc}")
        return 1
    print(f"mix: {', '.join(args.names)}   policy: {args.policy}")
    if orchestrator is not None and _wants_orchestration(args):
        # A telemetry-only orchestrator must not perturb the command's
        # own output (the overhead gate diffs it against a plain run).
        print(orchestrator.counters.summary())
    if result.degradations:
        print(
            f"DEGRADED: signature failed health checks "
            f"({len(result.degradations)} event(s)); chosen schedule is "
            "the default fallback"
        )
    print(f"phase-1 decisions: {len(result.decisions)}")
    print(f"chosen schedule: {result.chosen_mapping}\n")
    rows = [
        [
            name,
            machine.seconds(result.worst_time(name)),
            machine.seconds(result.chosen_time(name)),
            format_percent(result.improvement(name)),
            format_percent(result.oracle_improvement(name)),
        ]
        for name in args.names
    ]
    print(
        format_table(
            ["benchmark", "worst (s)", "chosen (s)", "improvement", "oracle"],
            rows,
            float_digits=4,
        )
    )
    return 0


def _cmd_pairwise(args: argparse.Namespace) -> int:
    unknown = [n for n in args.names if n not in spec_profile_names()]
    if unknown:
        print(f"unknown benchmarks: {unknown}; see 'repro-cli profiles'")
        return 2
    if len(args.names) < 2:
        print("pairwise needs at least two benchmarks")
        return 2
    result = pairwise_shared(
        core2duo(), args.names, instructions=args.instructions, seed=args.seed
    )
    print(
        render_pairwise(
            result, "Pairwise worst-case degradation (shared L2, Figure 3b)"
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        orchestrator = _make_orchestrator(args) or Orchestrator(jobs=1)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
    sweep = figure10_native_sweep(
        policy=_POLICIES[args.policy](seed=args.seed),
        instructions=args.instructions,
        seed=args.seed,
        mixes_per_benchmark=args.mixes_per_benchmark,
        orchestrator=orchestrator,
        keep_going=args.keep_going,
        backend=args.backend,
    )
    print(
        render_sweep(
            sweep,
            f"Figure 10-style sweep ({len(sweep.mix_results)} mixes, "
            f"policy: {args.policy}, backend: {args.backend})",
        )
    )
    print()
    print(orchestrator.counters.summary())
    _print_failures(sweep)
    return 1 if sweep.failures.failures else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.which == "1":
        out = figure1_concept()
        rows = [
            [label, v["miss_rate"], int(v["footprint_lines"])]
            for label, v in out.items()
        ]
        print(
            format_table(
                ["application", "miss rate", "footprint (lines)"],
                rows,
                title="Figure 1: same miss rate, different footprint",
            )
        )
    elif args.which in ("2", "5"):
        series = figure2_counters_vs_footprint(laps=1, seed=args.seed)
        print(render_counter_series(series))
    else:  # table1
        names, times = table1_mapping_runtimes(
            instructions=2_000_000, seed=args.seed
        )
        print(render_table1(names, times, core2duo().clock_hz))
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    """Score hardened vs unhardened stacks under each adversary class."""

    def factory():
        cls = _POLICIES[args.policy]
        return cls() if cls is WeightSortPolicy else cls(seed=args.seed)

    machine = adversary_machine()
    report = run_adversary_suite(
        machine,
        [(args.policy, factory)],
        kinds=tuple(args.kinds),
        instructions=args.instructions,
        seed=args.seed,
    )
    rows = [
        [
            score.adversary,
            "hardened" if score.hardened else "baseline",
            f"{score.victim_worst_slowdown:.4f}",
            f"{score.worst_slowdown:.4f}",
            score.suspect_invocations,
            score.degraded_invocations,
            "yes" if score.gate_tripped else "",
        ]
        for score in report.scores
    ]
    print(
        format_table(
            ["adversary", "stack", "victim worst", "worst", "suspect",
             "degraded", "gate"],
            rows,
            title=f"Adversary suite ({machine.name}, policy: {args.policy}, "
            f"seed: {args.seed})",
        )
    )
    print()
    delta_rows = [
        [kind, f"{entry['unhardened_victim_worst_slowdown']:.4f}",
         f"{entry['hardened_victim_worst_slowdown']:.4f}",
         f"{entry['delta']:+.4f}"]
        for kind, entry in sorted(report.to_dict()["deltas"].items())
    ]
    print(
        format_table(
            ["adversary", "baseline", "hardened", "delta"],
            delta_rows,
            title="Hardening deltas (victim worst-case slowdown)",
        )
    )
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"\nreport -> {args.json_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the scheduling daemon until a ``shutdown`` op or Ctrl-C."""
    if args.recover and args.state_dir is None:
        print("error: --recover requires --state-dir", file=sys.stderr)
        return 2
    tuning_kwargs = {}
    if args.ewma_alpha is not None:
        tuning_kwargs["ewma_alpha"] = args.ewma_alpha
    if args.flap_window is not None:
        tuning_kwargs["flap_window"] = args.flap_window
    if args.flap_threshold is not None:
        tuning_kwargs["flap_threshold"] = args.flap_threshold
    try:
        config = ServiceConfig(
            num_cores=args.cores,
            queue_capacity=args.queue_capacity,
            drift_threshold=args.drift_threshold,
            stale_after_seconds=args.stale_after,
            **tuning_kwargs,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cls = _POLICIES[args.policy]
    # WeightSortPolicy is deterministic by construction and takes no seed.
    policy = cls() if cls is WeightSortPolicy else cls(seed=args.seed)
    try:
        if args.recover:
            service = SchedulerService.recover(
                policy,
                config,
                state_dir=args.state_dir,
                snapshot_interval=args.snapshot_interval,
            )
            print(
                f"recovered {service.events_processed} event(s) of state "
                f"({service.recovered_events} replayed from the WAL tail, "
                f"snapshot: {service.recovered_from_snapshot})",
                flush=True,
            )
        elif args.state_dir is not None:
            service = SchedulerService(
                policy,
                config,
                durability=DurabilityManager(
                    args.state_dir,
                    snapshot_interval=args.snapshot_interval,
                ),
            )
        else:
            service = SchedulerService(policy, config)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        """Start the daemon, serve connections, and drain on exit."""
        await service.start()
        server = ServiceServer(
            service,
            host=args.host,
            port=args.port,
            request_timeout=args.request_timeout,
            shed_queue_depth=args.shed_queue_depth,
        )
        try:
            await server.start()
        except OSError as exc:
            await service.stop(drain=False)
            raise ConfigurationError(
                f"cannot listen on {args.host}:{args.port}: {exc}"
            ) from exc
        host, port = server.address
        print(
            f"repro-service listening on {host}:{port} "
            f"(policy: {args.policy}, cores: {args.cores})",
            flush=True,
        )
        try:
            await server.serve_until_closed()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; daemon stopped", file=sys.stderr)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"repro-service processed {service.events_processed} event(s)")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """One round-trip against a running daemon; prints the response."""
    fields = {}
    if args.op in ("submit", "phase_change"):
        if args.name is None or args.pid is None:
            print(
                f"error: '{args.op}' needs a profile name and --pid",
                file=sys.stderr,
            )
            return 2
        fields = {"pid": args.pid, "name": args.name}
    elif args.op == "retire":
        if args.pid is None:
            print("error: 'retire' needs --pid", file=sys.stderr)
            return 2
        fields = {"pid": args.pid}
    try:
        response = call_once(
            args.host,
            args.port,
            args.op,
            timeout=args.timeout,
            client_id=args.client_id,
            **fields,
        )
    except (OSError, ReproError) as exc:
        print(
            f"error: no daemon reachable at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok", True) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        # Pure static analysis: no simulation, no telemetry session.
        return lint_cli.run(args)
    if args.command == "serve":
        # Long-running daemon: telemetry is wired per-event inside the
        # service loop, not through the one-shot export session.
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    with _telemetry_session(args):
        if args.command == "profiles":
            return _cmd_profiles()
        if args.command == "mix":
            return _cmd_mix(args)
        if args.command == "pairwise":
            return _cmd_pairwise(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "adversary":
            return _cmd_adversary(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
