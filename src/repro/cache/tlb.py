"""TLB and page-fault models for the Figure 2 counter comparison.

The paper's motivation (Section 2.2, Figure 2) is that event-based
performance counters — L2 miss counts, TLB misses, page faults — do *not*
track the cache working set over time. To regenerate that figure we need
those counters, so this module models:

* :class:`TLB` — a small LRU translation buffer over virtual page numbers;
* :class:`PageFaultTracker` — first-touch (minor) page faults with an
  optional resident-set limit evicting least-recently-used pages.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["TLB", "PageFaultTracker"]


class TLB:
    """Fully-associative LRU TLB.

    Parameters
    ----------
    entries:
        Number of translations held (e.g. 64 for a classic D-TLB).
    page_bytes:
        Page size used to derive page numbers from byte addresses.
    """

    def __init__(self, entries: int = 64, page_bytes: int = 4096):
        self.entries = require_positive(entries, "entries")
        self.page_bytes = require_positive(page_bytes, "page_bytes")
        self._page_shift = (page_bytes - 1).bit_length()
        self._table: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def page_of(self, address: int) -> int:
        """Virtual page number of a byte address."""
        return address >> self._page_shift

    def access_pages(self, pages: np.ndarray) -> int:
        """Access a sequence of page numbers; returns the batch miss count."""
        table = self._table
        entries = self.entries
        misses = 0
        for page in pages.tolist():
            if page in table:
                table.move_to_end(page)
                self.hits += 1
            else:
                misses += 1
                self.misses += 1
                table[page] = None
                if len(table) > entries:
                    table.popitem(last=False)
        return misses

    def access_addresses(self, addresses: np.ndarray) -> int:
        """Access byte addresses (pages derived internally)."""
        return self.access_pages(
            np.asarray(addresses, dtype=np.int64) >> self._page_shift
        )

    def miss_rate(self) -> float:
        """Overall TLB miss rate."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        """Flush all translations and counters."""
        self._table.clear()
        self.hits = 0
        self.misses = 0


class PageFaultTracker:
    """Counts page faults under a first-touch / LRU-resident-set model.

    With ``resident_limit=None`` every page faults exactly once (minor,
    first-touch faults). With a limit, the tracker evicts the least
    recently used page when the resident set overflows, so re-touching an
    evicted page faults again (major-fault behaviour).
    """

    def __init__(self, page_bytes: int = 4096, resident_limit: Optional[int] = None):
        self.page_bytes = require_positive(page_bytes, "page_bytes")
        if resident_limit is not None:
            require_positive(resident_limit, "resident_limit")
        self.resident_limit = resident_limit
        self._page_shift = (page_bytes - 1).bit_length()
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.faults = 0

    def touch_addresses(self, addresses: np.ndarray) -> int:
        """Touch byte addresses; returns the batch fault count."""
        return self.touch_pages(
            np.asarray(addresses, dtype=np.int64) >> self._page_shift
        )

    def touch_pages(self, pages: np.ndarray) -> int:
        """Touch page numbers; returns the batch fault count."""
        resident = self._resident
        limit = self.resident_limit
        faults = 0
        for page in pages.tolist():
            if page in resident:
                resident.move_to_end(page)
            else:
                faults += 1
                resident[page] = None
                if limit is not None and len(resident) > limit:
                    resident.popitem(last=False)
        self.faults += faults
        return faults

    @property
    def resident_pages(self) -> int:
        """Current resident-set size in pages."""
        return len(self._resident)

    def reset(self) -> None:
        """Forget all pages and zero the fault counter."""
        self._resident.clear()
        self.faults = 0
