"""Private-L1 + shared-L2 cache hierarchy.

The paper's signature hardware sits at the shared L2 and observes the miss
stream *after* L1 filtering. For most experiments we generate L2-level
reference streams directly (documented in DESIGN.md), but the hierarchy is
available for higher-fidelity runs and for tests of the filtering effect.

Simplifications (documented): L1s are private, clean and non-inclusive;
L1 evictions produce no L2 traffic (no write-backs — the signature hardware
only reacts to L2 fills and replacements, which are modelled exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError

__all__ = ["HierarchyResult", "CacheHierarchy"]


@dataclass(frozen=True)
class HierarchyResult:
    """Outcome of one batch through L1 and L2.

    ``l2`` is ``None`` when every access hit in the L1.
    """

    accesses: int
    l1_hits: int
    l2: Optional[AccessResult]

    @property
    def l2_hits(self) -> int:
        return self.l2.hits if self.l2 is not None else 0

    @property
    def l2_misses(self) -> int:
        return self.l2.misses if self.l2 is not None else 0


class CacheHierarchy:
    """Per-core private L1s in front of one shared L2.

    Parameters
    ----------
    l2:
        The shared cache (its ``num_cores`` defines the core count).
    l1_config:
        Config used for each private L1, or ``None`` to bypass L1 entirely
        (accesses go straight to the L2).
    """

    def __init__(self, l2: SetAssociativeCache, l1_config: Optional[CacheConfig] = None):
        self.l2 = l2
        self.num_cores = l2.num_cores
        if l1_config is not None:
            if l1_config.geometry.line_bytes != l2.geometry.line_bytes:
                raise ConfigurationError(
                    "L1 and L2 must share a line size "
                    f"({l1_config.geometry.line_bytes} vs {l2.geometry.line_bytes})"
                )
            self.l1s: Optional[List[SetAssociativeCache]] = [
                SetAssociativeCache(l1_config, num_cores=1)
                for _ in range(self.num_cores)
            ]
        else:
            self.l1s = None

    def access_batch(self, core: int, blocks: np.ndarray) -> HierarchyResult:
        """Run a batch of block addresses from *core* through the hierarchy."""
        if self.l1s is None:
            l2_result = self.l2.access_batch(core, blocks)
            return HierarchyResult(accesses=len(blocks), l1_hits=0, l2=l2_result)
        l1_result = self.l1s[core].access_batch(0, blocks)
        if l1_result.misses == 0:
            return HierarchyResult(
                accesses=len(blocks), l1_hits=l1_result.hits, l2=None
            )
        # L1 misses (the filled blocks, in order) proceed to the shared L2.
        l2_result = self.l2.access_batch(core, l1_result.fills)
        return HierarchyResult(
            accesses=len(blocks), l1_hits=l1_result.hits, l2=l2_result
        )

    def flush_l1(self, core: int) -> None:
        """Invalidate one core's L1 (used at context switches if desired)."""
        if self.l1s is not None:
            self.l1s[core].reset()

    def reset(self) -> None:
        """Invalidate every level and zero statistics."""
        self.l2.reset()
        if self.l1s is not None:
            for l1 in self.l1s:
                l1.reset()
