"""Sequential (next-N-line) prefetching on top of a cache.

The paper's related work (Liu et al., Zhuravlev et al. — Section 6) points
out that co-runners also contend through *prefetch hardware*; the paper's
own evaluation leaves prefetchers out. This wrapper adds the classic
next-line prefetcher so that interaction can be studied: on a demand miss,
the next ``degree`` sequential blocks are fetched into the cache (tagged as
prefetches in the statistics), amplifying a streaming workload's effective
fill rate exactly the way hardware prefetching amplifies its pollution.

The wrapper preserves the :class:`~repro.cache.cache.SetAssociativeCache`
event interface (fills/evictions with slots), so the signature unit can
observe a prefetching cache unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.utils.validation import require_positive

__all__ = ["PrefetchStats", "PrefetchingCache"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class PrefetchStats:
    """Prefetcher effectiveness accounting."""

    issued: int = 0
    useless: int = 0  # prefetched block was already resident

    @property
    def useful_issue_rate(self) -> float:
        """Fraction of issued prefetches that brought in a new line."""
        return (self.issued - self.useless) / self.issued if self.issued else 0.0


class PrefetchingCache:
    """Next-N-line prefetcher wrapped around a set-associative cache.

    Parameters
    ----------
    inner:
        The cache receiving demand and prefetch traffic.
    degree:
        Sequential blocks prefetched per demand miss.
    """

    def __init__(self, inner: SetAssociativeCache, degree: int = 1):
        self.inner = inner
        self.degree = require_positive(degree, "degree")
        self.prefetch_stats = PrefetchStats()

    @property
    def num_cores(self) -> int:
        """Requester count of the wrapped cache."""
        return self.inner.num_cores

    @property
    def stats(self):
        """Demand-access statistics of the wrapped cache (prefetch fills
        are folded into the same counters, as real L2 counters would)."""
        return self.inner.stats

    def access_batch(self, core: int, blocks: np.ndarray) -> AccessResult:
        """Demand accesses plus the prefetches their misses trigger.

        Returns one merged :class:`AccessResult`: hits/misses count the
        *demand* stream only; the fill/eviction event arrays include
        prefetch-induced traffic (the signature hardware sees real fills,
        whatever triggered them).
        """
        demand = self.inner.access_batch(core, blocks)
        if demand.misses == 0:
            return demand
        candidates = np.unique(
            np.concatenate(
                [demand.fills + d for d in range(1, self.degree + 1)]
            )
        )
        fresh = candidates[
            ~np.fromiter(
                (self.inner.contains(int(b)) for b in candidates),
                dtype=bool,
                count=len(candidates),
            )
        ]
        self.prefetch_stats.issued += len(candidates)
        self.prefetch_stats.useless += len(candidates) - len(fresh)
        if len(fresh) == 0:
            return demand
        prefetch = self.inner.access_batch(core, fresh)
        # Remove the prefetch lookups from the demand hit/miss accounting.
        self.inner.stats.hits[core] -= prefetch.hits
        self.inner.stats.misses[core] -= prefetch.misses
        return AccessResult(
            hits=demand.hits,
            misses=demand.misses,
            fills=np.concatenate([demand.fills, prefetch.fills]),
            fill_slots=np.concatenate([demand.fill_slots, prefetch.fill_slots]),
            evictions=np.concatenate([demand.evictions, prefetch.evictions]),
            evict_slots=np.concatenate([demand.evict_slots, prefetch.evict_slots]),
            # Prefetch evictions follow every demand fill.
            evict_fill_pos=np.concatenate(
                [
                    demand.evict_fill_pos,
                    np.full(len(prefetch.evictions), len(demand.fills)),
                ]
            ),
        )

    def contains(self, block: int) -> bool:
        """Delegate residency queries to the wrapped cache."""
        return self.inner.contains(block)

    def footprint_lines(self) -> int:
        """Delegate footprint queries to the wrapped cache."""
        return self.inner.footprint_lines()

    def reset(self) -> None:
        """Reset the wrapped cache and prefetch statistics."""
        self.inner.reset()
        self.prefetch_stats = PrefetchStats()
