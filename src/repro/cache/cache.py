"""Trace-driven set-associative cache with fill/eviction event reporting.

This is the substrate the Bloom-filter signature unit instruments: every L2
miss produces a *fill* event attributed to the requesting core, every
replacement produces an *eviction* event, and both carry the physical slot
``set*ways + way`` so presence-bit indexing (Section 5.3) works too.

Performance notes (this is the simulation hot loop):

* The LRU path keeps each set as a pair of plain Python lists ordered
  most-recent-first — ``list.index`` / ``pop`` / ``insert`` on a ≤16-element
  list are single C calls, far faster than per-access numpy scalar work.
* :meth:`access_batch` processes a numpy array of block addresses in one
  Python loop and returns event arrays, so callers (signature unit, timing
  model) stay fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.replacement import make_policy
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError
from repro.utils.validation import require_positive

__all__ = ["AccessResult", "SetAssociativeCache"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one access batch.

    Attributes
    ----------
    hits, misses:
        Counts for this batch.
    fills, fill_slots:
        Block addresses inserted by misses and their physical slots
        (``set*ways + way``), in access order.
    evictions, evict_slots:
        Replaced block addresses and their slots, in eviction order.
    evict_fill_pos:
        For each eviction, the index into ``fills`` of the miss that caused
        it — lets exact-mode consumers replay the true interleaving.
    """

    hits: int
    misses: int
    fills: np.ndarray
    fill_slots: np.ndarray
    evictions: np.ndarray
    evict_slots: np.ndarray
    evict_fill_pos: np.ndarray

    @property
    def accesses(self) -> int:
        """Total accesses in the batch."""
        return self.hits + self.misses


class SetAssociativeCache:
    """A set-associative cache shared by ``num_cores`` requesters.

    Parameters
    ----------
    config:
        Geometry + replacement policy.
    num_cores:
        Number of distinct requesters (for stats and fill attribution).
    seed:
        Seed for the random replacement policy (ignored for LRU/PLRU).
    """

    def __init__(self, config: CacheConfig, num_cores: int = 1, seed: int = 0):
        self.config = config
        self.geometry = config.geometry
        self.num_cores = require_positive(num_cores, "num_cores")
        g = self.geometry
        self.num_sets = g.num_sets
        self.ways = g.ways
        self._set_mask = self.num_sets - 1
        # MRU-first block lists and aligned physical-way / owner lists.
        self._blocks: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._wayids: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._owners: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._lru = config.replacement == "lru"
        if self._lru:
            self._policy = None
        else:
            self._policy = make_policy(
                config.replacement, self.num_sets, self.ways, seed=seed
            )
            # Generic path keeps a dense tag array: -1 = invalid.
            self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
            self._tag_owner = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self.stats = CacheStats(num_cores=self.num_cores)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def contains(self, block: int) -> bool:
        """True iff *block* currently resides in the cache."""
        s = block & self._set_mask
        if self._lru:
            return block in self._blocks[s]
        return bool((self._tags[s] == block).any())

    def occupancy_by_core(self) -> np.ndarray:
        """Number of resident lines last filled by each core."""
        counts = np.zeros(self.num_cores, dtype=np.int64)
        if self._lru:
            for owners in self._owners:
                for owner in owners:
                    counts[owner] += 1
        else:
            valid = self._tags >= 0
            for c in range(self.num_cores):
                counts[c] = int((self._tag_owner[valid] == c).sum())
        return counts

    def resident_blocks(self) -> np.ndarray:
        """All resident block addresses (unordered)."""
        if self._lru:
            out: List[int] = []
            for blocks in self._blocks:
                out.extend(blocks)
            return np.asarray(out, dtype=np.int64)
        return self._tags[self._tags >= 0].astype(np.int64)

    def footprint_lines(self) -> int:
        """Number of valid lines (the true occupancy figures 2/5 compare to)."""
        if self._lru:
            return sum(len(b) for b in self._blocks)
        return int((self._tags >= 0).sum())

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def access_one(self, core: int, block: int) -> Tuple[bool, Optional[int]]:
        """Access one block; returns ``(hit, evicted_block_or_None)``."""
        result = self.access_batch(core, np.asarray([block], dtype=np.int64))
        evicted = int(result.evictions[0]) if len(result.evictions) else None
        return result.hits == 1, evicted

    def access_batch(self, core: int, blocks: np.ndarray) -> AccessResult:
        """Access a sequence of block addresses in order.

        Returns hit/miss counts and the fill/eviction event arrays the
        signature unit consumes. Statistics are updated as a side effect.
        """
        if not 0 <= core < self.num_cores:
            raise ConfigurationError(
                f"core {core} out of range for {self.num_cores}-core cache"
            )
        if self._lru:
            result = self._access_batch_lru(core, blocks)
        else:
            result = self._access_batch_generic(core, blocks)
        self.stats.record(core, result.hits, result.misses, len(result.evictions))
        return result

    def _access_batch_lru(self, core: int, blocks: np.ndarray) -> AccessResult:
        set_mask = self._set_mask
        ways = self.ways
        all_blocks = self._blocks
        all_wayids = self._wayids
        all_owners = self._owners
        hits = 0
        fills: List[int] = []
        fill_slots: List[int] = []
        evictions: List[int] = []
        evict_slots: List[int] = []
        evict_fill_pos: List[int] = []
        for block in blocks.tolist():
            s = block & set_mask
            line = all_blocks[s]
            try:
                i = line.index(block)
            except ValueError:
                # Miss: evict LRU (tail) if full, insert at MRU (head).
                wayids = all_wayids[s]
                owners = all_owners[s]
                if len(line) == ways:
                    victim_block = line.pop()
                    victim_way = wayids.pop()
                    owners.pop()
                    evictions.append(victim_block)
                    evict_slots.append(s * ways + victim_way)
                    evict_fill_pos.append(len(fills))
                    way = victim_way
                else:
                    way = len(line)
                line.insert(0, block)
                wayids.insert(0, way)
                owners.insert(0, core)
                fills.append(block)
                fill_slots.append(s * ways + way)
            else:
                hits += 1
                if i:
                    line.insert(0, line.pop(i))
                    wayids = all_wayids[s]
                    wayids.insert(0, wayids.pop(i))
                    owners = all_owners[s]
                    owners.insert(0, owners.pop(i))
        return AccessResult(
            hits=hits,
            misses=len(fills),
            fills=np.asarray(fills, dtype=np.int64) if fills else _EMPTY,
            fill_slots=np.asarray(fill_slots, dtype=np.int64) if fills else _EMPTY,
            evictions=np.asarray(evictions, dtype=np.int64) if evictions else _EMPTY,
            evict_slots=np.asarray(evict_slots, dtype=np.int64) if evictions else _EMPTY,
            evict_fill_pos=(
                np.asarray(evict_fill_pos, dtype=np.int64) if evictions else _EMPTY
            ),
        )

    def _access_batch_generic(self, core: int, blocks: np.ndarray) -> AccessResult:
        policy = self._policy
        tags = self._tags
        owners = self._tag_owner
        set_mask = self._set_mask
        ways = self.ways
        hits = 0
        fills: List[int] = []
        fill_slots: List[int] = []
        evictions: List[int] = []
        evict_slots: List[int] = []
        evict_fill_pos: List[int] = []
        for block in blocks.tolist():
            s = block & set_mask
            row = tags[s]
            way = -1
            for w in range(ways):
                if row[w] == block:
                    way = w
                    break
            if way >= 0:
                hits += 1
                policy.on_access(s, way)
                continue
            # Miss: prefer an invalid way, else ask the policy for a victim.
            way = -1
            for w in range(ways):
                if row[w] < 0:
                    way = w
                    break
            if way < 0:
                way = policy.victim(s)
                evictions.append(int(row[way]))
                evict_slots.append(s * ways + way)
                evict_fill_pos.append(len(fills))
            tags[s, way] = block
            owners[s, way] = core
            policy.on_access(s, way)
            fills.append(block)
            fill_slots.append(s * ways + way)
        return AccessResult(
            hits=hits,
            misses=len(fills),
            fills=np.asarray(fills, dtype=np.int64) if fills else _EMPTY,
            fill_slots=np.asarray(fill_slots, dtype=np.int64) if fills else _EMPTY,
            evictions=np.asarray(evictions, dtype=np.int64) if evictions else _EMPTY,
            evict_slots=np.asarray(evict_slots, dtype=np.int64) if evictions else _EMPTY,
            evict_fill_pos=(
                np.asarray(evict_fill_pos, dtype=np.int64) if evictions else _EMPTY
            ),
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Invalidate all lines and zero statistics."""
        self._blocks = [[] for _ in range(self.num_sets)]
        self._wayids = [[] for _ in range(self.num_sets)]
        self._owners = [[] for _ in range(self.num_sets)]
        if not self._lru:
            self._tags.fill(-1)
            self._tag_owner.fill(-1)
            self._policy.reset()
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.geometry}, cores={self.num_cores}, "
            f"policy={self.config.replacement!r})"
        )
