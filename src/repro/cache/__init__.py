"""Shared-cache multi-core substrate: set-associative caches, hierarchy,
TLB/page-fault counters and the machine presets from the paper."""

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.config import (
    CacheConfig,
    CacheGeometry,
    core2duo_l2,
    p4xeon_l2,
    tiny_cache,
    typical_l1,
)
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult
from repro.cache.prefetch import PrefetchingCache, PrefetchStats
from repro.cache.replacement import (
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.cache.stats import CacheStats
from repro.cache.tlb import TLB, PageFaultTracker

__all__ = [
    "AccessResult",
    "SetAssociativeCache",
    "CacheConfig",
    "CacheGeometry",
    "core2duo_l2",
    "p4xeon_l2",
    "tiny_cache",
    "typical_l1",
    "CacheHierarchy",
    "HierarchyResult",
    "PrefetchingCache",
    "PrefetchStats",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "CacheStats",
    "TLB",
    "PageFaultTracker",
]
