"""Hit/miss/eviction accounting for cache models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Per-core access statistics for one cache.

    Attributes
    ----------
    hits, misses:
        int64 arrays indexed by core.
    evictions:
        Total lines evicted (capacity/conflict replacements).
    """

    num_cores: int
    hits: np.ndarray = field(default=None)  # type: ignore[assignment]
    misses: np.ndarray = field(default=None)  # type: ignore[assignment]
    evictions: int = 0

    def __post_init__(self) -> None:
        require_positive(self.num_cores, "num_cores")
        if self.hits is None:
            self.hits = np.zeros(self.num_cores, dtype=np.int64)
        if self.misses is None:
            self.misses = np.zeros(self.num_cores, dtype=np.int64)

    @property
    def total_accesses(self) -> int:
        """All accesses observed across cores."""
        return int(self.hits.sum() + self.misses.sum())

    @property
    def total_hits(self) -> int:
        return int(self.hits.sum())

    @property
    def total_misses(self) -> int:
        return int(self.misses.sum())

    def miss_rate(self, core: int = None) -> float:
        """Miss rate overall, or for one core if given."""
        if core is None:
            total = self.total_accesses
            return self.total_misses / total if total else 0.0
        accesses = int(self.hits[core] + self.misses[core])
        return int(self.misses[core]) / accesses if accesses else 0.0

    def record(self, core: int, hits: int, misses: int, evictions: int) -> None:
        """Accumulate one batch's counts."""
        self.hits[core] += hits
        self.misses[core] += misses
        self.evictions += evictions

    def reset(self) -> None:
        """Zero all counters."""
        self.hits.fill(0)
        self.misses.fill(0)
        self.evictions = 0

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict copy (for result persistence)."""
        return {
            "hits": self.hits.tolist(),
            "misses": self.misses.tolist(),
            "evictions": self.evictions,
            "miss_rate": self.miss_rate(),
        }
