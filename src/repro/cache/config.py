"""Cache geometry and configuration, with the paper's machine presets.

The paper's two evaluation platforms:

* **Intel Core 2 Duo** (Section 2.3.2, 4.2): 2.34/2.6 GHz, two cores
  sharing a 4 MB 16-way L2 with 64-byte lines — the shared-cache target.
* **Intel P4 Xeon SMP** (Section 2.3.1): two processors, each with a
  private 2 MB 8-way L2 — the control platform where pairs only interact
  through context-switch warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.utils.validation import require_power_of_two, require_positive

__all__ = [
    "CacheGeometry",
    "CacheConfig",
    "core2duo_l2",
    "p4xeon_l2",
    "typical_l1",
    "tiny_cache",
]

_REPLACEMENT_POLICIES = ("lru", "random", "plru")


@dataclass(frozen=True)
class CacheGeometry:
    """Physical shape of one cache.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    line_bytes:
        Cache-line size (power of two).
    ways:
        Associativity. ``size_bytes / (line_bytes * ways)`` must be a
        power-of-two set count.
    """

    size_bytes: int
    line_bytes: int = 64
    ways: int = 16

    def __post_init__(self) -> None:
        require_positive(self.size_bytes, "size_bytes")
        require_power_of_two(self.line_bytes, "line_bytes")
        require_positive(self.ways, "ways")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise GeometryError(
                f"size {self.size_bytes} not divisible by ways*line "
                f"({self.ways} * {self.line_bytes})"
            )
        require_power_of_two(self.num_sets, "num_sets (derived)")

    @property
    def num_lines(self) -> int:
        """Total cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_lines // self.ways

    @property
    def line_bits(self) -> int:
        """log2(line_bytes) — the block-offset width."""
        return self.line_bytes.bit_length() - 1

    def block_of(self, address: int) -> int:
        """Block (line) address of a byte address."""
        return address >> self.line_bits

    def set_of_block(self, block: int) -> int:
        """Set index of a block address."""
        return block & (self.num_sets - 1)

    def __str__(self) -> str:
        kb = self.size_bytes // 1024
        return f"{kb}KB/{self.ways}-way/{self.line_bytes}B"


@dataclass(frozen=True)
class CacheConfig:
    """A named cache with geometry and replacement policy."""

    name: str
    geometry: CacheGeometry
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.replacement not in _REPLACEMENT_POLICIES:
            raise GeometryError(
                f"unknown replacement policy {self.replacement!r}; "
                f"expected one of {_REPLACEMENT_POLICIES}"
            )


def core2duo_l2(replacement: str = "lru") -> CacheConfig:
    """The paper's target: 4 MB, 16-way, 64 B lines (4096 sets)."""
    return CacheConfig(
        name="core2duo-l2",
        geometry=CacheGeometry(size_bytes=4 * 1024 * 1024, line_bytes=64, ways=16),
        replacement=replacement,
    )


def p4xeon_l2(replacement: str = "lru") -> CacheConfig:
    """The paper's control platform: private 2 MB, 8-way, 64 B lines."""
    return CacheConfig(
        name="p4xeon-l2",
        geometry=CacheGeometry(size_bytes=2 * 1024 * 1024, line_bytes=64, ways=8),
        replacement=replacement,
    )


def typical_l1(replacement: str = "lru") -> CacheConfig:
    """A 32 KB 8-way private L1 data cache."""
    return CacheConfig(
        name="l1d",
        geometry=CacheGeometry(size_bytes=32 * 1024, line_bytes=64, ways=8),
        replacement=replacement,
    )


def tiny_cache(
    sets: int = 8, ways: int = 2, line_bytes: int = 64, replacement: str = "lru"
) -> CacheConfig:
    """A small cache for unit tests and the Figure 1 concept demo."""
    return CacheConfig(
        name="tiny",
        geometry=CacheGeometry(
            size_bytes=sets * ways * line_bytes, line_bytes=line_bytes, ways=ways
        ),
        replacement=replacement,
    )
