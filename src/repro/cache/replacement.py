"""Replacement policies for the set-associative cache.

The hot LRU path is implemented inline inside
:class:`repro.cache.cache.SetAssociativeCache` (a recency-ordered list per
set keeps every operation a C-level list op). The policy objects here serve
the generic path (random, tree-PLRU) and as the reference implementation the
property tests compare against.

A policy manages victim choice only; tag lookup and bookkeeping stay in the
cache. Per-set policy state is indexed by physical way.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive

__all__ = ["ReplacementPolicy", "LRUPolicy", "RandomPolicy", "TreePLRUPolicy", "make_policy"]


class ReplacementPolicy:
    """Per-cache replacement-policy state machine."""

    def __init__(self, num_sets: int, ways: int):
        self.num_sets = require_positive(num_sets, "num_sets")
        self.ways = require_positive(ways, "ways")

    def on_access(self, set_index: int, way: int) -> None:
        """Update state after a hit or a fill touching (set, way)."""
        raise NotImplementedError

    def victim(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all recency state."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True LRU via per-set recency timestamps (reference implementation)."""

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._stamp = np.zeros((num_sets, ways), dtype=np.int64)
        self._clock = 0

    def on_access(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index, way] = self._clock

    def victim(self, set_index: int) -> int:
        return int(np.argmin(self._stamp[set_index]))

    def reset(self) -> None:
        self._stamp.fill(0)
        self._clock = 0


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    def __init__(self, num_sets: int, ways: int, seed: Optional[int] = 0):
        super().__init__(num_sets, ways)
        self._seed = seed
        self._rng = make_rng(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass  # stateless

    def victim(self, set_index: int) -> int:
        return int(self._rng.integers(0, self.ways))

    def reset(self) -> None:
        self._rng = make_rng(self._seed)


class TreePLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU (the common hardware approximation).

    Each set keeps ``ways - 1`` tree bits; an access flips the bits along
    its root-to-leaf path to point *away* from the touched way, and the
    victim is found by following the bits from the root. Requires a
    power-of-two way count.
    """

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        if ways & (ways - 1):
            raise ConfigurationError("tree-PLRU requires power-of-two ways")
        self._levels = ways.bit_length() - 1
        self._bits = np.zeros((num_sets, max(ways - 1, 1)), dtype=np.int8)

    def on_access(self, set_index: int, way: int) -> None:
        if self.ways == 1:
            return
        node = 0
        for level in range(self._levels):
            # Bit index of 'way' at this tree level, MSB first.
            bit = (way >> (self._levels - 1 - level)) & 1
            self._bits[set_index, node] = 1 - bit  # point away
            node = 2 * node + 1 + bit

    def victim(self, set_index: int) -> int:
        if self.ways == 1:
            return 0
        node = 0
        way = 0
        for _ in range(self._levels):
            bit = int(self._bits[set_index, node])
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        return way

    def reset(self) -> None:
        self._bits.fill(0)


def make_policy(
    kind: str, num_sets: int, ways: int, seed: Optional[int] = 0
) -> ReplacementPolicy:
    """Construct a replacement policy by name ('lru', 'random', 'plru')."""
    if kind == "lru":
        return LRUPolicy(num_sets, ways)
    if kind == "random":
        return RandomPolicy(num_sets, ways, seed=seed)
    if kind == "plru":
        return TreePLRUPolicy(num_sets, ways)
    raise ConfigurationError(f"unknown replacement policy {kind!r}")
