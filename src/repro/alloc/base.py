"""Allocation-policy interface.

A policy maps the monitor's snapshot of task signature contexts to a
process-to-core :class:`~repro.sched.affinity.Mapping`. The paper's three
policies (Sections 3.3.1–3.3.3) plus the two-phase multithreaded adaptation
(Section 3.3.4) implement this interface; the user-level monitor invokes
whichever one it was configured with.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence

from repro.errors import AllocationError
from repro.sched.affinity import Mapping
from repro.sched.syscall import TaskView

__all__ = ["AllocationPolicy", "group_sizes", "require_valid_views"]


class AllocationPolicy(Protocol):
    """Protocol all allocation policies satisfy."""

    #: short identifier used in results/figures
    name: str

    def allocate(self, tasks: Sequence[TaskView], num_cores: int) -> Mapping:
        """Compute a mapping for *tasks* onto *num_cores* cores."""
        ...


def group_sizes(num_tasks: int, num_cores: int) -> List[int]:
    """Per-core group sizes: ``ceil(P/N)`` first, as in Section 3.3.1."""
    if num_tasks < 0 or num_cores <= 0:
        raise AllocationError("need num_tasks >= 0 and num_cores > 0")
    base = num_tasks // num_cores
    extra = num_tasks % num_cores
    return [base + 1 if c < extra else base for c in range(num_cores)]


def require_valid_views(tasks: Sequence[TaskView]) -> None:
    """Reject allocation requests before every task has a signature."""
    if not tasks:
        raise AllocationError("no tasks to allocate")
    invalid = [t.name for t in tasks if not t.valid]
    if invalid:
        raise AllocationError(
            f"tasks without signature samples yet: {invalid}"
        )
