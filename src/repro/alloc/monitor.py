"""The user-level monitoring process (paper Section 3.2).

Periodically queries the OS through the syscall interface for the per-task
signature contexts, runs the configured allocation policy, and (optionally)
pushes the resulting mapping back by setting affinity bits. It also keeps
the decision history so the evaluation methodology's majority vote
("the allocation picked by the simulated allocator majority of the times is
considered to be the chosen schedule", Section 4.1) can be computed.

Graceful degradation
--------------------
The CBF signature is lossy hardware: counters saturate, sampling windows
drop, and a corrupted reading silently yields a garbage schedule. Before
every policy invocation the monitor therefore runs the
:func:`~repro.core.signature.assess_signature` validation layer over each
task's reading. If any reading is unhealthy the invocation *degrades*: the
policy is skipped, the default round-robin placement is applied instead,
and a structured degradation event (invocation number, per-task verdicts)
is recorded so sweeps can name the affected mixes in their
:class:`~repro.jobs.failures.FailureReport`. A fully degraded phase-1 run
ends with no decisions, so the majority vote falls back to the default
schedule — a bad signature yields a safe mapping, never a garbage one.
"""

from __future__ import annotations

import hashlib
import struct
from collections import Counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.alloc.base import AllocationPolicy
from repro.core.signature import HealthReport, SignatureHealth, assess_signature
from repro.errors import AllocationError
from repro.sched.affinity import Mapping, canonical_mapping
from repro.sched.syscall import SyscallInterface, TaskView
from repro.telemetry.context import current as telemetry_current

__all__ = ["UserLevelMonitor", "fallback_mapping"]


def fallback_mapping(tasks: Sequence[TaskView], num_cores: int) -> Mapping:
    """The safe default placement: round-robin over tasks in tid order.

    This is the mapping the simulator would use with no allocator at all,
    so falling back to it can never be worse than not monitoring.
    """
    groups: List[List[int]] = [[] for _ in range(num_cores)]
    for i, task in enumerate(sorted(tasks, key=lambda t: t.tid)):
        groups[i % num_cores].append(task.tid)
    return canonical_mapping(groups)


class UserLevelMonitor:
    """Periodic policy driver.

    Parameters
    ----------
    policy:
        The allocation policy to run.
    interval_cycles:
        Invocation period in simulated cycles (the paper's 100 ms allocator
        period, scaled to the compressed budgets — the simulator reads this
        attribute).
    apply:
        Whether decisions are pushed back via affinity bits during the run
        (phase-1 behaviour) or merely recorded.
    signature_capacity:
        Filter entry count of the attached signature unit; enables the
        saturation and beyond-capacity health checks. ``None`` keeps only
        the always-safe corruption checks.
    saturation_fraction:
        Occupancy fraction of capacity declared saturated (default 1.0:
        only an exactly-full filter, which healthy workloads never reach).
    stale_after:
        Declare a task's signature stale after this many consecutive
        invocations without a fresh sample (``None`` disables staleness
        tracking, the default).
    num_hashes:
        Hash functions behind the signature readings; sharpens the
        alias-pressure estimate of the confidence checks.
    confident_threshold / unusable_threshold:
        Opt-in confidence gates (require ``signature_capacity``). A task
        whose confidence score falls below ``confident_threshold`` is
        *suspect*: the invocation proceeds but a structured
        ``proceed-suspect-signature`` event is recorded. Below
        ``unusable_threshold`` the reading is *unusable* and the
        invocation degrades to the round-robin fallback exactly like a
        corrupt reading. Both ``None`` (the default) disables confidence
        grading — behaviour is byte-identical to the pre-confidence
        monitor.
    memoize:
        Skip policy recomputation when the signature set is unchanged
        since the last healthy invocation (compared by digest over
        every task's full context). The online service hits this
        constantly — repeated ``status``/idle invocations between
        scheduling events see byte-identical snapshots. The repeated
        decision is still appended to the history, so the majority
        vote is unaffected; tie exploration is likewise preserved
        because the simulator's snapshots change between invocations
        (every context switch advances ``samples_seen``, which is part
        of the digest).
    """

    def __init__(
        self,
        policy: AllocationPolicy,
        interval_cycles: float = 4_000_000.0,
        apply: bool = True,
        signature_capacity: Optional[int] = None,
        saturation_fraction: float = 1.0,
        stale_after: Optional[int] = None,
        memoize: bool = True,
        num_hashes: int = 1,
        confident_threshold: Optional[float] = None,
        unusable_threshold: Optional[float] = None,
    ):
        if interval_cycles <= 0:
            raise AllocationError("interval_cycles must be positive")
        if stale_after is not None and stale_after < 1:
            raise AllocationError("stale_after must be >= 1 (or None)")
        if (
            confident_threshold is not None or unusable_threshold is not None
        ) and signature_capacity is None:
            raise AllocationError(
                "confidence thresholds require signature_capacity"
            )
        self.policy = policy
        self.interval_cycles = float(interval_cycles)
        self.apply = apply
        self.signature_capacity = signature_capacity
        self.saturation_fraction = saturation_fraction
        self.stale_after = stale_after
        self.memoize = memoize
        self.num_hashes = num_hashes
        self.confident_threshold = confident_threshold
        self.unusable_threshold = unusable_threshold
        self.decisions: List[Mapping] = []
        self.skipped_invocations = 0
        #: Invocations answered from the memo (unchanged signature set).
        self.memo_hits = 0
        #: Structured degradation events (JSON-native dicts).
        self.degradations: List[dict] = []
        self._invocations = 0
        self._last_seen: Dict[int, int] = {}
        self._stale_count: Dict[int, int] = {}
        self._memo_digest: Optional[bytes] = None
        self._memo_mapping: Optional[Mapping] = None

    @staticmethod
    def _signature_digest(tasks: Sequence[TaskView], num_cores: int) -> bytes:
        """Stable digest of the full signature set (the memo key).

        Covers everything the policies may consult — identity, core,
        occupancy, the symbiosis vector, and the sample counter — so a
        hit can only occur when the allocation inputs are bit-identical.
        """
        hasher = hashlib.sha256()
        hasher.update(struct.pack("<q", num_cores))
        for task in tasks:
            hasher.update(
                struct.pack(
                    "<qqqd",
                    task.tid,
                    task.samples_seen,
                    -1 if task.last_core is None else task.last_core,
                    float(task.occupancy),
                )
            )
            hasher.update(
                np.ascontiguousarray(task.symbiosis, dtype=np.float64).tobytes()
            )
        return hasher.digest()

    def _assess(self, task: TaskView) -> HealthReport:
        """Health-check one task view (staleness needs invocation history)."""
        last = None
        if self.stale_after is not None:
            previous = self._last_seen.get(task.tid)
            if previous is not None and task.samples_seen <= previous:
                self._stale_count[task.tid] = (
                    self._stale_count.get(task.tid, 0) + 1
                )
            else:
                self._stale_count[task.tid] = 0
            if self._stale_count[task.tid] >= self.stale_after:
                # Force the stale verdict by replaying the frozen counter.
                last = task.samples_seen
            self._last_seen[task.tid] = task.samples_seen
        return assess_signature(
            task.occupancy,
            task.symbiosis,
            capacity=self.signature_capacity,
            saturation_fraction=self.saturation_fraction,
            samples_seen=task.samples_seen if last is not None else None,
            last_samples_seen=last,
            num_hashes=self.num_hashes,
            confident_threshold=self.confident_threshold,
            unusable_threshold=self.unusable_threshold,
        )

    def invoke(self, syscall: SyscallInterface) -> Optional[Mapping]:
        """One allocator invocation.

        Returns the decided mapping; ``None`` while any task still lacks a
        signature sample (early in the run) or when the invocation
        degraded because a task's signature failed its health check — in
        the degraded case the default round-robin placement is applied
        (when ``apply`` is set) and a degradation event recorded instead.
        """
        self._invocations += 1
        tel = telemetry_current()
        span = (
            tel.tracer.begin("monitor.invoke", invocation=self._invocations)
            if tel is not None and tel.tracer is not None
            else None
        )
        try:
            tasks = syscall.query_tasks()
            if not tasks or any(not t.valid for t in tasks):
                self.skipped_invocations += 1
                self._count(tel, "monitor_skipped_total")
                return None
            unhealthy = {}
            suspect = {}
            for task in tasks:
                report = self._assess(task)
                if report.status == SignatureHealth.SUSPECT:
                    suspect[task.name] = report
                elif not report.ok:
                    unhealthy[task.name] = report
            if suspect:
                # Suspect readings are still usable: record the event and
                # proceed — the policy runs, but consumers can see the
                # decision rested on alias-pressured signatures.
                self.degradations.append(
                    {
                        "invocation": self._invocations,
                        "action": "proceed-suspect-signature",
                        "tasks": {
                            name: {
                                "status": r.status,
                                "reason": r.reason,
                                "confidence": (
                                    None
                                    if r.confidence is None
                                    else r.confidence.score
                                ),
                            }
                            for name, r in sorted(suspect.items())
                        },
                    }
                )
                self._count(tel, "monitor_suspect_total")
            if unhealthy:
                self.degradations.append(
                    {
                        "invocation": self._invocations,
                        "action": "fallback-default-mapping",
                        "tasks": {
                            name: {
                                "status": r.status,
                                "reason": r.reason,
                                # Confidence only appears for opted-in
                                # monitors, keeping legacy events unchanged.
                                **(
                                    {"confidence": r.confidence.score}
                                    if r.confidence is not None
                                    else {}
                                ),
                            }
                            for name, r in sorted(unhealthy.items())
                        },
                    }
                )
                self._count(tel, "monitor_degraded_total")
                if self.apply:
                    syscall.apply_mapping(
                        fallback_mapping(tasks, syscall.num_cores)
                    )
                return None
            mapping: Optional[Mapping] = None
            digest: Optional[bytes] = None
            if self.memoize:
                digest = self._signature_digest(tasks, syscall.num_cores)
                if (
                    digest == self._memo_digest
                    and self._memo_mapping is not None
                ):
                    mapping = self._memo_mapping
                    self.memo_hits += 1
                    self._count(tel, "monitor_memo_hits_total")
            if mapping is None:
                mapping = self.policy.allocate(
                    tasks, syscall.num_cores
                ).canonical()
                if self.memoize:
                    self._memo_digest = digest
                    self._memo_mapping = mapping
            self.decisions.append(mapping)
            self._count(tel, "monitor_decisions_total")
            if self.apply:
                syscall.apply_mapping(mapping)
            return mapping
        finally:
            if span is not None:
                tel.tracer.end(span)

    @staticmethod
    def _count(tel, name: str) -> None:
        """Increment a monitor counter when telemetry is active."""
        if tel is not None and tel.metrics is not None:
            tel.metrics.counter(name).inc()

    def majority_mapping(self) -> Optional[Mapping]:
        """The most frequent decision so far (the paper's chosen schedule)."""
        if not self.decisions:
            return None
        counts = Counter(self.decisions)
        return counts.most_common(1)[0][0]

    def reset(self) -> None:
        """Clear decision history, degradations, staleness and memo state."""
        self.decisions.clear()
        self.skipped_invocations = 0
        self.memo_hits = 0
        self.degradations.clear()
        self._invocations = 0
        self._last_seen.clear()
        self._stale_count.clear()
        self._memo_digest = None
        self._memo_mapping = None
