"""The user-level monitoring process (paper Section 3.2).

Periodically queries the OS through the syscall interface for the per-task
signature contexts, runs the configured allocation policy, and (optionally)
pushes the resulting mapping back by setting affinity bits. It also keeps
the decision history so the evaluation methodology's majority vote
("the allocation picked by the simulated allocator majority of the times is
considered to be the chosen schedule", Section 4.1) can be computed.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from repro.alloc.base import AllocationPolicy
from repro.errors import AllocationError
from repro.sched.affinity import Mapping
from repro.sched.syscall import SyscallInterface

__all__ = ["UserLevelMonitor"]


class UserLevelMonitor:
    """Periodic policy driver.

    Parameters
    ----------
    policy:
        The allocation policy to run.
    interval_cycles:
        Invocation period in simulated cycles (the paper's 100 ms allocator
        period, scaled to the compressed budgets — the simulator reads this
        attribute).
    apply:
        Whether decisions are pushed back via affinity bits during the run
        (phase-1 behaviour) or merely recorded.
    """

    def __init__(
        self,
        policy: AllocationPolicy,
        interval_cycles: float = 4_000_000.0,
        apply: bool = True,
    ):
        if interval_cycles <= 0:
            raise AllocationError("interval_cycles must be positive")
        self.policy = policy
        self.interval_cycles = float(interval_cycles)
        self.apply = apply
        self.decisions: List[Mapping] = []
        self.skipped_invocations = 0

    def invoke(self, syscall: SyscallInterface) -> Optional[Mapping]:
        """One allocator invocation.

        Returns the decided mapping, or ``None`` while any task still lacks
        a signature sample (early in the run, before its first context
        switch).
        """
        tasks = syscall.query_tasks()
        if not tasks or any(not t.valid for t in tasks):
            self.skipped_invocations += 1
            return None
        mapping = self.policy.allocate(tasks, syscall.num_cores).canonical()
        self.decisions.append(mapping)
        if self.apply:
            syscall.apply_mapping(mapping)
        return mapping

    def majority_mapping(self) -> Optional[Mapping]:
        """The most frequent decision so far (the paper's chosen schedule)."""
        if not self.decisions:
            return None
        counts = Counter(self.decisions)
        return counts.most_common(1)[0][0]

    def reset(self) -> None:
        """Clear decision history."""
        self.decisions.clear()
        self.skipped_invocations = 0
