"""The Weight Sorting algorithm (paper Section 3.3.1).

Sort processes by RBV occupancy weight, then pack consecutive runs of
``ceil(P/N)`` into the same core group: heavyweight cache users land
together, so they timeshare instead of thrashing each other's footprint.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.alloc.base import group_sizes, require_valid_views
from repro.sched.affinity import Mapping, canonical_mapping
from repro.sched.syscall import TaskView

__all__ = ["WeightSortPolicy"]


class WeightSortPolicy:
    """Occupancy-weight sorting allocation (Section 3.3.1)."""

    name = "weight_sort"

    def allocate(self, tasks: Sequence[TaskView], num_cores: int) -> Mapping:
        """Group the heaviest ``ceil(P/N)`` tasks per core, descending."""
        require_valid_views(tasks)
        # Deterministic tie-break on tid keeps the policy reproducible.
        ranked = sorted(tasks, key=lambda t: (-t.occupancy, t.tid))
        sizes = group_sizes(len(ranked), num_cores)
        groups: List[List[int]] = []
        cursor = 0
        for size in sizes:
            groups.append([t.tid for t in ranked[cursor : cursor + size]])
            cursor += size
        return canonical_mapping(groups)
