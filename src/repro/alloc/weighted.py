"""The Weighted Interference Graph algorithm (paper Section 3.3.3).

Identical to the plain interference-graph policy except the directed
interference metrics are scaled by the occupancy weight of the node they
originate from: ``w(P1,P2) = W_P1·I_12 + W_P2·I_21``. A near-empty RBV has
low symbiosis with everything (so a *high* raw interference metric) but a
tiny occupancy weight — the multiplication stops such processes from being
mistaken for heavy interferers. The paper reports this variant performs as
well as or better than the other two (Section 5.2).
"""

from __future__ import annotations

from repro.alloc.interference import InterferenceGraphPolicy

__all__ = ["WeightedInterferenceGraphPolicy"]


class WeightedInterferenceGraphPolicy(InterferenceGraphPolicy):
    """Occupancy-weighted MIN-CUT allocation (the paper's best policy)."""

    name = "weighted_interference_graph"
    weighted = True
