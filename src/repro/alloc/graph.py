"""Interference-graph construction (paper Sections 3.3.2 and 3.3.3).

Nodes are tasks. The directed edge ``P → Q`` exists only when ``P`` and
``Q`` last ran on *different* cores and carries ``I_{P, core(Q)}`` — the
interference metric (reciprocal symbiosis) of ``P`` against the Core
Filter of the core where ``Q`` last ran. The paper assumes a process
interferes equally with every process of a given core, "since it is
difficult to know which process was executing in each core when the
interference data is taken"; processes sharing a core never execute
simultaneously, so no interference is attributed between them (their
mutual edge is zero). This matters: a same-core edge would be dominated
by the pair's own joint footprint in their common Core Filter and would
lock in whatever placement currently exists.

The directed graph is consolidated to an undirected one by summing the two
opposing edges:

* plain (Sec 3.3.2):    ``w(P,Q) = I_{P,core(Q)} + I_{Q,core(P)}``
* weighted (Sec 3.3.3): ``w(P,Q) = W_P·I_{P,core(Q)} + W_Q·I_{Q,core(P)}``

where ``W`` is the occupancy weight — damping the spuriously high
interference metric of near-empty RBVs.

A structural subtlety worth knowing: on a snapshot whose tasks split
evenly across the cores, every edge decomposes as ``f(P) + g(Q)`` (the
interference term of each endpoint depends only on the *other side's
core*), so all cross pairings have exactly equal intra-group weight — a
single balanced snapshot cannot prefer one regrouping over another. The
discriminating information comes from asymmetric placements (3+1 splits
and mid-migration states) that occur naturally while the monitor churns
the schedule in phase 1; the Section 4.1 majority vote aggregates those
informative snapshots. This is inherent to the paper's edge definition,
not an implementation artifact.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.alloc.base import require_valid_views
from repro.errors import AllocationError
from repro.sched.syscall import TaskView

__all__ = ["interference_matrix", "to_networkx"]


def interference_matrix(
    tasks: Sequence[TaskView], weighted: bool
) -> Tuple[List[int], np.ndarray]:
    """Build the consolidated undirected interference matrix.

    Returns ``(tids, W)`` where ``W[i, j]`` is the undirected edge weight
    between ``tasks[i]`` and ``tasks[j]`` (zero diagonal).
    """
    require_valid_views(tasks)
    n = len(tasks)
    tids = [t.tid for t in tasks]
    if len(set(tids)) != n:
        raise AllocationError("duplicate task ids in allocation request")
    weights = np.zeros((n, n), dtype=np.float64)
    for i, p in enumerate(tasks):
        for j, q in enumerate(tasks):
            if i >= j:
                continue
            if p.last_core == q.last_core:
                continue  # same core: never concurrent, no edge (see above)
            # Directed metrics: P against Q's core and vice versa.
            i_pq = p.interference_with_core(q.last_core)
            i_qp = q.interference_with_core(p.last_core)
            if weighted:
                edge = p.occupancy * i_pq + q.occupancy * i_qp
            else:
                edge = i_pq + i_qp
            weights[i, j] = weights[j, i] = edge
    return tids, weights


def to_networkx(tids: Sequence[int], weights: np.ndarray) -> nx.Graph:
    """Materialise the matrix as a networkx graph (for inspection/tests)."""
    n = len(tids)
    if weights.shape != (n, n):
        raise AllocationError(
            f"weight matrix shape {weights.shape} mismatches {n} tids"
        )
    graph = nx.Graph()
    graph.add_nodes_from(tids)
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(tids[i], tids[j], weight=float(weights[i, j]))
    return graph
