"""The paper's three symbiotic allocation algorithms, the multithreaded
two-phase adaptation, the MIN-CUT solver suite and the user-level monitor."""

from repro.alloc.base import AllocationPolicy, group_sizes
from repro.alloc.graph import interference_matrix, to_networkx
from repro.alloc.interference import InterferenceGraphPolicy
from repro.alloc.mincut import (
    MINCUT_METHODS,
    bisect_min_cut,
    cut_weight,
    exhaustive_bisection,
    intra_weight,
    kernighan_lin,
    partition_min_cut,
    spectral_rounding,
)
from repro.alloc.monitor import UserLevelMonitor
from repro.alloc.multithreaded import PIN_WEIGHT, TwoPhasePolicy
from repro.alloc.weight_sort import WeightSortPolicy
from repro.alloc.weighted import WeightedInterferenceGraphPolicy

__all__ = [
    "AllocationPolicy",
    "group_sizes",
    "interference_matrix",
    "to_networkx",
    "InterferenceGraphPolicy",
    "MINCUT_METHODS",
    "bisect_min_cut",
    "cut_weight",
    "exhaustive_bisection",
    "intra_weight",
    "kernighan_lin",
    "partition_min_cut",
    "spectral_rounding",
    "UserLevelMonitor",
    "PIN_WEIGHT",
    "TwoPhasePolicy",
    "WeightSortPolicy",
    "WeightedInterferenceGraphPolicy",
]
