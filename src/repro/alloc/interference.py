"""The Interference Graph algorithm (paper Section 3.3.2).

Build the consolidated (unweighted) interference graph and partition it so
that intra-group interference is maximised — equivalently, the inter-group
MIN-CUT is minimised. Processes placed in one group share a core and thus
never run simultaneously.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.alloc.graph import interference_matrix
from repro.alloc.mincut import partition_min_cut
from repro.sched.affinity import Mapping, canonical_mapping
from repro.utils.rng import stable_seed
from repro.sched.syscall import TaskView

__all__ = ["InterferenceGraphPolicy"]


class InterferenceGraphPolicy:
    """MIN-CUT over the plain interference graph (Section 3.3.2).

    Parameters
    ----------
    method:
        Min-cut solver: 'auto' (exhaustive optimum up to 14 nodes, then
        spectral), 'exhaustive', 'kl' or 'spectral' — the last being the
        stand-in for the paper's SDP solver.
    """

    name = "interference_graph"
    weighted = False

    def __init__(self, method: str = "auto", seed: int = 0):
        self.method = method
        self.seed = seed
        self._invocations = 0

    def allocate(self, tasks: Sequence[TaskView], num_cores: int) -> Mapping:
        """Partition tasks to minimise inter-core interference edges.

        Each invocation draws a fresh tie-break seed: on evenly-split
        snapshots the cross pairings tie exactly (see
        :mod:`repro.alloc.graph`), and a fixed tie-break would let an
        arbitrary pairing dominate the phase-1 majority vote.
        """
        self._invocations += 1
        tids, weights = interference_matrix(tasks, weighted=self.weighted)
        index_groups = partition_min_cut(
            weights,
            num_cores,
            method=self.method,
            seed=stable_seed(self.seed, self._invocations),
        )
        groups: List[List[int]] = [
            [tids[i] for i in group] for group in index_groups
        ]
        return canonical_mapping(groups)
