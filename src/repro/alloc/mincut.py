"""Balanced MIN-CUT solvers for the interference-graph policies.

The paper partitions the consolidated interference graph into equal groups
"such that the weights of edges between the groups are minimized", notes
the problem is NP-hard, and reports using "the SDP solver". No SDP library
ships in this offline environment, so three solvers are provided:

* :func:`exhaustive_bisection` — the true optimum (feasible for the tens of
  nodes the paper's graphs have; used as ground truth in tests);
* :func:`kernighan_lin` — the classic swap-refinement heuristic;
* :func:`spectral_rounding` — the SDP stand-in: a spectral relaxation of
  the cut objective with Goemans–Williamson-style random-hyperplane
  rounding (balance-repaired), followed by a Kernighan–Lin refinement pass.

Multi-core machines use :func:`partition_min_cut`'s recursive bisection,
exactly the paper's hierarchical extension ("if we have four cores, we
first divide into two groups using MIN-CUT and then apply MIN-CUT to each
group").
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.alloc.base import group_sizes
from repro.errors import AllocationError
from repro.utils.rng import make_rng

__all__ = [
    "cut_weight",
    "intra_weight",
    "exhaustive_bisection",
    "kernighan_lin",
    "spectral_rounding",
    "bisect_min_cut",
    "partition_min_cut",
    "MINCUT_METHODS",
]

MINCUT_METHODS = ("auto", "exhaustive", "kl", "spectral")

#: Largest node count for which 'auto' uses the exhaustive optimum.
_EXHAUSTIVE_LIMIT = 14


def _check_matrix(weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise AllocationError(f"weight matrix must be square, got {w.shape}")
    if not np.allclose(w, w.T):
        raise AllocationError("weight matrix must be symmetric")
    if (w < 0).any():
        raise AllocationError("edge weights must be non-negative")
    return w


def cut_weight(weights: np.ndarray, groups: Sequence[Sequence[int]]) -> float:
    """Total weight of edges crossing group boundaries."""
    w = _check_matrix(weights)
    label = np.full(w.shape[0], -1, dtype=np.int64)
    for g, members in enumerate(groups):
        for i in members:
            if label[i] != -1:
                raise AllocationError(f"node {i} in two groups")
            label[i] = g
    if (label == -1).any():
        raise AllocationError("groups do not cover all nodes")
    total = 0.0
    n = w.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if label[i] != label[j]:
                total += w[i, j]
    return total


def intra_weight(weights: np.ndarray, groups: Sequence[Sequence[int]]) -> float:
    """Total weight of edges inside groups (the quantity maximised)."""
    w = _check_matrix(weights)
    return float(np.triu(w, 1).sum()) - cut_weight(w, groups)


def _split_sizes(n: int, size_a: Optional[int]) -> Tuple[int, int]:
    if size_a is None:
        size_a = -(-n // 2)  # ceil
    if not 0 <= size_a <= n:
        raise AllocationError(f"invalid group size {size_a} for {n} nodes")
    return size_a, n - size_a


def exhaustive_bisection(
    weights: np.ndarray,
    size_a: Optional[int] = None,
    seed: Optional[int] = None,
) -> Tuple[List[int], List[int]]:
    """Optimal balanced bisection by enumeration.

    Enumerates ``C(n, size_a)`` splits (anchoring node 0 when the halves
    are equal, to skip mirror duplicates).

    Ties matter here: on an evenly-split placement snapshot the paper's
    edge metric makes every cross pairing *exactly* equal (see
    :mod:`repro.alloc.graph`), so a deterministic tie-break would bias the
    phase-1 majority vote toward an arbitrary pairing. With a *seed*, the
    returned optimum is drawn uniformly from the tied optima; without one,
    the first enumerated optimum is returned (deterministic).
    """
    w = _check_matrix(weights)
    n = w.shape[0]
    size_a, size_b = _split_sizes(n, size_a)
    nodes = list(range(n))
    ties: List[List[int]] = []
    best_cut = np.inf
    if size_a == size_b and n > 0:
        candidates = (
            [0, *rest] for rest in combinations(nodes[1:], size_a - 1)
        )
    else:
        candidates = (list(c) for c in combinations(nodes, size_a))
    for group_a in candidates:
        in_a = np.zeros(n, dtype=bool)
        in_a[group_a] = True
        cut = float(w[in_a][:, ~in_a].sum())
        if cut < best_cut - 1e-12:
            best_cut = cut
            ties = [list(group_a)]
        elif cut <= best_cut + 1e-12:
            ties.append(list(group_a))
    if not ties:
        return ([], [])
    if seed is None or len(ties) == 1:
        chosen = ties[0]
    else:
        chosen = ties[int(make_rng(seed).integers(0, len(ties)))]
    in_a = np.zeros(n, dtype=bool)
    in_a[chosen] = True
    return (sorted(chosen), [i for i in nodes if not in_a[i]])


def _kl_refine(
    w: np.ndarray, group_a: List[int], group_b: List[int], max_passes: int = 8
) -> Tuple[List[int], List[int]]:
    """Kernighan–Lin swap refinement preserving group sizes."""
    a, b = list(group_a), list(group_b)
    n = w.shape[0]
    for _ in range(max_passes):
        in_a = np.zeros(n, dtype=bool)
        in_a[a] = True
        # External minus internal connectivity per node.
        ext = np.where(in_a, w[:, ~in_a].sum(axis=1), w[:, in_a].sum(axis=1))
        internal = np.where(in_a, w[:, in_a].sum(axis=1), w[:, ~in_a].sum(axis=1))
        d = ext - internal
        best_gain = 0.0
        best_pair = None
        for i in a:
            for j in b:
                gain = d[i] + d[j] - 2.0 * w[i, j]
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        a[a.index(i)] = j
        b[b.index(j)] = i
    return a, b


def kernighan_lin(
    weights: np.ndarray,
    size_a: Optional[int] = None,
    seed: int = 0,
    restarts: int = 4,
) -> Tuple[List[int], List[int]]:
    """KL heuristic with random restarts."""
    w = _check_matrix(weights)
    n = w.shape[0]
    size_a, _ = _split_sizes(n, size_a)
    rng = make_rng(seed)
    best = None
    best_cut = np.inf
    for _ in range(max(1, restarts)):
        order = rng.permutation(n)
        a = sorted(int(x) for x in order[:size_a])
        b = sorted(int(x) for x in order[size_a:])
        a, b = _kl_refine(w, a, b)
        cut = cut_weight(w, [a, b])
        if cut < best_cut:
            best_cut = cut
            best = (sorted(a), sorted(b))
    return best if best is not None else ([], [])


def spectral_rounding(
    weights: np.ndarray,
    size_a: Optional[int] = None,
    seed: int = 0,
    samples: int = 32,
    embed_dim: int = 3,
) -> Tuple[List[int], List[int]]:
    """Spectral relaxation + GW-style hyperplane rounding + KL polish.

    Embeds nodes in the space of the Laplacian's low eigenvectors (the
    continuous relaxation of balanced min-cut), draws random hyperplanes
    through the embedding (Goemans–Williamson rounding), repairs balance by
    sorting projections, keeps the best cut, and finishes with one KL
    refinement — a practical stand-in for the paper's SDP solver.
    """
    w = _check_matrix(weights)
    n = w.shape[0]
    size_a, _ = _split_sizes(n, size_a)
    if n == 0:
        return ([], [])
    if n <= 2:
        return (list(range(size_a)), list(range(size_a, n)))
    degree = np.diag(w.sum(axis=1))
    laplacian = degree - w
    eigvals, eigvecs = np.linalg.eigh(laplacian)
    # Skip the constant eigenvector; take the next few as the embedding.
    k = min(embed_dim, n - 1)
    embedding = eigvecs[:, 1 : 1 + k]
    rng = make_rng(seed)
    best = None
    best_cut = np.inf
    directions = [np.eye(k)[0]]  # pure Fiedler rounding first
    directions += [rng.normal(size=k) for _ in range(max(0, samples - 1))]
    for direction in directions:
        norm = np.linalg.norm(direction)
        if norm == 0:
            continue
        scores = embedding @ (direction / norm)
        order = np.argsort(scores, kind="stable")
        a = sorted(int(x) for x in order[:size_a])
        b = sorted(int(x) for x in order[size_a:])
        cut = cut_weight(w, [a, b])
        if cut < best_cut:
            best_cut = cut
            best = (a, b)
    a, b = _kl_refine(w, *best)
    return (sorted(a), sorted(b))


def bisect_min_cut(
    weights: np.ndarray,
    size_a: Optional[int] = None,
    method: str = "auto",
    seed: int = 0,
) -> Tuple[List[int], List[int]]:
    """Dispatch to a bisection solver by name."""
    if method not in MINCUT_METHODS:
        raise AllocationError(
            f"unknown min-cut method {method!r}; expected one of {MINCUT_METHODS}"
        )
    w = _check_matrix(weights)
    if method == "exhaustive" or (
        method == "auto" and w.shape[0] <= _EXHAUSTIVE_LIMIT
    ):
        return exhaustive_bisection(w, size_a, seed=seed)
    if method == "kl":
        return kernighan_lin(w, size_a, seed=seed)
    return spectral_rounding(w, size_a, seed=seed)


def partition_min_cut(
    weights: np.ndarray,
    num_groups: int,
    method: str = "auto",
    seed: int = 0,
) -> List[List[int]]:
    """Partition nodes into ``num_groups`` near-equal groups.

    Recursive bisection, splitting the target group-size list in half at
    each level (the paper's hierarchical MIN-CUT for >2 cores).
    """
    w = _check_matrix(weights)
    n = w.shape[0]
    sizes = group_sizes(n, num_groups)

    def recurse(nodes: List[int], sizes: List[int], depth: int) -> List[List[int]]:
        if len(sizes) == 1:
            return [sorted(nodes)]
        half = len(sizes) // 2
        size_a = sum(sizes[:half])
        sub = w[np.ix_(nodes, nodes)]
        idx_a, idx_b = bisect_min_cut(sub, size_a, method=method, seed=seed + depth)
        nodes_a = [nodes[i] for i in idx_a]
        nodes_b = [nodes[i] for i in idx_b]
        return recurse(nodes_a, sizes[:half], depth + 1) + recurse(
            nodes_b, sizes[half:], depth + 1
        )

    return recurse(list(range(n)), sizes, 0)
