"""Two-phase allocation for multithreaded applications (paper Sec 3.3.4).

Threads of one process share data intensely, so their mutual "interference"
metric is really sharing and must not push them apart. The paper's fix:

* **Phase 1** — per multithreaded process, run the occupancy-weight sorting
  algorithm over that process's threads alone, forming intra-process thread
  groups of size ``ceil(T/N)`` (threads grouped together should share a
  core).
* **Phase 2** — run the weighted interference-graph algorithm over *all*
  threads, with edges between threads of the same process overridden:
  a very large weight if phase 1 put them in the same group (MIN-CUT will
  then never separate them), zero if it put them in different groups
  (MIN-CUT gains nothing by uniting them).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.alloc.base import group_sizes, require_valid_views
from repro.alloc.graph import interference_matrix
from repro.alloc.mincut import partition_min_cut
from repro.sched.affinity import Mapping, canonical_mapping
from repro.sched.syscall import TaskView

__all__ = ["TwoPhasePolicy", "PIN_WEIGHT"]

#: Edge weight forcing two threads into the same MIN-CUT group.
PIN_WEIGHT = 1e9


class TwoPhasePolicy:
    """Thread-aware two-phase allocation (Section 3.3.4).

    Parameters
    ----------
    method:
        MIN-CUT solver for phase 2 ('auto'/'exhaustive'/'kl'/'spectral').
    """

    name = "two_phase_multithreaded"

    def __init__(self, method: str = "auto", seed: int = 0):
        self.method = method
        self.seed = seed

    # ------------------------------------------------------------------
    def thread_groups(
        self, tasks: Sequence[TaskView], num_cores: int
    ) -> List[List[int]]:
        """Phase 1: weight-sort threads within each multithreaded process.

        Returns the intra-process groups (singletons for single-threaded
        processes), as lists of tids.
        """
        require_valid_views(tasks)
        by_process: Dict[int, List[TaskView]] = defaultdict(list)
        for t in tasks:
            by_process[t.process_id].append(t)
        groups: List[List[int]] = []
        for pid in sorted(by_process):
            threads = by_process[pid]
            if len(threads) == 1:
                groups.append([threads[0].tid])
                continue
            ranked = sorted(threads, key=lambda t: (-t.occupancy, t.tid))
            sizes = group_sizes(len(ranked), num_cores)
            cursor = 0
            for size in sizes:
                if size == 0:
                    continue
                groups.append([t.tid for t in ranked[cursor : cursor + size]])
                cursor += size
        return groups

    def allocate(self, tasks: Sequence[TaskView], num_cores: int) -> Mapping:
        """Phase 2: pinned-edge weighted interference MIN-CUT over threads."""
        tids, weights = interference_matrix(tasks, weighted=True)
        index_of = {tid: i for i, tid in enumerate(tids)}
        group_of: Dict[int, int] = {}
        for g, members in enumerate(self.thread_groups(tasks, num_cores)):
            for tid in members:
                group_of[tid] = g
        process_of = {t.tid: t.process_id for t in tasks}
        n = len(tids)
        for i in range(n):
            for j in range(i + 1, n):
                ti, tj = tids[i], tids[j]
                if process_of[ti] != process_of[tj]:
                    continue  # cross-process edges keep their weighted metric
                if group_of[ti] == group_of[tj]:
                    weights[i, j] = weights[j, i] = PIN_WEIGHT
                else:
                    weights[i, j] = weights[j, i] = 0.0
        index_groups = partition_min_cut(
            weights, num_cores, method=self.method, seed=self.seed
        )
        return canonical_mapping(
            [[tids[i] for i in group] for group in index_groups]
        )
