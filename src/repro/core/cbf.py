"""Classic Bloom filter and Counting Bloom Filter (paper Section 2.4).

These are the textbook structures the paper builds on before splitting the
CBF into a shared counter array plus per-core bit vectors (that split lives
in :mod:`repro.core.signature`). They are used directly by unit tests, by
the saturation ablation, and as a reference model.

Query semantics follow the paper: a query returns a **true miss** when the
element is definitely absent; any other outcome is *inconclusive* (may be a
false hit).
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.core.hashes import HashFunction, make_hash_family
from repro.errors import CounterSaturationError
from repro.utils.bitvec import BitVector
from repro.utils.validation import require_positive

__all__ = ["BloomFilter", "CountingBloomFilter", "false_positive_rate"]


def false_positive_rate(num_entries: int, num_hashes: int, inserted: int) -> float:
    """Analytical Bloom false-positive probability ``(1 - e^{-kn/m})^k``.

    The textbook bound for a filter of ``m = num_entries`` slots, ``k =
    num_hashes`` independent hash functions and ``n = inserted`` distinct
    elements. This is the *alias-rate* ceiling the property tests (and the
    adversarial suite's alias-pressure estimate) compare the empirical CBF
    behaviour against: a uniformly-hashed workload stays at or below it,
    while a constructed signature-aliasing workload concentrates far above
    it on the targeted indices.
    """
    require_positive(num_entries, "num_entries")
    require_positive(num_hashes, "num_hashes")
    if inserted < 0:
        raise ValueError(f"inserted must be >= 0, got {inserted}")
    if inserted == 0:
        return 0.0
    return (1.0 - math.exp(-num_hashes * inserted / num_entries)) ** num_hashes


class BloomFilter:
    """The original Bloom filter: k hash functions over one bit vector.

    No deletion support — the paper's stated motivation for moving to the
    counting variant.
    """

    def __init__(self, num_entries: int, num_hashes: int = 1, kind: str = "xor"):
        self.num_entries = require_positive(num_entries, "num_entries")
        self.num_hashes = require_positive(num_hashes, "num_hashes")
        self.hashes: List[HashFunction] = make_hash_family(
            kind, num_entries, num_hashes
        )
        self.bits = BitVector(num_entries)

    def insert(self, block: int) -> None:
        """Record *block* in the filter."""
        for h in self.hashes:
            self.bits.set(h.hash_one(block))

    def insert_many(self, blocks: np.ndarray) -> None:
        """Record every block in *blocks* (vectorised)."""
        arr = np.asarray(blocks, dtype=np.int64)
        for h in self.hashes:
            self.bits.set_many(h.hash_many(arr))

    def query(self, block: int) -> bool:
        """True = inconclusive (possibly present); False = true miss."""
        return all(self.bits.test(h.hash_one(block)) for h in self.hashes)

    def query_many(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`query`: boolean array, False = true miss."""
        arr = np.asarray(blocks, dtype=np.int64)
        result = np.ones(len(arr), dtype=bool)
        for h in self.hashes:
            result &= self.bits.test_many(h.hash_many(arr))
        return result

    def occupancy_weight(self) -> int:
        """Number of ones in the bit vector (paper's occupancy metric)."""
        return self.bits.popcount()

    def saturation(self) -> float:
        """Fraction of bits set — 1.0 means the filter conveys nothing."""
        return self.bits.popcount() / self.num_entries

    def clear(self) -> None:
        """Reset the filter to empty."""
        self.bits.zero()


class CountingBloomFilter:
    """Counting Bloom Filter: per-entry counters enable deletion.

    Parameters
    ----------
    num_entries:
        Counter-array size.
    num_hashes:
        Number of hash functions, ``k``. Per the paper, when several hash
        indices of one address collide the counter is bumped only once.
    counter_bits:
        Counter width ``L``; counters saturate at ``2**L - 1``.
    strict:
        If True, saturation or underflow raises
        :class:`repro.errors.CounterSaturationError` instead of clamping.
    """

    def __init__(
        self,
        num_entries: int,
        num_hashes: int = 1,
        counter_bits: int = 3,
        kind: str = "xor",
        strict: bool = False,
    ):
        self.num_entries = require_positive(num_entries, "num_entries")
        self.num_hashes = require_positive(num_hashes, "num_hashes")
        self.counter_bits = require_positive(counter_bits, "counter_bits")
        self.counter_max = (1 << counter_bits) - 1
        self.strict = strict
        self.hashes: List[HashFunction] = make_hash_family(
            kind, num_entries, num_hashes
        )
        self.counters = np.zeros(num_entries, dtype=np.int64)
        self.saturation_events = 0
        self.underflow_events = 0

    # ------------------------------------------------------------------
    def _indices_one(self, block: int) -> List[int]:
        """Deduplicated hash indices for one address."""
        seen = []
        for h in self.hashes:
            idx = h.hash_one(block)
            if idx not in seen:
                seen.append(idx)
        return seen

    def insert(self, block: int) -> None:
        """Increment the counters for *block* (once per distinct index)."""
        for idx in self._indices_one(block):
            if self.counters[idx] >= self.counter_max:
                self.saturation_events += 1
                if self.strict:
                    raise CounterSaturationError(
                        f"counter {idx} saturated at {self.counter_max}"
                    )
            else:
                self.counters[idx] += 1

    def delete(self, block: int) -> None:
        """Decrement the counters for *block* (once per distinct index)."""
        for idx in self._indices_one(block):
            if self.counters[idx] <= 0:
                self.underflow_events += 1
                if self.strict:
                    raise CounterSaturationError(f"counter {idx} underflowed")
            else:
                self.counters[idx] -= 1

    def query(self, block: int) -> bool:
        """True = inconclusive (possibly present); False = true miss."""
        return all(self.counters[idx] > 0 for idx in self._indices_one(block))

    def insert_many(self, blocks: Iterable[int]) -> None:
        """Insert every block in order (exact per-element semantics)."""
        for block in blocks:
            self.insert(int(block))

    def delete_many(self, blocks: Iterable[int]) -> None:
        """Delete every block in order (exact per-element semantics)."""
        for block in blocks:
            self.delete(int(block))

    def occupancy_weight(self) -> int:
        """Number of non-zero counters."""
        return int(np.count_nonzero(self.counters))

    def occupancy_fraction(self) -> float:
        """Fraction of counters that are non-zero (0.0 empty, 1.0 full)."""
        return self.occupancy_weight() / self.num_entries

    def saturation(self) -> float:
        """Fraction of counters pinned at ``counter_max``.

        A filter whose counters are mostly saturated has stopped counting:
        inserts no longer change state and deletes under-report. This is
        the raw signal behind the adversarial *footprint bomb* detector
        (see :func:`repro.core.signature.signature_confidence`).
        """
        return int(np.count_nonzero(self.counters >= self.counter_max)) / (
            self.num_entries
        )

    def decay(self, shift: int = 1) -> None:
        """Age every counter by an arithmetic right-shift of *shift* bits.

        Halving (the default) is the classic CBF aging scheme: stale
        contributions fade geometrically while recently-reinserted entries
        recover on their next insert. A right shift of a non-negative
        integer can never underflow, so this is always safe to call — the
        property suite pins ``counters >= 0`` and monotone non-increase
        under repeated decay.
        """
        require_positive(shift, "shift")
        np.right_shift(self.counters, shift, out=self.counters)

    def clear(self) -> None:
        """Reset all counters and event tallies."""
        self.counters.fill(0)
        self.saturation_events = 0
        self.underflow_events = 0
