"""The split counting-Bloom-filter signature unit (paper Section 3.1).

The paper's hardware proposal de-associates the CBF bit vector from its
counters:

* one shared **counter array** summarises the whole L2 (one counter per
  tracked entry, default width 3 bits),
* one **Core Filter (CF)** bit vector per core records which entries were
  filled by requests originating from that core,
* one **Last Filter (LF)** per core snapshots the CF at each context switch.

Update rules:

* **L2 miss (fill)** from core *c*: the counter indexed by the address hash
  is incremented and the corresponding CF bit of core *c* is set.
* **L2 eviction**: the counter indexed by the evicted block's hash is
  decremented; when it reaches zero the corresponding bit is cleared in
  *every* CF (the paper's documented over-clearing inaccuracy, retained
  deliberately).
* **Context switch** on core *c*: the outgoing entity's Running Bit Vector
  is ``RBV = CF_c & ~LF_c``, its occupancy weight is ``popcount(RBV)``, its
  symbiosis with core *j* is ``popcount(RBV ^ CF_j)``; then ``LF_c`` is
  re-snapshotted from ``CF_c`` for the incoming entity.

Two indexing schemes are supported:

* ``hash`` — one (or k) hash functions of the block address (the paper's
  proposal; k=1 by default);
* ``presence`` — a one-to-one mapping from the cache slot (set, way) to an
  entry, the "presence bits" baseline of Section 5.3.

Batching
--------
``exact=False`` (default) applies a batch of events vectorised: all fills
first (increments + CF sets), then all evictions (decrements +
zero-clearing). Fills-first matters: a line filled *and* evicted within
the same batch then nets to zero exactly as in strict order, whereas
evictions-first would clamp its decrement at zero and leave a phantom
counter/CF bit. The residual drift vs strict order is limited to
counter-saturation timing within a batch and vanishes at batch size 1
(property-tested). ``exact=True`` processes events strictly in order for
validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.context import SignatureSample
from repro.core.hashes import HashFunction, make_hash_family
from repro.core.metrics import running_bit_vector, symbiosis_vector
from repro.core.sampling import SetSampler
from repro.errors import ConfigurationError, CounterSaturationError, SignatureError
from repro.utils.bitvec import BitVector
from repro.utils.validation import (
    is_power_of_two,
    require_positive,
    require_power_of_two,
)

__all__ = [
    "SignatureConfig",
    "SignatureStats",
    "SignatureUnit",
    "SignatureHealth",
    "HealthReport",
    "SignatureConfidence",
    "signature_confidence",
    "assess_signature",
]


class SignatureHealth:
    """Health verdicts for a signature reading (the validation layer).

    The CBF signature is lossy hardware by design: counters saturate,
    sampling drops accesses, and a frozen or garbled reading silently
    yields a garbage schedule. Consumers (the user-level monitor, the
    allocation policies) classify each reading before trusting it:

    * :data:`OK` — the reading is plausible and fresh;
    * :data:`SUSPECT` — the reading is plausible but its confidence score
      (alias pressure from filter fill) has dropped below the caller's
      confident threshold: usable, but flagged (opt-in, see
      :func:`assess_signature`);
    * :data:`SATURATED` — the filter is (effectively) full: occupancy
      carries no discriminating signal between tasks;
    * :data:`STALE` — the reading has not been refreshed for too long
      (dropped sampling windows, a wedged signature unit);
    * :data:`UNUSABLE` — confidence has collapsed below the caller's
      unusable threshold: the filter is so alias-ridden that occupancy
      and symbiosis are dominated by hash collisions (opt-in);
    * :data:`CORRUPT` — the reading is physically impossible (negative
      or non-finite occupancy/symbiosis, occupancy beyond capacity).
    """

    OK = "ok"
    SUSPECT = "suspect"
    SATURATED = "saturated"
    STALE = "stale"
    UNUSABLE = "unusable"
    CORRUPT = "corrupt"

    #: Every verdict, worst first (the order degradation reports sort by).
    ALL = (CORRUPT, UNUSABLE, STALE, SATURATED, SUSPECT, OK)


@dataclass(frozen=True)
class SignatureConfidence:
    """How much discriminating signal a signature reading carries.

    A CBF-style signature degrades gracefully but silently: the fuller
    the filter, the more of its popcount is hash aliasing rather than
    genuine footprint. This summarises that degradation analytically:

    * ``saturation_ratio`` — occupancy over filter capacity, clamped to
      [0, 1]; the fill level driving alias probability.
    * ``alias_pressure`` — probability that an arbitrary address aliases
      into set bits, ``saturation_ratio ** num_hashes`` (the instantaneous
      Bloom false-hit rate at the current fill level).
    * ``score`` — ``1 - alias_pressure``: 1.0 means every set bit is
      attributable, 0.0 means the reading is indistinguishable from a
      full filter.
    """

    score: float
    saturation_ratio: float
    alias_pressure: float


def signature_confidence(
    occupancy: float, capacity: int, num_hashes: int = 1
) -> SignatureConfidence:
    """Confidence of a reading with *occupancy* set bits of *capacity*.

    Pure and total: out-of-range occupancies clamp rather than raise, so
    the function can grade even readings that a separate corruption check
    will reject.
    """
    require_positive(capacity, "capacity")
    require_positive(num_hashes, "num_hashes")
    if not np.isfinite(occupancy):
        ratio = 1.0
    else:
        ratio = min(max(float(occupancy) / capacity, 0.0), 1.0)
    alias_pressure = ratio**num_hashes
    return SignatureConfidence(
        score=1.0 - alias_pressure,
        saturation_ratio=ratio,
        alias_pressure=alias_pressure,
    )


@dataclass(frozen=True)
class HealthReport:
    """Outcome of one :func:`assess_signature` check.

    Parameters
    ----------
    status:
        One of the :class:`SignatureHealth` verdicts.
    reason:
        Human-readable explanation ('' for healthy readings).
    confidence:
        The grading behind a confidence-derived verdict. ``None`` unless
        the caller opted into confidence thresholds — which keeps reports
        from threshold-free callers equal to their pre-confidence shape.
    """

    status: str
    reason: str = ""
    confidence: Optional[SignatureConfidence] = None

    @property
    def ok(self) -> bool:
        """True when the reading can be trusted by an allocation policy."""
        return self.status == SignatureHealth.OK

    @property
    def usable(self) -> bool:
        """True when a policy may still act on the reading (ok or suspect)."""
        return self.status in (SignatureHealth.OK, SignatureHealth.SUSPECT)


def assess_signature(
    occupancy: float,
    symbiosis: Optional[Sequence] = None,
    *,
    capacity: Optional[int] = None,
    saturation_fraction: float = 1.0,
    samples_seen: Optional[int] = None,
    last_samples_seen: Optional[int] = None,
    num_hashes: int = 1,
    confident_threshold: Optional[float] = None,
    unusable_threshold: Optional[float] = None,
) -> HealthReport:
    """Classify one signature reading (ok / suspect / saturated / stale /
    unusable / corrupt).

    Parameters
    ----------
    occupancy:
        RBV/CF popcount reported for the entity.
    symbiosis:
        Optional per-core symbiosis values of the same reading.
    capacity:
        Filter entry count (``SignatureConfig.num_entries``); enables the
        saturation, beyond-capacity, and confidence checks.
    saturation_fraction:
        Occupancy fraction of *capacity* at which the filter is declared
        saturated (1.0 = only an exactly-full filter, the conservative
        default that cannot misfire on healthy workloads).
    samples_seen / last_samples_seen:
        Sample counters from the current and previous observation; equal
        values mean no fresh sample arrived in between (stale). Pass
        ``None`` to skip the staleness check.
    num_hashes:
        Hash functions behind the reading (sharpens the alias-pressure
        estimate; only used by the confidence checks).
    confident_threshold / unusable_threshold:
        Opt-in confidence gates (both require *capacity*). A reading whose
        confidence score falls below ``confident_threshold`` is graded
        :data:`SignatureHealth.SUSPECT`; below ``unusable_threshold`` it is
        :data:`SignatureHealth.UNUSABLE`. With both ``None`` (the default)
        no confidence is computed and reports are identical to the
        pre-confidence behaviour.

    Checks are ordered worst-first: a corrupt reading is reported as
    corrupt even if it would also count as saturated, and an unusable
    confidence outranks staleness/saturation.
    """
    if confident_threshold is not None and unusable_threshold is not None:
        if unusable_threshold > confident_threshold:
            raise ConfigurationError(
                f"unusable_threshold {unusable_threshold} must not exceed "
                f"confident_threshold {confident_threshold}"
            )
    confidence: Optional[SignatureConfidence] = None
    if capacity is not None and (
        confident_threshold is not None or unusable_threshold is not None
    ):
        confidence = signature_confidence(occupancy, capacity, num_hashes)
    if not np.isfinite(occupancy) or occupancy < 0:
        return HealthReport(
            SignatureHealth.CORRUPT,
            f"occupancy {occupancy!r} is impossible",
            confidence,
        )
    if symbiosis is not None:
        values = np.asarray(symbiosis, dtype=np.float64)
        if not np.all(np.isfinite(values)) or (values < 0).any():
            return HealthReport(
                SignatureHealth.CORRUPT,
                "symbiosis vector contains negative or non-finite entries",
                confidence,
            )
    if capacity is not None and occupancy > capacity:
        return HealthReport(
            SignatureHealth.CORRUPT,
            f"occupancy {occupancy:g} exceeds filter capacity {capacity}",
            confidence,
        )
    if (
        confidence is not None
        and unusable_threshold is not None
        and confidence.score < unusable_threshold
    ):
        return HealthReport(
            SignatureHealth.UNUSABLE,
            f"confidence {confidence.score:.3f} < unusable threshold "
            f"{unusable_threshold:g} (alias pressure "
            f"{confidence.alias_pressure:.3f})",
            confidence,
        )
    if (
        samples_seen is not None
        and last_samples_seen is not None
        and samples_seen <= last_samples_seen
    ):
        return HealthReport(
            SignatureHealth.STALE,
            f"no fresh sample since the last check ({samples_seen} seen)",
            confidence,
        )
    if capacity is not None and occupancy >= saturation_fraction * capacity:
        return HealthReport(
            SignatureHealth.SATURATED,
            f"occupancy {occupancy:g} >= {saturation_fraction:.0%} "
            f"of {capacity} entries",
            confidence,
        )
    if (
        confidence is not None
        and confident_threshold is not None
        and confidence.score < confident_threshold
    ):
        return HealthReport(
            SignatureHealth.SUSPECT,
            f"confidence {confidence.score:.3f} < confident threshold "
            f"{confident_threshold:g} (alias pressure "
            f"{confidence.alias_pressure:.3f})",
            confidence,
        )
    return HealthReport(SignatureHealth.OK, confidence=confidence)


def _next_power_of_two(n: int) -> int:
    return 1 << (n - 1).bit_length()


@dataclass(frozen=True)
class SignatureConfig:
    """Geometry and behaviour of a :class:`SignatureUnit`.

    Parameters
    ----------
    num_cores:
        Number of cores sharing the monitored cache.
    num_sets, ways:
        Geometry of the monitored cache; the paper sizes the filter
        structures to the number of cache lines.
    counter_bits:
        CBF counter width ``L`` (3 in the paper's overhead analysis).
    num_hashes:
        Hash functions per address; the paper uses 1 (Section 3.1) and
        argues more would saturate the filters (Section 5.3).
    hash_kind:
        ``'xor'``, ``'xor_inverse_reverse'``, ``'modulo'``, ``'presence'``
        or ``'presence_sticky'`` (Section 5.3's schemes). Plain
        ``presence`` clears a slot's bit when its line is evicted (exact
        per-core residency); ``presence_sticky`` reproduces the paper's
        evaluated variant, whose bits only accumulate — it "gets saturated
        quite often for processes that heavily use the cache" and conveys
        no scheduling signal.
    sampling_denominator:
        Set-sampling ratio denominator (Section 5.4); 4 = 25% sampling.
    strict_saturation:
        Raise on counter saturation/underflow instead of clamping.
    exact:
        Process events strictly in order (validation mode).
    """

    num_cores: int
    num_sets: int
    ways: int
    counter_bits: int = 3
    num_hashes: int = 1
    hash_kind: str = "xor"
    sampling_denominator: int = 1
    strict_saturation: bool = False
    exact: bool = False

    def __post_init__(self) -> None:
        require_positive(self.num_cores, "num_cores")
        require_power_of_two(self.num_sets, "num_sets")
        require_positive(self.ways, "ways")
        require_positive(self.counter_bits, "counter_bits")
        require_positive(self.num_hashes, "num_hashes")
        if self.hash_kind in ("presence", "presence_sticky") and self.num_hashes != 1:
            raise ConfigurationError("presence indexing is incompatible with k > 1")

    @property
    def sampler(self) -> SetSampler:
        """The set sampler implied by the sampling denominator."""
        return SetSampler(self.num_sets, self.sampling_denominator)

    @property
    def tracked_lines(self) -> int:
        """Number of cache lines the unit observes after sampling."""
        return (self.num_sets // self.sampling_denominator) * self.ways

    @property
    def num_entries(self) -> int:
        """Filter/counter array size.

        Equal to the tracked line count, rounded up to a power of two for
        the XOR-family hashes (which fold into an index of whole bits).
        """
        lines = self.tracked_lines
        if self.hash_kind in ("xor", "xor_inverse_reverse") and not is_power_of_two(
            lines
        ):
            return _next_power_of_two(lines)
        return lines


@dataclass
class SignatureStats:
    """Counters describing signature-unit activity and fidelity."""

    fills_tracked: int = 0
    evictions_tracked: int = 0
    fills_ignored: int = 0
    evictions_ignored: int = 0
    saturation_events: int = 0
    underflow_events: int = 0
    context_switches: int = 0


class SignatureUnit:
    """Split-CBF signature hardware attached to one shared cache."""

    def __init__(self, config: SignatureConfig):
        self.config = config
        self.num_cores = config.num_cores
        self.num_entries = config.num_entries
        self.counter_max = (1 << config.counter_bits) - 1
        self.sampler = config.sampler
        self._presence = config.hash_kind in ("presence", "presence_sticky")
        self._sticky = config.hash_kind == "presence_sticky"
        if self._presence:
            self.hashes: List[HashFunction] = []
        else:
            self.hashes = make_hash_family(
                config.hash_kind, self.num_entries, config.num_hashes
            )
        self.counters = np.zeros(self.num_entries, dtype=np.int64)
        self.core_filters = [BitVector(self.num_entries) for _ in range(self.num_cores)]
        self.last_filters = [BitVector(self.num_entries) for _ in range(self.num_cores)]
        self.stats = SignatureStats()
        self._shift = int(np.log2(config.sampling_denominator))
        #: Optional fault injector (see :mod:`repro.faults.injectors`).
        self.injector = None

    def attach_injector(self, injector) -> None:
        """Attach a fault injector to this unit (``None`` detaches).

        The injector's ``after_events(unit)`` hook runs after every
        recorded event batch and may mutate counters/filters in place;
        its ``transform_sample(unit, core, sample)`` hook intercepts
        every context-switch sample and may corrupt it or drop it
        (return ``None``). Used by :mod:`repro.faults` to emulate lossy
        or broken signature hardware deterministically.
        """
        self.injector = injector

    # ------------------------------------------------------------------
    # index computation
    # ------------------------------------------------------------------
    def _slot_indices(self, slots: np.ndarray) -> np.ndarray:
        """Compress global (set*ways + way) slots into sampled entry indices."""
        slots = np.asarray(slots, dtype=np.int64)
        ways = self.config.ways
        sets = slots // ways
        way = slots - sets * ways
        return (sets >> self._shift) * ways + way

    def _hash_indices(self, blocks: np.ndarray) -> np.ndarray:
        """Stacked (k, n) hash indices with per-address duplicates masked -1."""
        blocks = np.asarray(blocks, dtype=np.int64)
        idx = np.stack([h.hash_many(blocks) for h in self.hashes], axis=0)
        if len(self.hashes) > 1:
            # Paper: if several hash indices of one address collide, the
            # counter is touched only once -> mask duplicates within columns.
            order = np.sort(idx, axis=0)
            dup_sorted = np.zeros_like(order, dtype=bool)
            dup_sorted[1:] = order[1:] == order[:-1]
            # Map the duplicate flags back to original positions.
            for col in range(idx.shape[1]):
                if dup_sorted[:, col].any():
                    seen = set()
                    for row in range(idx.shape[0]):
                        v = int(idx[row, col])
                        if v in seen:
                            idx[row, col] = -1
                        else:
                            seen.add(v)
        return idx

    def _event_indices(
        self, blocks: np.ndarray, slots: Optional[np.ndarray]
    ) -> np.ndarray:
        """Flattened valid entry indices for a batch of tracked events."""
        if self._presence:
            if slots is None:
                raise SignatureError(
                    "presence indexing requires slot information for every event"
                )
            return self._slot_indices(slots)
        idx = self._hash_indices(blocks)
        flat = idx.ravel()
        return flat[flat >= 0]

    def _sample_filter(
        self, blocks: np.ndarray, slots: Optional[np.ndarray]
    ) -> tuple:
        """Drop events outside the sampled sets; return (blocks, slots, kept)."""
        blocks = np.asarray(blocks, dtype=np.int64)
        if self.sampler.denominator == 1:
            return blocks, slots, len(blocks)
        mask = self.sampler.mask(blocks)
        kept = int(mask.sum())
        out_slots = None
        if slots is not None:
            out_slots = np.asarray(slots, dtype=np.int64)[mask]
        return blocks[mask], out_slots, kept

    # ------------------------------------------------------------------
    # event recording (batch)
    # ------------------------------------------------------------------
    def record_fill_batch(
        self,
        core: int,
        blocks: np.ndarray,
        slots: Optional[np.ndarray] = None,
    ) -> None:
        """Record L2 fills caused by misses from *core* (vectorised)."""
        self._check_core(core)
        blocks = np.asarray(blocks, dtype=np.int64)
        if len(blocks) == 0:
            return
        total = len(blocks)
        blocks, slots, kept = self._sample_filter(blocks, slots)
        self.stats.fills_ignored += total - kept
        if kept == 0:
            return
        if self.config.exact:
            for i in range(kept):
                self._fill_one(core, int(blocks[i]), None if slots is None else int(slots[i]))
            return
        idx = self._event_indices(blocks, slots)
        self.stats.fills_tracked += kept
        np.add.at(self.counters, idx, 1)
        over = self.counters > self.counter_max
        if over.any():
            excess = int((self.counters[over] - self.counter_max).sum())
            self.stats.saturation_events += excess
            if self.config.strict_saturation:
                raise CounterSaturationError(
                    f"{excess} counter saturation event(s) in fill batch"
                )
            self.counters[over] = self.counter_max
        self.core_filters[core].set_many(idx)

    def record_eviction_batch(
        self,
        blocks: np.ndarray,
        slots: Optional[np.ndarray] = None,
    ) -> None:
        """Record L2 evictions (vectorised).

        A ``presence_sticky`` unit has no clearing path: eviction events
        are counted but otherwise ignored, so its bits saturate exactly as
        the paper describes.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        if len(blocks) == 0:
            return
        if self._sticky:
            self.stats.evictions_ignored += len(blocks)
            return
        total = len(blocks)
        blocks, slots, kept = self._sample_filter(blocks, slots)
        self.stats.evictions_ignored += total - kept
        if kept == 0:
            return
        if self.config.exact:
            for i in range(kept):
                self._evict_one(int(blocks[i]), None if slots is None else int(slots[i]))
            return
        idx = self._event_indices(blocks, slots)
        self.stats.evictions_tracked += kept
        np.subtract.at(self.counters, idx, 1)
        under = self.counters < 0
        if under.any():
            deficit = int((-self.counters[under]).sum())
            self.stats.underflow_events += deficit
            if self.config.strict_saturation:
                raise CounterSaturationError(
                    f"{deficit} counter underflow event(s) in eviction batch"
                )
            self.counters[under] = 0
        zeroed = np.unique(idx[self.counters[idx] == 0])
        if len(zeroed):
            for cf in self.core_filters:
                cf.clear_many(zeroed)

    def record_events(
        self,
        core: int,
        fills: np.ndarray,
        fill_slots: Optional[np.ndarray],
        evictions: np.ndarray,
        evict_slots: Optional[np.ndarray],
        evict_fill_pos: Optional[np.ndarray] = None,
    ) -> None:
        """Record one cache batch's fill+eviction events.

        In batched mode fills are applied before evictions (see module
        docstring). In exact mode, *evict_fill_pos* (the fill index each
        eviction preceded) is used to replay the true interleaving.

        Presence indexing gets its own exact *and* vectorised path: a
        miss's eviction and fill hit the *same* entry (the slot), so the
        generic fills-first batching would keep every reused slot's
        counter above zero forever — but because a slot's fill/evict
        counts commute, its end-of-batch state (and owner) is computable
        without replaying the interleaving: a touched slot ends resident
        iff its counter is positive, and then its sole owner is this
        batch's filling core (the cache always evicts the previous
        occupant before refilling a slot).
        """
        if self._presence and not self.config.exact:
            self._record_events_presence(core, fills, fill_slots, evictions, evict_slots)
            if self.injector is not None:
                self.injector.after_events(self)
            return
        if (
            self.config.exact
            and evict_fill_pos is not None
            and len(evictions)
        ):
            fills = np.asarray(fills, dtype=np.int64)
            evictions = np.asarray(evictions, dtype=np.int64)
            pos = np.asarray(evict_fill_pos, dtype=np.int64)
            e = 0
            for f in range(len(fills)):
                while e < len(evictions) and pos[e] == f:
                    self.record_eviction_batch(
                        evictions[e : e + 1],
                        None if evict_slots is None else evict_slots[e : e + 1],
                    )
                    e += 1
                self.record_fill_batch(
                    core,
                    fills[f : f + 1],
                    None if fill_slots is None else fill_slots[f : f + 1],
                )
            while e < len(evictions):  # pragma: no cover - defensive
                self.record_eviction_batch(
                    evictions[e : e + 1],
                    None if evict_slots is None else evict_slots[e : e + 1],
                )
                e += 1
            if self.injector is not None:
                self.injector.after_events(self)
            return
        self.record_fill_batch(core, fills, fill_slots)
        self.record_eviction_batch(evictions, evict_slots)
        if self.injector is not None:
            self.injector.after_events(self)

    def _record_events_presence(
        self,
        core: int,
        fills: np.ndarray,
        fill_slots: Optional[np.ndarray],
        evictions: np.ndarray,
        evict_slots: Optional[np.ndarray],
    ) -> None:
        """Vectorised exact presence update for one cache batch."""
        self._check_core(core)
        fills = np.asarray(fills, dtype=np.int64)
        evictions = np.asarray(evictions, dtype=np.int64)
        if len(fills) == 0 and len(evictions) == 0:
            return
        if (len(fills) and fill_slots is None) or (
            len(evictions) and evict_slots is None
        ):
            raise SignatureError(
                "presence indexing requires slot information for every event"
            )
        # Sampling: filter each event list by its block's set.
        total_fills, total_evicts = len(fills), len(evictions)
        fills, fill_slots, kept_f = self._sample_filter(fills, fill_slots)
        evictions, evict_slots, kept_e = self._sample_filter(
            evictions, evict_slots
        )
        self.stats.fills_ignored += total_fills - kept_f
        self.stats.evictions_ignored += total_evicts - kept_e
        fill_idx = (
            self._slot_indices(fill_slots)
            if fill_slots is not None and kept_f
            else np.empty(0, dtype=np.int64)
        )
        evict_idx = (
            self._slot_indices(evict_slots)
            if evict_slots is not None and kept_e and not self._sticky
            else np.empty(0, dtype=np.int64)
        )
        self.stats.fills_tracked += len(fill_idx)
        if self._sticky:
            self.stats.evictions_ignored += kept_e
        else:
            self.stats.evictions_tracked += len(evict_idx)
        # Fill/evict counts commute per slot: apply both, then resolve the
        # end state of every touched slot.
        np.add.at(self.counters, fill_idx, 1)
        if self._sticky:
            np.minimum(self.counters, self.counter_max, out=self.counters)
        if len(evict_idx):
            np.subtract.at(self.counters, evict_idx, 1)
        touched = np.unique(np.concatenate([fill_idx, evict_idx]))
        if len(touched) == 0:
            return
        end_state = self.counters[touched]
        dead = touched[end_state <= 0]
        live = touched[end_state > 0]
        if len(dead):
            self.counters[dead] = 0
            for cf in self.core_filters:
                cf.clear_many(dead)
        if len(live):
            # Live touched slots belong exclusively to this batch's filler.
            live_filled = np.intersect1d(live, fill_idx, assume_unique=False)
            for other, cf in enumerate(self.core_filters):
                if other == core:
                    cf.set_many(live_filled)
                elif not self._sticky and len(live_filled):
                    cf.clear_many(live_filled)

    # ------------------------------------------------------------------
    # event recording (exact scalar paths)
    # ------------------------------------------------------------------
    def _fill_one(self, core: int, block: int, slot: Optional[int]) -> None:
        if self._presence:
            if slot is None:
                raise SignatureError("presence indexing requires slots")
            indices = [int(self._slot_indices(np.asarray([slot]))[0])]
        else:
            indices = []
            for h in self.hashes:
                i = h.hash_one(block)
                if i not in indices:
                    indices.append(i)
        self.stats.fills_tracked += 1
        for i in indices:
            if self.counters[i] >= self.counter_max:
                self.stats.saturation_events += 1
                if self.config.strict_saturation:
                    raise CounterSaturationError(f"counter {i} saturated")
            else:
                self.counters[i] += 1
            self.core_filters[core].set(i)

    def _evict_one(self, block: int, slot: Optional[int]) -> None:
        if self._presence:
            if slot is None:
                raise SignatureError("presence indexing requires slots")
            indices = [int(self._slot_indices(np.asarray([slot]))[0])]
        else:
            indices = []
            for h in self.hashes:
                i = h.hash_one(block)
                if i not in indices:
                    indices.append(i)
        self.stats.evictions_tracked += 1
        for i in indices:
            if self.counters[i] <= 0:
                self.stats.underflow_events += 1
                if self.config.strict_saturation:
                    raise CounterSaturationError(f"counter {i} underflowed")
            else:
                self.counters[i] -= 1
            if self.counters[i] == 0:
                for cf in self.core_filters:
                    cf.clear(i)

    # ------------------------------------------------------------------
    # context switches and queries
    # ------------------------------------------------------------------
    def on_context_switch(self, core: int) -> Optional[SignatureSample]:
        """Compute the outgoing entity's sample, then re-snapshot the LF.

        With a fault injector attached the sample may be corrupted or
        dropped entirely (``None``) — emulating garbled signature words
        and lost sampling windows respectively. Consumers must treat a
        ``None`` sample as "no observation this switch".
        """
        self._check_core(core)
        rbv = running_bit_vector(self.core_filters[core], self.last_filters[core])
        occupancy = rbv.popcount()
        sym = symbiosis_vector(rbv, self.core_filters)
        self.last_filters[core].load_from(self.core_filters[core])
        self.stats.context_switches += 1
        sample = SignatureSample(core=core, occupancy=occupancy, symbiosis=sym)
        if self.injector is not None:
            sample = self.injector.transform_sample(self, core, sample)
        return sample

    def peek_rbv(self, core: int) -> BitVector:
        """Current RBV of *core* without snapshotting (debug/inspection)."""
        self._check_core(core)
        return running_bit_vector(self.core_filters[core], self.last_filters[core])

    def core_occupancy(self, core: int) -> int:
        """popcount of a core's CF — its share of the tracked footprint."""
        self._check_core(core)
        return self.core_filters[core].popcount()

    def total_occupancy(self) -> int:
        """Number of non-zero counters — overall tracked footprint."""
        return int(np.count_nonzero(self.counters))

    def reset(self) -> None:
        """Clear all counters, filters and statistics."""
        self.counters.fill(0)
        for cf in self.core_filters:
            cf.zero()
        for lf in self.last_filters:
            lf.zero()
        self.stats = SignatureStats()

    def state_bits(self) -> int:
        """Total hardware state in bits (counters + CFs + LFs)."""
        return self.num_entries * (
            self.config.counter_bits + 2 * self.num_cores
        )

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise SignatureError(
                f"core {core} out of range for {self.num_cores}-core unit"
            )

    def __repr__(self) -> str:
        return (
            f"SignatureUnit(cores={self.num_cores}, entries={self.num_entries}, "
            f"kind={self.config.hash_kind!r}, sampling=1/{self.sampler.denominator})"
        )
