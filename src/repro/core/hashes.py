"""Hash functions for Bloom-filter signatures (paper Section 5.3).

The paper evaluates four indexing schemes for mapping a cache-block address
to a Bloom-filter entry:

* **XOR** — the block address is divided into index-wide chunks which are
  bitwise-XORed together ("XOR folding").
* **XOR Inverse Reverse** — the XOR-fold index, bitwise inverted and then
  bit-reversed.
* **Modulo** — block address modulo the filter size (supports non-power-of-
  two filter sizes).
* **Presence bits** — not a hash at all: a one-to-one mapping from the cache
  line *slot* (set, way) to a bit. Implemented by
  :class:`repro.core.signature.SignatureUnit` in ``indexing='presence'``
  mode; this module only provides the registry entry so configurations can
  name it uniformly.

All hash objects are vectorised: :meth:`HashFunction.hash_many` maps a numpy
array of block addresses to filter indices in one shot.

Multiple hash functions (``k > 1``) are derived from a base hash by salting
the address with an odd multiplier per hash index; the paper uses ``k = 1``
(Section 3.1) but Section 5.3 argues k>1 saturates small filters, which the
``bench_ablation_hash_count`` harness reproduces.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import require_positive, require_power_of_two

__all__ = [
    "HashFunction",
    "XorFoldHash",
    "XorInverseReverseHash",
    "ModuloHash",
    "make_hash",
    "make_hash_family",
    "HASH_KINDS",
]

# Odd 64-bit salts used to derive independent hash functions from one base
# scheme (Fibonacci-style multipliers).
_SALTS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x85EBCA77C2B2AE63,
    0xFF51AFD7ED558CCD,
    0xC4CEB9FE1A85EC53,
    0x2545F4914F6CDD1D,
)

_U64_MASK = 0xFFFFFFFFFFFFFFFF


class HashFunction:
    """Maps block addresses to filter indices in ``[0, num_entries)``.

    Subclasses implement :meth:`hash_many`; :meth:`hash_one` is derived.

    Parameters
    ----------
    num_entries:
        Size of the target Bloom-filter bit vector / counter array.
    salt_index:
        Selects one of the derived independent functions (for ``k > 1``).
    """

    #: registry name, overridden by subclasses
    kind = "abstract"

    def __init__(self, num_entries: int, salt_index: int = 0):
        self.num_entries = require_positive(num_entries, "num_entries")
        if not 0 <= salt_index < len(_SALTS):
            raise ConfigurationError(
                f"salt_index must be in [0, {len(_SALTS)}), got {salt_index}"
            )
        self.salt_index = salt_index
        self._salt = np.uint64(_SALTS[salt_index]) if salt_index else None

    def hash_many(self, blocks: np.ndarray) -> np.ndarray:
        """Map an int64 array of block addresses to int64 filter indices."""
        raise NotImplementedError

    def hash_one(self, block: int) -> int:
        """Map a single block address to a filter index."""
        return int(self.hash_many(np.asarray([block], dtype=np.int64))[0])

    def _mix(self, blocks: np.ndarray) -> np.ndarray:
        """Apply the per-function salt (identity for salt_index == 0)."""
        u = blocks.astype(np.uint64)
        if self._salt is not None:
            u = (u * self._salt) & np.uint64(_U64_MASK)
            u ^= u >> np.uint64(31)
        return u

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_entries={self.num_entries}, "
            f"salt_index={self.salt_index})"
        )


class XorFoldHash(HashFunction):
    """XOR-fold the block address into ``log2(num_entries)`` bits."""

    kind = "xor"

    def __init__(self, num_entries: int, salt_index: int = 0, fold_bits: int = 48):
        super().__init__(num_entries, salt_index)
        self.index_bits = int(require_power_of_two(num_entries, "num_entries")).bit_length() - 1
        if self.index_bits == 0:
            raise ConfigurationError("XOR folding needs num_entries >= 2")
        self.fold_bits = require_positive(fold_bits, "fold_bits")

    def hash_many(self, blocks: np.ndarray) -> np.ndarray:
        u = self._mix(np.asarray(blocks, dtype=np.int64))
        mask = np.uint64(self.num_entries - 1)
        acc = np.zeros(len(u), dtype=np.uint64)
        shift = 0
        while shift < self.fold_bits:
            acc ^= (u >> np.uint64(shift)) & mask
            shift += self.index_bits
        return acc.astype(np.int64)


class XorInverseReverseHash(XorFoldHash):
    """XOR-fold, then bitwise-invert and bit-reverse the index."""

    kind = "xor_inverse_reverse"

    def hash_many(self, blocks: np.ndarray) -> np.ndarray:
        folded = super().hash_many(blocks).astype(np.uint64)
        inverted = np.bitwise_not(folded) & np.uint64(self.num_entries - 1)
        return _reverse_bits(inverted, self.index_bits).astype(np.int64)


class ModuloHash(HashFunction):
    """Block address modulo the filter size."""

    kind = "modulo"

    def hash_many(self, blocks: np.ndarray) -> np.ndarray:
        u = self._mix(np.asarray(blocks, dtype=np.int64))
        return (u % np.uint64(self.num_entries)).astype(np.int64)


def _reverse_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Reverse the low *width* bits of each uint64 element."""
    out = np.zeros_like(values)
    v = values.copy()
    for _ in range(width):
        out = (out << np.uint64(1)) | (v & np.uint64(1))
        v >>= np.uint64(1)
    return out


_REGISTRY: Dict[str, Callable[..., HashFunction]] = {
    XorFoldHash.kind: XorFoldHash,
    XorInverseReverseHash.kind: XorInverseReverseHash,
    ModuloHash.kind: ModuloHash,
}

#: Names accepted by :func:`make_hash` plus the presence-bit pseudo-schemes:
#: ``presence`` clears bits when the line leaves the cache (exact per-core
#: residency); ``presence_sticky`` never clears (the paper's evaluated
#: variant, which saturates for heavy cache users — Section 5.3).
HASH_KINDS = tuple(_REGISTRY) + ("presence", "presence_sticky")


def make_hash(kind: str, num_entries: int, salt_index: int = 0) -> HashFunction:
    """Construct a hash function by registry name.

    ``'presence'`` is rejected here: presence-bit indexing bypasses hashing
    entirely and is selected on the signature unit instead.
    """
    if kind in ("presence", "presence_sticky"):
        raise ConfigurationError(
            "presence-bit indexing is not a hash function; construct the "
            "SignatureUnit with hash_kind='presence' (or 'presence_sticky') "
            "instead"
        )
    try:
        factory = _REGISTRY[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown hash kind {kind!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
    return factory(num_entries, salt_index=salt_index)


def make_hash_family(kind: str, num_entries: int, count: int) -> List[HashFunction]:
    """Construct *count* independent hash functions of the same *kind*."""
    require_positive(count, "count")
    if count > len(_SALTS):
        raise ConfigurationError(
            f"at most {len(_SALTS)} independent hash functions are supported"
        )
    return [make_hash(kind, num_entries, salt_index=i) for i in range(count)]
