"""Signature metrics: RBV, occupancy weight, symbiosis, interference.

Paper Section 3.1 defines, for a core whose Core Filter is ``CF`` and whose
Last Filter snapshot is ``LF``:

* **Running Bit Vector**: the bits newly set since the snapshot. The paper
  prints two inconsistent formulas — "the inverse value of CF → LF" and
  "RBV = ¬(CF ∨ LF)". These disagree; ``¬(CF → LF) = CF ∧ ¬LF`` is the
  semantically meaningful one (bits set now but not at the snapshot), and
  that is what we implement. (Erratum: the second formula drops a negation;
  it would exclude every bit the application itself set.)
* **Occupancy weight**: popcount of the RBV — a proxy for the process's
  cache footprint.
* **Symbiosis** with another core: popcount of ``RBV XOR CF_other``. High
  symbiosis = disjoint footprints = low interference. A low value means
  either heavy overlap *or* that both vectors are nearly empty — the
  ambiguity the weighted algorithm (Section 3.3.3) corrects.
* **Interference**: the reciprocal of symbiosis (Section 3.3.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.bitvec import BitVector

__all__ = [
    "running_bit_vector",
    "occupancy_weight",
    "symbiosis",
    "interference_from_symbiosis",
    "symbiosis_vector",
    "weighted_edge_weight",
]


def running_bit_vector(cf: BitVector, lf: BitVector) -> BitVector:
    """Return ``CF & ~LF`` — the paper's RBV (see module erratum note)."""
    return cf.andnot(lf)


def occupancy_weight(rbv: BitVector) -> int:
    """Number of ones in the RBV: the cache-footprint proxy."""
    return rbv.popcount()


def symbiosis(rbv: BitVector, cf_other: BitVector) -> int:
    """popcount(RBV XOR CF_other): high value = low mutual interference."""
    return rbv.xor_popcount(cf_other)


def symbiosis_vector(rbv: BitVector, core_filters: Sequence[BitVector]) -> np.ndarray:
    """Symbiosis of one RBV against every core's CF (int64 array)."""
    return np.asarray(
        [rbv.xor_popcount(cf) for cf in core_filters], dtype=np.int64
    )


def interference_from_symbiosis(symbiosis_value: float) -> float:
    """Reciprocal of symbiosis (Section 3.3.2).

    A symbiosis of zero (identical or both-empty vectors) would divide by
    zero; we clamp the denominator at 1, which preserves the ordering the
    allocation algorithms rely on (lower symbiosis -> higher interference).
    """
    return 1.0 / max(float(symbiosis_value), 1.0)


def weighted_edge_weight(
    weight_a: float,
    interference_ab: float,
    weight_b: float,
    interference_ba: float,
) -> float:
    """Weighted interference-graph edge (Section 3.3.3).

    ``W_P1 * I_12 + W_P2 * I_21`` where the ``W`` are occupancy weights and
    the ``I`` are interference metrics. Multiplying by occupancy ensures a
    small-footprint process cannot masquerade as a heavy interferer just
    because its near-empty RBV produced a low symbiosis.
    """
    return float(weight_a) * float(interference_ab) + float(weight_b) * float(
        interference_ba
    )
