"""Per-process/per-VM signature context (paper Section 3.2).

For each scheduled entity the OS (or hypervisor) keeps a structure of
``2 + N`` entries, where ``N`` is the number of physical cores:

1. the ID of the last physical core that ran the entity,
2. the occupancy weight of its last Running Bit Vector,
3. ``N`` symbiosis values — one against each core's Core Filter.

The structure is refreshed on every context switch; the user-level monitor
(or Dom0) reads it through the syscall/hypercall interface to drive the
allocation algorithms. We additionally keep small exponential-moving
averages so allocation decisions are not hostage to a single noisy quantum,
and a sample counter for staleness checks; both extras are clearly separated
from the paper-mandated fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.metrics import interference_from_symbiosis
from repro.errors import SignatureError
from repro.utils.validation import require_positive

__all__ = ["SignatureSample", "SignatureContext"]


@dataclass(frozen=True)
class SignatureSample:
    """One context-switch observation for a scheduled entity.

    Attributes
    ----------
    core:
        Physical core the entity was just switched out of.
    occupancy:
        popcount of the entity's RBV.
    symbiosis:
        int64 array of length ``num_cores``: symbiosis of the RBV against
        every core's CF (including ``core`` itself).
    """

    core: int
    occupancy: int
    symbiosis: np.ndarray

    def interference(self) -> np.ndarray:
        """Per-core interference metrics (reciprocal symbiosis)."""
        return np.asarray(
            [interference_from_symbiosis(s) for s in self.symbiosis],
            dtype=np.float64,
        )


class SignatureContext:
    """The OS-side ``(2 + N)``-entry record for one process/VM.

    Parameters
    ----------
    num_cores:
        Number of physical cores ``N``.
    smoothing:
        EMA coefficient applied to occupancy and symbiosis on update;
        1.0 keeps only the latest sample (the paper's behaviour).
    """

    __slots__ = (
        "num_cores",
        "smoothing",
        "last_core",
        "occupancy",
        "symbiosis",
        "samples_seen",
    )

    def __init__(self, num_cores: int, smoothing: float = 1.0):
        self.num_cores = require_positive(num_cores, "num_cores")
        if not 0.0 < smoothing <= 1.0:
            raise SignatureError(f"smoothing must be in (0, 1], got {smoothing}")
        self.smoothing = float(smoothing)
        self.last_core: Optional[int] = None
        self.occupancy: float = 0.0
        self.symbiosis = np.zeros(num_cores, dtype=np.float64)
        self.samples_seen = 0

    def update(self, sample: SignatureSample) -> None:
        """Fold a new context-switch *sample* into the record."""
        if not 0 <= sample.core < self.num_cores:
            raise SignatureError(
                f"sample core {sample.core} out of range for {self.num_cores} cores"
            )
        if len(sample.symbiosis) != self.num_cores:
            raise SignatureError(
                f"sample has {len(sample.symbiosis)} symbiosis entries, "
                f"expected {self.num_cores}"
            )
        self.last_core = sample.core
        if self.samples_seen == 0 or self.smoothing >= 1.0:
            self.occupancy = float(sample.occupancy)
            self.symbiosis = sample.symbiosis.astype(np.float64).copy()
        else:
            a = self.smoothing
            self.occupancy = a * float(sample.occupancy) + (1 - a) * self.occupancy
            self.symbiosis = a * sample.symbiosis + (1 - a) * self.symbiosis
        self.samples_seen += 1

    @property
    def valid(self) -> bool:
        """True once at least one context switch has been observed."""
        return self.samples_seen > 0

    def interference_with_core(self, core: int) -> float:
        """Interference metric of this entity against *core*'s footprint."""
        if not 0 <= core < self.num_cores:
            raise SignatureError(f"core {core} out of range")
        return interference_from_symbiosis(self.symbiosis[core])

    def as_tuple(self):
        """The literal ``(2 + N)``-entry structure of Section 3.2."""
        return (self.last_core, self.occupancy, *self.symbiosis.tolist())

    def __repr__(self) -> str:
        return (
            f"SignatureContext(last_core={self.last_core}, "
            f"occupancy={self.occupancy:.1f}, samples={self.samples_seen})"
        )
