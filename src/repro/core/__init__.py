"""The paper's contribution: Bloom-filter memory-footprint signatures.

Public surface:

* :class:`BloomFilter` / :class:`CountingBloomFilter` — the Section 2.4
  building blocks.
* :class:`SignatureUnit` / :class:`SignatureConfig` — the split CBF with
  per-core Core/Last Filters (Section 3.1).
* :class:`SignatureSample` / :class:`SignatureContext` — the per-process
  ``(2+N)``-entry OS record (Section 3.2).
* metric helpers (RBV / occupancy / symbiosis / interference) and the
  Section 5.4 overhead models.
"""

from repro.core.cbf import BloomFilter, CountingBloomFilter
from repro.core.context import SignatureContext, SignatureSample
from repro.core.hashes import (
    HASH_KINDS,
    HashFunction,
    ModuloHash,
    XorFoldHash,
    XorInverseReverseHash,
    make_hash,
    make_hash_family,
)
from repro.core.metrics import (
    interference_from_symbiosis,
    occupancy_weight,
    running_bit_vector,
    symbiosis,
    symbiosis_vector,
    weighted_edge_weight,
)
from repro.core.overhead import (
    SoftwareOverhead,
    bits_accurate_overhead,
    paper_hardware_overhead,
    software_overhead,
)
from repro.core.sampling import SetSampler
from repro.core.signature import (
    HealthReport,
    SignatureConfig,
    SignatureHealth,
    SignatureStats,
    SignatureUnit,
    assess_signature,
)

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "SignatureContext",
    "SignatureSample",
    "HASH_KINDS",
    "HashFunction",
    "ModuloHash",
    "XorFoldHash",
    "XorInverseReverseHash",
    "make_hash",
    "make_hash_family",
    "interference_from_symbiosis",
    "occupancy_weight",
    "running_bit_vector",
    "symbiosis",
    "symbiosis_vector",
    "weighted_edge_weight",
    "SoftwareOverhead",
    "bits_accurate_overhead",
    "paper_hardware_overhead",
    "software_overhead",
    "SetSampler",
    "HealthReport",
    "SignatureConfig",
    "SignatureHealth",
    "SignatureStats",
    "SignatureUnit",
    "assess_signature",
]
