"""Set-sampling of the signature hardware (paper Section 5.4).

Tracking every cache line makes the CF/LF/counter overhead ~8.5% of the L2
for a dual-core; the paper instead samples 25% of the data sets and reports
that scheduling decisions are unaffected, cutting the overhead to ~2.13%.

We implement *set sampling*: only blocks mapping to cache sets whose index
is ``0 (mod denominator)`` are tracked, and the filter structures shrink by
the same factor. ``denominator=1`` disables sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_power_of_two

__all__ = ["SetSampler"]


@dataclass(frozen=True)
class SetSampler:
    """Selects which cache sets the signature hardware observes.

    Parameters
    ----------
    num_sets:
        Total number of sets in the monitored cache (power of two).
    denominator:
        Sampling ratio denominator: 1 = track everything, 4 = track 25% of
        sets (the paper's configuration), etc. Must be a power of two and
        no larger than ``num_sets``.
    """

    num_sets: int
    denominator: int = 1

    def __post_init__(self) -> None:
        require_power_of_two(self.num_sets, "num_sets")
        require_power_of_two(self.denominator, "denominator")
        if self.denominator > self.num_sets:
            raise ValueError(
                f"denominator {self.denominator} exceeds num_sets {self.num_sets}"
            )

    @property
    def rate(self) -> float:
        """Fraction of sets tracked (e.g. 0.25)."""
        return 1.0 / self.denominator

    @property
    def sampled_sets(self) -> int:
        """Number of sets the signature hardware observes."""
        return self.num_sets // self.denominator

    def set_of(self, blocks: np.ndarray) -> np.ndarray:
        """Cache-set index of each block address."""
        return np.asarray(blocks, dtype=np.int64) & (self.num_sets - 1)

    def mask(self, blocks: np.ndarray) -> np.ndarray:
        """Boolean array: True where the block falls in a sampled set."""
        if self.denominator == 1:
            return np.ones(len(blocks), dtype=bool)
        return (self.set_of(blocks) & (self.denominator - 1)) == 0

    def tracks_block(self, block: int) -> bool:
        """Scalar version of :meth:`mask`."""
        return (int(block) & (self.num_sets - 1) & (self.denominator - 1)) == 0

    def compress_set(self, set_indices: np.ndarray) -> np.ndarray:
        """Map sampled set indices to the compacted [0, sampled_sets) range."""
        return np.asarray(set_indices, dtype=np.int64) >> int(
            np.log2(self.denominator)
        )
