"""Implementation-overhead models (paper Section 5.4).

The paper quantifies three costs:

* **Hardware** — counter array + CF + LF sized to the number of cache
  lines. The paper's printed formula, ``(2·N + 3) / (64 + 18)`` for an
  N-core machine with 3-bit counters, evaluates to 8.5% for a dual-core and
  2.13% after 25% set sampling; we reproduce that formula literally
  (:func:`paper_hardware_overhead`) and also provide a dimensionally
  consistent bits-based model (:func:`bits_accurate_overhead`) since the
  paper's denominator mixes units (64 *bytes* of data + 18 *bits* of tag).
* **Software bookkeeping** — three 32-bit words per process context plus a
  graph algorithm of "hundreds of instructions" every 100 ms.
* **Communication** — transferring ~1 KB RBVs between cores at context
  switches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = [
    "paper_hardware_overhead",
    "bits_accurate_overhead",
    "SoftwareOverhead",
    "software_overhead",
]


def paper_hardware_overhead(
    num_cores: int,
    counter_bits: int = 3,
    line_bytes: int = 64,
    tag_bits: int = 18,
    sampling_denominator: int = 1,
) -> float:
    """The paper's literal overhead fraction (Section 5.4).

    ``(2·N + counter_bits) / (line_bytes + tag_bits) / sampling``.

    For ``N=2, counter_bits=3``: ``7 / 82 = 8.54%`` unsampled and ``2.13%``
    at 25% sampling — the two numbers the paper reports.
    """
    require_positive(num_cores, "num_cores")
    require_positive(sampling_denominator, "sampling_denominator")
    per_line = 2 * num_cores + counter_bits
    return per_line / (line_bytes + tag_bits) / sampling_denominator


def bits_accurate_overhead(
    num_cores: int,
    counter_bits: int = 3,
    line_bytes: int = 64,
    tag_bits: int = 18,
    sampling_denominator: int = 1,
) -> float:
    """Dimensionally consistent overhead: signature bits / line storage bits.

    Each cache line costs ``8·line_bytes + tag_bits`` bits of storage; the
    signature adds ``2·N`` filter bits (CF + LF) plus ``counter_bits`` per
    *tracked* line. This is the defensible engineering number (≈1.3% for a
    dual-core unsampled), noticeably below the paper's unit-sloppy 8.5%.
    """
    require_positive(num_cores, "num_cores")
    require_positive(sampling_denominator, "sampling_denominator")
    per_line_signature = 2 * num_cores + counter_bits
    per_line_storage = 8 * line_bytes + tag_bits
    return per_line_signature / per_line_storage / sampling_denominator


@dataclass(frozen=True)
class SoftwareOverhead:
    """Estimated recurring software costs of the allocation machinery."""

    context_bytes_per_process: int
    rbv_bytes: int
    rbv_transfer_bytes_per_switch: int
    allocator_instructions_per_invocation: int
    invocation_period_cycles: int

    @property
    def allocator_cpu_fraction(self) -> float:
        """Fraction of one core spent running the allocator."""
        return (
            self.allocator_instructions_per_invocation
            / self.invocation_period_cycles
        )


def software_overhead(
    num_cores: int,
    num_entries: int,
    num_processes: int,
    allocator_instructions: int = 500,
    clock_hz: float = 2.6e9,
    invocation_period_s: float = 0.1,
) -> SoftwareOverhead:
    """Model the Section 5.4 software/bookkeeping costs.

    The per-process context is ``2 + N`` numbers (kept as three 32-bit
    values in the paper's description — last core, occupancy and a packed
    symbiosis record); the RBV transferred between cores at a context
    switch is ``num_entries`` bits.
    """
    require_positive(num_cores, "num_cores")
    require_positive(num_entries, "num_entries")
    require_positive(num_processes, "num_processes")
    rbv_bytes = num_entries // 8
    return SoftwareOverhead(
        context_bytes_per_process=4 * (2 + num_cores),
        rbv_bytes=rbv_bytes,
        rbv_transfer_bytes_per_switch=rbv_bytes * num_cores,
        allocator_instructions_per_invocation=allocator_instructions
        * max(1, num_processes // 4),
        invocation_period_cycles=int(clock_hz * invocation_period_s),
    )
