"""Shared low-level utilities: bit vectors, RNG streams, table rendering."""

from repro.utils.bitvec import BitVector
from repro.utils.rng import make_rng, spawn_rngs, stable_seed
from repro.utils.tables import format_table, format_bar_chart
from repro.utils.validation import (
    require,
    require_power_of_two,
    require_positive,
    require_in_range,
)

__all__ = [
    "BitVector",
    "make_rng",
    "spawn_rngs",
    "stable_seed",
    "format_table",
    "format_bar_chart",
    "require",
    "require_power_of_two",
    "require_positive",
    "require_in_range",
]
