"""Packed bit vectors used for Bloom-filter signatures.

A :class:`BitVector` stores ``n`` bits packed into a ``numpy`` ``uint64``
array. All bulk operations (set/clear many indices, boolean combinations,
popcount) are vectorised; single-bit operations are also provided for the
exact-semantics signature mode.

The signature metrics of the paper (Section 3.1) are boolean algebra over
these vectors:

* ``RBV  = CF & ~LF``           (newly-set bits since the last snapshot)
* ``occupancy = popcount(RBV)``
* ``symbiosis = popcount(RBV ^ CF_other)``
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["BitVector"]

_WORD_BITS = 64


def _popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across a uint64 array."""
    # View as bytes and unpack: C-speed popcount without external deps.
    return int(np.unpackbits(words.view(np.uint8)).sum())


class BitVector:
    """A fixed-size bit vector packed into uint64 words.

    Parameters
    ----------
    size:
        Number of bits. Need not be a multiple of 64; bits past ``size``
        are kept zero by masking after every mutating operation.
    """

    __slots__ = ("size", "_words", "_tail_mask")

    def __init__(self, size: int):
        self.size = require_positive(size, "size")
        nwords = (self.size + _WORD_BITS - 1) // _WORD_BITS
        self._words = np.zeros(nwords, dtype=np.uint64)
        tail_bits = self.size - (nwords - 1) * _WORD_BITS
        if tail_bits == _WORD_BITS:
            self._tail_mask = np.uint64(0xFFFFFFFFFFFFFFFF)
        else:
            self._tail_mask = np.uint64((1 << tail_bits) - 1)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector with exactly the given bit *indices* set."""
        vec = cls(size)
        vec.set_many(np.asarray(list(indices), dtype=np.int64))
        return vec

    @classmethod
    def _from_words(cls, size: int, words: np.ndarray) -> "BitVector":
        vec = cls(size)
        vec._words = words
        vec._mask_tail()
        return vec

    def copy(self) -> "BitVector":
        """Return an independent copy of this vector."""
        return BitVector._from_words(self.size, self._words.copy())

    # ------------------------------------------------------------------
    # single-bit operations
    # ------------------------------------------------------------------
    def set(self, index: int) -> None:
        """Set bit *index* to 1."""
        self._check_index(index)
        self._words[index >> 6] |= np.uint64(1 << (index & 63))

    def clear(self, index: int) -> None:
        """Clear bit *index* to 0."""
        self._check_index(index)
        self._words[index >> 6] &= np.uint64(~(1 << (index & 63)) & 0xFFFFFFFFFFFFFFFF)

    def test(self, index: int) -> bool:
        """Return True iff bit *index* is set."""
        self._check_index(index)
        return bool(self._words[index >> 6] >> np.uint64(index & 63) & np.uint64(1))

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    def set_many(self, indices: np.ndarray) -> None:
        """Set every bit listed in *indices* (duplicates allowed)."""
        if len(indices) == 0:
            return
        idx = np.asarray(indices, dtype=np.int64)
        self._check_indices(idx)
        words = idx >> 6
        bits = np.left_shift(np.uint64(1), (idx & 63).astype(np.uint64))
        np.bitwise_or.at(self._words, words, bits)

    def clear_many(self, indices: np.ndarray) -> None:
        """Clear every bit listed in *indices* (duplicates allowed)."""
        if len(indices) == 0:
            return
        idx = np.asarray(indices, dtype=np.int64)
        self._check_indices(idx)
        words = idx >> 6
        bits = np.left_shift(np.uint64(1), (idx & 63).astype(np.uint64))
        inv = np.bitwise_not(bits)
        np.bitwise_and.at(self._words, words, inv)

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        """Return a boolean array: for each index, whether the bit is set."""
        idx = np.asarray(indices, dtype=np.int64)
        if len(idx) == 0:
            return np.zeros(0, dtype=bool)
        self._check_indices(idx)
        words = self._words[idx >> 6]
        return ((words >> (idx & 63).astype(np.uint64)) & np.uint64(1)).astype(bool)

    def zero(self) -> None:
        """Clear the entire vector."""
        self._words.fill(0)

    def fill(self) -> None:
        """Set the entire vector to all ones."""
        self._words.fill(0xFFFFFFFFFFFFFFFF)
        self._mask_tail()

    def load_from(self, other: "BitVector") -> None:
        """Overwrite this vector's contents with *other*'s (snapshot copy)."""
        self._check_same_size(other)
        np.copyto(self._words, other._words)

    # ------------------------------------------------------------------
    # boolean algebra (new vectors)
    # ------------------------------------------------------------------
    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_same_size(other)
        return BitVector._from_words(self.size, self._words & other._words)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_same_size(other)
        return BitVector._from_words(self.size, self._words | other._words)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_same_size(other)
        return BitVector._from_words(self.size, self._words ^ other._words)

    def __invert__(self) -> "BitVector":
        return BitVector._from_words(self.size, np.bitwise_not(self._words))

    def andnot(self, other: "BitVector") -> "BitVector":
        """Return ``self & ~other`` — the paper's RBV when self=CF, other=LF."""
        self._check_same_size(other)
        return BitVector._from_words(
            self.size, self._words & np.bitwise_not(other._words)
        )

    # ------------------------------------------------------------------
    # aggregate queries
    # ------------------------------------------------------------------
    def popcount(self) -> int:
        """Number of set bits (the paper's 'occupancy weight' when on an RBV)."""
        return _popcount_words(self._words)

    def and_popcount(self, other: "BitVector") -> int:
        """popcount(self & other) without materialising the intermediate."""
        self._check_same_size(other)
        return _popcount_words(self._words & other._words)

    def xor_popcount(self, other: "BitVector") -> int:
        """popcount(self ^ other) — the paper's symbiosis metric."""
        self._check_same_size(other)
        return _popcount_words(self._words ^ other._words)

    def to_indices(self) -> np.ndarray:
        """Return the sorted array of set-bit indices."""
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return np.nonzero(bits[: self.size])[0].astype(np.int64)

    def to_bool_array(self) -> np.ndarray:
        """Return the vector as a dense boolean numpy array of length size."""
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self.size].astype(bool)

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.size == other.size and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable, but tests want sets
        raise TypeError("BitVector is mutable and unhashable")

    def __iter__(self) -> Iterator[bool]:
        return iter(self.to_bool_array().tolist())

    def __repr__(self) -> str:
        return f"BitVector(size={self.size}, popcount={self.popcount()})"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _mask_tail(self) -> None:
        self._words[-1] &= self._tail_mask

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"bit index {index} out of range [0, {self.size})")

    def _check_indices(self, indices: np.ndarray) -> None:
        if len(indices) and (indices.min() < 0 or indices.max() >= self.size):
            raise IndexError(
                f"bit indices out of range [0, {self.size}): "
                f"min={indices.min()}, max={indices.max()}"
            )

    def _check_same_size(self, other: "BitVector") -> None:
        if self.size != other.size:
            raise ValueError(
                f"bit vector size mismatch: {self.size} vs {other.size}"
            )
