"""Deterministic random-number-stream management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` produced here. Child streams are derived via
:class:`numpy.random.SeedSequence` spawning, so two components seeded from
the same root never share a stream and experiments replay bit-for-bit.
"""

from __future__ import annotations

import hashlib
from typing import List, Union

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "stable_seed", "derive_rng"]

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    *seed* may be an int, an existing ``SeedSequence``, an existing
    ``Generator`` (returned unchanged), or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn *count* independent generators from a single *seed*.

    The streams are independent in the ``SeedSequence`` sense: no overlap,
    and adding or removing a consumer does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def stable_seed(*parts: Union[str, int]) -> int:
    """Derive a stable 63-bit seed from string/int *parts*.

    Used to give named entities (e.g. the ``mcf`` workload profile) a
    reproducible stream that does not depend on construction order.
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def derive_rng(root_seed: SeedLike, *parts: Union[str, int]) -> np.random.Generator:
    """Make a generator whose stream is keyed by *root_seed* plus *parts*."""
    if isinstance(root_seed, (np.random.Generator, np.random.SeedSequence)):
        raise TypeError("derive_rng needs a hashable root seed (int or None)")
    base = 0 if root_seed is None else int(root_seed)
    return make_rng(stable_seed(base, *parts))
