"""Argument-validation helpers.

These keep constructor bodies readable and produce uniform error messages.
All helpers raise :class:`repro.errors.ConfigurationError` (a ``ValueError``
subclass) so they behave well with callers expecting standard exceptions.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "require",
    "require_positive",
    "require_non_negative",
    "require_power_of_two",
    "require_in_range",
    "is_power_of_two",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: Any, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``."""
    ivalue = _as_int(value, name)
    if ivalue <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return ivalue


def require_non_negative(value: Any, name: str) -> int:
    """Validate that *value* is a non-negative integer, return it as ``int``."""
    ivalue = _as_int(value, name)
    if ivalue < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return ivalue


def is_power_of_two(value: int) -> bool:
    """Return True iff *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def require_power_of_two(value: Any, name: str) -> int:
    """Validate that *value* is a positive power of two, return it as ``int``."""
    ivalue = require_positive(value, name)
    if not is_power_of_two(ivalue):
        raise ConfigurationError(f"{name} must be a power of two, got {value!r}")
    return ivalue


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high`` and return *value* as ``float``."""
    fvalue = float(value)
    if not (low <= fvalue <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return fvalue


def _as_int(value: Any, name: str) -> int:
    """Coerce *value* to int, rejecting non-integral floats and other types."""
    if isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got bool")
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be an integer, got {value!r}") from exc
    if isinstance(value, float) and value != ivalue:
        raise ConfigurationError(f"{name} must be integral, got {value!r}")
    return ivalue
