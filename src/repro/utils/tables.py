"""Plain-text rendering of result tables and bar charts.

The benchmark harnesses print the same rows/series the paper reports; these
helpers keep that output aligned and consistent without any plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_bar_chart", "format_percent"]

Cell = Union[str, int, float, None]


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction (0.54) as a percent string ('54.0%')."""
    return f"{100.0 * value:.{digits}f}%"


def _render_cell(cell: Cell, float_digits: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{float_digits}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned; ``None``
    renders as ``-``.
    """
    str_rows = [[_render_cell(c, float_digits) for c in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [True] * ncols
    for row, raw in zip(str_rows, rows):
        for i, cell in enumerate(raw):
            if isinstance(cell, str):
                numeric[i] = False

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart, one bar per labelled value.

    Used to echo the paper's figures (e.g. per-benchmark improvement bars)
    in harness output.
    """
    if not values:
        return title or ""
    label_w = max(len(k) for k in values)
    vmax = max(max(values.values()), 0.0)
    scale = (width / vmax) if vmax > 0 else 0.0
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in values.items():
        bar = "#" * max(0, int(round(value * scale)))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)
