"""Crash consistency for the online scheduling service.

The daemon in :mod:`repro.service` holds its entire world — the live
process registry, the streaming EWMA footprint estimates, and the
incremental mapper's partition — in memory. This package makes that
world survive ``kill -9``:

* :class:`~repro.durable.wal.EventWAL` — an fsynced, torn-tail-tolerant
  write-ahead log in the style of :class:`repro.jobs.journal.RunJournal`:
  every scheduling event is durably appended *before* the daemon applies
  it, so a crash can lose at most an event the client never got an
  answer for (and will retry).
* :class:`~repro.durable.snapshot.SnapshotStore` — periodic checksummed
  snapshots of the full service state, written atomically
  (write-tmp/fsync/rename, the :class:`repro.jobs.cache.ResultCache`
  protocol) with corrupt snapshots quarantined, never trusted.
* :mod:`~repro.durable.state` — the (de)serialisation of service state
  to a canonical JSON-native form, plus a fingerprint over it; the
  recovery equivalence tests compare fingerprints, not prose.
* :class:`~repro.durable.dedup.DedupTable` — the idempotency table that
  lets reconnecting clients resend their last request ``(client_id,
  seq)`` without it ever being applied twice.
* :class:`~repro.durable.manager.DurabilityManager` — the facade the
  daemon talks to: WAL append per event, snapshot every N events, WAL
  compaction behind each published snapshot, and the
  ``durable_*`` metrics.

Recovery (``SchedulerService.recover``) loads the newest intact
snapshot, replays the WAL tail through the daemon's own event handler,
and must land on a state byte-identical to an uninterrupted run — the
kill-at-every-index test in ``tests/durable/test_recovery.py`` pins
exactly that.
"""

from __future__ import annotations

from repro.durable.dedup import DedupTable
from repro.durable.manager import DurabilityManager
from repro.durable.snapshot import SnapshotStore
from repro.durable.state import capture_state, restore_state, state_fingerprint
from repro.durable.wal import EventWAL

__all__ = [
    "DedupTable",
    "DurabilityManager",
    "EventWAL",
    "SnapshotStore",
    "capture_state",
    "restore_state",
    "state_fingerprint",
]
