"""The event write-ahead log: fsynced, sequence-numbered, torn-tail safe.

One append-only file of newline-framed JSON records::

    {"version": 1, "lsn": 17, "event": {"kind": "admit", ...}}\n

Each record carries a monotonically increasing **log sequence number**
(LSN). The LSN is what makes this a WAL rather than a plain journal:

* replay is ordered and gap-checked — a record whose LSN does not
  continue the sequence marks the end of trustworthy history, so a
  corrupted *middle* can never splice stale events into a recovery;
* snapshots record the LSN they cover, and replay starts strictly
  after it — an event is applied at most once across any number of
  crash/recover cycles;
* :meth:`EventWAL.compact` discards records a published snapshot
  already covers, atomically (write-tmp/fsync/rename), so the log's
  length is bounded by the snapshot interval rather than by uptime.

Durability policy: every append is a single ``write`` of a full line,
flushed to the OS before :meth:`EventWAL.append` returns — a ``kill
-9`` therefore never loses an appended record. ``fsync`` (power-loss
durability) runs every ``fsync_every`` appends (default 1: every
record, the :class:`repro.jobs.journal.RunJournal` discipline); raising
it trades a bounded power-loss window for throughput, and the trade is
recorded in the ``durable_wal_fsyncs_total`` metric.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.jobs.keys import canonical_json

__all__ = ["WAL_SCHEMA_VERSION", "EventWAL"]

#: Version of the WAL record schema; bump to orphan old logs.
WAL_SCHEMA_VERSION = 1


class EventWAL:
    """Append-only, LSN-ordered event log under one file path.

    Parameters
    ----------
    path:
        Log file; created (with parents) on the first append. An
        existing directory at this path is rejected immediately.
    fsync_every:
        Appends between ``os.fsync`` calls. ``1`` (the default) syncs
        every record — full power-loss durability; larger values bound
        the loss window to that many events while keeping kill-crash
        durability (records are always flushed to the OS).
    """

    def __init__(self, path, fsync_every: int = 1) -> None:
        self.path = Path(path)
        if self.path.exists() and self.path.is_dir():
            raise ConfigurationError(f"WAL path {self.path} is a directory")
        if fsync_every < 1:
            raise ConfigurationError(
                f"fsync_every must be >= 1, got {fsync_every}"
            )
        self.fsync_every = fsync_every
        self.records_written = 0
        self.fsyncs = 0
        self.corrupt_lines = 0
        self._since_fsync = 0
        self._next_lsn: Optional[int] = None  # lazily seeded from the file

    # -- write path ----------------------------------------------------

    def _ensure_open(self) -> None:
        """Seed the LSN counter and repair the log file, exactly once.

        A torn trailing line (previous process died mid-append) or a
        garbled suffix is **truncated away** before the first append:
        replay is strict — it stops at the first corruption — so new
        records written *behind* garbage would be durable yet
        invisible. Truncation is safe because ``append`` acknowledges a
        record only after its full line is written; anything replay
        distrusts was never acknowledged to a client.
        """
        if self._next_lsn is not None:
            return
        records = self.replay(0)
        if self.corrupt_lines > 0:
            self._publish(records)
        self._next_lsn = (records[-1][0] + 1) if records else 1

    @property
    def last_lsn(self) -> int:
        """LSN of the newest durable record (0 when the log is empty)."""
        self._ensure_open()
        assert self._next_lsn is not None
        return self._next_lsn - 1

    def append(self, event: Dict[str, Any]) -> int:
        """Durably append one event payload; returns its LSN.

        The full line is serialised before the file is touched and
        written with one ``write`` call, so a crash leaves at worst one
        torn trailing line — truncated by the next process's first
        append (see :meth:`_ensure_open`) and skipped by replay.
        """
        lsn = self.last_lsn + 1
        line = (
            canonical_json(
                {"version": WAL_SCHEMA_VERSION, "lsn": lsn, "event": event}
            )
            + "\n"
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="ascii") as handle:
            handle.write(line)
            handle.flush()
            self._since_fsync += 1
            if self._since_fsync >= self.fsync_every:
                os.fsync(handle.fileno())
                self.fsyncs += 1
                self._since_fsync = 0
        self.records_written += 1
        self._next_lsn = lsn + 1
        return lsn

    def sync(self) -> None:
        """Force an ``fsync`` of any records the batch policy deferred."""
        if self._since_fsync == 0 or not self.path.exists():
            return
        with open(self.path, "a", encoding="ascii") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self.fsyncs += 1
        self._since_fsync = 0

    def _publish(self, records: List[Tuple[int, Dict[str, Any]]]) -> None:
        """Atomically rewrite the log to exactly *records*.

        Write-tmp/fsync/``os.replace`` in the log's own directory — a
        crash mid-rewrite leaves either the old complete file or the
        new complete file, never a mixture.
        """
        text = "".join(
            canonical_json(
                {"version": WAL_SCHEMA_VERSION, "lsn": lsn, "event": event}
            )
            + "\n"
            for lsn, event in records
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".compact")
        with open(tmp, "w", encoding="ascii") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._since_fsync = 0

    # -- read path -----------------------------------------------------

    def replay(self, after_lsn: int) -> List[Tuple[int, Dict[str, Any]]]:
        """Intact records with LSN strictly greater than *after_lsn*.

        Replay stops at the first torn, garbled, or out-of-sequence
        line (counted in :attr:`corrupt_lines`, never raised): records
        past a corruption have no trustworthy ordering, and trusting
        them could apply events out of order — worse than losing the
        tail, which clients simply retry.
        """
        self.corrupt_lines = 0
        try:
            text = self.path.read_text(encoding="ascii")
        except FileNotFoundError:
            return []
        except (OSError, UnicodeDecodeError):
            self.corrupt_lines += 1
            return []
        records: List[Tuple[int, Dict[str, Any]]] = []
        expected: Optional[int] = None
        for line in text.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record["version"] != WAL_SCHEMA_VERSION:
                    raise ValueError("WAL schema mismatch")
                lsn = record["lsn"]
                event = record["event"]
                if not isinstance(lsn, int) or not isinstance(event, dict):
                    raise ValueError("malformed WAL record")
            except (ValueError, KeyError, TypeError):
                self.corrupt_lines += 1
                break
            if expected is not None and lsn != expected:
                self.corrupt_lines += 1
                break
            expected = lsn + 1
            if lsn > after_lsn:
                records.append((lsn, event))
        return records

    # -- maintenance ---------------------------------------------------

    def compact(self, up_to_lsn: int) -> int:
        """Drop records with LSN <= *up_to_lsn*; returns records kept.

        The survivors are rewritten to a temporary file in the same
        directory, fsynced, and published with ``os.replace`` — a crash
        mid-compaction leaves either the old complete log or the new
        complete log, never a mixture. The newest record is always
        retained even when the snapshot covers it: it anchors the LSN
        sequence, so a process reopening a fully-compacted log
        continues numbering instead of colliding with history.
        """
        last = self.last_lsn  # seeds the counter (and repairs) first
        intact = self.replay(0)
        survivors = [(lsn, ev) for lsn, ev in intact if lsn > up_to_lsn]
        if not survivors and intact:
            survivors = [intact[-1]]
        self._publish(survivors)
        self._next_lsn = last + 1  # LSNs keep counting across compactions
        return len(survivors)

    def __len__(self) -> int:
        """Number of intact records currently in the log file."""
        return len(self.replay(0))

    def __repr__(self) -> str:
        return f"EventWAL({str(self.path)!r})"
