"""Checksummed, atomically-published snapshots of service state.

One file (``snapshot.json``) holding a versioned envelope::

    {"version": 1, "last_lsn": 412, "checksum": "<sha256>", "state": {...}}

``checksum`` is the SHA-256 of the canonical JSON of ``{"last_lsn",
"state"}`` — a snapshot that decodes but was torn, bit-flipped, or
hand-edited fails verification and is treated exactly like one that
does not parse.

The write protocol is the repo's standard atomic-durable publish
(:class:`repro.jobs.cache.ResultCache`): serialise fully, write to a
temporary file in the destination directory, flush, ``fsync``, then
``os.replace`` — readers see the old snapshot or the new one, never a
mixture, and a power loss after the rename cannot surface an empty
committed file.

A corrupt snapshot is **quarantined**, not deleted: it is renamed to a
collision-proof ``snapshot.json.corrupt[.N]`` so the evidence survives
for post-mortems, the failure is counted and logged once at warning
level, and recovery falls back to replaying the full WAL — slower, but
correct.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.jobs.keys import canonical_json

__all__ = ["SNAPSHOT_SCHEMA_VERSION", "SnapshotStore"]

logger = logging.getLogger(__name__)

#: Version of the snapshot envelope; bump to orphan old snapshots.
SNAPSHOT_SCHEMA_VERSION = 1


def _checksum(state: Dict[str, Any], last_lsn: int) -> str:
    """SHA-256 over the canonical JSON of the protected payload."""
    text = canonical_json({"last_lsn": last_lsn, "state": state})
    return hashlib.sha256(text.encode("ascii")).hexdigest()


class SnapshotStore:
    """Publishes and loads the service-state snapshot in one directory.

    Parameters
    ----------
    root:
        Directory holding ``snapshot.json``; created on first save. An
        existing non-directory path is rejected immediately.
    """

    FILENAME = "snapshot.json"

    def __init__(self, root) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(
                f"snapshot root {self.root} exists and is not a directory"
            )
        self.writes = 0
        self.corrupt = 0
        self._warned = False

    @property
    def path(self) -> Path:
        """Filesystem path of the published snapshot."""
        return self.root / self.FILENAME

    # -- write path ----------------------------------------------------

    def save(self, state: Dict[str, Any], last_lsn: int) -> Path:
        """Atomically publish a snapshot covering WAL records <= *last_lsn*.

        The envelope is fully serialised before any file is touched;
        the temporary lives in the destination directory so the final
        ``os.replace`` never crosses filesystems.
        """
        envelope = canonical_json(
            {
                "version": SNAPSHOT_SCHEMA_VERSION,
                "last_lsn": last_lsn,
                "checksum": _checksum(state, last_lsn),
                "state": state,
            }
        )
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".snapshot-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(envelope + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass  # already renamed or never created; nothing to clean
            raise
        self.writes += 1
        return self.path

    # -- read path -----------------------------------------------------

    def load(self) -> Optional[Tuple[Dict[str, Any], int]]:
        """The newest intact snapshot as ``(state, last_lsn)``, or ``None``.

        Every failure mode — missing file, unreadable bytes, invalid
        JSON, wrong version, checksum mismatch — yields ``None``;
        corrupt files are additionally quarantined so recovery falls
        back to full WAL replay while the evidence survives.
        """
        try:
            text = self.path.read_text(encoding="ascii")
        except (FileNotFoundError, NotADirectoryError):
            return None
        except (OSError, UnicodeDecodeError) as exc:
            self._quarantine(f"unreadable: {exc}")
            return None
        try:
            envelope = json.loads(text)
            if envelope["version"] != SNAPSHOT_SCHEMA_VERSION:
                raise ValueError("snapshot schema version mismatch")
            state = envelope["state"]
            last_lsn = envelope["last_lsn"]
            if not isinstance(state, dict) or not isinstance(last_lsn, int):
                raise ValueError("malformed snapshot envelope")
            if envelope["checksum"] != _checksum(state, last_lsn):
                raise ValueError("snapshot checksum mismatch")
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(str(exc))
            return None
        return state, last_lsn

    def _quarantine(self, reason: str) -> None:
        """Move the corrupt snapshot aside (collision-proof) and count it."""
        self.corrupt += 1
        path = self.path
        target = path.with_name(path.name + ".corrupt")
        counter = 0
        while target.exists():
            counter += 1
            target = path.with_name(f"{path.name}.corrupt.{counter}")
        try:
            # The file is already corrupt; losing this rename in a crash
            # costs nothing — fsync-then-replace durability (RPR201) is
            # only owed to data we still trust.
            os.replace(path, target)  # repro: noqa[RPR201]
        except OSError:
            return  # raced away or unlinkable; the load already failed safe
        log = logger.warning if not self._warned else logger.debug
        self._warned = True
        log(
            "quarantined corrupt snapshot %s (%s); recovery will replay "
            "the full WAL",
            target,
            reason,
        )

    def __repr__(self) -> str:
        return f"SnapshotStore({str(self.root)!r})"
