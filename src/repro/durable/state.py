"""(De)serialisation of the full scheduler-service state.

:func:`capture_state` folds every piece of mutable daemon state —
process registry (with its EWMA footprint floats), incremental mapper
partition and counters, circuit breaker, idempotency table, and the
event counters — into one canonical JSON-native dictionary;
:func:`restore_state` is its exact inverse on a freshly constructed
service.

The round-trip is **bit-exact**: floats survive JSON because Python's
``repr`` is the shortest round-trip representation, and every container
is written in a canonical order. That exactness is what lets the
recovery tests compare :func:`state_fingerprint` digests instead of
hand-picking fields — if any byte of recovered state differs from the
uninterrupted oracle, the fingerprints differ.

A snapshot also embeds the service configuration it was taken under;
:func:`restore_state` refuses to load it into a differently-configured
service, because mapper partitions and breaker waves are only
meaningful relative to those tunables.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Dict

from repro.errors import ServiceError
from repro.jobs.keys import canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.service.daemon import SchedulerService

__all__ = ["STATE_SCHEMA_VERSION", "capture_state", "restore_state",
           "state_fingerprint"]

#: Version of the captured-state layout; bump to orphan old snapshots.
STATE_SCHEMA_VERSION = 1

#: Config fields that must match between snapshot and restoring service.
_CONFIG_FIELDS = (
    "num_cores",
    "queue_capacity",
    "drift_threshold",
    "capacity_lines",
    "ewma_alpha",
    "breaker_threshold",
    "breaker_cooldown_waves",
    "wave_events",
    "flap_window",
    "flap_threshold",
)


def _config_payload(service: "SchedulerService") -> Dict[str, Any]:
    """The determinism-relevant config fields as a JSON-native dict."""
    return {
        field: getattr(service.config, field) for field in _CONFIG_FIELDS
    }


def capture_state(service: "SchedulerService") -> Dict[str, Any]:
    """Everything a recovered daemon needs, as one JSON-native dict."""
    return {
        "schema": STATE_SCHEMA_VERSION,
        "config": _config_payload(service),
        "registry": service.registry.export_state(),
        "mapper": service.mapper.export_state(),
        "breaker": service.breaker.export_state(),
        "dedup": service.dedup.export_state(),
        "counters": {
            "events_processed": service.events_processed,
            "events_ok": service.events_ok,
            "events_rejected": service.events_rejected,
            "events_dropped": service.events_dropped,
            "events_deduped": service.events_deduped,
            "events_since_wave": service._events_since_wave,
        },
    }


def restore_state(service: "SchedulerService", state: Dict[str, Any]) -> None:
    """Load :func:`capture_state` output into a fresh service.

    Raises :class:`~repro.errors.ServiceError` when the snapshot's
    schema or embedded configuration does not match the restoring
    service — restoring mapper partitions under different tunables
    would produce a daemon that *looks* recovered but diverges from
    the oracle on the next event.
    """
    if state.get("schema") != STATE_SCHEMA_VERSION:
        raise ServiceError(
            f"snapshot state schema {state.get('schema')!r} does not match "
            f"supported version {STATE_SCHEMA_VERSION}"
        )
    expected = _config_payload(service)
    if state["config"] != expected:
        diffs = sorted(
            field
            for field in _CONFIG_FIELDS
            if state["config"].get(field) != expected[field]
        )
        raise ServiceError(
            "snapshot was taken under a different service configuration "
            f"(mismatched fields: {', '.join(diffs) or 'unknown'})"
        )
    service.registry.restore(state["registry"])
    service.mapper.restore(state["mapper"])
    service.breaker.restore(state["breaker"])
    service.dedup.restore(state["dedup"])
    counters = state["counters"]
    service.events_processed = int(counters["events_processed"])
    service.events_ok = int(counters["events_ok"])
    service.events_rejected = int(counters["events_rejected"])
    service.events_dropped = int(counters["events_dropped"])
    service.events_deduped = int(counters["events_deduped"])
    service._events_since_wave = int(counters["events_since_wave"])


def state_fingerprint(state: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of a captured state.

    Two services with equal fingerprints are byte-identical in every
    durable dimension — registry floats included.
    """
    return hashlib.sha256(
        canonical_json(state).encode("ascii")
    ).hexdigest()
