"""The durability facade the scheduling daemon talks to.

:class:`DurabilityManager` owns one state directory::

    <state_dir>/events.wal      append-only event WAL
    <state_dir>/snapshot.json   newest checksummed state snapshot

and composes the two halves into the classic WAL-plus-checkpoint
discipline:

* :meth:`DurabilityManager.record_event` durably appends an event
  payload *before* the daemon applies it (write-ahead order — a crash
  can lose an unanswered event, never an answered one);
* :meth:`DurabilityManager.note_applied` counts applied events and,
  every ``snapshot_interval`` of them, publishes a snapshot and
  compacts the WAL behind it, bounding both recovery time and log
  size;
* :meth:`DurabilityManager.load` hands recovery the newest intact
  snapshot plus the WAL tail past it.

All ``durable_*`` metrics live here, behind the house telemetry guard
— with telemetry disabled the manager makes no metric or clock calls.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.durable.snapshot import SnapshotStore
from repro.durable.wal import EventWAL
from repro.errors import ConfigurationError
from repro.telemetry.context import current as telemetry_current

__all__ = ["DurabilityManager"]


class DurabilityManager:
    """WAL + snapshot lifecycle for one service state directory.

    Parameters
    ----------
    state_dir:
        Directory holding the WAL and snapshot (created on demand).
    snapshot_interval:
        Applied events between published snapshots. Smaller values
        bound recovery replay tighter at the cost of more snapshot
        writes; ``1`` snapshots after every event.
    fsync_every:
        Forwarded to :class:`~repro.durable.wal.EventWAL`: appends per
        ``fsync`` (1 = every record).
    """

    def __init__(
        self,
        state_dir,
        snapshot_interval: int = 256,
        fsync_every: int = 1,
    ) -> None:
        if snapshot_interval < 1:
            raise ConfigurationError(
                f"snapshot_interval must be >= 1, got {snapshot_interval}"
            )
        self.state_dir = Path(state_dir)
        if self.state_dir.exists() and not self.state_dir.is_dir():
            raise ConfigurationError(
                f"state_dir {self.state_dir} exists and is not a directory"
            )
        self.snapshot_interval = snapshot_interval
        self.wal = EventWAL(
            self.state_dir / "events.wal", fsync_every=fsync_every
        )
        self.snapshots = SnapshotStore(self.state_dir)
        self.events_since_snapshot = 0
        self.checkpoints = 0

    # -- write-ahead path ----------------------------------------------

    def record_event(self, payload: Dict[str, Any]) -> int:
        """Durably log one event payload; returns its LSN.

        Must be called *before* the event is applied — that ordering is
        the whole crash-consistency argument.
        """
        fsyncs_before = self.wal.fsyncs
        lsn = self.wal.append(payload)
        tel = telemetry_current()
        if tel is not None and tel.metrics is not None:
            tel.metrics.counter("durable_wal_records_total").inc()
            delta = self.wal.fsyncs - fsyncs_before
            if delta:
                tel.metrics.counter("durable_wal_fsyncs_total").inc(delta)
        return lsn

    def note_applied(
        self, capture: Callable[[], Dict[str, Any]]
    ) -> bool:
        """Count one applied event; snapshot when the interval elapses.

        *capture* is called only when a snapshot is actually due, so
        the common path stays free of state serialisation.
        """
        self.events_since_snapshot += 1
        if self.events_since_snapshot < self.snapshot_interval:
            return False
        self.checkpoint(capture())
        return True

    def checkpoint(self, state: Dict[str, Any]) -> None:
        """Publish a snapshot of *state* and compact the WAL behind it."""
        last = self.wal.last_lsn
        self.snapshots.save(state, last)
        self.wal.compact(last)
        self.events_since_snapshot = 0
        self.checkpoints += 1
        tel = telemetry_current()
        if tel is not None and tel.metrics is not None:
            tel.metrics.counter("durable_snapshots_total").inc()

    # -- recovery path -------------------------------------------------

    def load(
        self,
    ) -> Tuple[Optional[Dict[str, Any]], int, List[Tuple[int, Dict[str, Any]]]]:
        """``(snapshot_state, snapshot_lsn, wal_tail)`` for recovery.

        A missing or corrupt snapshot (quarantined by the store) yields
        ``(None, 0, <full WAL>)`` — recovery falls back to replaying
        everything. Corrupt snapshots are surfaced in the
        ``durable_snapshot_corrupt_total`` metric.
        """
        corrupt_before = self.snapshots.corrupt
        loaded = self.snapshots.load()
        tel = telemetry_current()
        if tel is not None and tel.metrics is not None:
            delta = self.snapshots.corrupt - corrupt_before
            if delta:
                tel.metrics.counter("durable_snapshot_corrupt_total").inc(
                    delta
                )
        if loaded is None:
            state: Optional[Dict[str, Any]] = None
            snapshot_lsn = 0
        else:
            state, snapshot_lsn = loaded
        return state, snapshot_lsn, self.wal.replay(snapshot_lsn)

    # -- introspection -------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """JSON-native durability summary for the ``status`` endpoint."""
        return {
            "state_dir": str(self.state_dir),
            "snapshot_interval": self.snapshot_interval,
            "wal_last_lsn": self.wal.last_lsn,
            "wal_records_written": self.wal.records_written,
            "wal_fsyncs": self.wal.fsyncs,
            "checkpoints": self.checkpoints,
            "snapshot_writes": self.snapshots.writes,
            "snapshots_corrupt": self.snapshots.corrupt,
            "events_since_snapshot": self.events_since_snapshot,
        }

    def __repr__(self) -> str:
        return f"DurabilityManager({str(self.state_dir)!r})"
