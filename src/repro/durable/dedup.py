"""Idempotency table for ``(client_id, seq)``-tagged service requests.

A client that times out cannot tell whether its event was applied (the
daemon crashed after processing but before answering) or lost (the
daemon crashed before the WAL append). Resending is only safe when the
server can recognise the retry — that recognition is this table.

Each client's requests carry a monotonically increasing sequence
number. The table remembers, per client, the highest sequence applied
and a bounded window of ``seq -> response`` pairs; a resend inside the
window is answered from memory without touching the scheduler, and a
resend at-or-below the high-water mark outside the window is still
recognised as a duplicate (answered with a synthetic acknowledgement)
rather than applied twice.

The table is part of the durable state: it is captured into snapshots
and — because responses are regenerated whenever an event is re-applied
during WAL replay — rebuilds deterministically during recovery.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["DedupTable"]


class DedupTable:
    """Per-client duplicate detection with a bounded response window.

    Parameters
    ----------
    window:
        Responses remembered per client. Retries older than the window
        are still detected as duplicates (via the high-water mark) but
        answered with ``{"duplicate": true}`` instead of the original
        response — correct, since the client has by then acknowledged
        newer sequences.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.hits = 0
        # client -> (high-water seq, OrderedDict[seq, response])
        self._clients: Dict[str, Tuple[int, "OrderedDict[int, Any]"]] = {}

    def check(self, client: str, seq: int) -> Optional[Dict[str, Any]]:
        """The stored response if ``(client, seq)`` was already applied.

        Returns ``None`` for a fresh request. A recognised duplicate
        increments :attr:`hits`; one older than the response window is
        answered with a synthetic ``{"duplicate": true}`` body.
        """
        entry = self._clients.get(client)
        if entry is None:
            return None
        high, responses = entry
        if seq > high:
            return None
        self.hits += 1
        stored = responses.get(seq)
        if stored is not None:
            return stored
        return {"duplicate": True}

    def remember(self, client: str, seq: int, response: Dict[str, Any]) -> None:
        """Record the response for an applied ``(client, seq)`` request."""
        entry = self._clients.get(client)
        if entry is None:
            responses: "OrderedDict[int, Any]" = OrderedDict()
            high = seq
        else:
            high, responses = entry
            high = max(high, seq)
        responses[seq] = response
        responses.move_to_end(seq)
        while len(responses) > self.window:
            responses.popitem(last=False)
        self._clients[client] = (high, responses)

    # -- snapshot support ----------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """JSON-native form for snapshots (insertion order preserved)."""
        return {
            "window": self.window,
            "clients": {
                client: {
                    "high": high,
                    "responses": [[seq, resp] for seq, resp in responses.items()],
                }
                for client, (high, responses) in sorted(self._clients.items())
            },
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Replace the table contents from :meth:`export_state` output."""
        self._clients = {}
        for client, entry in state.get("clients", {}).items():
            responses: "OrderedDict[int, Any]" = OrderedDict()
            for seq, resp in entry["responses"]:
                responses[int(seq)] = resp
            self._clients[client] = (int(entry["high"]), responses)

    def __len__(self) -> int:
        """Number of clients with at least one remembered request."""
        return len(self._clients)

    def __repr__(self) -> str:
        return f"DedupTable(window={self.window}, clients={len(self)})"
