"""Deterministic, seeded fault injectors for the signature hardware.

The paper's CBF signature is lossy *by design*: 4-bit counters saturate,
set sampling drops accesses, and a single garbled word turns an accurate
footprint into noise. These injectors reproduce those hardware failure
modes on a live :class:`~repro.core.signature.SignatureUnit` so the
validation layer (:func:`~repro.core.signature.assess_signature`), the
monitor's fallback path, and the sweep-level degradation reporting can be
exercised deterministically.

Every injector is pure data (:meth:`~SignatureFaultInjector.to_dict`) so a
fault plan can travel inside a :class:`~repro.jobs.spec.RunSpec` to a
worker process, and every stochastic choice draws from a stream derived
from the injector's seed — the same spec + same fault dict reproduce the
same degraded run bit-for-bit on any host.

Injector kinds
--------------
``saturate``
    Pins every counter at its maximum and sets every Core Filter bit after
    each event batch: the filter is full, occupancy carries no signal
    (detected as *saturated* when the monitor knows the filter capacity).
``corrupt``
    Garbles outgoing context-switch samples (negative occupancy and
    symbiosis) with a seeded probability — a physically impossible reading
    (detected as *corrupt* unconditionally).
``drop``
    Drops outgoing samples with a seeded probability: lost sampling
    windows. Contexts stop refreshing (detected as *stale* when the
    monitor tracks sample counters).
``zero``
    Zeroes a seeded fraction of counter words and the matching filter
    bits after each batch — silent word corruption that *shrinks*
    footprints (usually undetectable; exercises policy robustness).
``stale``
    Drops every sample after a fixed number of context switches: the
    signature freezes in time (detected as *stale*).
``hang``
    Wedges the whole worker after a fixed number of event batches:
    heartbeats go silent while the job body blocks — the supervision
    watchdog's poison-spec scenario (see :mod:`repro.supervise`).
``memhog``
    Balloons the worker's RSS past any reasonable budget after a fixed
    number of event batches — the resource watchdog's poison-spec
    scenario.

The ``hang`` and ``memhog`` kinds poison the *worker process* rather
than the signature reading. Because a fault plan travels inside the
:class:`~repro.jobs.spec.RunSpec` (changing its content-addressed key),
a spec carrying one of them fails **deterministically on every
attempt** — exactly the repeat offender the circuit breaker and the
persisted poison quarantine exist to stop. Their hooks fire from
``after_events``, so they require the spec to attach signature hardware.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.context import SignatureSample
from repro.errors import ConfigurationError
from repro.supervise.heartbeat import clear_hang, simulate_hang, tick
from repro.utils.rng import derive_rng

__all__ = [
    "INJECTOR_KINDS",
    "SignatureFaultInjector",
    "SaturateCountersInjector",
    "CorruptSampleInjector",
    "DropSampleInjector",
    "ZeroWordsInjector",
    "StaleSignatureInjector",
    "HangInjector",
    "MemoryHogInjector",
    "build_injector",
]


class SignatureFaultInjector:
    """Base class: a no-op injector with the two unit hooks.

    Parameters
    ----------
    seed:
        Root of the injector's private random stream (derived per kind,
        so two different injectors with the same seed stay independent).
    """

    kind = "noop"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = derive_rng(self.seed, "faults", self.kind)

    def after_events(self, unit) -> None:
        """Hook run after every recorded event batch (may mutate *unit*)."""

    def transform_sample(
        self, unit, core: int, sample: SignatureSample
    ) -> Optional[SignatureSample]:
        """Hook run on every outgoing sample; may corrupt it or drop it."""
        return sample

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (embeddable in a run spec's fault plan)."""
        return {"kind": self.kind, "seed": self.seed}


class SaturateCountersInjector(SignatureFaultInjector):
    """Pin every counter at max and set every CF bit after each batch.

    The Last Filters are cleared as well: a saturated unit re-floods its
    Core Filters faster than the context-switch snapshot can mask them,
    so the RBV reads all-ones. Because that re-flooding outpaces *any*
    snapshot, outgoing samples are rewritten to the flooded unit's exact
    reading — occupancy equal to the filter capacity, symbiosis all zeros
    (``popcount(full RBV ^ full CF) == 0``) — regardless of how many
    switches happen between event batches. This is the "footprint fills
    the filter" signal the validation layer flags as
    :data:`~repro.core.signature.SignatureHealth` ``SATURATED``.
    """

    kind = "saturate"

    def after_events(self, unit) -> None:
        """Flood the counters and Core Filters (the filter is now full)."""
        unit.counters.fill(unit.counter_max)
        everything = np.arange(unit.num_entries, dtype=np.int64)
        for cf in unit.core_filters:
            cf.set_many(everything)
        for lf in unit.last_filters:
            lf.zero()

    def transform_sample(self, unit, core, sample):
        """Report the flooded unit's reading: full RBV, zero symbiosis."""
        return SignatureSample(
            core=sample.core,
            occupancy=unit.num_entries,
            symbiosis=np.zeros(unit.num_cores, dtype=np.int64),
        )


class CorruptSampleInjector(SignatureFaultInjector):
    """Garble outgoing samples with probability *rate* (default 1.0).

    A corrupted sample reports a negative occupancy and negated symbiosis
    — values no real filter can produce, so the validation layer flags it
    regardless of configuration.
    """

    kind = "corrupt"

    def __init__(self, seed: int = 0, rate: float = 1.0):
        super().__init__(seed)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("corrupt rate must be in [0, 1]")
        self.rate = float(rate)

    def transform_sample(self, unit, core, sample):
        """Replace the sample with an impossible reading (seeded coin)."""
        if self.rate < 1.0 and self._rng.random() >= self.rate:
            return sample
        return SignatureSample(
            core=sample.core,
            occupancy=-1 - int(sample.occupancy),
            symbiosis=-(np.asarray(sample.symbiosis, dtype=np.int64) + 1),
        )

    def to_dict(self):
        """JSON-native form including the corruption rate."""
        return {"kind": self.kind, "seed": self.seed, "rate": self.rate}


class DropSampleInjector(SignatureFaultInjector):
    """Drop outgoing samples with probability *rate* (default 1.0)."""

    kind = "drop"

    def __init__(self, seed: int = 0, rate: float = 1.0):
        super().__init__(seed)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("drop rate must be in [0, 1]")
        self.rate = float(rate)

    def transform_sample(self, unit, core, sample):
        """Lose the sampling window (seeded coin)."""
        if self.rate < 1.0 and self._rng.random() >= self.rate:
            return sample
        return None

    def to_dict(self):
        """JSON-native form including the drop rate."""
        return {"kind": self.kind, "seed": self.seed, "rate": self.rate}


class ZeroWordsInjector(SignatureFaultInjector):
    """Zero a seeded fraction of counter words (and their CF bits).

    Unlike saturation this fault *shrinks* apparent footprints — the
    nastiest kind, because a too-small signature looks healthy. The
    injected set is re-drawn every batch from the seeded stream.
    """

    kind = "zero"

    def __init__(self, seed: int = 0, fraction: float = 0.5):
        super().__init__(seed)
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("zero fraction must be in (0, 1]")
        self.fraction = float(fraction)

    def after_events(self, unit) -> None:
        """Clear a random word subset, as a dropped-write burst would."""
        count = max(1, int(self.fraction * unit.num_entries))
        idx = self._rng.choice(unit.num_entries, size=count, replace=False)
        idx = np.sort(idx.astype(np.int64))
        unit.counters[idx] = 0
        for cf in unit.core_filters:
            cf.clear_many(idx)

    def to_dict(self):
        """JSON-native form including the zeroed fraction."""
        return {"kind": self.kind, "seed": self.seed, "fraction": self.fraction}


class StaleSignatureInjector(SignatureFaultInjector):
    """Freeze the signature after *after_switches* context switches."""

    kind = "stale"

    def __init__(self, seed: int = 0, after_switches: int = 0):
        super().__init__(seed)
        if after_switches < 0:
            raise ConfigurationError("after_switches must be >= 0")
        self.after_switches = int(after_switches)
        self._switches = 0

    def transform_sample(self, unit, core, sample):
        """Deliver samples normally until the freeze point, then none."""
        self._switches += 1
        if self._switches > self.after_switches:
            return None
        return sample

    def to_dict(self):
        """JSON-native form including the freeze point."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "after_switches": self.after_switches,
        }


class HangInjector(SignatureFaultInjector):
    """Wedge the worker after *after_batches* event batches.

    Suspends every heartbeat (:func:`repro.supervise.heartbeat.\
simulate_hang`) and blocks for *hang_seconds* — the watchdog sees pure
    silence and kills the worker. A spec carrying this plan is
    deterministic poison: every retry hangs again, so after the breaker
    threshold it must be short-circuited and quarantined. Without an
    armed watchdog the job eventually wakes, resumes ticking, and
    completes as merely slow (``clear_hang``), so the injector never
    changes *results* — only timing.
    """

    kind = "hang"

    def __init__(
        self,
        seed: int = 0,
        after_batches: int = 0,
        hang_seconds: float = 60.0,
    ):
        super().__init__(seed)
        if after_batches < 0:
            raise ConfigurationError("after_batches must be >= 0")
        if hang_seconds < 0:
            raise ConfigurationError("hang_seconds must be >= 0")
        self.after_batches = int(after_batches)
        self.hang_seconds = float(hang_seconds)
        self._batches = 0

    def after_events(self, unit) -> None:
        """Go silent exactly once, at the configured batch boundary."""
        self._batches += 1
        if self._batches == self.after_batches + 1:
            simulate_hang()
            time.sleep(self.hang_seconds)
            clear_hang()

    def to_dict(self):
        """JSON-native form including the wedge point and duration."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "after_batches": self.after_batches,
            "hang_seconds": self.hang_seconds,
        }


class MemoryHogInjector(SignatureFaultInjector):
    """Balloon the worker's RSS after *after_batches* event batches.

    Allocates (and, because ``bytearray`` zero-fills, actually touches)
    *ballast_mb* of memory, posts an immediate heartbeat so the parent
    sees the new RSS high-water mark, holds the ballast for
    *hold_seconds*, then releases it. Under an armed RSS budget the
    watchdog kills the worker during the hold; without one the run
    completes normally — ``ru_maxrss`` never shrinks, but results are
    unaffected.
    """

    kind = "memhog"

    def __init__(
        self,
        seed: int = 0,
        after_batches: int = 0,
        ballast_mb: float = 256.0,
        hold_seconds: float = 1.0,
    ):
        super().__init__(seed)
        if after_batches < 0:
            raise ConfigurationError("after_batches must be >= 0")
        if ballast_mb < 0:
            raise ConfigurationError("ballast_mb must be >= 0")
        if hold_seconds < 0:
            raise ConfigurationError("hold_seconds must be >= 0")
        self.after_batches = int(after_batches)
        self.ballast_mb = float(ballast_mb)
        self.hold_seconds = float(hold_seconds)
        self._batches = 0

    def after_events(self, unit) -> None:
        """Balloon exactly once, at the configured batch boundary."""
        self._batches += 1
        if self._batches == self.after_batches + 1:
            ballast = bytearray(int(self.ballast_mb * 1024 * 1024))
            tick("memhog")
            time.sleep(self.hold_seconds)
            del ballast

    def to_dict(self):
        """JSON-native form including the ballast size and hold."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "after_batches": self.after_batches,
            "ballast_mb": self.ballast_mb,
            "hold_seconds": self.hold_seconds,
        }


#: Registry of constructible injector kinds.
_REGISTRY = {
    cls.kind: cls
    for cls in (
        SaturateCountersInjector,
        CorruptSampleInjector,
        DropSampleInjector,
        ZeroWordsInjector,
        StaleSignatureInjector,
        HangInjector,
        MemoryHogInjector,
    )
}

#: Names of every injector kind a fault plan may reference.
INJECTOR_KINDS = tuple(sorted(_REGISTRY))


def build_injector(spec: Mapping[str, Any]) -> SignatureFaultInjector:
    """Instantiate an injector from its dict form (``{"kind": ..., ...}``)."""
    params = dict(spec)
    kind = params.pop("kind", None)
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown injector kind {kind!r}; known: {INJECTOR_KINDS}"
        ) from None
    return cls(**params)
