"""Seeded chaos harness for the orchestration pipeline.

Turns the crash-recovery claims of :mod:`repro.jobs` into a pinned,
deterministic test surface: under a fixed seed the harness kills worker
processes mid-job (``os._exit``, indistinguishable from a segfault),
delays jobs past their wall-clock budget, and corrupts on-disk cache
entries — and a sweep run under all of that must still produce
byte-identical summaries to a fault-free run.

Determinism
-----------
Every chaos decision is a pure function of ``(seed, spec key, fault
kind)`` via :func:`~repro.utils.rng.stable_seed` — no global RNG, no
wall-clock input — so the same seed always kills the same jobs. Faults
that must strike only once (a kill or delay that would otherwise defeat
any retry budget) leave a marker file named after the spec key; the
retry attempt sees the marker and runs clean, exactly like a transient
hardware fault.

Usage
-----
Build a :class:`ChaosConfig` and pass :meth:`ChaosConfig.executor` to the
orchestrator in place of the default spec executor::

    chaos = ChaosConfig(seed=7, kill_fraction=0.5, marker_dir=tmp)
    orch = Orchestrator(jobs=2, retries=2, executor=chaos.executor())

Cache corruption is applied between runs with
:func:`corrupt_cache_entries` (the cache quarantines what it cannot
parse and recomputes — see :mod:`repro.jobs.cache`).
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping

from repro.errors import ConfigurationError
from repro.jobs.keys import spec_key
from repro.jobs.spec import execute_spec
from repro.supervise.heartbeat import clear_hang, simulate_hang, tick
from repro.utils.rng import stable_seed

__all__ = ["ChaosConfig", "chaos_execute_spec", "corrupt_cache_entries"]

#: Resolution of the seeded fraction draws.
_DRAW_SPAN = 1 << 32

#: How long a memory hog holds its ballast (seconds) — long enough for
#: the worker's heartbeat to report the ballooned RSS and for the
#: supervising parent (polling every ~50 ms) to react.
_MEMHOG_HOLD_SECONDS = 1.0


def _draw(seed: int, key: str, fault: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (spec, fault) pair."""
    return (stable_seed(seed, key, fault) % _DRAW_SPAN) / _DRAW_SPAN


@dataclass(frozen=True)
class ChaosConfig:
    """What the chaos harness injects, as pure (picklable) data.

    Parameters
    ----------
    seed:
        Root of every chaos decision; same seed = same faults.
    marker_dir:
        Directory for the strike-once marker files (must be shared by
        parent and workers).
    kill_fraction:
        Fraction of jobs whose first execution dies via ``os._exit``.
    delay_fraction:
        Fraction of jobs whose first execution sleeps *delay_seconds*
        before running (drive it past the pool timeout to exercise the
        timeout/retry path).
    delay_seconds:
        Sleep injected into delayed jobs.
    hang_fraction:
        Fraction of jobs whose first execution *hangs*: heartbeats are
        suspended (:func:`repro.supervise.heartbeat.simulate_hang`) and
        the job sleeps *hang_seconds* — a slow job keeps ticking, a hung
        one goes silent, which is exactly the distinction the watchdog
        must make.
    hang_seconds:
        How long a hung job stays wedged (drive it past the watchdog's
        ``hang_timeout`` but *below* the per-job timeout to prove the
        hang was caught by heartbeat silence, not by the deadline).
    memhog_fraction:
        Fraction of jobs whose first execution allocates and touches
        *memhog_mb* of memory before running — exercises the RSS-budget
        watchdog.
    memhog_mb:
        Megabytes the memory hog balloons by.
    """

    seed: int
    marker_dir: str
    kill_fraction: float = 0.0
    delay_fraction: float = 0.0
    delay_seconds: float = 0.0
    hang_fraction: float = 0.0
    hang_seconds: float = 0.0
    memhog_fraction: float = 0.0
    memhog_mb: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill_fraction", "delay_fraction", "hang_fraction",
                     "memhog_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        for name in ("delay_seconds", "hang_seconds", "memhog_mb"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (what travels to worker processes)."""
        return {
            "seed": self.seed,
            "marker_dir": str(self.marker_dir),
            "kill_fraction": self.kill_fraction,
            "delay_fraction": self.delay_fraction,
            "delay_seconds": self.delay_seconds,
            "hang_fraction": self.hang_fraction,
            "hang_seconds": self.hang_seconds,
            "memhog_fraction": self.memhog_fraction,
            "memhog_mb": self.memhog_mb,
        }

    def executor(self):
        """A picklable drop-in for the orchestrator's spec executor."""
        return functools.partial(chaos_execute_spec, self.to_dict())


def _strike_once(marker_dir: Path, key: str, fault: str) -> bool:
    """True exactly once per (spec, fault): records a marker file."""
    marker = marker_dir / f"{key[:16]}.{fault}"
    if marker.exists():
        return False
    marker_dir.mkdir(parents=True, exist_ok=True)
    marker.write_text("struck\n", encoding="ascii")
    return True


def chaos_execute_spec(
    chaos: Mapping[str, Any], payload: Mapping[str, Any]
) -> Dict[str, Any]:
    """Execute one run spec, possibly injecting a seeded fault first.

    Module-level (and used through :func:`functools.partial`) so it is
    picklable into spawn-started workers. The fault, if any, strikes
    before the simulation touches shared state, so a killed or delayed
    job re-executes cleanly on its retry wave.
    """
    key = spec_key(dict(payload))
    marker_dir = Path(chaos["marker_dir"])
    seed = int(chaos["seed"])
    if (
        chaos.get("kill_fraction", 0.0) > 0.0
        and _draw(seed, key, "kill") < chaos["kill_fraction"]
        and _strike_once(marker_dir, key, "kill")
    ):
        os._exit(23)  # hard kill: no Python cleanup, like a segfault
    if (
        chaos.get("delay_fraction", 0.0) > 0.0
        and _draw(seed, key, "delay") < chaos["delay_fraction"]
        and _strike_once(marker_dir, key, "delay")
    ):
        time.sleep(float(chaos.get("delay_seconds", 0.0)))
    if (
        chaos.get("hang_fraction", 0.0) > 0.0
        and _draw(seed, key, "hang") < chaos["hang_fraction"]
        and _strike_once(marker_dir, key, "hang")
    ):
        # A wedged runtime: heartbeats go silent while the job body
        # blocks. Under an armed watchdog the worker is killed mid-sleep
        # (clear_hang never runs — the process dies); without one the
        # job wakes up, resumes ticking, and completes as merely slow.
        simulate_hang()
        time.sleep(float(chaos.get("hang_seconds", 0.0)))
        clear_hang()
    if (
        chaos.get("memhog_fraction", 0.0) > 0.0
        and _draw(seed, key, "memhog") < chaos["memhog_fraction"]
        and _strike_once(marker_dir, key, "memhog")
    ):
        # bytearray() zero-fills, so every page is touched and the RSS
        # high-water mark really balloons. The immediate tick reports
        # the new high-water; the hold gives the parent time to react.
        ballast = bytearray(
            int(float(chaos.get("memhog_mb", 0.0)) * 1024 * 1024)
        )
        tick("memhog")
        time.sleep(_MEMHOG_HOLD_SECONDS)
        del ballast
    return execute_spec(payload)


def corrupt_cache_entries(
    root, seed: int = 0, fraction: float = 1.0
) -> List[Path]:
    """Deterministically corrupt a fraction of on-disk cache entries.

    Walks every committed envelope under *root* and, for a seeded subset,
    applies one of four corruption modes (rotating deterministically by
    key): truncation mid-JSON, garbage bytes, a zero-length file, and a
    valid-JSON-wrong-shape document. Returns the corrupted paths. The
    cache must quarantine every one of them and recompute.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be in [0, 1]")
    corrupted: List[Path] = []
    root = Path(root)
    if not root.exists():
        return corrupted
    for path in sorted(root.glob("*/*.json")):
        if _draw(seed, path.stem, "cache") >= fraction:
            continue
        mode = stable_seed(seed, path.stem, "cache-mode") % 4
        if mode == 0:
            text = path.read_text(encoding="ascii")
            path.write_text(text[: max(1, len(text) // 2)], encoding="ascii")
        elif mode == 1:
            path.write_bytes(b"\x00\xff garbage \xfe\x01")
        elif mode == 2:
            path.write_bytes(b"")
        else:
            path.write_text('{"not": "an envelope"}', encoding="ascii")
        corrupted.append(path)
    return corrupted
