"""Deterministic fault injection and chaos testing for the pipeline.

The reproduction's north star is a production-scale system, and
production means degraded inputs: saturated counters, dropped sampling
windows, crashed workers, torn cache files. This subpackage makes every
one of those failure modes injectable *deterministically* (seeded, pure
functions of spec identity) so the graceful-degradation paths threaded
through :mod:`repro.core`, :mod:`repro.alloc` and :mod:`repro.jobs` are
pinned by tests rather than asserted in prose:

* :mod:`repro.faults.injectors` — signature-hardware faults (saturate /
  corrupt / drop / zero / stale) attachable to a live
  :class:`~repro.core.signature.SignatureUnit` or embedded in a
  :class:`~repro.jobs.spec.RunSpec` fault plan;
* :mod:`repro.faults.chaos` — the orchestration chaos harness: seeded
  worker kills, past-timeout delays, and cache-file corruption.

See ``docs/robustness.md`` for the fault model and degradation matrix.
"""

from __future__ import annotations

from repro.faults.chaos import (
    ChaosConfig,
    chaos_execute_spec,
    corrupt_cache_entries,
)
from repro.faults.injectors import (
    INJECTOR_KINDS,
    CorruptSampleInjector,
    DropSampleInjector,
    HangInjector,
    MemoryHogInjector,
    SaturateCountersInjector,
    SignatureFaultInjector,
    StaleSignatureInjector,
    ZeroWordsInjector,
    build_injector,
)

__all__ = [
    "ChaosConfig",
    "chaos_execute_spec",
    "corrupt_cache_entries",
    "INJECTOR_KINDS",
    "CorruptSampleInjector",
    "DropSampleInjector",
    "HangInjector",
    "MemoryHogInjector",
    "SaturateCountersInjector",
    "SignatureFaultInjector",
    "StaleSignatureInjector",
    "ZeroWordsInjector",
    "build_injector",
]
