"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Metrics are the aggregate, low-overhead side of the telemetry subsystem
(spans are the per-region side). All instruments are registered by name
in a :class:`MetricsRegistry`; a registry :meth:`~MetricsRegistry.snapshot`
is a plain dict sorted by metric name, and — because histogram bucket
boundaries are fixed at registration — two runs that observe the same
values produce byte-identical snapshots. Deterministic simulated
quantities (access counts, miss counts, CBF occupancies) therefore pin
exactly in tests, while wall-clock quantities (seconds histograms) stay
comparable across runs without breaking anything.

:class:`EventCounterSink` adapts the orchestrator's
:class:`~repro.jobs.events.EventLog` stream into this registry, absorbing
the rolling :class:`~repro.jobs.events.EventCounters` tallies (which
remain for backwards compatibility) into first-class metrics.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "DURATION_BUCKETS",
    "BACKOFF_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventCounterSink",
]

#: Default latency bucket boundaries (seconds) for duration histograms.
DURATION_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)

#: Bucket boundaries (seconds) for retry/backoff sleep histograms — the
#: interesting range runs from sub-second jitter up to the RetryPolicy
#: cap (30 s by default), with one bucket past it for raised caps.
BACKOFF_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0)


class Counter:
    """Monotonically increasing tally (int or float increments)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-boundary histogram (Prometheus-style cumulative buckets).

    Bucket boundaries are frozen at construction so snapshots of two runs
    observing the same values are identical — the determinism contract
    the pinned telemetry tests rely on.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, bounds: Sequence[float], help: str = ""):
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs bucket bounds")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ConfigurationError(
                f"histogram {name} bounds must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if math.isnan(value):
            raise ConfigurationError(f"histogram {self.name} observed NaN")
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """``(le, cumulative count)`` pairs ending with ``+Inf``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((f"{bound:g}", running))
        out.append(("+Inf", self.count))
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "buckets": [[le, n] for le, n in self.cumulative_buckets()],
        }


class MetricsRegistry:
    """Name-keyed home of every counter, gauge and histogram.

    Instruments are get-or-create: the first call with a name registers
    it, later calls return the same object (a type or bucket-boundary
    mismatch is a configuration error — silent re-bucketing would break
    snapshot determinism).
    """

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory, kind) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float], help: str = ""
    ) -> Histogram:
        """Get or create the named :class:`Histogram` (bounds must match)."""
        metric = self._get_or_create(
            name, lambda: Histogram(name, bounds, help), Histogram
        )
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return metric

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic plain-dict snapshot, sorted by metric name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)


class EventCounterSink:
    """EventLog sink mirroring orchestration events into a registry.

    Attach via :meth:`repro.jobs.events.EventLog.add_sink` (the
    orchestrator does this automatically when telemetry is active). Each
    event kind increments a ``jobs_events_<kind>_total`` counter; job and
    batch durations feed the ``jobs_job_seconds`` / ``jobs_batch_seconds``
    histograms. Only duck-typed event attributes (``kind``,
    ``wall_time``) are read, so this module never imports
    :mod:`repro.jobs` (which imports telemetry — the other direction).
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._job_seconds = registry.histogram(
            "jobs_job_seconds", DURATION_BUCKETS,
            help="per-job wall time as observed by the orchestrator",
        )
        self._batch_seconds = registry.histogram(
            "jobs_batch_seconds", DURATION_BUCKETS,
            help="orchestration batch wall time",
        )

    def __call__(self, event) -> None:
        """Consume one :class:`~repro.jobs.events.JobEvent`."""
        self.registry.counter(
            f"jobs_events_{event.kind}_total",
            help=f"orchestration events of kind {event.kind!r}",
        ).inc()
        if event.kind == "completed":
            self._job_seconds.observe(event.wall_time)
        elif event.kind == "batch_end":
            self._batch_seconds.observe(event.wall_time)
