"""Hierarchical trace spans.

A :class:`Span` is one timed region of the program — an orchestration
batch, a pooled job, a simulator run, or one of its internal phases. The
:class:`Tracer` maintains a per-thread stack of open spans, so a span
begun while another is open becomes its child; the finished spans carry
stable integer ids plus parent ids, which is what lets the exporters (and
the tests) reconstruct the orchestrator → job → simulator → phase tree.

Timestamps are ``time.perf_counter`` seconds relative to the tracer's
epoch (its construction instant). They are wall-clock measurements and
therefore *not* deterministic — tracing is an opt-in diagnostic layer and
is never consulted by the simulation itself.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region: name, attributes, and its place in the tree.

    Spans are created through :meth:`Tracer.begin` /
    :meth:`Tracer.span` / :meth:`Tracer.add_complete`; the constructor is
    not part of the public API.
    """

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "pid", "tid",
        "start", "duration",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
        pid: int,
        tid: int,
        start: float,
    ):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = pid
        self.tid = tid
        self.start = start
        self.duration: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (seconds-based; exporters convert units)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration})"
        )


class _SpanScope:
    """``with tracer.span(...)`` handle: begins on enter, ends on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.begin(self._name, **self._attrs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end(self.span)


class Tracer:
    """Collects hierarchical spans with a per-thread open-span stack.

    Thread propagation is automatic: the tracer is shared (it lives on
    the process-wide telemetry context) while each thread keeps its own
    stack, so concurrent threads produce independent, correctly-nested
    sub-trees tagged with their thread id. Process propagation is by
    re-initialisation: worker processes build their own tracer from the
    ``REPRO_TRACE`` environment variable (see
    :func:`repro.telemetry.context.init_from_env`) and flush part files
    the exporters can merge.
    """

    def __init__(self):
        self.epoch = time.perf_counter()
        self.finished: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return time.perf_counter() - self.epoch

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the thread's current open span."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = next(self._ids)
        span = Span(
            name=name,
            attrs=attrs,
            span_id=span_id,
            parent_id=parent,
            pid=os.getpid(),
            tid=threading.get_ident(),
            start=self.now(),
        )
        stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close *span* (and any descendants left open) and record it."""
        stack = self._stack()
        while stack:
            top = stack.pop()
            top.duration = self.now() - top.start
            with self._lock:
                self.finished.append(top)
            if top is span:
                break
        return span

    def span(self, name: str, **attrs: Any) -> _SpanScope:
        """Context manager: ``with tracer.span("name", k=v) as s: ...``."""
        return _SpanScope(self, name, attrs)

    def add_complete(
        self, name: str, start: float, duration: float, **attrs: Any
    ) -> Span:
        """Record an already-measured span (aggregated simulator phases).

        *start* is epoch-relative seconds; the span is parented under the
        thread's currently open span, so callers emit phase aggregates
        *before* closing the enclosing span.
        """
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = next(self._ids)
        span = Span(
            name=name,
            attrs=attrs,
            span_id=span_id,
            parent_id=parent,
            pid=os.getpid(),
            tid=threading.get_ident(),
            start=start,
        )
        span.duration = duration
        with self._lock:
            self.finished.append(span)
        return span

    def drain(self) -> List[Span]:
        """Return and clear the finished spans (exporter hand-off)."""
        with self._lock:
            spans, self.finished = self.finished, []
        return spans
