"""Exporters: Chrome trace-event JSON, Prometheus text, merge helpers.

Three consumers, three formats:

* :func:`write_chrome_trace` — the Chrome trace-event *JSON array
  format* (one complete ``"ph": "X"`` event per line), loadable in
  Perfetto / ``chrome://tracing``. Span nesting is carried both by
  timestamp containment (what the viewers render) and by explicit
  ``args.span_id`` / ``args.parent_id`` (what the tests assert).
* :func:`prometheus_text` / :func:`write_prometheus` — the Prometheus
  exposition text format for the metrics snapshot (counters, gauges,
  cumulative histogram buckets).
* :func:`append_trace_part` / :func:`merged_trace_events` — JSONL part
  files written by worker processes and the helper that folds them back
  into one event list before the final write.

The human-readable summary table lives in
:func:`repro.analysis.report.render_metrics`, next to the other renderers.
"""

from __future__ import annotations

import json
import os
from glob import glob
from typing import Any, Dict, Iterable, List, Sequence

from repro.telemetry.spans import Span

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "append_trace_part",
    "merged_trace_events",
    "write_merged_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "metrics_json",
]

_MICROSECONDS = 1e6


def chrome_trace_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Convert spans to Chrome trace-event dicts (complete ``X`` events)."""
    events = []
    for span in spans:
        duration = span.duration if span.duration is not None else 0.0
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start * _MICROSECONDS,
                "dur": duration * _MICROSECONDS,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return events


def write_chrome_trace(path, spans: Iterable[Span]) -> int:
    """Write spans as a Chrome trace-event JSON array, one event per line.

    The file is simultaneously valid JSON (an array of event objects) and
    line-oriented, so it loads in Perfetto and greps cleanly. Returns the
    number of events written.
    """
    events = chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("[\n")
        for i, event in enumerate(events):
            comma = "," if i + 1 < len(events) else ""
            fh.write(json.dumps(event, sort_keys=True) + comma + "\n")
        fh.write("]\n")
    return len(events)


def append_trace_part(path, spans: Iterable[Span]) -> int:
    """Append spans to a JSONL part file (one event object per line).

    Worker processes call this after every executed spec — their spans
    would die with the process otherwise. Parts are plain JSONL (no array
    wrapper) so concurrent appends from one worker stay well-formed.
    """
    events = chrome_trace_events(spans)
    with open(path, "a", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)


def merged_trace_events(
    main_spans: Sequence[Span], trace_path
) -> List[Dict[str, Any]]:
    """Main-process events plus every ``<trace_path>.part-*`` file's.

    Unreadable or torn part lines are skipped (a worker killed mid-write
    must not invalidate the whole trace); consumed part files are
    removed. Events are ordered by (pid, ts) for stable output.
    """
    events = chrome_trace_events(main_spans)
    for part in sorted(glob(f"{trace_path}.part-*")):
        try:
            with open(part, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except ValueError:
                        continue  # torn tail of a killed worker
            os.remove(part)
        except OSError:
            continue
    events.sort(key=lambda e: (e.get("pid", 0), e.get("ts", 0.0)))
    return events


def write_merged_chrome_trace(path, main_spans: Sequence[Span]) -> int:
    """Write the main spans plus any worker part files as one trace."""
    events = merged_trace_events(main_spans, path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("[\n")
        for i, event in enumerate(events):
            comma = "," if i + 1 < len(events) else ""
            fh.write(json.dumps(event, sort_keys=True) + comma + "\n")
        fh.write("]\n")
    return len(events)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Render a registry snapshot in the Prometheus exposition format."""
    lines: List[str] = []
    for name, metric in snapshot.items():
        kind = metric["type"]
        lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name} {_format_value(metric['value'])}")
            continue
        for le, count in metric["buckets"]:
            lines.append(f'{name}_bucket{{le="{le}"}} {count}')
        lines.append(f"{name}_sum {_format_value(metric['sum'])}")
        lines.append(f"{name}_count {metric['count']}")
    return "\n".join(lines) + "\n"


def write_prometheus(path, snapshot: Dict[str, Dict[str, Any]]) -> None:
    """Write :func:`prometheus_text` output to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(snapshot))


def metrics_json(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """The snapshot as pretty, key-sorted JSON (bench result files)."""
    return json.dumps(snapshot, indent=2, sort_keys=True)
