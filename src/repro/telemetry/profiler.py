"""Phase-level profiling of the simulator's hot loop.

The simulator's main loop is too hot for a span per batch (hundreds of
thousands of batches per run), so profiling is aggregated: a
:class:`PhaseProfile` accumulates wall seconds and operation counts per
*phase* — interleave (core selection + trace generation), L2 access,
signature sampling, timing-model accounting, monitor invocation — with
two ``perf_counter`` reads per phase per batch when telemetry is enabled
and nothing at all when it is not.

At run end the profile is emitted once: one synthetic child span per
phase (laid back-to-back under the ``simulator.run`` span so trace
viewers show the run's time breakdown) and one
``sim_phase_<phase>_seconds_total`` / ``..._ops_total`` counter pair per
phase in the metrics registry.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer

__all__ = ["SIMULATOR_PHASES", "PhaseProfile"]

#: The simulator's instrumented phases, in loop order.
SIMULATOR_PHASES: Tuple[str, ...] = (
    "interleave", "l2_access", "signature", "timing", "monitor",
)


class PhaseProfile:
    """Accumulated wall seconds and op counts for a fixed phase set.

    Parameters
    ----------
    phases:
        Phase names (defaults to :data:`SIMULATOR_PHASES`). Adding
        seconds to an unknown phase is an error — a typo would silently
        vanish otherwise.
    """

    __slots__ = ("phases", "_seconds", "_ops")

    def __init__(self, phases: Sequence[str] = SIMULATOR_PHASES):
        self.phases = tuple(phases)
        self._seconds: Dict[str, float] = {p: 0.0 for p in self.phases}
        self._ops: Dict[str, int] = {p: 0 for p in self.phases}

    def add(self, phase: str, seconds: float, ops: int = 1) -> None:
        """Accumulate *seconds* of wall time (and *ops* operations)."""
        self._seconds[phase] += seconds
        self._ops[phase] += ops

    def seconds(self, phase: str) -> float:
        """Accumulated wall seconds of one phase."""
        return self._seconds[phase]

    def ops(self, phase: str) -> int:
        """Accumulated operation count of one phase."""
        return self._ops[phase]

    def total_seconds(self) -> float:
        """Wall seconds across all phases."""
        return sum(self._seconds.values())

    def emit_spans(self, tracer: Tracer, start: float) -> None:
        """Record one aggregate child span per non-empty phase.

        Phases are laid back-to-back from *start* (the enclosing span's
        start). The layout is a breakdown, not a timeline: each phase's
        duration is its true accumulated total, but its position inside
        the parent is synthetic. Must be called while the enclosing span
        is still open so the phases parent correctly.
        """
        cursor = start
        for phase in self.phases:
            duration = self._seconds[phase]
            if self._ops[phase] == 0:
                continue
            tracer.add_complete(
                f"phase.{phase}", cursor, duration, ops=self._ops[phase]
            )
            cursor += duration

    def emit_metrics(
        self, metrics: MetricsRegistry, prefix: str = "sim_phase_"
    ) -> None:
        """Fold the accumulated totals into per-phase counters."""
        for phase in self.phases:
            if self._ops[phase] == 0:
                continue
            metrics.counter(
                f"{prefix}{phase}_seconds_total",
                help=f"wall seconds spent in the {phase} phase",
            ).inc(self._seconds[phase])
            metrics.counter(
                f"{prefix}{phase}_ops_total",
                help=f"operations executed in the {phase} phase",
            ).inc(self._ops[phase])
